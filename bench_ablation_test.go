package infogram_test

// Ablation benchmarks: quantify the individual design choices DESIGN.md
// calls out — single-flight update coalescing (the paper's "monitors are
// used to perform only one such update at a time"), the inter-execution
// delay (§6.2), and persistent authenticated connections (the GSI
// handshake is paid once per connection, not per request).

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/core"
)

// BenchmarkAblation_SingleFlight compares concurrent refreshes of one
// expensive value with and without the cache's coalescing monitor.
func BenchmarkAblation_SingleFlight(b *testing.B) {
	const cost = 2 * time.Millisecond
	newFn := func(execs *atomic.Int64) cache.UpdateFunc {
		return func(ctx context.Context) (any, error) {
			execs.Add(1)
			time.Sleep(cost)
			return "v", nil
		}
	}
	b.Run("coalesced", func(b *testing.B) {
		var execs atomic.Int64
		entry := cache.NewEntry(cache.Options{TTL: time.Nanosecond}, newFn(&execs))
		ctx := context.Background()
		b.SetParallelism(32)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := entry.Update(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
	})
	b.Run("uncoalesced", func(b *testing.B) {
		var execs atomic.Int64
		fn := newFn(&execs)
		ctx := context.Background()
		b.SetParallelism(32)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := fn(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
	})
}

// BenchmarkAblation_DelaySuppression measures the §6.2 inter-execution
// delay under an immediate-mode flood ("users ask for information more
// frequently than it can be produced").
func BenchmarkAblation_DelaySuppression(b *testing.B) {
	const cost = time.Millisecond
	for _, delay := range []time.Duration{0, 10 * time.Millisecond} {
		b.Run(fmt.Sprintf("delay=%s", delay), func(b *testing.B) {
			var execs atomic.Int64
			entry := cache.NewEntry(cache.Options{TTL: time.Nanosecond, Delay: delay},
				func(ctx context.Context) (any, error) {
					execs.Add(1)
					time.Sleep(cost)
					return "v", nil
				})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := entry.Get(ctx, cache.Immediate, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
		})
	}
}

// BenchmarkAblation_ConnectionReuse contrasts a persistent authenticated
// connection against dialing (and re-running the GSI handshake) per query.
func BenchmarkAblation_ConnectionReuse(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(time.Hour, 0, nil)
	_, addr := startInfoGram(b, f, reg)

	b.Run("persistent", func(b *testing.B) {
		cl := dialInfoGram(b, f, addr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dial-per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl, err := core.Dial(addr, f.user, f.trust)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
				b.Fatal(err)
			}
			cl.Close()
		}
	})
}
