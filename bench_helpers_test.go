package infogram_test

// Shared harness for the experiment benchmarks in bench_test.go: a
// complete security fabric, baseline GRAM+MDS deployments (Figure 2), and
// unified InfoGram deployments (Figure 4), all on loopback TCP.

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/quality"
	"infogram/internal/scheduler"
)

// fabric is the benchmark security environment.
type fabric struct {
	ca      *gsi.CA
	trust   *gsi.TrustStore
	gridmap *gsi.Gridmap
	svcCred *gsi.Credential
	user    *gsi.Credential
}

func newFabric(b *testing.B) *fabric {
	b.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour, now)
	if err != nil {
		b.Fatal(err)
	}
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=bench-service", 12*time.Hour, now)
	if err != nil {
		b.Fatal(err)
	}
	user, err := ca.IssueIdentity("/O=Grid/CN=bench-user", 12*time.Hour, now)
	if err != nil {
		b.Fatal(err)
	}
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=bench-user", "bench")
	return &fabric{
		ca: ca, trust: gsi.NewTrustStore(ca.Certificate()),
		gridmap: gm, svcCred: svcCred, user: user,
	}
}

// noopFunc builds a func backend with an instant "noop" job and a counting
// provider-friendly "spin" job.
func noopFunc() *scheduler.Func {
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "", nil
	})
	return fn
}

// benchRegistry builds a registry with a counting CPULoad-style provider.
// execCost simulates the expense of producing the information.
func benchRegistry(ttl time.Duration, execCost time.Duration, degrade quality.Degradation) (*provider.Registry, *atomic.Int64) {
	reg := provider.NewRegistry(nil)
	var execs atomic.Int64
	p := provider.NewFuncProvider("CPULoad", func(ctx context.Context) (provider.Attributes, error) {
		n := execs.Add(1)
		if execCost > 0 {
			time.Sleep(execCost)
		}
		return provider.Attributes{{Name: "load1", Value: strconv.FormatInt(n%8, 10)}}, nil
	})
	reg.Register(p, provider.RegisterOptions{TTL: ttl, Degrade: degrade})
	return reg, &execs
}

// startInfoGram starts a unified service over the registry.
func startInfoGram(b *testing.B, f *fabric, reg *provider.Registry) (*core.Service, string) {
	b.Helper()
	svc := core.NewService(core.Config{
		ResourceName: "bench.resource",
		Credential:   f.svcCred,
		Trust:        f.trust,
		Gridmap:      f.gridmap,
		Registry:     reg,
		Backends:     gram.Backends{Func: noopFunc(), Exec: &scheduler.Fork{}},
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return svc, addr
}

// startBaseline starts the Figure 2 pair: a GRAM service and an MDS GRIS
// over the same registry.
func startBaseline(b *testing.B, f *fabric, reg *provider.Registry) (gramAddr, grisAddr string, gramSvc *gram.Service, gris *mds.GRIS) {
	b.Helper()
	gramSvc = gram.NewService(gram.Config{
		Credential: f.svcCred,
		Trust:      f.trust,
		Gridmap:    f.gridmap,
		Backends:   gram.Backends{Func: noopFunc(), Exec: &scheduler.Fork{}},
	})
	ga, err := gramSvc.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gramSvc.Close() })

	gris = mds.NewGRIS(mds.GRISConfig{
		ResourceName: "bench.resource",
		Registry:     reg,
		Credential:   f.svcCred,
		Trust:        f.trust,
	})
	ma, err := gris.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gris.Close() })
	return ga, ma, gramSvc, gris
}

// dialInfoGram connects an authenticated client.
func dialInfoGram(b *testing.B, f *fabric, addr string) *core.Client {
	b.Helper()
	cl, err := core.Dial(addr, f.user, f.trust)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl
}

// runJobToDone submits and waits for a job through an InfoGram client.
func runJobToDone(b *testing.B, cl *core.Client, src string) {
	b.Helper()
	contact, err := cl.Submit(src)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if st.State != job.Done {
		b.Fatalf("job state %s: %s", st.State, st.Error)
	}
}

// waitGRAMDone polls a GRAM client to a terminal state.
func waitGRAMDone(b *testing.B, cl *gram.Client, contact string) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if st.State != job.Done {
		b.Fatalf("job state %s: %s", st.State, st.Error)
	}
}

// mkEntries builds n synthetic information entries for format benches.
func mkEntriesSpec(n int) []provider.Report {
	reports := make([]provider.Report, n)
	for i := range reports {
		reports[i] = provider.Report{
			Keyword: fmt.Sprintf("Keyword%02d", i),
			Attrs: provider.Attributes{
				{Name: "alpha", Value: strconv.Itoa(i * 3)},
				{Name: "beta", Value: "value with several words " + strconv.Itoa(i)},
				{Name: "gamma", Value: "0.123456789"},
			},
		}
	}
	return reports
}
