package infogram_test

// Tracing-overhead benchmarks: what the distributed-tracing tentpole
// costs on the hot path. BenchmarkUntracedQuery is the disarmed baseline —
// the span instrumentation is compiled in everywhere but the service runs
// with DisableTracing and the client never negotiates TRACE, so every
// StartSpan is a single context lookup returning nil. BenchmarkTracedQuery
// arms everything: the client mints and propagates a trace context per
// request and the server records, tail-samples, and stores the full span
// tree. The acceptance bar is that the disarmed path stays within 5% of
// the pre-tracing hot path (compare against the pooled/clients=1 numbers
// in BENCH_2.json), with the armed cost reported alongside.
//
//	BENCH_PATTERN='BenchmarkTracedQuery|BenchmarkUntracedQuery' BENCH_PKGS=. ./scripts/bench.sh

import (
	"context"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

// startTraceBenchService starts an InfoGram service with tracing either
// fully enabled (default options) or disabled outright.
func startTraceBenchService(b *testing.B, f *fabric, disabled bool) string {
	b.Helper()
	reg, _ := benchRegistry(time.Minute, 0, nil)
	svc := core.NewService(core.Config{
		ResourceName:   "bench.resource",
		Credential:     f.svcCred,
		Trust:          f.trust,
		Gridmap:        f.gridmap,
		Registry:       reg,
		Backends:       gram.Backends{Func: noopFunc(), Exec: &scheduler.Fork{}},
		DisableTracing: disabled,
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return addr
}

// benchQueryLoop measures cached info queries over one warm client so the
// difference between runs is tracing, not connection setup or provider
// work.
func benchQueryLoop(b *testing.B, f *fabric, addr string, opts core.Options, traced bool) {
	b.Helper()
	cl, err := core.DialWithOptions(addr, f.user, f.trust, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		if traced {
			ctx = telemetry.WithTrace(ctx, telemetry.NewTraceID())
		}
		if _, err := cl.QueryRawContext(ctx, "&(info=CPULoad)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUntracedQuery is the disarmed path: tracing code compiled in,
// nothing armed on either side.
func BenchmarkUntracedQuery(b *testing.B) {
	f := newFabric(b)
	addr := startTraceBenchService(b, f, true)
	benchQueryLoop(b, f, addr, core.Options{DisableTrace: true}, false)
}

// BenchmarkTracedQuery arms the full pipeline: per-request client-minted
// trace context on the wire, server-side span tree recording, tail
// sampling at rate 1.0, and trace-store retention.
func BenchmarkTracedQuery(b *testing.B) {
	f := newFabric(b)
	addr := startTraceBenchService(b, f, false)
	benchQueryLoop(b, f, addr, core.Options{}, true)
}
