// Webportal: the paper's forwards-compatibility story in action (§1, §11:
// "It is straight forward to cast the InfoGram in WSDL"). An InfoGram
// service runs on the grid side; the Web-services gateway exposes it over
// HTTP with XML envelopes; a plain HTTP client — no GSI, no RSL library —
// queries information, launches a job, and polls it to completion.
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/wsgw"
)

func main() {
	now := time.Now()
	// Grid side: CA, service, gateway credential.
	ca, err := gsi.NewCA("/O=Grid/CN=Portal CA", 24*time.Hour, now)
	check(err)
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=portal-service", 12*time.Hour, now)
	check(err)
	gwCred, err := ca.IssueIdentity("/O=Grid/CN=portal-gateway", 12*time.Hour, now)
	check(err)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=portal-gateway", "portal")

	registry := provider.NewRegistry(nil)
	registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: time.Second})
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("compute-pi", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		// Leibniz series, enough terms to look busy.
		sum := 0.0
		sign := 1.0
		for i := 0; i < 2_000_000; i++ {
			sum += sign / float64(2*i+1)
			sign = -sign
		}
		return fmt.Sprintf("pi≈%.9f", 4*sum), nil
	})

	svc := core.NewService(core.Config{
		ResourceName: "portal.example",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gm,
		Registry:     registry,
		Backends:     gram.Backends{Func: fn, Exec: &scheduler.Fork{}},
	})
	gridAddr, err := svc.Listen("127.0.0.1:0")
	check(err)
	defer svc.Close()

	// Web side: the SOAP/WSDL gateway.
	gw := wsgw.New(wsgw.Config{Backend: gridAddr, Credential: gwCred, Trust: trust})
	defer gw.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	httpSrv := &http.Server{Handler: gw}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("grid service: %s\nweb gateway:  %s\n\n", gridAddr, base)

	// A plain web client from here on.
	fmt.Println("== GET ?wsdl (first lines) ==")
	wsdl := httpGet(base + "/?wsdl")
	fmt.Println(firstLines(wsdl, 4))

	fmt.Println("\n== information query over HTTP ==")
	resp := soap(base, `<Envelope><Body><Submit><specification>(info=Runtime)</specification></Submit></Body></Envelope>`)
	fmt.Println(firstLines(resp, 12))

	fmt.Println("\n== job over HTTP ==")
	resp = soap(base, `<Envelope><Body><Submit><specification>(executable=compute-pi)(jobtype=func)</specification></Submit></Body></Envelope>`)
	var env struct {
		Body struct {
			Resp wsgw.SubmitResponse `xml:"SubmitResponse"`
		} `xml:"Body"`
	}
	check(xml.Unmarshal([]byte(resp), &env))
	contact := env.Body.Resp.Contact
	fmt.Printf("job contact: %s\n", contact)

	for {
		status := soap(base, `<Envelope><Body><Status><contact>`+contact+`</contact></Status></Body></Envelope>`)
		if strings.Contains(status, "<state>DONE</state>") || strings.Contains(status, "<state>FAILED</state>") {
			fmt.Println(firstLines(status, 10))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func soap(base, envelope string) string {
	resp, err := http.Post(base, "text/xml", strings.NewReader(envelope))
	check(err)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	check(err)
	return string(b)
}

func httpGet(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	check(err)
	return string(b)
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = append(lines[:n], "  ...")
	}
	return strings.Join(lines, "\n")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
