// Quickstart: bring up a complete InfoGram deployment in-process — CA,
// credentials, gridmap, service — then use ONE client connection and ONE
// protocol for both an information query and a job execution, the paper's
// headline simplification (Figures 3/4).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
)

func main() {
	now := time.Now()

	// 1. Security fabric: a CA, a service credential, a user, a gridmap.
	ca, err := gsi.NewCA("/O=Grid/CN=Quickstart CA", 24*time.Hour, now)
	check(err)
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=quickstart-service", 12*time.Hour, now)
	check(err)
	alice, err := ca.IssueIdentity("/O=Grid/OU=ANL/CN=alice", 12*time.Hour, now)
	check(err)
	gridmap := gsi.NewGridmap()
	gridmap.Add("/O=Grid/OU=ANL/CN=alice", "alice")

	// 2. Information providers: runtime stats plus a static identity
	//    record, cached with a 500 ms TTL.
	registry := provider.NewRegistry(nil)
	registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: 500 * time.Millisecond})
	registry.Register(&provider.StaticProvider{
		KeywordName: "Resource",
		Values: provider.Attributes{
			{Name: "name", Value: "quickstart.example"},
			{Name: "description", Value: "InfoGram quickstart resource"},
		},
	}, provider.RegisterOptions{TTL: time.Hour})

	// 3. The InfoGram service: one port, one protocol.
	svc := core.NewService(core.Config{
		ResourceName: "quickstart.example",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gridmap,
		Registry:     registry,
		Backends: gram.Backends{
			Exec: &scheduler.Fork{},
			Func: scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{}),
		},
	})
	addr, err := svc.Listen("127.0.0.1:0")
	check(err)
	defer svc.Close()
	fmt.Printf("InfoGram service on %s\n\n", addr)

	// 4. One authenticated client connection serves everything.
	cl, err := core.Dial(addr, alice, trust)
	check(err)
	defer cl.Close()

	// Information query, expressed in xRSL like a job submission.
	res, err := cl.QueryRaw("&(info=Resource)(info=Runtime)")
	check(err)
	fmt.Println("== information query: (info=Resource)(info=Runtime) ==")
	fmt.Println(res.Raw)

	// Job execution over the same connection.
	fmt.Println("== job submission: (executable=/bin/date)(arguments=-u) ==")
	contact, err := cl.Submit("&(executable=/bin/date)(arguments=-u)")
	check(err)
	fmt.Printf("job contact: %s\n", contact)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 20*time.Millisecond)
	check(err)
	fmt.Printf("state: %s, exit: %d\nstdout: %s\n", st.State, st.ExitCode, st.Stdout)

	// Both in one round trip: a multi-request.
	fmt.Println("== multi-request: info + job in one round trip ==")
	parts, err := cl.SubmitMulti("+(&(info=Resource))(&(executable=/bin/echo)(arguments=one round trip))")
	check(err)
	for i, p := range parts {
		fmt.Printf("part %d: kind=%s\n", i, p.Kind)
	}
	fmt.Printf("\nconnections used for everything above: %d\n", svc.AcceptedConns())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
