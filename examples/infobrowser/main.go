// Infobrowser: a tour of the information-service half of InfoGram —
// service reflection (§6.4), the response/quality/performance/format tags
// of xRSL (§6.5), information degradation (§5.2), and the MDS
// backward-compatibility bridge (§6.5).
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync/atomic"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/quality"
	"infogram/internal/scheduler"
)

func main() {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Browser CA", 24*time.Hour, now)
	check(err)
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=info-service", 12*time.Hour, now)
	check(err)
	user, err := ca.IssueIdentity("/O=Grid/CN=browser", 12*time.Hour, now)
	check(err)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=browser", "browser")

	// A synthetic sensor whose value drifts each execution, with a linear
	// degradation over one second and a 30 ms execution cost.
	var reading atomic.Int64
	sensor := provider.NewFuncProvider("Sensor", func(ctx context.Context) (provider.Attributes, error) {
		time.Sleep(30 * time.Millisecond)
		return provider.Attributes{
			{Name: "value", Value: strconv.FormatInt(reading.Add(7), 10)},
		}, nil
	})
	sensor.Schemas = []provider.AttrSchema{{Name: "value", Type: "int", Doc: "synthetic sensor reading"}}

	registry := provider.NewRegistry(nil)
	registry.Register(sensor, provider.RegisterOptions{
		TTL:     2 * time.Second,
		Degrade: quality.Linear{Horizon: time.Second},
	})
	registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: time.Second})

	svc := core.NewService(core.Config{
		ResourceName: "browser.example",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gm,
		Registry:     registry,
		Backends:     gram.Backends{Func: scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})},
	})
	addr, err := svc.Listen("127.0.0.1:0")
	check(err)
	defer svc.Close()

	cl, err := core.Dial(addr, user, trust)
	check(err)
	defer cl.Close()

	// 1. Reflection: what does this service know?
	fmt.Println("== (info=schema): service reflection ==")
	res, err := cl.QueryRaw("(info=schema)")
	check(err)
	fmt.Println(res.Raw)

	// 2. Watch quality degrade between cached reads.
	fmt.Println("== degradation: cached reads age, quality decays ==")
	for i := 0; i < 3; i++ {
		res, err = cl.QueryRaw("&(info=Sensor)(response=cached)")
		check(err)
		v, _ := res.Entries[0].Get("Sensor:value")
		q, _ := res.Entries[0].Get("quality:score")
		age, _ := res.Entries[0].Get("quality:age")
		fmt.Printf("  read %d: value=%s quality=%s%% age=%s\n", i, v, q, age)
		time.Sleep(300 * time.Millisecond)
	}

	// 3. A quality threshold forces regeneration of stale data.
	fmt.Println("\n== (quality=90): threshold-driven refresh ==")
	res, err = cl.QueryRaw("&(info=Sensor)(quality=90)")
	check(err)
	v, _ := res.Entries[0].Get("Sensor:value")
	q, _ := res.Entries[0].Get("quality:score")
	fmt.Printf("  value=%s quality=%s%% (regenerated)\n", v, q)

	// 4. The performance tag reports retrieval cost statistics.
	fmt.Println("\n== (performance=true): retrieval cost ==")
	res, err = cl.QueryRaw("&(info=Sensor)(performance=true)(response=immediate)")
	check(err)
	mean, _ := res.Entries[0].Get("performance:mean")
	stddev, _ := res.Entries[0].Get("performance:stddev")
	n, _ := res.Entries[0].Get("performance:samples")
	fmt.Printf("  mean=%ss stddev=%ss over %s executions\n", mean, stddev, n)

	// 5. Format negotiation: the same data as XML.
	fmt.Println("\n== (format=xml) ==")
	res, err = cl.QueryRaw("&(info=Sensor)(format=xml)(response=last)")
	check(err)
	fmt.Println(res.Raw)

	// 6. MDS backward compatibility: the same registry behind the LDAP-
	//    style protocol.
	fmt.Println("\n== MDS bridge: same providers via the directory protocol ==")
	gris := svc.GRIS()
	grisAddr, err := gris.Listen("127.0.0.1:0")
	check(err)
	defer gris.Close()
	mcl, err := mds.Dial(grisAddr, user, trust)
	check(err)
	defer mcl.Close()
	entries, err := mcl.Search(mds.SearchRequest{Filter: "(kw=Sensor)"})
	check(err)
	for _, e := range entries {
		fmt.Printf("  dn: %s\n", e.DN)
		if v, ok := e.Get("Sensor:value"); ok {
			fmt.Printf("  Sensor:value: %s\n", v)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
