// Jobfarm: bulk job execution exercising GRAM's reliability machinery —
// event-notification callbacks, the fault-tolerant (restart=N) extension
// of paper §6.1, the (timeout)(action) extension of §6.5, and the
// accounting report derived from the logging service.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/logging"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
)

func main() {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Farm CA", 24*time.Hour, now)
	check(err)
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=farm-service", 12*time.Hour, now)
	check(err)
	user, err := ca.IssueIdentity("/O=Grid/CN=farmer", 12*time.Hour, now)
	check(err)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=farmer", "farmer")

	// A flaky workload: roughly every third execution fails, so restart
	// budgets matter.
	var calls atomic.Int64
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("flaky-sim", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		if calls.Add(1)%3 == 0 {
			return "", errors.New("transient failure (simulated)")
		}
		return "simulated ok", nil
	})

	logBuf := &bytes.Buffer{}
	svc := core.NewService(core.Config{
		ResourceName: "farm.example",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gm,
		Registry:     provider.NewRegistry(nil),
		Backends:     gram.Backends{Func: fn, Exec: &scheduler.Fork{}},
		Log:          logging.NewLogger(logBuf),
	})
	addr, err := svc.Listen("127.0.0.1:0")
	check(err)
	defer svc.Close()

	cl, err := core.Dial(addr, user, trust)
	check(err)
	defer cl.Close()

	// Callback listener: the service pushes every state change.
	listener, err := gram.NewCallbackListener()
	check(err)
	defer listener.Close()
	var events atomic.Int64
	go func() {
		for range listener.Events() {
			events.Add(1)
		}
	}()

	const jobs = 24
	fmt.Printf("submitting %d flaky jobs with (restart=3) and callbacks...\n", jobs)
	contacts := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		contact, err := cl.Submit(
			"&(executable=flaky-sim)(jobtype=func)(restart=3)(callback=" + listener.Contact() + ")")
		check(err)
		contacts = append(contacts, contact)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done, failed, restarted := 0, 0, 0
	for _, contact := range contacts {
		st, err := cl.WaitTerminal(ctx, contact, 10*time.Millisecond)
		check(err)
		switch {
		case st.State.String() == "DONE":
			done++
		default:
			failed++
		}
		if st.Restarts > 0 {
			restarted++
		}
	}
	fmt.Printf("done: %d  failed: %d  needed restarts: %d  callback events: %d\n\n",
		done, failed, restarted, events.Load())

	// A timeout-bound job with the cancel action.
	fmt.Println("running (executable=/bin/sleep)(arguments=30)(timeout=200)(action=cancel)...")
	contact, err := cl.Submit("&(executable=/bin/sleep)(arguments=30)(timeout=200)(action=cancel)")
	check(err)
	st, err := cl.WaitTerminal(ctx, contact, 10*time.Millisecond)
	check(err)
	fmt.Printf("state: %s (%s)\n\n", st.State, st.Error)

	// Accounting from the log (paper §6: "simple Grid accounting").
	records, err := logging.Replay(bytes.NewReader(logBuf.Bytes()))
	check(err)
	fmt.Println("accounting report:")
	check(logging.WriteReport(os.Stdout, logging.Accounting(records)))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
