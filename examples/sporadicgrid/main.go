// Sporadic grid (paper §8): create a short-lived grid of InfoGram
// resources for a "computationally mediated science" experiment, farm a
// 2D diffraction-pattern scan across it with load-aware brokering, and
// reconstruct the specimen's domain map.
//
// The scan sweeps a focused probe across a WIDTHxHEIGHT field; every point
// yields a diffraction pattern whose analysis classifies the point into
// magnetic domain A or B. The broker places each analysis job on the
// least-loaded resource, reading CPULoad through InfoGram's cache with a
// quality threshold.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"infogram/internal/cache"
	"infogram/internal/diffract"
	"infogram/internal/job"
	"infogram/internal/vo"
	"infogram/internal/xrsl"
)

const (
	width, height = 12, 12
	seed          = 2002
	resources     = 4
)

func main() {
	start := time.Now()
	fmt.Printf("bringing up a sporadic grid with %d resources...\n", resources)
	grid, err := vo.NewSporadicGrid(vo.SporadicConfig{
		OrgName:   "aps.anl.gov",
		Resources: resources,
		LoadTTL:   50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	for _, m := range grid.Members {
		fmt.Printf("  %s at %s\n", m.Name, m.Addr)
	}

	broker := vo.NewBroker(grid.Addrs(), grid.AnyCredential(), grid.Trust)
	defer broker.Close()

	// Build the scan: one analysis job per specimen point.
	jobs := make([]xrsl.JobRequest, 0, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			jobs = append(jobs, xrsl.JobRequest{
				Executable: vo.AnalysisJobName,
				Arguments:  diffract.EncodeArgs(x, y, width, height, seed),
				JobType:    "func",
			})
		}
	}
	fmt.Printf("\nscanning %dx%d field (%d analysis jobs, quality threshold 50%%)...\n",
		width, height, len(jobs))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	results := broker.RunBatch(ctx, jobs, 8, cache.Cached, 50)

	domainMap := diffract.NewDomainMap(width, height)
	placements := map[string]int{}
	failures := 0
	for _, r := range results {
		if r.Err != nil || r.Placement.Status.State != job.Done {
			failures++
			continue
		}
		a, err := diffract.ParseResult(strings.TrimSpace(r.Placement.Status.Stdout))
		if err != nil {
			failures++
			continue
		}
		domainMap.Set(a.X, a.Y, a.Phase)
		placements[r.Placement.Addr]++
	}

	fmt.Println("\nreconstructed domain map ('.'=A  '#'=B):")
	for y := 0; y < height; y++ {
		var sb strings.Builder
		for x := 0; x < width; x++ {
			if domainMap.At(x, y) == diffract.PhaseB {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Println("  " + sb.String())
	}

	fmt.Println("\nplacements per resource:")
	for _, m := range grid.Members {
		fmt.Printf("  %-24s %3d jobs\n", m.Name, placements[m.Addr])
	}
	fmt.Printf("\naccuracy vs ground truth: %.1f%%\n", 100*domainMap.Accuracy(seed))
	fmt.Printf("failures: %d/%d, elapsed: %s\n", failures, len(jobs), time.Since(start).Round(time.Millisecond))
}
