#!/bin/sh
# Benchmark harness: runs every Go benchmark with -benchmem and records the
# results as machine-readable JSON. Run from the repository root:
#
#	./scripts/bench.sh
#
# Each run writes BENCH_<n>.json (lowest unused n) in the repository root:
# one JSON object per line with pkg, name, iterations, ns_per_op, and —
# when -benchmem reports them — bytes_per_op and allocs_per_op. Narrow the
# run with BENCH_PATTERN (a -bench regexp) or BENCH_PKGS (package list):
#
#	BENCH_PATTERN=BenchmarkCollect BENCH_PKGS=./internal/provider/ ./scripts/bench.sh
#
# The connection-amortization suite (GSI handshake cost, pooled vs
# dial-per-request throughput) lives in the root package:
#
#	BENCH_PATTERN='BenchmarkDialHandshake|BenchmarkPooledVsDialPerRequest' BENCH_PKGS=. ./scripts/bench.sh
#
# The tracing-overhead suite compares the disarmed hot path (tracing
# compiled in, nothing armed) against fully armed end-to-end tracing; the
# disarmed numbers must stay within 5% of the pre-tracing baseline:
#
#	BENCH_PATTERN='BenchmarkTracedQuery|BenchmarkUntracedQuery' BENCH_PKGS=. ./scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

n=0
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ${BENCH_PATTERN:-.} =="
go test -run='^$' -bench "${BENCH_PATTERN:-.}" -benchmem ${BENCH_PKGS:-./...} | tee "$raw"

awk '
/^pkg: /            { pkg = $2 }
/^Benchmark/ && NF >= 4 {
	line = sprintf("{\"pkg\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", pkg, $1, $2, $3)
	for (i = 4; i < NF; i++) {
		if ($(i + 1) == "B/op")        line = line sprintf(",\"bytes_per_op\":%s", $i)
		else if ($(i + 1) == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $i)
		else if ($i ~ /^[0-9.eE+-]+$/ && $(i + 1) ~ /^[A-Za-z_][A-Za-z0-9_]*$/)
			# custom b.ReportMetric columns, e.g. hit_ratio, resident_bytes
			line = line sprintf(",\"%s\":%s", $(i + 1), $i)
	}
	print line "}"
}
' "$raw" >"$out"

echo "ok: $(wc -l <"$out" | tr -d ' ') benchmark(s) recorded in $out"
