#!/bin/sh
# Nightly response-cache regression gate: replays the 1M-key Zipf(1.1)
# hit-path reference point (TestCacheHitPathReference) and fails when the
# per-lookup p99 regresses more than 20% against the checked-in baseline or
# the hit path allocates at all. Run from the repository root:
#
#	./scripts/cache-regress.sh
#
# The p99 of single lookups at a few hundred nanoseconds each is sensitive
# to host speed, so the baseline is only meaningful on comparable machines
# — regenerate it when the CI runner class changes. It is also noisy
# run-to-run (the p99 of 65536 samples is its ~655 worst, and one
# scheduling hiccup moves it), so both sides hedge the same way
# loadgen-regress.sh does: CACHE_REBASELINE=1 records the WORST p99 of
# three runs as the baseline, and the gate passes if ANY of up to three
# attempts lands within the 20% limit — a genuine regression is persistent
# across attempts, scheduler jitter is not.
#
# Allocations are not hedged: the hit path is pinned allocation-free by
# construction (the baseline says 0, and 20% over 0 is still 0), so any
# measured allocation fails every attempt.
#
# Baseline: scripts/cache-baseline.json ({"keys":...,"zipf":...,
# "p99_ns":...,"allocs_per_op":...}). Regenerate with CACHE_REBASELINE=1
# after a deliberate performance change.
set -eu

cd "$(dirname "$0")/.."

baseline="scripts/cache-baseline.json"

want_p99=$(sed -n 's/.*"p99_ns":\([0-9]*\).*/\1/p' "$baseline")
want_allocs=$(sed -n 's/.*"allocs_per_op":\([0-9.]*\).*/\1/p' "$baseline")
[ -n "$want_p99" ] && [ -n "$want_allocs" ] || {
	echo "cache-regress: cannot parse $baseline" >&2
	exit 1
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# run_point — one reference-point run; sets $got_p99 and $got_allocs.
run_point() {
	INFOGRAM_CACHEBENCH=1 INFOGRAM_CACHEBENCH_OUT="$tmp/point.json" \
		go test -count=1 -run '^TestCacheHitPathReference$' ./internal/core/
	got_p99=$(sed -n 's/.*"p99_ns":\([0-9]*\).*/\1/p' "$tmp/point.json")
	got_allocs=$(sed -n 's/.*"allocs_per_op":\([0-9.]*\).*/\1/p' "$tmp/point.json")
	[ -n "$got_p99" ] && [ -n "$got_allocs" ] || {
		echo "cache-regress: no result in $tmp/point.json" >&2
		exit 1
	}
}

echo "== cache hit-path reference point: 1M keys, Zipf(1.1) =="

if [ "${CACHE_REBASELINE:-}" = "1" ]; then
	worst_p99=0
	worst_allocs=0
	for attempt in 1 2 3; do
		run_point
		echo "attempt $attempt: p99=${got_p99}ns allocs/op=${got_allocs}"
		[ "$got_p99" -gt "$worst_p99" ] && worst_p99=$got_p99
		worst_allocs=$(awk -v a="$worst_allocs" -v b="$got_allocs" \
			'BEGIN { print (b > a) ? b : a }')
	done
	keys=$(sed -n 's/.*"keys":\([0-9]*\).*/\1/p' "$tmp/point.json")
	zipf=$(sed -n 's/.*"zipf":\([0-9.]*\).*/\1/p' "$tmp/point.json")
	printf '{"keys":%s,"zipf":%s,"p99_ns":%s,"allocs_per_op":%s}\n' \
		"$keys" "$zipf" "$worst_p99" "$worst_allocs" >"$baseline"
	echo "ok: baseline rewritten: p99=${worst_p99}ns allocs/op=${worst_allocs} (worst of 3)"
	exit 0
fi

# The gate: p99 may not exceed baseline by more than 20% and allocs/op may
# not exceed the baseline by more than 20% (0 stays 0) on the best of up to
# three attempts.
p99_limit=$((want_p99 + want_p99 / 5))
allocs_limit=$(awk -v a="$want_allocs" 'BEGIN { print a * 1.2 }')
for attempt in 1 2 3; do
	run_point
	echo "attempt $attempt: p99=${got_p99}ns (limit ${p99_limit}ns)" \
		"allocs/op=${got_allocs} (limit ${allocs_limit})"
	ok=$(awk -v p="$got_p99" -v pl="$p99_limit" -v a="$got_allocs" -v al="$allocs_limit" \
		'BEGIN { print (p <= pl && a <= al) ? 1 : 0 }')
	if [ "$ok" = "1" ]; then
		echo "ok: hit-path p99 and allocs within 20% of baseline"
		exit 0
	fi
done
echo "FAIL: cache hit path regressed >20% on all attempts (last p99=${got_p99}ns > ${p99_limit}ns or allocs=${got_allocs} > ${allocs_limit})" >&2
exit 1
