#!/bin/sh
# Nightly open-loop regression gate: replays the reference point of the
# admission-controlled load curve and fails when p99 regresses more than
# 20% against the checked-in baseline. Run from the repository root:
#
#	./scripts/loadgen-regress.sh
#
# The server is throttled exactly like scripts/loadcurve.sh — an injected
# provider.collect delay pins per-query service time and -conn-parallelism 1
# serializes connections — so the measured p99 is dominated by deterministic
# queueing against the injected delay, not by host CPU speed, and a single
# baseline number is meaningful across machines. The reference point sits at
# ~62% utilization (rate 200 against 8conn/25ms = 320 req/s capacity) with
# the 200 req/s quota active: high enough that an admission-path slowdown
# (extra lock hold, bucket contention, REJECT work leaking into the admitted
# path) shows up in the tail, low enough that healthy runs stay far from it.
#
# Tail quantiles are still noisy run-to-run (the p99 of a 10s point is its
# ~20 worst samples, and one OS scheduling hiccup moves it), so both sides
# hedge: LOADGEN_REBASELINE=1 records the WORST p99 of three runs as the
# baseline, and the gate passes if ANY of up to three attempts lands within
# the 20% limit — a genuine regression is persistent across attempts,
# scheduler jitter is not.
#
# Baseline: scripts/loadgen-baseline.json ({"rate":...,"duration_s":...,
# "p99_us":...}). Regenerate it with LOADGEN_REBASELINE=1 after a deliberate
# performance change.
set -eu

cd "$(dirname "$0")/.."

baseline="scripts/loadgen-baseline.json"
delay=25ms
pool=8
quota_rate=200

rate=$(sed -n 's/.*"rate":\([0-9.]*\).*/\1/p' "$baseline")
duration=$(sed -n 's/.*"duration_s":\([0-9.]*\).*/\1/p' "$baseline")
want=$(sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$baseline")
[ -n "$rate" ] && [ -n "$duration" ] && [ -n "$want" ] || {
	echo "loadgen-regress: cannot parse $baseline" >&2
	exit 1
}

tmp=$(mktemp -d)
srvpid=""
cleanup() {
	[ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null && wait "$srvpid" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/infogram-server" ./cmd/infogram-server
go build -o "$tmp/infogram-loadgen" ./cmd/infogram-loadgen

cat >"$tmp/quota.conf" <<EOF
allow * rate=${quota_rate} burst=50
EOF

"$tmp/infogram-server" -fabric "$tmp/fabric" -addr 127.0.0.1:0 \
	-conn-parallelism 1 -faultpoints "provider.collect=delay(${delay})" \
	-quota "$tmp/quota.conf" -max-inflight 64 -shed-queue 128 \
	>"$tmp/server.log" 2>&1 &
srvpid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/server.log" | head -1)
	[ -n "$addr" ] && break
	kill -0 "$srvpid" 2>/dev/null || { cat "$tmp/server.log" >&2; exit 1; }
	i=$((i + 1))
	sleep 0.1
done
[ -n "$addr" ] || { echo "loadgen-regress: server did not come up" >&2; exit 1; }

# run_point — one reference-point run; sets $got (p99_us) and $errors.
run_point() {
	"$tmp/infogram-loadgen" -fabric "$tmp/fabric" -server "$addr" \
		-rate "$rate" -duration "${duration}s" -mix info=1 \
		-pool "$pool" -timeout 2s -json "$tmp/report.json"
	got=$(sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$tmp/report.json")
	errors=$(sed -n 's/.*"errors":\([0-9]*\).*/\1/p' "$tmp/report.json")
	[ -n "$got" ] || { echo "loadgen-regress: no p99 in report" >&2; exit 1; }
}

echo "== reference point: rate=$rate for ${duration}s against $addr =="

if [ "${LOADGEN_REBASELINE:-}" = "1" ]; then
	worst=0
	for attempt in 1 2 3; do
		run_point
		[ "$got" -gt "$worst" ] && worst=$got
	done
	printf '{"rate":%s,"duration_s":%s,"p99_us":%s}\n' "$rate" "$duration" "$worst" >"$baseline"
	echo "ok: baseline rewritten: p99=${worst}us (worst of 3) at rate=${rate}"
	exit 0
fi

# The gate: p99 may not exceed baseline by more than 20% on the best of
# up to three attempts, and the point must complete cleanly — errors mean
# the run is not measuring what the baseline measured.
limit=$((want + want / 5))
for attempt in 1 2 3; do
	run_point
	echo "attempt $attempt: p99=${got}us baseline=${want}us limit=${limit}us errors=${errors:-0}"
	if [ "${errors:-0}" -eq 0 ] && [ "$got" -le "$limit" ]; then
		echo "ok: p99 within 20% of baseline"
		exit 0
	fi
done
echo "FAIL: p99 regressed >20% on all attempts (last ${got}us > ${limit}us, errors=${errors:-0})" >&2
exit 1
