#!/bin/sh
# Open-loop users-vs-throughput curve: boots a capacity-throttled
# infogram-server, sweeps infogram-loadgen across arrival rates twice —
# admission control off, then on — and records one JSON line per
# (mode, rate) point in BENCH_<n>.json (lowest unused n, same scheme as
# scripts/bench.sh). Run from the repository root:
#
#	./scripts/loadcurve.sh
#
# The server's capacity is made deterministic, not hardware-bound: a
# provider.collect=delay faultpoint pins per-query service time and
# -conn-parallelism 1 serializes each connection, so capacity is
# pool-size / delay (default 8 / 25ms = 320 req/s) and the collapse
# point lands at the same rate on a laptop and in CI. The "admission"
# pass adds a per-identity token-bucket quota (§5.3 rate= contracts)
# plus the global inflight gate; shed requests get the pre-auth REJECT
# and are excluded from the latency quantiles, so the curve shows what
# admitted users experience while the harness separately counts the shed.
#
# Knobs (environment):
#	LOADCURVE_RATES      arrival rates to sweep   (default "50 100 200 400 800")
#	LOADCURVE_DURATION   per-point offered time   (default 5s)
#	LOADCURVE_DELAY      injected service time    (default 25ms)
#	LOADCURVE_POOL       loadgen connections      (default 8)
#	LOADCURVE_QUOTA      admission quota, req/s   (default 250)
#	LOADCURVE_BURST      admission quota burst    (default 50)
set -eu

cd "$(dirname "$0")/.."

rates=${LOADCURVE_RATES:-"50 100 200 400 800"}
duration=${LOADCURVE_DURATION:-5s}
delay=${LOADCURVE_DELAY:-25ms}
pool=${LOADCURVE_POOL:-8}
quota_rate=${LOADCURVE_QUOTA:-250}
quota_burst=${LOADCURVE_BURST:-50}

n=0
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"

tmp=$(mktemp -d)
srvpid=""
cleanup() {
	[ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null && wait "$srvpid" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/infogram-server" ./cmd/infogram-server
go build -o "$tmp/infogram-loadgen" ./cmd/infogram-loadgen

cat >"$tmp/quota.conf" <<EOF
# loadcurve admission policy: every identity metered at the same rate.
allow * rate=${quota_rate} burst=${quota_burst}
EOF

# start_server — boots the throttled server (plus the admission flags
# when $mode=admission) and sets $addr to its bound address.
start_server() {
	: >"$tmp/server.log"
	set -- -fabric "$tmp/fabric" -addr 127.0.0.1:0 \
		-conn-parallelism 1 -faultpoints "provider.collect=delay(${delay})"
	if [ "$mode" = "admission" ]; then
		set -- "$@" -quota "$tmp/quota.conf" -max-inflight 64 -shed-queue 128
	fi
	"$tmp/infogram-server" "$@" >"$tmp/server.log" 2>&1 &
	srvpid=$!
	addr=""
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/server.log" | head -1)
		[ -n "$addr" ] && return 0
		kill -0 "$srvpid" 2>/dev/null || { cat "$tmp/server.log" >&2; exit 1; }
		i=$((i + 1))
		sleep 0.1
	done
	echo "loadcurve: server did not come up" >&2
	cat "$tmp/server.log" >&2
	exit 1
}

stop_server() {
	kill "$srvpid" 2>/dev/null || true
	wait "$srvpid" 2>/dev/null || true
	srvpid=""
}

: >"$out"
for mode in none admission; do
	start_server
	echo "== mode=$mode server=$addr capacity≈${pool}conn/${delay} =="
	for rate in $rates; do
		"$tmp/infogram-loadgen" -fabric "$tmp/fabric" -server "$addr" \
			-rate "$rate" -duration "$duration" -mix info=1 \
			-pool "$pool" -timeout 2s -json - |
			sed "s/^{/{\"suite\":\"loadcurve\",\"mode\":\"$mode\",/" >>"$out"
	done
	stop_server
done

echo "ok: $(wc -l <"$out" | tr -d ' ') curve point(s) recorded in $out"
