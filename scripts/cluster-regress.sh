#!/bin/sh
# Nightly cluster gate, two phases. Run from the repository root:
#
#	./scripts/cluster-regress.sh
#
# Phase A — horizontal scaling. Four backends run with an injected
# provider.collect delay and -conn-parallelism 1, pinning each node's
# info-query capacity at pool/delay = 8/25ms = 320 req/s regardless of
# host CPU. The open-loop harness offers a fixed 560 req/s — 1.75x one
# node — first to one node, then round-robin across two, then four. One
# node saturates (goodput caps at its capacity, the tail runs away);
# two nodes have headroom (87.5% utilization each), so the gate demands
# 2-node goodput >= 1.6x 1-node while 2-node p99 stays under a fixed
# bar. The N=1,2,4 curve is recorded as BENCH_7.json — the MDS2
# "Performance Analysis of MDS2" scaling collapse, reproduced and then
# beaten by scale-out.
#
# Phase B — failover. A journaled leader accepts a mix of terminal and
# long-running jobs, then dies with SIGKILL. A -follow -promote standby
# that has been mirroring the journal must detect the loss, promote
# itself, and resubmit every non-terminal job — zero journaled-job loss.
set -eu

cd "$(dirname "$0")/.."

delay=25ms
pool=8
rate=560
duration=10
p99_bar_us=500000

tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/infogram-server" ./cmd/infogram-server
go build -o "$tmp/infogram-loadgen" ./cmd/infogram-loadgen
go build -o "$tmp/infogram" ./cmd/infogram

# wait_addr LOGFILE PID — parse the bound address out of a server log.
wait_addr() {
	_addr=""
	_i=0
	while [ $_i -lt 100 ]; do
		_addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$1" | head -1)
		[ -n "$_addr" ] && break
		kill -0 "$2" 2>/dev/null || { cat "$1" >&2; exit 1; }
		_i=$((_i + 1))
		sleep 0.1
	done
	[ -n "$_addr" ] || { echo "cluster-regress: server in $1 did not come up" >&2; exit 1; }
	echo "$_addr"
}

echo "== phase A: scaling curve (delay=$delay, rate=$rate, ${duration}s per point) =="
addrs=""
n=0
for n in 1 2 3 4; do
	"$tmp/infogram-server" -fabric "$tmp/fabric" -addr 127.0.0.1:0 \
		-conn-parallelism 1 -faultpoints "provider.collect=delay(${delay})" \
		>"$tmp/backend$n.log" 2>&1 &
	pids="$pids $!"
	a=$(wait_addr "$tmp/backend$n.log" "$!")
	addrs="$addrs $a"
done
set -- $addrs
addr1=$1
addr2="$1,$2"
addr4="$1,$2,$3,$4"

: >BENCH_7.json
# run_curve_point NODES TARGETS — one open-loop point; sets $goodput $p99.
run_curve_point() {
	"$tmp/infogram-loadgen" -fabric "$tmp/fabric" -targets "$2" \
		-rate "$rate" -duration "${duration}s" -mix info=1 \
		-pool "$pool" -timeout 2s -json "$tmp/report.json"
	goodput=$(sed -n 's/.*"goodput_rps":\([0-9]*\).*/\1/p' "$tmp/report.json")
	p99=$(sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$tmp/report.json")
	[ -n "$goodput" ] && [ -n "$p99" ] || {
		echo "cluster-regress: bad loadgen report" >&2
		exit 1
	}
	sed "s/^{/{\"nodes\":$1,/" "$tmp/report.json" >>BENCH_7.json
	echo "N=$1: goodput=${goodput}/s p99=${p99}us"
}

attempt=1
while :; do
	run_curve_point 1 "$addr1"
	goodput1=$goodput
	run_curve_point 2 "$addr2"
	goodput2=$goodput
	p99_2=$p99
	# The gate: 2-node goodput >= 1.6x 1-node, with the 2-node tail under
	# the fixed bar (integer math: x10 both sides).
	if [ $((goodput2 * 10)) -ge $((goodput1 * 16)) ] && [ "$p99_2" -le "$p99_bar_us" ]; then
		echo "ok: 2-node goodput ${goodput2}/s >= 1.6x 1-node ${goodput1}/s at p99 ${p99_2}us <= ${p99_bar_us}us"
		break
	fi
	if [ $attempt -ge 3 ]; then
		echo "FAIL: 2-node scaling gate (goodput ${goodput2}/s vs 1.6x ${goodput1}/s, p99 ${p99_2}us vs bar ${p99_bar_us}us)" >&2
		exit 1
	fi
	attempt=$((attempt + 1))
	echo "retrying scaling gate (attempt $attempt)"
done
run_curve_point 4 "$addr4"

echo "== phase B: kill-leader failover =="
mkdir -p "$tmp/leader-state" "$tmp/standby-state"
"$tmp/infogram-server" -fabric "$tmp/fabric" -addr 127.0.0.1:0 \
	-state-dir "$tmp/leader-state" >"$tmp/leader.log" 2>&1 &
leaderpid=$!
pids="$pids $leaderpid"
leader=$(wait_addr "$tmp/leader.log" "$leaderpid")

"$tmp/infogram-server" -fabric "$tmp/fabric" -addr 127.0.0.1:0 \
	-follow "$leader" -promote -state-dir "$tmp/standby-state" \
	>"$tmp/standby.log" 2>&1 &
standbypid=$!
pids="$pids $standbypid"
i=0
while [ $i -lt 100 ]; do
	grep -q "follower synced" "$tmp/standby.log" && break
	kill -0 "$standbypid" 2>/dev/null || { cat "$tmp/standby.log" >&2; exit 1; }
	i=$((i + 1))
	sleep 0.1
done
grep -q "follower synced" "$tmp/standby.log" || {
	echo "cluster-regress: standby never synced" >&2
	exit 1
}

# Two jobs finish, two are mid-flight when the leader dies.
c1=$("$tmp/infogram" -fabric "$tmp/fabric" -server "$leader" submit '&(executable=/bin/echo)(arguments=done)')
c2=$("$tmp/infogram" -fabric "$tmp/fabric" -server "$leader" submit '&(executable=/bin/echo)(arguments=done)')
s1=$("$tmp/infogram" -fabric "$tmp/fabric" -server "$leader" submit '&(executable=/bin/sleep)(arguments=60)')
s2=$("$tmp/infogram" -fabric "$tmp/fabric" -server "$leader" submit '&(executable=/bin/sleep)(arguments=60)')

# job_state SERVER CONTACT — prints the job's current state.
job_state() {
	"$tmp/infogram" -fabric "$tmp/fabric" -server "$1" status "$2" |
		sed -n 's/^state: //p'
}
for c in $s1 $s2; do
	i=0
	while [ $i -lt 100 ]; do
		st=$(job_state "$leader" "$c")
		[ "$st" = "ACTIVE" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	[ "$st" = "ACTIVE" ] || { echo "cluster-regress: job $c never ACTIVE ($st)" >&2; exit 1; }
done
for c in $c1 $c2; do
	i=0
	while [ $i -lt 100 ]; do
		st=$(job_state "$leader" "$c")
		[ "$st" = "DONE" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	[ "$st" = "DONE" ] || { echo "cluster-regress: job $c never DONE ($st)" >&2; exit 1; }
done
# Give the live record tail a moment to reach the standby's mirror.
sleep 2

kill -9 "$leaderpid" 2>/dev/null || true
wait "$leaderpid" 2>/dev/null || true
echo "leader killed; waiting for promotion"

i=0
while [ $i -lt 300 ]; do
	grep -q "journal replayed" "$tmp/standby.log" && break
	kill -0 "$standbypid" 2>/dev/null || { cat "$tmp/standby.log" >&2; exit 1; }
	i=$((i + 1))
	sleep 0.1
done
grep -q "journal replayed" "$tmp/standby.log" || {
	echo "cluster-regress: standby never promoted" >&2
	cat "$tmp/standby.log" >&2
	exit 1
}
promoted=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$tmp/standby.log" | head -1)
resumed=$(sed -n 's/.*journal replayed [0-9]* job(s).*(\([0-9]*\) resumed).*/\1/p' "$tmp/standby.log" | head -1)
echo "promoted gatekeeper on $promoted (resumed=$resumed)"
[ "$resumed" = "2" ] || {
	echo "FAIL: promotion resumed $resumed jobs; want the 2 non-terminal jobs" >&2
	cat "$tmp/standby.log" >&2
	exit 1
}

# Every journaled job must be answerable on the promoted node: the
# terminal pair with their recorded state, the in-flight pair resubmitted.
for c in $c1 $c2; do
	st=$(job_state "$promoted" "$c")
	[ "$st" = "DONE" ] || { echo "FAIL: terminal job $c lost in promotion ($st)" >&2; exit 1; }
done
for c in $s1 $s2; do
	st=$(job_state "$promoted" "$c")
	case $st in
	PENDING | ACTIVE) ;;
	*)
		echo "FAIL: in-flight job $c not resubmitted after promotion ($st)" >&2
		exit 1
		;;
	esac
done
echo "ok: failover resubmitted all non-terminal jobs, terminal history preserved"
