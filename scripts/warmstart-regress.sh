#!/bin/sh
# Nightly warm-restart and refresh-ahead regression gate: replays the
# reference point (TestWarmRestartReference) and fails when any of the
# headline guarantees regress. Run from the repository root:
#
#	./scripts/warmstart-regress.sh
#
# Unlike the cache and loadgen gates, the thresholds here are ratios, not
# absolute nanoseconds, so no per-host baseline file is needed:
#
#   - restart_speedup >= 10: a warm restart's first answer (snapshot
#     restore + first hit) must be at least 10x faster than a cold one
#     (which pays the deliberate ~5ms provider delay).
#   - hot_miss_ratio < 0.01: under Zipf steady state with refresh-ahead
#     armed, the top-decile keys miss less than 1% of the time.
#   - p99_ns <= 2 * hit_p99_ns: the overall request p99 stays within 2x of
#     the pure hit path — refresh-ahead, not requests, pays provider cost.
#
# The measured run is still timing-sensitive (a loaded host can starve the
# refresh workers), so the gate passes if ANY of up to three attempts
# clears every threshold — a genuine regression is persistent across
# attempts, scheduler jitter is not.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# run_point — one reference-point run; sets $speedup, $hot_miss, $p99, $hit_p99.
run_point() {
	INFOGRAM_WARMBENCH=1 INFOGRAM_WARMBENCH_OUT="$tmp/point.json" \
		go test -count=1 -run '^TestWarmRestartReference$' ./internal/core/
	speedup=$(sed -n 's/.*"restart_speedup":\([0-9.]*\).*/\1/p' "$tmp/point.json")
	hot_miss=$(sed -n 's/.*"hot_miss_ratio":\([0-9.e+-]*\).*/\1/p' "$tmp/point.json")
	p99=$(sed -n 's/.*"p99_ns":\([0-9.]*\).*/\1/p' "$tmp/point.json")
	hit_p99=$(sed -n 's/.*"hit_p99_ns":\([0-9.]*\).*/\1/p' "$tmp/point.json")
	[ -n "$speedup" ] && [ -n "$hot_miss" ] && [ -n "$p99" ] && [ -n "$hit_p99" ] || {
		echo "warmstart-regress: no result in $tmp/point.json" >&2
		exit 1
	}
}

echo "== warm-restart + refresh-ahead reference point =="

for attempt in 1 2 3; do
	run_point
	echo "attempt $attempt: restart_speedup=${speedup}x (>=10)" \
		"hot_miss_ratio=${hot_miss} (<0.01) p99=${p99}ns (<= 2x ${hit_p99}ns)"
	ok=$(awk -v s="$speedup" -v m="$hot_miss" -v p="$p99" -v h="$hit_p99" \
		'BEGIN { print (s >= 10 && m < 0.01 && p <= 2 * h) ? 1 : 0 }')
	if [ "$ok" = "1" ]; then
		echo "ok: warm restart >=10x cold, hot-decile misses <1%, p99 within 2x of hit path"
		exit 0
	fi
done
echo "FAIL: warm-restart/refresh-ahead guarantees regressed on all attempts" \
	"(last: speedup=${speedup} hot_miss=${hot_miss} p99=${p99}ns hit_p99=${hit_p99}ns)" >&2
exit 1
