#!/bin/sh
# Repository health gate: formatting, static analysis, and the full test
# suite under the race detector. Run from the repository root:
#
#	./scripts/check.sh
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

# The trace chaos scenarios re-run explicitly (and under -race): they
# assert that injected wire and provider faults still leave finished,
# correctly-parented span trees in the trace store.
echo "== trace chaos (-race) =="
go test -race -count=1 -run '^TestTraceChaos$|^TestTraceConcurrentPoolCalls$' ./internal/integration/

# CHECK_FUZZTIME extends the per-target fuzz budget (e.g. the nightly CI
# run passes 60s); the default keeps interactive runs quick.
fuzztime=${CHECK_FUZZTIME:-10s}
echo "== fuzz smoke ($fuzztime per target) =="
for target in \
	FuzzParse:./internal/rsl \
	FuzzEvalValue:./internal/rsl \
	FuzzFrameRoundTrip:./internal/wire \
	FuzzFrameDecode:./internal/wire \
	FuzzRejectFrameDecode:./internal/wire \
	FuzzParseXRSL:./internal/xrsl \
	FuzzParseFilter:./internal/mds \
	FuzzReplay:./internal/logging \
	FuzzSnapshotRestore:./internal/bytecache; do
	name=${target%%:*}
	pkg=${target#*:}
	echo "-- $name ($pkg)"
	go test -run='^$' -fuzz="^${name}\$" -fuzztime="$fuzztime" "$pkg"
done

# The admission soak: a sustained open-loop run through the full stack
# (GSI handshake, mux, quota buckets, inflight gate, providers) under the
# race detector, asserting continuous shedding, that shed requests never
# reach a provider, and that no goroutines leak. CHECK_SOAK_TIME sets the
# offered duration (default 60s); CHECK_SOAK_TIME=0 skips it.
soaktime=${CHECK_SOAK_TIME:-60s}
if [ "$soaktime" != "0" ]; then
	echo "== admission soak ($soaktime, -race) =="
	INFOGRAM_SOAK=1 INFOGRAM_SOAK_TIME="$soaktime" \
		go test -race -count=1 -run '^TestSoakOpenLoopUnderAdmission$' ./internal/loadgen/
fi

# Benchmarks are opt-in — they add minutes and their numbers only mean
# something on a quiet machine. CHECK_BENCH=1 ./scripts/check.sh runs them
# and records BENCH_<n>.json via scripts/bench.sh.
if [ "${CHECK_BENCH:-}" = "1" ]; then
	echo "== benchmarks =="
	./scripts/bench.sh
fi

echo "ok: all checks passed"
