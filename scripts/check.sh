#!/bin/sh
# Repository health gate: formatting, static analysis, and the full test
# suite under the race detector. Run from the repository root:
#
#	./scripts/check.sh
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
for target in \
	FuzzParse:./internal/rsl \
	FuzzEvalValue:./internal/rsl \
	FuzzFrameRoundTrip:./internal/wire \
	FuzzFrameDecode:./internal/wire \
	FuzzParseXRSL:./internal/xrsl; do
	name=${target%%:*}
	pkg=${target#*:}
	echo "-- $name ($pkg)"
	go test -run='^$' -fuzz="^${name}\$" -fuzztime=10s "$pkg"
done

echo "ok: all checks passed"
