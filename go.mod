module infogram

go 1.24
