// Command infogram-loadgen offers open-loop load to an InfoGram service:
// requests arrive at a fixed rate whether or not earlier ones have been
// answered, which is how real aggregate demand behaves and what reveals a
// server's collapse point (a closed-loop client slows down with the server
// and hides it). It reports goodput, shed counts, and latency quantiles
// measured from each request's scheduled arrival time.
//
// Typical curve, against a server capped for the experiment:
//
//	infogram-server -fabric ./fabric -addr 127.0.0.1:2119 \
//	    -max-inflight 64 -quota quota.conf
//	for r in 100 200 400 800 1600; do
//	    infogram-loadgen -fabric ./fabric -server 127.0.0.1:2119 \
//	        -rate $r -duration 10s
//	done
//
// One JSON report per run goes to stdout; the human summary to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"infogram/internal/bootstrap"
	"infogram/internal/loadgen"
)

func main() {
	var (
		server      = flag.String("server", "127.0.0.1:2119", "InfoGram service address")
		targetsSpec = flag.String("targets", "", "comma-separated service addresses to spread load across round-robin (N gatekeepers or proxies, one pool each); overrides -server")
		fabricDir   = flag.String("fabric", "./fabric", "security fabric directory (must match the server's)")
		rate        = flag.Float64("rate", 100, "offered arrival rate, requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer arrivals")
		warmup      = flag.Duration("warmup", 0, "offer arrivals at the same rate for this long before measuring; warmup outcomes are excluded from every reported number, and the cache hit-ratio baseline is taken after it")
		mixSpec     = flag.String("mix", loadgen.DefaultMix.String(), "per-verb weights, e.g. ping=6,info=3,submit=0,status=1")
		poolSize    = flag.Int("pool", 16, "connection pool size (the client-side queue)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline, pool checkout wait included")
		outstanding = flag.Int("max-outstanding", 4096, "local cap on concurrently outstanding requests; arrivals beyond it count as overrun")
		infoXRSL    = flag.String("info-xrsl", "&(info=Runtime)", "xRSL for info arrivals")
		keys        = flag.Int("keys", 0, "keyed info-query mode: draw each info arrival's key from [0,N) and issue a distinct filter string per key (0 = fixed -info-xrsl)")
		zipf        = flag.Float64("zipf", 1.1, "key-draw skew exponent s (> 1 = Zipfian, <= 1 = uniform); deterministic seed")
		infoKeyword = flag.String("info-keyword", "Runtime", "keyword keyed info queries target")
		jobXRSL     = flag.String("job-xrsl", "", "xRSL for submit arrivals (required when the mix weights submit)")
		noMux       = flag.Bool("no-mux", false, "force serial (pre-mux) connections")
		jsonPath    = flag.String("json", "-", "write the JSON report here ('-' = stdout)")
	)
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		log.Fatalf("mix: %v", err)
	}
	fabric, err := bootstrap.SelfSigned(*fabricDir)
	if err != nil {
		log.Fatalf("fabric: %v", err)
	}
	var targets []string
	for _, t := range strings.Split(*targetsSpec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	gen, err := loadgen.New(loadgen.Config{
		Addr:           *server,
		Targets:        targets,
		Cred:           fabric.User,
		Trust:          fabric.Trust,
		Rate:           *rate,
		Duration:       *duration,
		Warmup:         *warmup,
		Mix:            mix,
		PoolSize:       *poolSize,
		RequestTimeout: *timeout,
		MaxOutstanding: *outstanding,
		InfoXRSL:       *infoXRSL,
		Keys:           *keys,
		Zipf:           *zipf,
		InfoKeyword:    *infoKeyword,
		JobXRSL:        *jobXRSL,
		DisableMux:     *noMux,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	where := *server
	if len(targets) > 0 {
		where = strings.Join(targets, ", ")
	}
	fmt.Fprintf(os.Stderr, "loadgen: offering %.0f req/s to %s for %s (mix %s)\n",
		*rate, where, *duration, mix)
	rep := gen.Run(ctx)
	fmt.Fprintln(os.Stderr, rep.String())

	b, err := json.Marshal(rep)
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	if *jsonPath == "-" || *jsonPath == "" {
		fmt.Println(string(b))
		return
	}
	if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("report: %v", err)
	}
}
