// Command mds-server runs the baseline MDS information services of paper
// §3: a GRIS for this resource and, optionally, a GIIS aggregate for a
// virtual organization. Together with gram-server it forms the
// two-protocol Figure 2 deployment that InfoGram replaces.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"infogram/internal/bootstrap"
	"infogram/internal/config"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:2135", "GRIS listen address (MDS's classic port by default)")
		fabricDir   = flag.String("fabric", "./fabric", "security fabric directory")
		confPath    = flag.String("config", "", "provider configuration file (Table 1 format)")
		resource    = flag.String("resource", "", "resource name (hostname when empty)")
		giisAddr    = flag.String("giis-addr", "", "also run a GIIS aggregate on this address")
		members     = flag.String("giis-members", "", "comma-separated GRIS addresses to pre-register in the GIIS")
		metrics     = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics, plus /debug/traces and /debug/pprof")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of healthy traces to keep (errored and slow traces are always kept; 0 keeps only those)")
		traceSlow   = flag.Duration("trace-slow", 0, "always keep traces at least this slow (0 disables the slow rule)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "enable the sharded response cache: rendered LDIF bodies served zero-copy for up to this long, capped by each covered provider's TTL (0 disables)")
		cacheShards = flag.Int("cache-shards", 0, "response-cache shard count, rounded up to a power of two (0 = 64)")
		cacheMaxB   = flag.Int64("cache-max-bytes", 0, "response-cache total byte budget (0 = 256 MiB)")
		stateDir    = flag.String("state-dir", "", "durable cache-state directory: the GRIS (and GIIS) response caches snapshot here and restore warm on restart (needs -cache-ttl; empty = memory only)")
		cacheSnap   = flag.Duration("cache-snapshot-interval", time.Minute, "background cache snapshot period into -state-dir (0 snapshots only on shutdown)")
		snapGzip    = flag.Bool("snapshot-compress", false, "write cache snapshots gzip-compressed; restore reads either layout, so the flag can change between restarts")
		refreshFrac = flag.Float64("refresh-ahead", 0, "refresh-ahead threshold as a fraction of -cache-ttl: hot cached searches past it are re-run in the background so they never expire under load (e.g. 0.8; 0 disables)")
		refreshWk   = flag.Int("refresh-workers", 0, "bound on concurrent background refresh searches (0 = 2)")
	)
	flag.Parse()

	fabric, err := bootstrap.SelfSigned(*fabricDir)
	if err != nil {
		log.Fatalf("fabric: %v", err)
	}
	name := *resource
	if name == "" {
		name, _ = os.Hostname()
		if name == "" {
			name = "localhost"
		}
	}

	tel := telemetry.NewRegistry()
	traceOpts := telemetry.TracerOptionsFromFlags(*traceSample, *traceSlow)
	traceOpts.Telemetry = tel
	tracer := telemetry.NewTracer(traceOpts)

	registry := provider.NewRegistry(nil)
	registry.SetTelemetry(tel)
	if *confPath != "" {
		cfg, err := config.Load(*confPath)
		if err != nil {
			log.Fatalf("config: %v", err)
		}
		if _, err := cfg.Apply(registry); err != nil {
			log.Fatalf("config: %v", err)
		}
	} else {
		registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: 0})
	}

	gris := mds.NewGRIS(mds.GRISConfig{
		ResourceName:     name,
		Registry:         registry,
		Credential:       fabric.Service,
		Trust:            fabric.Trust,
		Tracer:           tracer,
		CacheTTL:         *cacheTTL,
		CacheShards:      *cacheShards,
		CacheMaxBytes:    *cacheMaxB,
		RefreshAhead:     *refreshFrac,
		RefreshWorkers:   *refreshWk,
		SnapshotCompress: *snapGzip,
		Telemetry:        tel,
	})
	if *stateDir != "" {
		if p := gris.NewPersister(filepath.Join(*stateDir, "gris.snap"), *cacheSnap); p != nil {
			p.SetTelemetry(tel)
			if st, err := p.Restore(); err != nil {
				log.Printf("gris cache: cold start: %v", err)
			} else if st.Restored > 0 {
				fmt.Printf("mds: GRIS cache restored %d entries\n", st.Restored)
			}
			p.Start()
			defer p.Close()
		}
	}
	bound, err := gris.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer gris.Close()
	fmt.Printf("mds: GRIS for %q on %s\n", name, bound)

	if *giisAddr != "" {
		giis := mds.NewGIIS(mds.GIISConfig{
			OrgName:          name,
			Credential:       fabric.Service,
			Trust:            fabric.Trust,
			CacheTTL:         *cacheTTL,
			CacheShards:      *cacheShards,
			CacheMaxBytes:    *cacheMaxB,
			RefreshAhead:     *refreshFrac,
			RefreshWorkers:   *refreshWk,
			SnapshotCompress: *snapGzip,
			Telemetry:        tel,
		})
		giisBound, err := giis.Listen(*giisAddr)
		if err != nil {
			log.Fatalf("giis listen: %v", err)
		}
		defer giis.Close()
		giis.Register(bound)
		for _, m := range strings.Split(*members, ",") {
			if m = strings.TrimSpace(m); m != "" {
				giis.Register(m)
			}
		}
		// Restore strictly after the members are registered: the snapshot is
		// gated on a digest of the member set, so a memberless restore would
		// refuse it.
		if *stateDir != "" {
			if p := giis.NewPersister(filepath.Join(*stateDir, "giis.snap"), *cacheSnap); p != nil {
				p.SetTelemetry(tel)
				if st, err := p.Restore(); err != nil {
					log.Printf("giis cache: cold start: %v", err)
				} else if st.Restored > 0 {
					fmt.Printf("mds: GIIS cache restored %d entries\n", st.Restored)
				}
				p.Start()
				defer p.Close()
			}
		}
		fmt.Printf("mds: GIIS on %s (%d members)\n", giisBound, len(giis.Members()))
	}

	if *metrics != "" {
		mux := telemetry.NewDebugMux(tel, tracer)
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		metricsSrv := &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		defer metricsSrv.Close()
		fmt.Printf("mds: Prometheus metrics on http://%s/metrics (traces at /debug/traces, profiles at /debug/pprof)\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mds: shutting down")
}
