// Command gram-server runs the baseline J-GRAM job-execution service of
// paper §2/§7: jobs only, no information queries. Together with mds-server
// it forms the two-protocol Figure 2 deployment that InfoGram replaces.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"infogram/internal/bootstrap"
	"infogram/internal/gram"
	"infogram/internal/journal"
	"infogram/internal/logging"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:2119", "listen address")
		fabricDir   = flag.String("fabric", "./fabric", "security fabric directory")
		logPath     = flag.String("log", "", "job log file (disabled when empty)")
		stateDir    = flag.String("state-dir", "", "durable job-state directory (write-ahead journal + snapshots); crash recovery replays it on boot (empty = in-memory only)")
		fsync       = flag.String("fsync", "interval", "journal fsync policy: always, interval, or never")
		slots       = flag.Int("queue-slots", 4, "slots in the batch queue backend")
		metrics     = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics, plus /debug/traces and /debug/pprof")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of healthy traces to keep (errored and slow traces are always kept; 0 keeps only those)")
		traceSlow   = flag.Duration("trace-slow", 0, "always keep traces at least this slow (0 disables the slow rule)")
	)
	flag.Parse()

	fabric, err := bootstrap.SelfSigned(*fabricDir)
	if err != nil {
		log.Fatalf("fabric: %v", err)
	}
	var logger *logging.Logger
	if *logPath != "" {
		logger, err = logging.OpenFile(*logPath)
		if err != nil {
			log.Fatalf("log: %v", err)
		}
		defer logger.Close()
	}

	tel := telemetry.NewRegistry()
	traceOpts := telemetry.TracerOptionsFromFlags(*traceSample, *traceSlow)
	traceOpts.Telemetry = tel
	tracer := telemetry.NewTracer(traceOpts)

	var (
		jnl       *journal.Journal
		recovered *journal.Recovered
	)
	if *stateDir != "" {
		policy, err := journal.ParsePolicy(*fsync)
		if err != nil {
			log.Fatalf("fsync: %v", err)
		}
		jnl, recovered, err = journal.Open(journal.Options{
			Dir:       *stateDir,
			Fsync:     policy,
			Telemetry: tel,
		})
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
	}

	svc := gram.NewService(gram.Config{
		Credential: fabric.Service,
		Trust:      fabric.Trust,
		Gridmap:    fabric.Gridmap,
		Backends: gram.Backends{
			Exec:  &scheduler.Fork{},
			Func:  scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{}),
			Queue: scheduler.NewPBS(*slots, nil, &scheduler.Fork{}),
		},
		Log:     logger,
		Journal: jnl,
		Tracer:  tracer,
	})
	bound, err := svc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer svc.Close()
	fmt.Printf("gram: serving GRAMP on %s (jobs only; pair with mds-server for information)\n", bound)

	if recovered != nil && len(recovered.Jobs) > 0 {
		contacts, err := svc.RecoverJournal(recovered)
		if err != nil {
			log.Printf("recover: %v", err)
		}
		fmt.Printf("gram: journal replayed %d job(s) from %s (%d resumed)\n",
			len(recovered.Jobs), *stateDir, len(contacts))
	}

	if *metrics != "" {
		mux := telemetry.NewDebugMux(tel, tracer)
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		metricsSrv := &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		defer metricsSrv.Close()
		fmt.Printf("gram: Prometheus metrics on http://%s/metrics (traces at /debug/traces, profiles at /debug/pprof)\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gram: shutting down")
}
