// Command infogram-server runs one InfoGram service: the unified
// information-query and job-execution Grid service of the paper. It loads
// (or self-generates) a GSI security fabric, registers the information
// providers from a Table-1-style configuration file, and serves the single
// InfoGram protocol on one port. Optionally it also exposes the same
// providers through the MDS protocol for backward compatibility.
//
// Quickstart:
//
//	infogram-server -fabric ./fabric -addr 127.0.0.1:2119
//	infogram -fabric ./fabric -server 127.0.0.1:2119 query '(info=all)'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"infogram/internal/bootstrap"
	"infogram/internal/cluster"
	"infogram/internal/config"
	"infogram/internal/core"
	"infogram/internal/faultinject"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/journal"
	"infogram/internal/logging"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
	"infogram/internal/wsgw"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:2119", "listen address (GRAM's classic port by default)")
		fabricDir   = flag.String("fabric", "./fabric", "security fabric directory (self-generated when missing)")
		confPath    = flag.String("config", "", "provider configuration file (Table 1 format); built-in providers when empty")
		resource    = flag.String("resource", "", "resource name in entry DNs (hostname when empty)")
		logPath     = flag.String("log", "", "job/accounting log file (disabled when empty)")
		mdsAddr     = flag.String("mds-addr", "", "also serve the MDS GRIS protocol on this address")
		wsAddr      = flag.String("ws-addr", "", "also serve the Web-services (SOAP/WSDL) gateway on this address")
		wsToken     = flag.String("ws-token", "", "shared token required from Web-services clients")
		restore     = flag.Bool("recover", false, "replay the log file and restart unfinished jobs")
		stateDir    = flag.String("state-dir", "", "durable job-state directory (write-ahead journal + snapshots); crash recovery replays it on boot (empty = in-memory only)")
		fsync       = flag.String("fsync", "interval", "journal fsync policy: always, interval, or never")
		sandbox     = flag.Bool("restricted", false, "run in-process jobs in the restricted sandbox")
		metrics     = flag.String("metrics-addr", "", "serve Prometheus text metrics on this address at /metrics, plus /debug/traces and /debug/pprof")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of healthy traces to keep (errored and slow traces are always kept; 0 keeps only those)")
		traceSlow   = flag.Duration("trace-slow", 0, "always keep traces at least this slow (0 disables the slow rule)")
		reqTO       = flag.Duration("request-timeout", 0, "per-request deadline and slow-client I/O timeout (0 disables)")
		provTO      = flag.Duration("provider-timeout", 0, "per-provider collection timeout; failures degrade replies instead of erroring (0 disables)")
		collectP    = flag.Int("collect-parallelism", 0, "bound on the parallel provider fan-out per info query and on concurrent multi-request parts (0 = GOMAXPROCS-scaled default, 1 = serial)")
		connP       = flag.Int("conn-parallelism", 0, "bound on concurrently executing requests per multiplexed connection (0 = default of 8, 1 = serial)")
		quotaPath   = flag.String("quota", "", "admission-control contract file: §5.3 contracts with rate=/burst=/priority= clauses metering each identity with a token bucket (empty = unmetered)")
		maxInflight = flag.Int("max-inflight", 0, "global bound on concurrently executing requests; excess waits briefly, then is shed with REJECT (0 disables)")
		shedQueue   = flag.Int("shed-queue", 0, "backpressure wait-queue length; low/normal/high priorities shed at 1/2, 3/4, and full occupancy (0 = 2*max-inflight)")
		queueTO     = flag.Duration("queue-timeout", 0, "max wait for an inflight slot before shedding (0 = 1s default)")
		submitBL    = flag.Int("submit-backlog", 0, "refuse job submissions with REJECT while the selected backend holds this many pending tasks (0 disables)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "enable the sharded response cache: rendered info bodies served zero-copy for up to this long, capped by each covered provider's TTL (0 disables)")
		cacheShards = flag.Int("cache-shards", 0, "response-cache shard count, rounded up to a power of two (0 = 64)")
		cacheMaxB   = flag.Int64("cache-max-bytes", 0, "response-cache total byte budget (0 = 256 MiB)")
		cacheSnap   = flag.Duration("cache-snapshot-interval", time.Minute, "background response-cache snapshot period into -state-dir; restarts restore the snapshot and serve previously cached answers warm (needs -cache-ttl and -state-dir; 0 snapshots only on shutdown)")
		refreshFrac = flag.Float64("refresh-ahead", 0, "refresh-ahead threshold as a fraction of entry TTL: hot cached answers past it are re-collected in the background so they never expire under load (e.g. 0.8; 0 disables)")
		refreshWk   = flag.Int("refresh-workers", 0, "bound on concurrent background refresh fills (0 = 2)")
		snapGzip    = flag.Bool("snapshot-compress", false, "write cache snapshots gzip-compressed; restore reads either layout, so the flag can change between restarts")
		clusterMem  = flag.String("cluster-members", "", "comma-separated backend gatekeeper addresses: run as a consistent-hash routing proxy over them instead of a gatekeeper")
		clusterVN   = flag.Int("cluster-vnodes", 0, "virtual nodes per cluster member on the hash ring (0 = 128)")
		clusterFail = flag.Int("cluster-fail-threshold", 0, "consecutive forward failures that eject a member from routing until a probe readmits it (0 = 3)")
		clusterPrb  = flag.Duration("cluster-probe-interval", 0, "how often ejected members are pinged for readmission (0 = 2s)")
		follow      = flag.String("follow", "", "run as a hot-standby follower of this leader gatekeeper: mirror its journal into -state-dir and wait for promotion")
		promote     = flag.Bool("promote", false, "with -follow: promote automatically (boot as the gatekeeper from the mirrored journal) once the leader is lost; SIGUSR1 promotes on demand either way")
		faults      = flag.String("faultpoints", os.Getenv("INFOGRAM_FAULTPOINTS"),
			"arm fault-injection failpoints, e.g. 'wire.read=delay(100ms),provider.collect=hang' (also via INFOGRAM_FAULTPOINTS)")
	)
	flag.Parse()

	fabric, err := bootstrap.SelfSigned(*fabricDir)
	if err != nil {
		log.Fatalf("fabric: %v", err)
	}

	if *clusterMem != "" {
		runProxy(fabric, *addr, *clusterMem, *clusterVN, *clusterFail, *clusterPrb, *reqTO, *connP, *metrics)
		return
	}
	if *follow != "" {
		if *stateDir == "" {
			log.Fatal("follow: -state-dir is required (the leader's journal is mirrored there)")
		}
		if !runFollower(fabric, *follow, *stateDir, *promote) {
			return
		}
		// Promoted: fall through into the ordinary gatekeeper boot. The
		// journal replay below recovers the mirrored state and resubmits
		// unfinished jobs — the same path a crash restart takes.
		fmt.Printf("infogram: promoting to gatekeeper from mirrored journal in %s\n", *stateDir)
	}

	var quota *gsi.Policy
	if *quotaPath != "" {
		quota, err = gsi.LoadContracts(*quotaPath)
		if err != nil {
			log.Fatalf("quota: %v", err)
		}
	}
	name := *resource
	if name == "" {
		name, _ = os.Hostname()
		if name == "" {
			name = "localhost"
		}
	}

	registry := provider.NewRegistry(nil)
	confMgr := config.NewManager(registry)
	if *confPath != "" {
		if _, _, err := confMgr.LoadFile(*confPath); err != nil {
			log.Fatalf("config: %v", err)
		}
	} else {
		registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: 0})
	}

	var logger *logging.Logger
	var priorRecords []logging.Record
	if *logPath != "" {
		if *restore {
			if recs, err := logging.ReplayFile(*logPath); err == nil {
				priorRecords = recs
			}
		}
		logger, err = logging.OpenFile(*logPath)
		if err != nil {
			log.Fatalf("log: %v", err)
		}
		defer logger.Close()
	}

	mode := scheduler.TrustedMode
	if *sandbox {
		mode = scheduler.RestrictedMode
	}
	fn := scheduler.NewFunc(mode, scheduler.Budgets{})

	tel := telemetry.NewRegistry()
	faultinject.SetTelemetry(tel)
	if *faults != "" {
		if err := faultinject.ArmSpec(*faults); err != nil {
			log.Fatalf("faultpoints: %v", err)
		}
		fmt.Printf("infogram: fault injection armed: %v\n", faultinject.Armed())
	}
	var (
		jnl       *journal.Journal
		recovered *journal.Recovered
	)
	if *stateDir != "" {
		policy, err := journal.ParsePolicy(*fsync)
		if err != nil {
			log.Fatalf("fsync: %v", err)
		}
		jnl, recovered, err = journal.Open(journal.Options{
			Dir:       *stateDir,
			Fsync:     policy,
			Telemetry: tel,
		})
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		if recovered.TornTail {
			log.Printf("journal: torn record at the tail of the newest segment was discarded")
		}
	}

	queue := scheduler.NewQueue(scheduler.QueueConfig{
		Name:            "pbs",
		Slots:           4,
		Policy:          scheduler.FIFO{},
		Executor:        &scheduler.Fork{},
		DepthGauge:      tel.Gauge("infogram_queue_depth", "tasks pending in the batch queue"),
		DispatchLatency: tel.Histogram("infogram_queue_dispatch_seconds", "enqueue-to-dispatch wait per task"),
	})

	svc := core.NewService(core.Config{
		ResourceName: name,
		Credential:   fabric.Service,
		Trust:        fabric.Trust,
		Gridmap:      fabric.Gridmap,
		Registry:     registry,
		Backends: gram.Backends{
			Exec:  &scheduler.Fork{},
			Func:  fn,
			Queue: queue,
		},
		Log:                   logger,
		Journal:               jnl,
		Telemetry:             tel,
		TraceOptions:          telemetry.TracerOptionsFromFlags(*traceSample, *traceSlow),
		RequestTimeout:        *reqTO,
		ProviderTimeout:       *provTO,
		CollectParallelism:    *collectP,
		ConnParallelism:       *connP,
		Quota:                 quota,
		MaxInflight:           *maxInflight,
		ShedQueue:             *shedQueue,
		QueueTimeout:          *queueTO,
		SubmitBacklog:         *submitBL,
		CacheTTL:              *cacheTTL,
		CacheShards:           *cacheShards,
		CacheMaxBytes:         *cacheMaxB,
		CacheStateDir:         *stateDir,
		CacheSnapshotInterval: *cacheSnap,
		SnapshotCompress:      *snapGzip,
		RefreshAhead:          *refreshFrac,
		RefreshWorkers:        *refreshWk,
	})
	bound, err := svc.Listen(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer svc.Close()
	fmt.Printf("infogram: resource %q serving on %s (%d providers, sandbox %s)\n",
		name, bound, registry.Len(), mode)

	if recovered != nil && len(recovered.Jobs) > 0 {
		contacts, err := svc.RecoverJournal(recovered)
		if err != nil {
			log.Printf("recover: %v", err)
		}
		fmt.Printf("infogram: journal replayed %d job(s) from %s (%d resumed)\n",
			len(recovered.Jobs), *stateDir, len(contacts))
	}

	if len(priorRecords) > 0 {
		contacts, err := svc.Recover(priorRecords)
		if err != nil {
			log.Printf("recover: %v", err)
		}
		fmt.Printf("infogram: recovered %d unfinished job(s) from %s\n", len(contacts), *logPath)
	}

	if *metrics != "" {
		mux := telemetry.NewDebugMux(tel, svc.Tracer())
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		metricsSrv := &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		defer metricsSrv.Close()
		fmt.Printf("infogram: Prometheus metrics on http://%s/metrics (traces at /debug/traces, profiles at /debug/pprof)\n", ln.Addr())
	}

	if *mdsAddr != "" {
		gris := svc.GRIS()
		grisBound, err := gris.Listen(*mdsAddr)
		if err != nil {
			log.Fatalf("mds listen: %v", err)
		}
		defer gris.Close()
		fmt.Printf("infogram: MDS-compatible GRIS on %s\n", grisBound)
	}

	if *wsAddr != "" {
		gw := wsgw.New(wsgw.Config{
			Backend:    bound,
			Credential: fabric.User, // the gateway bridges web clients under its grid identity
			Trust:      fabric.Trust,
			Token:      *wsToken,
		})
		defer gw.Close()
		ln, err := net.Listen("tcp", *wsAddr)
		if err != nil {
			log.Fatalf("ws listen: %v", err)
		}
		httpSrv := &http.Server{Handler: gw}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		fmt.Printf("infogram: Web-services gateway on http://%s (GET ?wsdl for the description)\n", ln.Addr())
	}

	// SIGHUP hot-reloads the provider configuration (§6.2.1).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP && *confPath != "" {
			updated, removed, err := confMgr.LoadFile(*confPath)
			if err != nil {
				log.Printf("reload: %v", err)
				continue
			}
			fmt.Printf("infogram: configuration reloaded (%d updated, %d removed)\n", updated, removed)
			continue
		}
		break
	}
	fmt.Println("infogram: shutting down")
}

// runProxy serves the cluster routing tier: no providers, no jobs, no
// state — just the consistent-hash router over the configured backends.
func runProxy(fabric *bootstrap.Fabric, addr, members string, vnodes, failThresh int, probeInt, reqTO time.Duration, connP int, metricsAddr string) {
	var backends []string
	for _, m := range strings.Split(members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			backends = append(backends, m)
		}
	}
	if len(backends) == 0 {
		log.Fatal("cluster: -cluster-members lists no addresses")
	}

	tel := telemetry.NewRegistry()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Members:       backends,
		Vnodes:        vnodes,
		Cred:          fabric.Service,
		Trust:         fabric.Trust,
		FailThreshold: failThresh,
		ProbeInterval: probeInt,
		Telemetry:     tel,
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer router.Close()

	proxy := cluster.NewProxy(cluster.ProxyConfig{
		Credential:      fabric.Service,
		Trust:           fabric.Trust,
		Router:          router,
		RequestTimeout:  reqTO,
		ConnParallelism: connP,
		Telemetry:       tel,
	})
	bound, err := proxy.Listen(addr)
	if err != nil {
		log.Fatalf("cluster listen: %v", err)
	}
	defer proxy.Close()
	fmt.Printf("infogram: cluster proxy on %s routing %d member(s): %s\n",
		bound, len(backends), strings.Join(backends, ", "))

	if metricsAddr != "" {
		mux := telemetry.NewDebugMux(tel, nil)
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		metricsSrv := &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		defer metricsSrv.Close()
		fmt.Printf("infogram: Prometheus metrics on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("infogram: shutting down")
}

// runFollower mirrors the leader's journal into stateDir until the
// process is stopped or a promotion fires. It returns true when the
// caller should boot as the gatekeeper from the mirrored journal —
// either SIGUSR1 arrived, or -promote is set and the leader was declared
// lost — and false on an ordinary shutdown.
func runFollower(fabric *bootstrap.Fabric, leader, stateDir string, autoPromote bool) bool {
	tel := telemetry.NewRegistry()
	fl := cluster.NewFollower(cluster.FollowerConfig{
		Leader:     leader,
		Dir:        stateDir,
		Credential: fabric.Service,
		Trust:      fabric.Trust,
		Telemetry:  tel,
	})
	fl.Start()
	fmt.Printf("infogram: following %s, mirroring its journal into %s (SIGUSR1 promotes)\n", leader, stateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	defer signal.Stop(sig)
	// Synced and LeaderLost are closed-once channels: after the first
	// receive each case is nil'd out so a closed channel cannot spin the
	// select.
	synced, lost := fl.Synced(), fl.LeaderLost()
	for {
		select {
		case <-synced:
			fmt.Printf("infogram: follower synced with %s\n", leader)
			synced = nil
		case <-lost:
			if autoPromote {
				fl.Stop()
				return true
			}
			fmt.Printf("infogram: leader %s lost; still retrying (no -promote; SIGUSR1 to take over)\n", leader)
			lost = nil
		case s := <-sig:
			fl.Stop()
			return s == syscall.SIGUSR1
		}
	}
}
