// Command infogram is the client CLI for the unified service: it submits
// jobs and information queries — both expressed in xRSL — over one
// protocol, mirroring how "[q]uerying the information is handled by
// clients much as the execution of jobs" (paper §6.5).
//
// Usage:
//
//	infogram -fabric ./fabric -server HOST:PORT query '(info=all)'
//	infogram -fabric ./fabric -server HOST:PORT query '(info=Memory)(format=xml)'
//	infogram -fabric ./fabric -server HOST:PORT schema
//	infogram -fabric ./fabric -server HOST:PORT submit '(executable=/bin/date)'
//	infogram -fabric ./fabric -server HOST:PORT run '(executable=/bin/date)'
//	infogram -fabric ./fabric -server HOST:PORT status CONTACT
//	infogram -fabric ./fabric -server HOST:PORT cancel CONTACT
//	infogram -fabric ./fabric -server HOST:PORT multi '+(&(info=all))(&(executable=/bin/date))'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"infogram/internal/bootstrap"
	"infogram/internal/core"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: infogram [flags] {query|schema|submit|run|status|cancel|suspend|resume|multi|ping} [arg]\n")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:2119", "InfoGram service address")
		fabricDir = flag.String("fabric", "./fabric", "security fabric directory")
		credPath  = flag.String("cred", "", "credential file (defaults to the fabric's user credential)")
		caPath    = flag.String("ca", "", "CA certificate file (defaults to the fabric's CA)")
		timeout   = flag.Duration("timeout", time.Minute, "overall operation timeout")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	cred := *credPath
	ca := *caPath
	if cred == "" {
		cred = filepath.Join(*fabricDir, bootstrap.UserFile)
	}
	if ca == "" {
		ca = filepath.Join(*fabricDir, bootstrap.CAFile)
	}
	userCred, trust, err := bootstrap.Client(cred, ca)
	if err != nil {
		log.Fatalf("credentials: %v", err)
	}

	cl, err := core.Dial(*server, userCred, trust)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, arg := flag.Arg(0), flag.Arg(1)
	switch cmd {
	case "ping":
		if err := cl.Ping(); err != nil {
			log.Fatalf("ping: %v", err)
		}
		fmt.Println("ok")
	case "query":
		if arg == "" {
			arg = "(info=all)"
		}
		res, err := cl.QueryRaw(arg)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		fmt.Print(res.Raw)
	case "schema":
		res, err := cl.QueryRaw("(info=schema)")
		if err != nil {
			log.Fatalf("schema: %v", err)
		}
		fmt.Print(res.Raw)
	case "submit":
		requireArg(arg, "submit needs an xRSL job specification")
		contact, err := cl.Submit(arg)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		fmt.Println(contact)
	case "run":
		requireArg(arg, "run needs an xRSL job specification")
		contact, err := cl.Submit(arg)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		st, err := cl.WaitTerminal(ctx, contact, 50*time.Millisecond)
		if err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("state: %s exit: %d\n", st.State, st.ExitCode)
		if st.Error != "" {
			fmt.Printf("error: %s\n", st.Error)
		}
		if st.Stdout != "" {
			fmt.Print(st.Stdout)
		}
		if st.Stderr != "" {
			fmt.Fprint(os.Stderr, st.Stderr)
		}
	case "status":
		requireArg(arg, "status needs a job contact")
		st, err := cl.Status(arg)
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		fmt.Printf("contact: %s\nstate: %s\nexit: %d\nrestarts: %d\n",
			st.Contact, st.State, st.ExitCode, st.Restarts)
		if st.Error != "" {
			fmt.Printf("error: %s\n", st.Error)
		}
	case "cancel":
		requireArg(arg, "cancel needs a job contact")
		if err := cl.Cancel(arg); err != nil {
			log.Fatalf("cancel: %v", err)
		}
		fmt.Println("cancelled")
	case "suspend", "resume":
		requireArg(arg, cmd+" needs a job contact")
		if err := cl.Signal(arg, cmd); err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
		fmt.Println(cmd + "d")
	case "multi":
		requireArg(arg, "multi needs a multi-request (+) xRSL specification")
		parts, err := cl.SubmitMulti(arg)
		if err != nil {
			log.Fatalf("multi: %v", err)
		}
		for i, p := range parts {
			switch {
			case p.Err != nil:
				fmt.Printf("[%d] error: %v\n", i, p.Err)
			case p.Kind == "job":
				fmt.Printf("[%d] job: %s\n", i, p.Contact)
			case p.Info != nil:
				fmt.Printf("[%d] info (%s):\n%s\n", i, p.Info.Format, p.Info.Raw)
			}
		}
	default:
		usage()
	}
}

func requireArg(arg, msg string) {
	if arg == "" {
		log.Fatal(msg)
	}
}
