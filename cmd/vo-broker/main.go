// Command vo-broker schedules jobs across the members of a virtual
// organization by querying each member's cached CPULoad through InfoGram
// (paper §4, §5.1, §8). Given a list of member addresses it either prints
// the current load table or brokers an xRSL job to the least-loaded
// member.
//
// Usage:
//
//	vo-broker -fabric ./fabric -members HOST1:P1,HOST2:P2 loads
//	vo-broker -fabric ./fabric -members HOST1:P1,HOST2:P2 run '(executable=/bin/date)'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"infogram/internal/bootstrap"
	"infogram/internal/cache"
	"infogram/internal/quality"
	"infogram/internal/rsl"
	"infogram/internal/vo"
	"infogram/internal/xrsl"
)

func main() {
	var (
		fabricDir = flag.String("fabric", "./fabric", "security fabric directory")
		members   = flag.String("members", "", "comma-separated InfoGram member addresses")
		giisAddr  = flag.String("giis", "", "discover members from this GIIS index instead of -members")
		threshold = flag.Float64("quality", 0, "quality threshold (percent) for load queries")
		immediate = flag.Bool("immediate", false, "bypass member caches when reading load")
		timeout   = flag.Duration("timeout", 5*time.Minute, "job timeout")
	)
	flag.Parse()
	if (*members == "" && *giisAddr == "") || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: vo-broker {-members HOST:PORT,... | -giis HOST:PORT} {loads|run XRSL}")
		os.Exit(2)
	}

	cred, trust, err := bootstrap.Client(
		filepath.Join(*fabricDir, bootstrap.UserFile),
		filepath.Join(*fabricDir, bootstrap.CAFile))
	if err != nil {
		log.Fatalf("credentials: %v", err)
	}

	var addrs []string
	if *giisAddr != "" {
		addrs, err = vo.DiscoverMembers(*giisAddr, cred, trust)
		if err != nil {
			log.Fatalf("discovery: %v", err)
		}
		fmt.Printf("discovered %d member(s) from %s\n", len(addrs), *giisAddr)
	} else {
		for _, m := range strings.Split(*members, ",") {
			if m = strings.TrimSpace(m); m != "" {
				addrs = append(addrs, m)
			}
		}
	}
	broker := vo.NewBroker(addrs, cred, trust)
	defer broker.Close()

	mode := cache.Cached
	if *immediate {
		mode = cache.Immediate
	}
	thresh := quality.Score(*threshold)

	switch flag.Arg(0) {
	case "loads":
		loads, err := broker.Loads(mode, thresh)
		if err != nil {
			log.Fatalf("loads: %v", err)
		}
		fmt.Printf("%-28s %6s %8s\n", "MEMBER", "LOAD", "QUALITY")
		for _, l := range loads {
			fmt.Printf("%-28s %6d %7.1f%%\n", l.Addr, l.Load, float64(l.Quality))
		}
	case "run":
		src := flag.Arg(1)
		if src == "" {
			log.Fatal("run needs an xRSL job specification")
		}
		reqs, err := xrsl.Decode(src, rsl.Env{})
		if err != nil {
			log.Fatalf("xrsl: %v", err)
		}
		if len(reqs) != 1 || reqs[0].Kind != xrsl.KindJob {
			log.Fatal("run needs exactly one job specification")
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		p, err := broker.Run(ctx, *reqs[0].Job, mode, thresh)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("member: %s\ncontact: %s\nstate: %s exit: %d\n",
			p.Addr, p.Contact, p.Status.State, p.Status.ExitCode)
		if p.Status.Stdout != "" {
			fmt.Print(p.Status.Stdout)
		}
	default:
		log.Fatalf("unknown command %q", flag.Arg(0))
	}
}
