// Experiment benchmarks: one benchmark per table/figure/claim of the
// paper, as indexed in DESIGN.md and reported in EXPERIMENTS.md. The paper
// has a single table (Table 1, a configuration file) and four architecture
// figures; its performance claims are qualitative, so each benchmark here
// regenerates the *shape* the paper asserts — who wins and by roughly what
// factor — on this repository's substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package infogram_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/config"
	"infogram/internal/core"
	"infogram/internal/diffract"
	"infogram/internal/gram"
	"infogram/internal/ldif"
	"infogram/internal/logging"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/quality"
	"infogram/internal/scheduler"
	"infogram/internal/vo"
	"infogram/internal/xmlenc"
	"infogram/internal/xrsl"
)

// ---------------------------------------------------------------------------
// E1 — Table 1: keyword -> information-provider dispatch.

func BenchmarkTable1(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := config.ParseString(config.Table1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dispatch", func(b *testing.B) {
		// A runnable variant of Table 1: same shape, real binaries.
		cfg, err := config.ParseString("60 Date date -u\n0 CPULoad cat /proc/loadavg\n1000 list /bin/ls /\n")
		if err != nil {
			b.Fatal(err)
		}
		reg := provider.NewRegistry(nil)
		if _, err := cfg.Apply(reg); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Collect(ctx, nil, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: the GRAM three-tier submit/status/done cycle.

func BenchmarkFigure1_GRAMSubmit(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(time.Hour, 0, nil)
	gramAddr, _, _, _ := startBaseline(b, f, reg)
	cl, err := gram.Dial(gramAddr, f.user, f.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contact, err := cl.Submit("&(executable=noop)(jobtype=func)")
		if err != nil {
			b.Fatal(err)
		}
		waitGRAMDone(b, cl, contact)
	}
}

// ---------------------------------------------------------------------------
// E3 vs E4 — Figure 2 vs Figure 4: the combined workflow "query CPU load,
// then submit a job". The baseline needs two services, two protocols, and
// two connections; InfoGram needs one of each.

func BenchmarkFigure2_TwoServiceWorkflow(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(100*time.Millisecond, 0, nil)
	gramAddr, grisAddr, gramSvc, gris := startBaseline(b, f, reg)

	// The Figure 2 client holds one connection per protocol.
	gcl, err := gram.Dial(gramAddr, f.user, f.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer gcl.Close()
	mcl, err := mds.Dial(grisAddr, f.user, f.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer mcl.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcl.Search(mds.SearchRequest{Filter: "(kw=CPULoad)"}); err != nil {
			b.Fatal(err)
		}
		contact, err := gcl.Submit("&(executable=noop)(jobtype=func)")
		if err != nil {
			b.Fatal(err)
		}
		waitGRAMDone(b, gcl, contact)
	}
	b.StopTimer()
	b.ReportMetric(float64(gramSvc.AcceptedConns()+gris.AcceptedConns()), "connections")
	b.ReportMetric(2, "protocols")
	b.ReportMetric(2, "ports")
}

func BenchmarkFigure4_InfoGramWorkflow(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(100*time.Millisecond, 0, nil)
	svc, addr := startInfoGram(b, f, reg)
	cl := dialInfoGram(b, f, addr)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
			b.Fatal(err)
		}
		runJobToDone(b, cl, "&(executable=noop)(jobtype=func)")
	}
	b.StopTimer()
	b.ReportMetric(float64(svc.AcceptedConns()), "connections")
	b.ReportMetric(1, "protocols")
	b.ReportMetric(1, "ports")
}

// BenchmarkFigure4_MultiRequestWorkflow folds the whole workflow into one
// round trip — impossible in the two-protocol baseline.
func BenchmarkFigure4_MultiRequestWorkflow(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(100*time.Millisecond, 0, nil)
	_, addr := startInfoGram(b, f, reg)
	cl := dialInfoGram(b, f, addr)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := cl.SubmitMulti("+(&(info=CPULoad))(&(executable=noop)(jobtype=func))")
		if err != nil {
			b.Fatal(err)
		}
		if len(parts) != 2 {
			b.Fatalf("parts = %d", len(parts))
		}
	}
}

// ---------------------------------------------------------------------------
// E5 — §5.1: caching CPU load vs executing the provider on every request,
// across client counts and TTLs. The paper's claim: "It would be wasteful
// to execute the command requesting the load every single time."

func BenchmarkE5_CachedVsExecEveryTime(b *testing.B) {
	// The provider costs 2 ms to execute, a cheap stand-in for running
	// /usr/local/bin/cpuload.exe.
	const execCost = 2 * time.Millisecond
	for _, ttl := range []time.Duration{0, 100 * time.Millisecond, time.Second} {
		for _, clients := range []int{1, 8, 64} {
			name := fmt.Sprintf("ttl=%s/clients=%d", ttlName(ttl), clients)
			b.Run(name, func(b *testing.B) {
				f := newFabric(b)
				reg, execs := benchRegistry(ttl, execCost, nil)
				_, addr := startInfoGram(b, f, reg)

				conns := make([]*core.Client, clients)
				for i := range conns {
					conns[i] = dialInfoGram(b, f, addr)
				}
				var next atomic.Int64
				b.ResetTimer()
				b.SetParallelism(clients)
				b.RunParallel(func(pb *testing.PB) {
					cl := conns[int(next.Add(1))%clients]
					for pb.Next() {
						if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
			})
		}
	}
}

func ttlName(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return d.String()
}

// ---------------------------------------------------------------------------
// E6 — §6.5 response tag: per-mode read latency.

func BenchmarkE6_ResponseModes(b *testing.B) {
	const execCost = 2 * time.Millisecond
	for _, mode := range []string{"cached", "immediate", "last"} {
		b.Run(mode, func(b *testing.B) {
			f := newFabric(b)
			reg, execs := benchRegistry(time.Hour, execCost, nil)
			_, addr := startInfoGram(b, f, reg)
			cl := dialInfoGram(b, f, addr)
			// Prime the cache so "last" has something to return.
			if _, err := cl.QueryRaw("&(info=CPULoad)(response=immediate)"); err != nil {
				b.Fatal(err)
			}
			src := "&(info=CPULoad)(response=" + mode + ")"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.QueryRaw(src); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — §5.2/§6.3: quality thresholds trade staleness against provider
// executions. Higher thresholds refresh more.

func BenchmarkE7_QualityDegradation(b *testing.B) {
	const execCost = time.Millisecond
	for _, threshold := range []int{0, 50, 90, 99} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			f := newFabric(b)
			// Quality decays linearly to zero over 50 ms; TTL alone would
			// keep values for an hour.
			reg, execs := benchRegistry(time.Hour, execCost, quality.Linear{Horizon: 50 * time.Millisecond})
			_, addr := startInfoGram(b, f, reg)
			cl := dialInfoGram(b, f, addr)
			src := fmt.Sprintf("&(info=CPULoad)(quality=%d)", threshold)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.QueryRaw(src); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/op")
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — §6.5 performance tag: cost of carrying retrieval statistics.

func BenchmarkE8_PerformanceTag(b *testing.B) {
	for _, tag := range []bool{false, true} {
		b.Run(fmt.Sprintf("performance=%v", tag), func(b *testing.B) {
			f := newFabric(b)
			reg, _ := benchRegistry(time.Hour, 0, nil)
			_, addr := startInfoGram(b, f, reg)
			cl := dialInfoGram(b, f, addr)
			src := "&(info=CPULoad)"
			if tag {
				src += "(performance=true)"
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.QueryRaw(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — §6.4 reflection: schema query across registry sizes.

func BenchmarkE9_SchemaQuery(b *testing.B) {
	for _, n := range []int{4, 32} {
		b.Run(fmt.Sprintf("providers=%d", n), func(b *testing.B) {
			f := newFabric(b)
			reg := provider.NewRegistry(nil)
			for i := 0; i < n; i++ {
				fp := provider.NewFuncProvider(fmt.Sprintf("Kw%02d", i),
					func(ctx context.Context) (provider.Attributes, error) {
						return provider.Attributes{{Name: "v", Value: "1"}}, nil
					})
				fp.Schemas = []provider.AttrSchema{{Name: "v", Type: "int", Doc: "value"}}
				reg.Register(fp, provider.RegisterOptions{TTL: time.Second})
			}
			_, addr := startInfoGram(b, f, reg)
			cl := dialInfoGram(b, f, addr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.QueryRaw("(info=schema)"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E10 — §5.5/§6.5 format tag: LDIF vs XML encode throughput and size.

func BenchmarkE10_FormatLDIFvsXML(b *testing.B) {
	for _, n := range []int{5, 50} {
		reports := mkEntriesSpec(n)
		entries := provider.ReportEntries("bench.resource", reports)
		b.Run(fmt.Sprintf("ldif/entries=%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				s, err := ldif.Marshal(entries)
				if err != nil {
					b.Fatal(err)
				}
				size = len(s)
			}
			b.ReportMetric(float64(size), "bytes")
		})
		b.Run(fmt.Sprintf("xml/entries=%d", n), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				s, err := xmlenc.Marshal(entries)
				if err != nil {
					b.Fatal(err)
				}
				size = len(s)
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}

// ---------------------------------------------------------------------------
// E11 — §6/§6.1: log replay and recovery scan cost.

func BenchmarkE11_LogReplay(b *testing.B) {
	for _, jobs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			var buf bytes.Buffer
			logger := logging.NewLogger(&buf)
			now := time.Now()
			for i := 0; i < jobs; i++ {
				contact := fmt.Sprintf("gram://bench/%d/%d", i, i)
				_ = logger.Append(logging.Record{Time: now, Kind: logging.KindSubmit,
					Contact: contact, Spec: "&(executable=noop)(jobtype=func)",
					Owner: "bench", Identity: "/O=Grid/CN=bench-user"})
				_ = logger.Append(logging.Record{Time: now, Kind: logging.KindState, Contact: contact, State: "PENDING"})
				_ = logger.Append(logging.Record{Time: now, Kind: logging.KindState, Contact: contact, State: "ACTIVE"})
				if i%2 == 0 {
					_ = logger.Append(logging.Record{Time: now, Kind: logging.KindState, Contact: contact, State: "DONE"})
				}
			}
			raw := buf.Bytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := logging.Replay(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				pending := logging.Recover(recs)
				if len(pending) != jobs/2 {
					b.Fatalf("recovered %d", len(pending))
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E12 — §5.3: GSI mutual-authentication handshake cost, by delegation
// depth of the client's proxy chain.

func BenchmarkE12_GSIHandshake(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(time.Hour, 0, nil)
	_, addr := startInfoGram(b, f, reg)

	for _, depth := range []int{0, 1, 3} {
		cred := f.user
		now := time.Now()
		for i := 0; i < depth; i++ {
			next, err := cred.Delegate(time.Hour, now)
			if err != nil {
				b.Fatal(err)
			}
			cred = next
		}
		b.Run(fmt.Sprintf("proxyDepth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cl, err := core.Dial(addr, cred, f.trust)
				if err != nil {
					b.Fatal(err)
				}
				cl.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E13 — §7: trusted vs restricted in-process execution cost.

func BenchmarkE13_SandboxModes(b *testing.B) {
	work := func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		for i := 0; i < 1000; i++ {
			if err := sb.Step(); err != nil {
				return "", err
			}
		}
		return "", nil
	}
	for _, mode := range []scheduler.ExecMode{scheduler.TrustedMode, scheduler.RestrictedMode} {
		b.Run(mode.String(), func(b *testing.B) {
			fn := scheduler.NewFunc(mode, scheduler.Budgets{Steps: 1 << 30, AllocBytes: 1 << 30, WallTime: time.Minute})
			fn.RegisterFunc("work", work)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := fn.Submit(ctx, scheduler.Task{Executable: "work"})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E14 — §8: one brokered diffraction-analysis job across a sporadic grid,
// end to end (load query + placement + execution + result parse).

func BenchmarkE14_SporadicGrid(b *testing.B) {
	grid, err := vo.NewSporadicGrid(vo.SporadicConfig{
		OrgName:   "bench.org",
		Resources: 3,
		LoadTTL:   50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer grid.Close()
	broker := vo.NewBroker(grid.Addrs(), grid.AnyCredential(), grid.Trust)
	defer broker.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := broker.Run(ctx, xrsl.JobRequest{
			Executable: vo.AnalysisJobName,
			Arguments:  diffract.EncodeArgs(i%16, (i/16)%16, 16, 16, 7),
			JobType:    "func",
		}, 0, 50)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(p.Status.Stdout, "phase=") {
			b.Fatalf("stdout = %q", p.Status.Stdout)
		}
	}
}

// ---------------------------------------------------------------------------
// E15 — §2: the same job stream through each backend. Reported queue-wait
// means show the policy differences.

func BenchmarkE15_SchedulerBackends(b *testing.B) {
	mk := func() *scheduler.Func {
		fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
		fn.RegisterFunc("task", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
			return "", nil
		})
		return fn
	}
	type backendCase struct {
		name string
		mkB  func() scheduler.Backend
	}
	cases := []backendCase{
		{"func", func() scheduler.Backend { return mk() }},
		{"pbs-fifo", func() scheduler.Backend { return scheduler.NewPBS(4, nil, mk()) }},
		{"lsf-fairshare", func() scheduler.Backend { return scheduler.NewLSF(4, mk()) }},
		{"condor-matchmaker", func() scheduler.Backend {
			return scheduler.NewCondor([]scheduler.Machine{
				{Name: "m1", Attrs: map[string]string{"os": "linux"}, Slots: 2},
				{Name: "m2", Attrs: map[string]string{"os": "linux"}, Slots: 2},
			}, mk())
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			backend := c.mkB()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := backend.Submit(ctx, scheduler.Task{
					Executable: "task", Owner: fmt.Sprintf("user%d", i%4),
					Requirements: map[string]string{"os": "linux"},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			switch q := backend.(type) {
			case *scheduler.Queue:
				b.ReportMetric(q.WaitStats().Mean.Seconds()*1e6, "queueWait-us")
			case *scheduler.Condor:
				b.ReportMetric(q.WaitStats().Mean.Seconds()*1e6, "queueWait-us")
			}
		})
	}
}

// BenchmarkE15_ForkBackend measures real process execution separately (it
// is orders of magnitude above the in-process paths).
func BenchmarkE15_ForkBackend(b *testing.B) {
	f := &scheduler.Fork{}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := f.Submit(ctx, scheduler.Task{Executable: "/bin/true"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E17 — §3/§6.5 MDS backward compatibility: a GIIS query resolved through
// an InfoGram-backed GRIS.

func BenchmarkE17_GIISThroughInfoGram(b *testing.B) {
	f := newFabric(b)
	reg, _ := benchRegistry(time.Second, 0, nil)
	svc, _ := startInfoGram(b, f, reg)

	gris := svc.GRIS()
	grisAddr, err := gris.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer gris.Close()
	giis := mds.NewGIIS(mds.GIISConfig{OrgName: "bench", Credential: f.svcCred, Trust: f.trust})
	giisAddr, err := giis.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer giis.Close()
	giis.Register(grisAddr)

	cl, err := mds.Dial(giisAddr, f.user, f.trust)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=CPULoad)"})
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) != 1 {
			b.Fatalf("entries = %d", len(entries))
		}
	}
}

// ---------------------------------------------------------------------------
// Protocol microbenchmarks: xRSL parse and the two wire codecs.

func BenchmarkXRSLDecode(b *testing.B) {
	srcs := map[string]string{
		"job":  `&(executable=/bin/app)(arguments=a b c)(count=2)(environment=(A 1)(B 2))(maxtime=5)`,
		"info": `&(info=Memory)(info=CPU)(response=cached)(quality=80)(format=xml)`,
	}
	for name, src := range srcs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := xrsl.Decode(src, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
