package infogram_test

// Durability-cost benchmarks: what the write-ahead journal adds to the
// job path, measured against an in-memory gatekeeper and journaled ones
// under each fsync policy.
//
// BenchmarkJournaledSubmit measures the SUBMIT operation itself — the
// client round trip to the SUBMITTED ack, which the journal gates with
// the submission record and the PENDING transition; the acceptance bar
// is interval-fsync overhead under 15% of the in-memory path.
// BenchmarkJournaledJobLifecycle runs the whole submit→execute→poll-DONE
// loop (its numbers are poll-quantized: a job whose DONE lands after a
// status poll costs one extra poll interval, so treat them as end-to-end
// context, not append cost). BenchmarkJournalAppend isolates the
// per-record append.

import (
	"context"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/journal"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
)

// journalModes maps sub-benchmark names to fsync policies; "memory" runs
// without a journal at all.
var journalModes = []struct {
	name  string
	fsync journal.Policy
}{
	{"memory", 0},
	{"interval", journal.FsyncInterval},
	{"always", journal.FsyncAlways},
	{"never", journal.FsyncNever},
}

func openBenchJournal(b *testing.B, fsync journal.Policy) *journal.Journal {
	b.Helper()
	jnl, _, err := journal.Open(journal.Options{Dir: b.TempDir(), Fsync: fsync})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { jnl.Close() })
	return jnl
}

// startJournaledInfoGram builds a gatekeeper with (or without) a journal
// and hands back an authenticated client.
func startJournaledInfoGram(b *testing.B, modeName string, fsync journal.Policy) *core.Client {
	b.Helper()
	f := newFabric(b)
	var jnl *journal.Journal
	if modeName != "memory" {
		jnl = openBenchJournal(b, fsync)
	}
	svc := core.NewService(core.Config{
		ResourceName: "bench.resource",
		Credential:   f.svcCred,
		Trust:        f.trust,
		Gridmap:      f.gridmap,
		Registry:     provider.NewRegistry(nil),
		Backends:     gram.Backends{Func: noopFunc(), Exec: &scheduler.Fork{}},
		Journal:      jnl,
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return dialInfoGram(b, f, addr)
}

func BenchmarkJournaledSubmit(b *testing.B) {
	for _, mode := range journalModes {
		b.Run(mode.name, func(b *testing.B) {
			cl := startJournaledInfoGram(b, mode.name, mode.fsync)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Submit("&(executable=noop)(jobtype=func)"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJournaledJobLifecycle(b *testing.B) {
	for _, mode := range journalModes {
		b.Run(mode.name, func(b *testing.B) {
			cl := startJournaledInfoGram(b, mode.name, mode.fsync)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runJobToDone(b, cl, "&(executable=noop)(jobtype=func)")
			}
		})
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	for _, mode := range journalModes {
		if mode.name == "memory" {
			continue
		}
		b.Run(mode.name, func(b *testing.B) {
			jnl := openBenchJournal(b, mode.fsync)
			ctx := context.Background()
			now := time.Now()
			entry := journal.Entry{
				Kind:    journal.KindSubmit,
				Time:    now.UnixNano(),
				Contact: "gram://bench/1/1",
				Spec:    "&(executable=noop)(jobtype=func)",
				Owner:   "bench",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := jnl.Append(ctx, entry); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
