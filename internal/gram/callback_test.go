package gram

import (
	"errors"
	"testing"
	"time"

	"infogram/internal/job"
	"infogram/internal/wire"
)

// A wedged callback listener must not delay deliveries to other contacts:
// per-contact serialization means the blocked dial holds only its own
// contact's lock. Before the fix a single mutex was held across the dial,
// so the healthy delivery below would stall behind the stuck one.
func TestCallbackDialerNoHeadOfLineBlocking(t *testing.T) {
	listener, err := NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	stuck := make(chan struct{})
	d := NewCallbackDialer()
	defer d.Close()
	d.dial = func(addr string, timeout time.Duration) (*wire.Conn, error) {
		if addr == "wedged:1" {
			<-stuck // a listener that never completes the TCP handshake
			return nil, errors.New("dial timed out")
		}
		return wire.DialTimeout(addr, timeout)
	}

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		d.Notify("wedged:1", job.Event{Contact: "job-1", State: job.Active})
	}()
	// Give the wedged delivery time to enter its dial and take the
	// per-contact lock.
	for i := 0; i < 100; i++ {
		select {
		case <-blocked:
			t.Fatal("wedged dial returned early; the test lost its premise")
		default:
		}
		time.Sleep(time.Millisecond)
		if i > 5 {
			break
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Notify(listener.Contact(), job.Event{Contact: "job-2", State: job.Done})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery to a healthy contact stalled behind a wedged one")
	}
	select {
	case ev := <-listener.Events():
		if ev.Contact != "job-2" || ev.State != job.Done {
			t.Fatalf("listener got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healthy listener never received its event")
	}

	close(stuck)
	<-blocked
}

// Concurrent notifications to one contact stay ordered: the per-contact
// lock serializes dial+write, so the listener observes the same sequence
// the job manager emitted.
func TestCallbackDialerPerContactOrdering(t *testing.T) {
	listener, err := NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	d := NewCallbackDialer()
	defer d.Close()

	states := []job.State{job.Pending, job.Active, job.Done}
	for _, st := range states {
		d.Notify(listener.Contact(), job.Event{Contact: "job-1", State: st})
	}
	for i, want := range states {
		select {
		case ev := <-listener.Events():
			if ev.State != want {
				t.Fatalf("event %d = %v; want %v", i, ev.State, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
}

// Close while a delivery is mid-dial: the dialer must not leak the
// connection that dial returns after the shutdown.
func TestCallbackDialerCloseDuringDial(t *testing.T) {
	listener, err := NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	gate := make(chan struct{})
	d := NewCallbackDialer()
	d.dial = func(addr string, timeout time.Duration) (*wire.Conn, error) {
		<-gate
		return wire.DialTimeout(addr, timeout)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Notify(listener.Contact(), job.Event{Contact: "job-1", State: job.Done})
	}()
	time.Sleep(5 * time.Millisecond)
	go d.Close()
	time.Sleep(5 * time.Millisecond)
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Notify never returned after Close raced its dial")
	}
	// The connection dialed after Close must have been discarded: a write
	// through the dialer now is a no-op against a fresh map.
	d.mu.Lock()
	if len(d.contacts) != 0 || !d.closed {
		t.Fatalf("dialer state after Close: contacts=%d closed=%v", len(d.contacts), d.closed)
	}
	d.mu.Unlock()
}
