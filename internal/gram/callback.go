package gram

import (
	"encoding/json"
	"sync"
	"time"

	"infogram/internal/job"
	"infogram/internal/wire"
)

// DefaultCallbackTimeout bounds each callback dial and write. A callback
// listener is an arbitrary remote client; without a deadline one wedged
// listener would park the job-manager goroutine delivering to it.
const DefaultCallbackTimeout = 2 * time.Second

// CallbackDialer pushes job events to client callback listeners, caching
// one connection per contact. Delivery is best-effort: a client that has
// gone away is forgotten; pollers still see the final job state through
// STATUS.
//
// Delivery is serialized per contact, not globally: the dialer's own lock
// only guards the contact map, and each contact carries its own lock held
// across the (deadline-bounded) dial and write. A dead or slow listener
// therefore delays only its own events — notifications to every other
// contact proceed concurrently.
type CallbackDialer struct {
	timeout time.Duration
	// dial is the connection factory, replaceable in tests.
	dial func(addr string, timeout time.Duration) (*wire.Conn, error)

	mu       sync.Mutex
	contacts map[string]*callbackConn
	closed   bool
}

// callbackConn is the per-contact delivery state. Its mutex serializes
// dial+write for one contact so events stay ordered on the wire.
type callbackConn struct {
	mu   sync.Mutex
	conn *wire.Conn
}

// NewCallbackDialer returns an empty dialer with the default per-delivery
// timeout.
func NewCallbackDialer() *CallbackDialer {
	return &CallbackDialer{
		timeout:  DefaultCallbackTimeout,
		dial:     wire.DialTimeout,
		contacts: make(map[string]*callbackConn),
	}
}

var _ Notifier = (*CallbackDialer)(nil)

// Notify implements Notifier by sending a CALLBACK frame to the contact.
func (d *CallbackDialer) Notify(contact string, ev job.Event) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	cc, ok := d.contacts[contact]
	if !ok {
		cc = &callbackConn{}
		d.contacts[contact] = cc
	}
	d.mu.Unlock()

	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.conn == nil {
		conn, err := d.dial(contact, d.timeout)
		if err != nil {
			return
		}
		conn.SetIOTimeout(d.timeout)
		cc.conn = conn
		// Close may have raced the dial; re-check under the global lock so
		// no connection outlives the dialer.
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			conn.Close()
			cc.conn = nil
			return
		}
	}
	if err := cc.conn.Write(wire.Frame{Verb: VerbCallback, Payload: payload}); err != nil {
		cc.conn.Close()
		cc.conn = nil
	}
}

// Close drops all cached connections.
func (d *CallbackDialer) Close() {
	d.mu.Lock()
	d.closed = true
	contacts := make([]*callbackConn, 0, len(d.contacts))
	for c, cc := range d.contacts {
		contacts = append(contacts, cc)
		delete(d.contacts, c)
	}
	d.mu.Unlock()
	// Take each per-contact lock outside the map lock: an in-flight
	// delivery finishes (or times out) before its connection is closed.
	for _, cc := range contacts {
		cc.mu.Lock()
		if cc.conn != nil {
			cc.conn.Close()
			cc.conn = nil
		}
		cc.mu.Unlock()
	}
}
