package gram

import (
	"encoding/json"
	"sync"

	"infogram/internal/job"
	"infogram/internal/wire"
)

// CallbackDialer pushes job events to client callback listeners, caching
// one connection per contact. Delivery is best-effort: a client that has
// gone away is forgotten; pollers still see the final job state through
// STATUS.
type CallbackDialer struct {
	mu     sync.Mutex
	conns  map[string]*wire.Conn
	closed bool
}

// NewCallbackDialer returns an empty dialer.
func NewCallbackDialer() *CallbackDialer {
	return &CallbackDialer{conns: make(map[string]*wire.Conn)}
}

var _ Notifier = (*CallbackDialer)(nil)

// Notify implements Notifier by sending a CALLBACK frame to the contact.
func (d *CallbackDialer) Notify(contact string, ev job.Event) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	conn, ok := d.conns[contact]
	if !ok {
		conn, err = wire.Dial(contact)
		if err != nil {
			return
		}
		d.conns[contact] = conn
	}
	if err := conn.Write(wire.Frame{Verb: VerbCallback, Payload: payload}); err != nil {
		conn.Close()
		delete(d.conns, contact)
	}
}

// Close drops all cached connections.
func (d *CallbackDialer) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	for c, conn := range d.conns {
		conn.Close()
		delete(d.conns, c)
	}
}
