package gram

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/journal"
	"infogram/internal/logging"
	"infogram/internal/rsl"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
)

// GRAMP protocol verbs. The protocol is request/response over one framed
// connection, after a GSI handshake performed by the gatekeeper.
const (
	VerbSubmit    = "SUBMIT"    // payload: RSL string
	VerbSubmitted = "SUBMITTED" // payload: job contact
	VerbStatus    = "STATUS"    // payload: job contact
	VerbStatusOK  = "STATUS-OK" // payload: JSON StatusReply
	VerbCancel    = "CANCEL"    // payload: job contact
	VerbCancelOK  = "CANCEL-OK"
	VerbSignal    = "SIGNAL" // payload: "contact signal" (suspend|resume)
	VerbSignalOK  = "SIGNAL-OK"
	VerbError     = "ERROR"    // payload: message
	VerbCallback  = "CALLBACK" // payload: JSON job.Event (server -> listener)
	VerbPing      = "PING"     // liveness probe
	VerbPong      = "PONG"
)

// StatusReply is the JSON payload of STATUS-OK.
type StatusReply struct {
	Contact  string    `json:"contact"`
	State    job.State `json:"state"`
	ExitCode int       `json:"exitCode"`
	Error    string    `json:"error,omitempty"`
	Stdout   string    `json:"stdout,omitempty"`
	Stderr   string    `json:"stderr,omitempty"`
	Restarts int       `json:"restarts,omitempty"`
}

// Config wires a GRAM service.
type Config struct {
	// Credential identifies the service; Trust validates clients.
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Gridmap maps authenticated identities to local accounts; a client
	// without an entry is rejected by the gatekeeper.
	Gridmap *gsi.Gridmap
	// Policy authorizes operations; nil allows all authenticated users.
	Policy *gsi.Policy
	// Backends are the local schedulers.
	Backends Backends
	// Log is optional restart/accounting logging.
	Log *logging.Logger
	// Journal is the optional durable job-state layer (write-ahead
	// journal + snapshots). When set, every submission and transition is
	// journaled before it is acknowledged, and RecoverJournal can rebuild
	// the job table after a crash. Nil keeps the in-memory behaviour.
	Journal *journal.Journal
	// Clock defaults to the system clock.
	Clock clock.Clock
	// Env provides server-side RSL substitution variables.
	Env rsl.Env
	// Tracer, when set, records a span tree per request and accepts the
	// TRACE capability so clients can propagate their trace context.
	Tracer *telemetry.Tracer
}

// Service is the GRAM middle tier: gatekeeper plus job managers.
type Service struct {
	cfg     Config
	manager *Manager
	table   *job.Table
	server  *wire.Server
	dialer  *CallbackDialer

	mu   sync.Mutex
	addr string
}

// NewService builds a GRAM service. The job table is created when the
// listener address is known.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	s := &Service{cfg: cfg, dialer: NewCallbackDialer()}
	s.server = wire.NewServer(wire.HandlerFunc(s.serveConn))
	return s
}

// Listen binds the service to addr and returns the bound address.
func (s *Service) Listen(addr string) (string, error) {
	bound, err := s.server.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.table = job.NewTable(bound)
	s.manager = NewManager(ManagerConfig{
		Table:    s.table,
		Backends: s.cfg.Backends,
		Log:      s.cfg.Log,
		Journal:  s.cfg.Journal,
		Notify:   s.dialer,
		Clock:    s.cfg.Clock,
	})
	s.mu.Unlock()
	if s.cfg.Log != nil {
		_ = s.cfg.Log.Append(logging.Record{Time: s.cfg.Clock.Now(), Kind: logging.KindServiceStart})
	}
	return bound, nil
}

// Addr returns the bound address.
func (s *Service) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Table returns the job table (nil before Listen).
func (s *Service) Table() *job.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// Manager returns the job manager (nil before Listen).
func (s *Service) Manager() *Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manager
}

// AcceptedConns reports connections accepted so far (experiment E3).
func (s *Service) AcceptedConns() int64 { return s.server.AcceptedConns() }

// Close shuts the service down.
func (s *Service) Close() error {
	s.dialer.Close()
	err := s.server.Close()
	if jerr := s.cfg.Journal.Close(); err == nil {
		err = jerr
	}
	return err
}

// RecoverJournal rebuilds the job table from a journal replay (see
// Manager.RecoverJournal). Call it after Listen and before serving
// traffic. It returns the contacts of the resumed (non-terminal) jobs.
func (s *Service) RecoverJournal(rec *journal.Recovered) ([]string, error) {
	return s.Manager().RecoverJournal(rec, s.env)
}

// serveConn is the gatekeeper: authenticate, authorize, map to a local
// account, then serve GRAMP requests on the connection.
func (s *Service) serveConn(c *wire.Conn) {
	authStart := s.cfg.Clock.Now()
	peer, err := gsi.ServerHandshake(c, s.cfg.Credential, s.cfg.Trust, s.cfg.Clock.Now())
	if err != nil {
		return // handshake already reported AUTH-ERR where possible
	}
	// The handshake predates any trace; its timing is kept aside and
	// adopted by the connection's first traced request.
	ts := &traceState{hsStart: authStart, hsDur: s.cfg.Clock.Now().Sub(authStart)}
	ts.hsPending.Store(true)
	// The gridmap check waits for the first real request so that
	// capability negotiation (TRACE) completes even for identities the
	// gatekeeper will reject — the rejection then answers the request
	// that needed the mapping, as it did before tracing existed.
	local, mapped := "", false
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		if f.Verb == wire.VerbTrace {
			if s.cfg.Tracer == nil {
				_ = c.WriteString(VerbError, "gram: tracing not enabled")
			} else {
				_ = c.WriteString(wire.VerbTraceOK, "")
				ts.enabled = true
			}
			continue
		}
		if !mapped {
			local, err = s.cfg.Gridmap.Map(peer.Identity)
			if err != nil {
				_ = c.WriteString(VerbError, fmt.Sprintf("gatekeeper: %v", err))
				return
			}
			mapped = true
		}
		s.dispatch(c, f, peer, local, ts)
	}
}

// traceState is the per-connection tracing state: whether the peer
// negotiated the trace-context prefix, and the handshake timing waiting
// to be recorded into the connection's first traced request.
type traceState struct {
	enabled   bool
	hsStart   time.Time
	hsDur     time.Duration
	hsPending atomic.Bool
}

func (s *Service) dispatch(c *wire.Conn, f wire.Frame, peer *gsi.Peer, local string, ts *traceState) {
	ctx := context.Background()
	var root *telemetry.Span
	if ts.enabled {
		// The peer negotiated trace propagation: join its trace rather
		// than minting a server-local one.
		tc, inner, derr := wire.DecodeTraceCtx(f)
		if derr != nil {
			_ = c.WriteString(VerbError, derr.Error())
			return
		}
		f = inner
		ctx = telemetry.WithTrace(ctx, tc.Trace)
		if tc.Sampled {
			ctx, root = s.cfg.Tracer.JoinTrace(ctx, tc.Trace, tc.Parent, "request:"+f.Verb)
		}
	} else if s.cfg.Tracer != nil {
		ctx, root = s.cfg.Tracer.StartTrace(ctx, "request:"+f.Verb)
	}
	if root != nil {
		root.SetAttr("peer", peer.Identity)
		if ts.hsPending.CompareAndSwap(true, false) {
			s.cfg.Tracer.RecordSpan(root, "gsi.handshake", ts.hsStart, ts.hsDur, "")
		}
	}
	switch f.Verb {
	case VerbPing:
		_ = c.WriteString(VerbPong, "")
	case VerbSubmit:
		s.handleSubmit(ctx, c, string(f.Payload), peer, local)
	case VerbStatus:
		s.handleStatus(c, strings.TrimSpace(string(f.Payload)))
	case VerbCancel:
		s.handleCancel(c, strings.TrimSpace(string(f.Payload)))
	case VerbSignal:
		s.handleSignal(c, strings.TrimSpace(string(f.Payload)))
	default:
		_ = c.WriteString(VerbError, fmt.Sprintf("gram: unknown verb %s", f.Verb))
	}
	root.End()
}

// handleSignal parses "contact signal" and applies it.
func (s *Service) handleSignal(c *wire.Conn, payload string) {
	contact, signal, ok := strings.Cut(payload, " ")
	if !ok {
		_ = c.WriteString(VerbError, "gram: SIGNAL payload must be 'contact signal'")
		return
	}
	if err := s.manager.Signal(contact, strings.TrimSpace(signal)); err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	_ = c.WriteString(VerbSignalOK, contact)
}

func (s *Service) handleSubmit(ctx context.Context, c *wire.Conn, src string, peer *gsi.Peer, local string) {
	if err := s.cfg.Policy.Authorize(peer.Identity, gsi.OpJobSubmit, s.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	req, err := xrsl.DecodeOne(src, s.env(local))
	if err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	if req.Kind != xrsl.KindJob {
		// The whole point of the baseline: GRAM only executes jobs; info
		// queries need the separate MDS service and protocol (Figure 2).
		_ = c.WriteString(VerbError, "gram: this service accepts job submissions only; query MDS for information")
		return
	}
	contact, err := s.manager.Submit(ctx, req.Job, job.Record{
		Spec:     src,
		Owner:    local,
		Identity: peer.Identity,
	})
	if err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	_ = c.WriteString(VerbSubmitted, contact)
}

// env merges the service environment with per-user bindings, the variable
// set GRAM exposes to RSL substitution.
func (s *Service) env(local string) rsl.Env {
	env := rsl.NewEnv("LOGNAME", local, "HOME", "/home/"+local)
	for k, v := range s.cfg.Env {
		env[k] = v
	}
	return env
}

func (s *Service) handleStatus(c *wire.Conn, contact string) {
	rec, err := s.table.Get(contact)
	if err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	reply := StatusReply{
		Contact:  rec.Contact,
		State:    rec.State,
		ExitCode: rec.ExitCode,
		Error:    rec.Error,
		Stdout:   rec.Stdout,
		Stderr:   rec.Stderr,
		Restarts: rec.Restarts,
	}
	b, err := json.Marshal(reply)
	if err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbStatusOK, Payload: b})
}

func (s *Service) handleCancel(c *wire.Conn, contact string) {
	if err := s.manager.Cancel(contact); err != nil {
		_ = c.WriteString(VerbError, err.Error())
		return
	}
	_ = c.WriteString(VerbCancelOK, contact)
}
