package gram_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/logging"
	"infogram/internal/scheduler"
)

// harness bundles a GRAM service with its security fabric.
type harness struct {
	ca      *gsi.CA
	trust   *gsi.TrustStore
	gridmap *gsi.Gridmap
	svc     *gram.Service
	addr    string
	alice   *gsi.Credential
	mallory *gsi.Credential // authenticated but not in the gridmap
	logBuf  *syncBuffer
}

// syncBuffer is a concurrency-safe byte buffer: tests read the log while
// the service is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Snapshot returns a copy of the current contents.
func (b *syncBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, b.buf.Len())
	copy(out, b.buf.Bytes())
	return out
}

func newHarness(t *testing.T, policy *gsi.Policy) *harness {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, _ := ca.IssueIdentity("/O=Grid/CN=gram", time.Hour, now)
	alice, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	mallory, _ := ca.IssueIdentity("/O=Grid/CN=mallory", time.Hour, now)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")

	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("work", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "worked:" + strings.Join(args, ","), nil
	})
	fn.RegisterFunc("fail-n", failNTimes(2))
	fn.RegisterFunc("always-fail", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "", context.DeadlineExceeded
	})
	fn.RegisterFunc("slow", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(10 * time.Second):
			return "slow done", nil
		}
	})

	logBuf := &syncBuffer{}
	svc := gram.NewService(gram.Config{
		Credential: svcCred,
		Trust:      trust,
		Gridmap:    gm,
		Policy:     policy,
		Backends: gram.Backends{
			Exec: &scheduler.Fork{},
			Func: fn,
		},
		Log: logging.NewLogger(logBuf),
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return &harness{
		ca: ca, trust: trust, gridmap: gm, svc: svc, addr: addr,
		alice: alice, mallory: mallory, logBuf: logBuf,
	}
}

// failNTimes returns a JobFunc failing its first n invocations.
func failNTimes(n int) scheduler.JobFunc {
	count := 0
	return func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		count++
		if count <= n {
			return "", context.DeadlineExceeded
		}
		return "finally", nil
	}
}

func dialAlice(t *testing.T, h *harness) *gram.Client {
	t.Helper()
	cl, err := gram.Dial(h.addr, h.alice, h.trust)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func waitDone(t *testing.T, cl *gram.Client, contact string) gram.StatusReply {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
	return st
}

func TestFigure1GRAMArchitecture(t *testing.T) {
	// E2: one submit/status cycle exercises all three tiers — the client
	// tier (this test), the middle tier (gatekeeper auth + job manager),
	// and the backend tier (local job execution).
	h := newHarness(t, nil)
	cl := dialAlice(t, h)

	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	contact, err := cl.Submit("&(executable=work)(arguments=x)(jobtype=func)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !strings.HasPrefix(contact, "gram://") {
		t.Errorf("contact = %q", contact)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Done || st.Stdout != "worked:x" {
		t.Errorf("status = %+v", st)
	}
	// The gatekeeper mapped alice into her local security context; the
	// log shows the submission attributed to both identities.
	recs, err := logging.Replay(bytes.NewReader(h.logBuf.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range recs {
		if r.Kind == logging.KindSubmit && r.Owner == "alice" && r.Identity == "/O=Grid/CN=alice" {
			found = true
		}
	}
	if !found {
		t.Error("submission not logged with gridmapped owner")
	}
}

func TestGatekeeperRejectsUnmappedIdentity(t *testing.T) {
	h := newHarness(t, nil)
	cl, err := gram.Dial(h.addr, h.mallory, h.trust)
	if err != nil {
		t.Fatalf("Dial (authn should succeed): %v", err)
	}
	defer cl.Close()
	// Authentication succeeded but the gridmap has no entry: the first
	// operation returns the gatekeeper error.
	if _, err := cl.Submit("&(executable=work)(jobtype=func)"); err == nil ||
		!strings.Contains(err.Error(), "gridmap") {
		t.Errorf("expected gridmap rejection, got %v", err)
	}
}

func TestGatekeeperRejectsUntrustedClient(t *testing.T) {
	h := newHarness(t, nil)
	evil, _ := gsi.NewCA("/O=Evil/CN=CA", time.Hour, time.Now())
	cred, _ := evil.IssueIdentity("/O=Evil/CN=x", time.Hour, time.Now())
	if _, err := gram.Dial(h.addr, cred, h.trust); err == nil {
		t.Error("untrusted client connected")
	}
}

func TestAuthorizationPolicyOnSubmit(t *testing.T) {
	policy := gsi.NewPolicy(gsi.Deny)
	policy.Add(gsi.Contract{Subject: "/O=Grid/CN=alice", Operation: gsi.OpInfoQuery, Effect: gsi.Allow})
	h := newHarness(t, policy)
	cl := dialAlice(t, h)
	if _, err := cl.Submit("&(executable=work)(jobtype=func)"); err == nil {
		t.Error("job submit allowed despite job-denying policy")
	}
}

func TestGRAMRejectsInfoQueries(t *testing.T) {
	// The two-protocol baseline: GRAM is jobs-only; information requires
	// the MDS service (Figure 2).
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	_, err := cl.Submit("&(info=all)")
	if err == nil || !strings.Contains(err.Error(), "MDS") {
		t.Errorf("expected jobs-only rejection, got %v", err)
	}
}

func TestStatusUnknownContact(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	if _, err := cl.Status("gram://nowhere/1/1"); err == nil {
		t.Error("unknown contact status succeeded")
	}
}

func TestForkJobThroughService(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit(`&(executable=/bin/sh)(arguments=-c "echo $LOGNAME-was-here")` +
		`(environment=(LOGNAME $(LOGNAME)))`)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Done || !strings.Contains(st.Stdout, "alice-was-here") {
		t.Errorf("st = %+v (RSL variable substitution should inject LOGNAME)", st)
	}
}

func TestJobFailureReported(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=/bin/sh)(arguments=-c \"exit 7\")")
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Failed || st.ExitCode != 7 {
		t.Errorf("st = %+v", st)
	}
}

func TestJobRetryOnFailure(t *testing.T) {
	// E11: (restart=N) retries a failing job; the third attempt of
	// fail-n(2) succeeds.
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=fail-n)(jobtype=func)(restart=2)")
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Done || st.Stdout != "finally" {
		t.Errorf("st = %+v", st)
	}
	if st.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", st.Restarts)
	}
}

func TestJobRetryBudgetExhausted(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=always-fail)(jobtype=func)(restart=2)")
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Failed {
		t.Errorf("st = %+v", st)
	}
	if st.Restarts != 2 {
		t.Errorf("Restarts = %d", st.Restarts)
	}
}

func TestTimeoutActions(t *testing.T) {
	// E16: (timeout=...)(action=cancel) kills the command;
	// (action=exception) fails the job while the command continues.
	h := newHarness(t, nil)
	cl := dialAlice(t, h)

	t.Run("cancel", func(t *testing.T) {
		contact, err := cl.Submit("&(executable=slow)(jobtype=func)(timeout=100)(action=cancel)")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		st := waitDone(t, cl, contact)
		if st.State != job.Failed || !strings.Contains(st.Error, "timeout") {
			t.Errorf("st = %+v", st)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("cancel action did not terminate promptly")
		}
	})

	t.Run("exception", func(t *testing.T) {
		contact, err := cl.Submit("&(executable=slow)(jobtype=func)(timeout=100)(action=exception)")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		st := waitDone(t, cl, contact)
		if st.State != job.Failed || !strings.Contains(st.Error, "execution continues") {
			t.Errorf("st = %+v", st)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("exception action did not report promptly")
		}
	})
}

func TestCancelJob(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=slow)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	// Give the manager a moment to reach ACTIVE.
	time.Sleep(30 * time.Millisecond)
	if err := cl.Cancel(contact); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Failed || !strings.Contains(st.Error, "cancel") {
		t.Errorf("st = %+v", st)
	}
	// Cancelling a terminal job errors.
	if err := cl.Cancel(contact); err == nil {
		t.Error("second cancel succeeded")
	}
}

func TestSuspendResumeOverWire(t *testing.T) {
	// The GRAM SUSPENDED state driven by SIGNAL: a forked job is stopped
	// with SIGSTOP, observed as SUSPENDED, resumed, and completes.
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit(`&(executable=/bin/sh)(arguments=-c "sleep 0.2; echo finished")`)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until ACTIVE.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Status(contact)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == job.Active {
			break
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job never ACTIVE: %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cl.Signal(contact, "suspend"); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	st, err := cl.Status(contact)
	if err != nil || st.State != job.Suspended {
		t.Fatalf("state after suspend = %s (%v)", st.State, err)
	}
	// While suspended the job makes no progress well past its runtime.
	time.Sleep(400 * time.Millisecond)
	st, err = cl.Status(contact)
	if err != nil || st.State != job.Suspended {
		t.Fatalf("suspended job advanced: %s (%v)", st.State, err)
	}
	// Double-suspend is rejected.
	if err := cl.Signal(contact, "suspend"); err == nil {
		t.Error("double suspend succeeded")
	}
	if err := cl.Signal(contact, "resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	final := waitDone(t, cl, contact)
	if final.State != job.Done || !strings.Contains(final.Stdout, "finished") {
		t.Errorf("final = %+v", final)
	}
	// Signals on terminal jobs fail.
	if err := cl.Signal(contact, "resume"); err == nil {
		t.Error("resume of finished job succeeded")
	}
	if err := cl.Signal(contact, "sigterm"); err == nil {
		t.Error("unknown signal accepted")
	}
}

func TestSuspendUnsupportedBackend(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=slow)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := cl.Signal(contact, "suspend"); err == nil ||
		!strings.Contains(err.Error(), "does not support") {
		t.Errorf("func-backend suspend: %v", err)
	}
	_ = cl.Cancel(contact)
}

func TestCallbackNotification(t *testing.T) {
	// Figure 1's event-notification path: the service pushes state
	// changes to the client's callback listener.
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	listener, err := gram.NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	contact, err := cl.Submit("&(executable=work)(jobtype=func)(callback=" + listener.Contact() + ")")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, contact)

	var states []job.State
	timeout := time.After(5 * time.Second)
	for len(states) < 3 {
		select {
		case ev := <-listener.Events():
			if ev.Contact != contact {
				t.Errorf("event for wrong contact %q", ev.Contact)
			}
			states = append(states, ev.State)
		case <-timeout:
			t.Fatalf("only %d events received: %v", len(states), states)
		}
	}
	if states[0] != job.Pending || states[1] != job.Active || states[2] != job.Done {
		t.Errorf("callback states = %v", states)
	}
}

func TestCountRunsMultipleInstances(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=/bin/echo)(arguments=inst)(count=3)")
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, cl, contact)
	if st.State != job.Done {
		t.Fatalf("st = %+v", st)
	}
	if got := strings.Count(st.Stdout, "inst"); got != 3 {
		t.Errorf("instances = %d, want 3 (stdout %q)", got, st.Stdout)
	}
}

func TestMultipleClientsShareService(t *testing.T) {
	h := newHarness(t, nil)
	const n = 4
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			cl, err := gram.Dial(h.addr, h.alice, h.trust)
			if err != nil {
				done <- err
				return
			}
			defer cl.Close()
			contact, err := cl.Submit("&(executable=work)(jobtype=func)")
			if err != nil {
				done <- err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
			if err == nil && st.State != job.Done {
				err = context.DeadlineExceeded
			}
			done <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	if h.svc.AcceptedConns() != n {
		t.Errorf("AcceptedConns = %d", h.svc.AcceptedConns())
	}
}

func TestMaxWallTime(t *testing.T) {
	h := newHarness(t, nil)
	cl := dialAlice(t, h)
	contact, err := cl.Submit("&(executable=slow)(jobtype=func)(maxtime=2ms)")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st := waitDone(t, cl, contact)
	if st.State != job.Failed {
		t.Errorf("st = %+v", st)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("maxtime not enforced promptly")
	}
}
