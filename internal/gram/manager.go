// Package gram implements the baseline Globus GRAM service of paper §2 and
// Figure 1 as a pure-Go "J-GRAM" (§7): a gatekeeper that authenticates
// clients through GSI and maps them into a local security context, a job
// manager per submitted job, and a backend tier of pluggable local
// schedulers. The wire protocol (GRAMP) supports submit, status, cancel,
// and client callbacks for state-change notification.
//
// The job-manager core (RunJob) is shared with the InfoGram service, which
// the paper builds by enhancing this architecture (Figure 3).
package gram

import (
	"context"
	"fmt"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/faultinject"
	"infogram/internal/job"
	"infogram/internal/journal"
	"infogram/internal/logging"
	"infogram/internal/rsl"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
	"infogram/internal/xrsl"
)

// Backends groups the local schedulers a job manager can dispatch to,
// selected by the jobtype tag: "exec" (fork), "func" (in-process), and
// "queue" (batch system).
type Backends struct {
	Exec  scheduler.Backend
	Func  scheduler.Backend
	Queue scheduler.Backend
}

// Select returns the backend for a jobtype.
func (b Backends) Select(jobType string) (scheduler.Backend, error) {
	switch jobType {
	case "", "exec":
		if b.Exec == nil {
			return nil, fmt.Errorf("gram: no exec backend configured")
		}
		return b.Exec, nil
	case "func":
		if b.Func == nil {
			return nil, fmt.Errorf("gram: no func backend configured")
		}
		return b.Func, nil
	case "queue":
		if b.Queue == nil {
			return nil, fmt.Errorf("gram: no queue backend configured")
		}
		return b.Queue, nil
	}
	return nil, fmt.Errorf("gram: unknown jobtype %q", jobType)
}

// Notifier delivers job events to interested parties (callback contacts).
type Notifier interface {
	Notify(callbackContact string, ev job.Event)
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(callbackContact string, ev job.Event)

// Notify implements Notifier.
func (f NotifierFunc) Notify(c string, ev job.Event) { f(c, ev) }

// ManagerConfig wires a job manager's dependencies.
type ManagerConfig struct {
	Table    *job.Table
	Backends Backends
	// Log is optional; when set, submissions and transitions are
	// recorded for restart recovery and accounting.
	Log *logging.Logger
	// Journal is the optional durable job-state layer: every submission
	// and state transition is appended to it before the operation is
	// acknowledged, and a failed submission append refuses the submit. A
	// nil journal preserves the in-memory-only behaviour.
	Journal *journal.Journal
	// Notify is optional; when set, events for jobs carrying a callback
	// contact are pushed to it.
	Notify Notifier
	Clock  clock.Clock
	// SpawnLatency optionally records how long Submit takes to register a
	// job and launch its manager goroutine (telemetry span "gram-submit").
	SpawnLatency *telemetry.Histogram
	// JobsSpawned optionally counts manager goroutines launched.
	JobsSpawned *telemetry.Counter
	// MaxBacklog, when positive, refuses a submission up front if the
	// selected backend already reports at least this many pending tasks.
	// Without it a saturated queue would still accept the job, spawn its
	// manager goroutine, journal it, and only then park it behind an
	// unbounded backlog — admission control wants the refusal before any
	// of that work is done, so it can be turned into a cheap REJECT.
	MaxBacklog int
}

// Manager executes jobs: one manager goroutine per submission, mirroring
// GRAM's per-job job-manager processes.
type Manager struct {
	cfg ManagerConfig

	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	// running tracks the live backend handles of each job's current
	// attempt so Signal can reach them.
	running map[string][]scheduler.Handle
}

// NewManager builds a Manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	return &Manager{
		cfg:     cfg,
		cancels: make(map[string]context.CancelFunc),
		running: make(map[string][]scheduler.Handle),
	}
}

// Table returns the job table.
func (m *Manager) Table() *job.Table { return m.cfg.Table }

// Submit registers a job and starts its manager goroutine, returning the
// job contact. rec.Contact may be empty, in which case a fresh contact is
// allocated. A traced submission records a "gram.spawn" span covering
// registration through goroutine launch; the job's later spans
// (scheduler dispatch, state-transition journal appends) parent under it
// even though they finish after the submit acknowledges.
func (m *Manager) Submit(ctx context.Context, req *xrsl.JobRequest, rec job.Record) (string, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gram.spawn")
	contact, err := m.submit(ctx, req, rec)
	if err != nil {
		sp.Fail(err.Error())
	} else {
		sp.SetAttr("contact", contact)
	}
	sp.End()
	return contact, err
}

func (m *Manager) submit(ctx context.Context, req *xrsl.JobRequest, rec job.Record) (string, error) {
	if _, err := faultinject.Eval(ctx, faultinject.GramSpawn); err != nil {
		return "", fmt.Errorf("gram: spawn: %w", err)
	}
	// Backend selection proper happens asynchronously in the job's run
	// goroutine, but the backlog gate must decide *now*, before the job is
	// registered and journaled. Peek at the backend the jobtype will route
	// to; selection errors are deliberately ignored here so they surface
	// through the normal run path with full state accounting.
	if m.cfg.MaxBacklog > 0 {
		if backend, err := m.cfg.Backends.Select(req.JobType); err == nil {
			if d, ok := backend.(interface{ Depth() int }); ok {
				if depth := d.Depth(); depth >= m.cfg.MaxBacklog {
					return "", &scheduler.SaturatedError{
						Backend:    backend.Name(),
						Depth:      depth,
						RetryAfter: time.Duration(1+depth/m.cfg.MaxBacklog) * time.Second,
					}
				}
			}
		}
	}
	now := m.cfg.Clock.Now()
	trace := telemetry.TraceFrom(ctx)
	if rec.Contact == "" {
		rec.Contact = m.cfg.Table.NewContact(now)
	}
	rec.State = job.Unsubmitted
	rec.Submitted = now
	rec.Updated = now
	if err := m.cfg.Table.Create(rec); err != nil {
		return "", err
	}
	// The submission is journaled before anything acknowledges it: if the
	// durability layer refuses the record, the job is rolled back and the
	// client sees the submission fail — an unjournaled job could silently
	// vanish in a crash, which is exactly what the journal exists to
	// prevent.
	if err := m.cfg.Journal.Append(ctx, journal.Entry{
		Kind:     journal.KindSubmit,
		Time:     now.UnixNano(),
		Contact:  rec.Contact,
		Spec:     rec.Spec,
		Owner:    rec.Owner,
		Identity: rec.Identity,
	}); err != nil {
		m.cfg.Table.Remove(rec.Contact)
		return "", fmt.Errorf("gram: submit not durable: %w", err)
	}
	m.logRecord(logging.Record{
		Time:     now,
		Kind:     logging.KindSubmit,
		Contact:  rec.Contact,
		Spec:     rec.Spec,
		Owner:    rec.Owner,
		Identity: rec.Identity,
		Trace:    string(trace),
	})
	if err := m.transition(ctx, rec.Contact, req, job.Mutation{State: job.Pending}); err != nil {
		return "", err
	}
	// The job context deliberately detaches from the request context: the
	// job outlives the connection that submitted it. The trace ID and the
	// spawn span are carried over so the job's later spans stay
	// correlatable and parent under the submit that launched them.
	base := telemetry.WithTrace(context.Background(), trace)
	if sp := telemetry.SpanFrom(ctx); sp != nil {
		base = telemetry.ContextWithSpan(base, sp)
	}
	jobCtx, cancel := context.WithCancel(base)
	m.mu.Lock()
	m.cancels[rec.Contact] = cancel
	m.mu.Unlock()
	go func() {
		defer func() {
			cancel()
			m.mu.Lock()
			delete(m.cancels, rec.Contact)
			m.mu.Unlock()
		}()
		m.run(jobCtx, rec.Contact, req)
	}()
	m.cfg.JobsSpawned.Inc()
	spawnElapsed := m.cfg.Clock.Now().Sub(now)
	m.cfg.SpawnLatency.Observe(spawnElapsed)
	if trace != "" {
		lr := logging.Record{
			Time:      m.cfg.Clock.Now(),
			Kind:      logging.KindSpan,
			Contact:   rec.Contact,
			Trace:     string(trace),
			Span:      "gram-submit",
			ElapsedUS: spawnElapsed.Microseconds(),
		}
		if sp := telemetry.SpanFrom(ctx); sp != nil {
			lr.SpanID = sp.ID().String()
			lr.ParentID = sp.Parent().String()
		}
		m.logRecord(lr)
	}
	return rec.Contact, nil
}

// Cancel requests cancellation of a running or pending job, the GRAMP
// cancel operation a client issues through the job handle (paper §2).
func (m *Manager) Cancel(contact string) error {
	rec, err := m.cfg.Table.Get(contact)
	if err != nil {
		return err
	}
	if rec.State.Terminal() {
		return fmt.Errorf("gram: job %q already %s", contact, rec.State)
	}
	m.mu.Lock()
	cancel, ok := m.cancels[contact]
	m.mu.Unlock()
	if ok {
		cancel()
	}
	return nil
}

// transition applies a table transition, journals and logs it, and
// notifies callbacks. The journal append happens before the callback so an
// event is never observable outside the process ahead of its durable
// record; a journal failure on a transition is counted but does not abort
// the job — the accepted submission is already durable, and recovery
// re-runs any job whose tail transitions are missing.
//
// Recovery-neutral transitions are not journaled: a first-attempt PENDING
// or ACTIVE record with no restart count, no error, and no output folds
// into exactly the state recovery infers from the submission record alone
// (non-terminal, attempt zero → resubmit), so writing it buys nothing and
// costs two of the four per-job appends on the happy path.
func (m *Manager) transition(ctx context.Context, contact string, req *xrsl.JobRequest, mut job.Mutation) error {
	ev, err := m.cfg.Table.Transition(contact, mut, m.cfg.Clock.Now())
	if err != nil {
		return err
	}
	rec := logging.Record{
		Time:     ev.Time,
		Kind:     logging.KindState,
		Contact:  contact,
		State:    ev.State.String(),
		Error:    ev.Error,
		Restarts: ev.Restarts,
	}
	if ev.State.Terminal() {
		rec.ExitCode = logging.IntPtr(ev.ExitCode)
	}
	if ev.State.Terminal() || ev.Restarts > 0 || ev.Error != "" || mut.Stdout != nil || mut.Stderr != nil {
		je := journal.Entry{
			Kind:     journal.KindState,
			Time:     ev.Time.UnixNano(),
			Contact:  contact,
			State:    ev.State.String(),
			Error:    ev.Error,
			Restarts: ev.Restarts,
			Stdout:   mut.Stdout,
			Stderr:   mut.Stderr,
		}
		if ev.State.Terminal() {
			je.ExitCode = logging.IntPtr(ev.ExitCode)
		}
		_ = m.cfg.Journal.Append(ctx, je)
	}
	m.logRecord(rec)
	if m.cfg.Notify != nil && req != nil && req.CallbackContact != "" {
		m.cfg.Notify.Notify(req.CallbackContact, ev)
	}
	return nil
}

func (m *Manager) logRecord(r logging.Record) {
	if m.cfg.Log == nil {
		return
	}
	_ = m.cfg.Log.Append(r) // logging failures must not break job flow
}

// run is the per-job manager: it executes the job with fault-tolerant
// restarts (paper §6.1) and timeout actions (§6.5 Extensions).
func (m *Manager) run(ctx context.Context, contact string, req *xrsl.JobRequest) {
	m.runFrom(ctx, contact, req, 0)
}

// runFrom is run starting at a given attempt index: 0 for fresh
// submissions, the journaled restart count for jobs resumed by crash
// recovery — the interrupted attempt is re-run and only the remaining
// restart budget is consumed.
func (m *Manager) runFrom(ctx context.Context, contact string, req *xrsl.JobRequest, start int) {
	backend, err := m.cfg.Backends.Select(req.JobType)
	if err != nil {
		m.fail(ctx, contact, req, scheduler.Result{}, -1, err.Error(), start)
		return
	}

	attempts := req.Restart + 1
	for attempt := start; attempt < attempts; attempt++ {
		if attempt > start {
			// Fault-tolerant restart: FAILED -> PENDING with the restart
			// counter bumped.
			restarts := attempt
			if err := m.transition(ctx, contact, req, job.Mutation{State: job.Pending, Restarts: &restarts}); err != nil {
				return
			}
		}
		if err := m.transition(ctx, contact, req, job.Mutation{State: job.Active, Restarts: intPtr(attempt)}); err != nil {
			return
		}

		res, runErr := m.attempt(ctx, backend, contact, req)
		if ctx.Err() != nil {
			// Cancelled: no restart, report the cancellation.
			m.fail(ctx, contact, req, res, -1, "cancelled: "+ctx.Err().Error(), attempt)
			return
		}
		switch {
		case runErr == nil && res.ExitCode == 0:
			stdout, stderr := res.Stdout, res.Stderr
			_ = m.transition(ctx, contact, req, job.Mutation{
				State:    job.Done,
				Stdout:   &stdout,
				Stderr:   &stderr,
				Restarts: intPtr(attempt),
			})
			return
		case runErr == nil:
			if attempt == attempts-1 {
				m.fail(ctx, contact, req, res, res.ExitCode,
					fmt.Sprintf("exit code %d", res.ExitCode), attempt)
				return
			}
			m.fail(ctx, contact, req, res, res.ExitCode, fmt.Sprintf("exit code %d (will restart)", res.ExitCode), attempt)
		default:
			if attempt == attempts-1 {
				m.fail(ctx, contact, req, res, -1, runErr.Error(), attempt)
				return
			}
			m.fail(ctx, contact, req, res, -1, runErr.Error()+" (will restart)", attempt)
		}
	}
}

// attempt runs one execution attempt, expanding count and applying the
// timeout/action extension. A traced attempt records a "scheduler.run"
// span naming the backend.
func (m *Manager) attempt(ctx context.Context, backend scheduler.Backend, contact string, req *xrsl.JobRequest) (scheduler.Result, error) {
	ctx, sp := telemetry.StartSpan(ctx, "scheduler.run")
	sp.SetAttr("backend", backend.Name())
	res, err := m.attemptRun(ctx, backend, contact, req)
	if err != nil {
		sp.Fail(err.Error())
	}
	sp.End()
	return res, err
}

func (m *Manager) attemptRun(ctx context.Context, backend scheduler.Backend, contact string, req *xrsl.JobRequest) (scheduler.Result, error) {
	runCtx := ctx
	var cancel context.CancelFunc
	if req.MaxWallTime > 0 {
		runCtx, cancel = context.WithTimeout(ctx, req.MaxWallTime)
		defer cancel()
	}

	task := scheduler.Task{
		Executable: req.Executable,
		Args:       req.Arguments,
		Dir:        req.Directory,
		Env:        req.Environment,
		Stdin:      req.Stdin,
		Queue:      req.Queue,
		EstRuntime: req.MaxWallTime,
		Checkpoint: req.Checkpoint,
		OnCheckpoint: func(data string) {
			// Checkpoints feed the journal, the log, and the in-memory
			// request so a later retry (or a restarted service) resumes
			// from here.
			req.Checkpoint = data
			now := m.cfg.Clock.Now()
			_ = m.cfg.Journal.Append(ctx, journal.Entry{
				Kind:       journal.KindCheckpoint,
				Time:       now.UnixNano(),
				Contact:    contact,
				Checkpoint: data,
			})
			m.logRecord(logging.Record{
				Time:       now,
				Kind:       logging.KindCheckpoint,
				Contact:    contact,
				Checkpoint: data,
			})
		},
	}

	handles := make([]scheduler.Handle, 0, req.Count)
	for i := 0; i < req.Count; i++ {
		h, err := backend.Submit(runCtx, task)
		if err != nil {
			for _, prev := range handles {
				prev.Cancel()
			}
			return scheduler.Result{}, err
		}
		handles = append(handles, h)
	}
	m.mu.Lock()
	m.running[contact] = handles
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.running, contact)
		m.mu.Unlock()
	}()

	if req.Timeout > 0 {
		return m.waitWithTimeout(runCtx, handles, req)
	}
	return waitAll(runCtx, handles)
}

// Signal delivers a suspend or resume request to a job's running backend
// handles, driving the GRAM SUSPENDED state (paper §2's job-manager
// control operations).
func (m *Manager) Signal(contact, signal string) error {
	rec, err := m.cfg.Table.Get(contact)
	if err != nil {
		return err
	}
	m.mu.Lock()
	handles := make([]scheduler.Handle, len(m.running[contact]))
	copy(handles, m.running[contact])
	m.mu.Unlock()

	switch signal {
	case "suspend":
		if rec.State != job.Active {
			return fmt.Errorf("gram: job %q is %s, not ACTIVE", contact, rec.State)
		}
		if err := signalAll(handles, true); err != nil {
			return err
		}
		if err := m.transitionState(contact, job.Suspended); err != nil {
			// The job completed concurrently with the stop signal; undo
			// the stop so nothing lingers and report the terminal state.
			_ = signalAll(handles, false)
			return fmt.Errorf("gram: job %q completed during suspend: %w", contact, err)
		}
		return nil
	case "resume":
		if rec.State != job.Suspended {
			return fmt.Errorf("gram: job %q is %s, not SUSPENDED", contact, rec.State)
		}
		// Mark ACTIVE before waking the process: the instant SIGCONT
		// lands the job may finish, and SUSPENDED -> DONE would race a
		// late ACTIVE transition.
		if err := m.transitionState(contact, job.Active); err != nil {
			return err
		}
		if err := signalAll(handles, false); err != nil {
			_ = m.transitionState(contact, job.Suspended)
			return err
		}
		return nil
	default:
		return fmt.Errorf("gram: unknown signal %q (want suspend or resume)", signal)
	}
}

// transitionState applies a bare state transition without callback data.
func (m *Manager) transitionState(contact string, st job.State) error {
	return m.transition(context.Background(), contact, nil, job.Mutation{State: st})
}

// signalAll suspends or resumes every handle; backends without suspend
// support fail the operation.
func signalAll(handles []scheduler.Handle, suspend bool) error {
	if len(handles) == 0 {
		return fmt.Errorf("gram: job has no running backend task")
	}
	for _, h := range handles {
		s, ok := h.(scheduler.Suspender)
		if !ok {
			return fmt.Errorf("gram: backend does not support suspension")
		}
		var err error
		if suspend {
			err = s.Suspend()
		} else {
			err = s.Resume()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// waitWithTimeout implements (timeout=...)(action=cancel|exception).
func (m *Manager) waitWithTimeout(ctx context.Context, handles []scheduler.Handle, req *xrsl.JobRequest) (scheduler.Result, error) {
	type outcome struct {
		res scheduler.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := waitAll(ctx, handles)
		done <- outcome{res, err}
	}()
	timer := time.NewTimer(req.Timeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
		switch req.Action {
		case xrsl.ActionCancel:
			// Cancel the command (the paper's (action=cancel)).
			for _, h := range handles {
				h.Cancel()
			}
			o := <-done
			if o.err != nil {
				return o.res, fmt.Errorf("gram: timeout after %s: job cancelled", req.Timeout)
			}
			return o.res, fmt.Errorf("gram: timeout after %s: job cancelled", req.Timeout)
		case xrsl.ActionException:
			// Report the exception but let the command keep executing
			// (the paper's (action=exception)).
			return scheduler.Result{}, fmt.Errorf("gram: timeout after %s: execution continues", req.Timeout)
		default:
			o := <-done
			return o.res, o.err
		}
	case <-ctx.Done():
		for _, h := range handles {
			h.Cancel()
		}
		o := <-done
		return o.res, fmt.Errorf("gram: %w", ctx.Err())
	}
}

// waitAll waits for every instance of a count>1 job; the combined result
// carries the first non-zero exit code and concatenated output.
func waitAll(ctx context.Context, handles []scheduler.Handle) (scheduler.Result, error) {
	var combined scheduler.Result
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			return combined, err
		}
		if i == 0 {
			combined = res
		} else {
			combined.Stdout += res.Stdout
			combined.Stderr += res.Stderr
			combined.FinishedAt = res.FinishedAt
		}
		if res.ExitCode != 0 && combined.ExitCode == 0 {
			combined.ExitCode = res.ExitCode
		}
	}
	return combined, nil
}

// fail transitions a job to FAILED, preserving whatever output the failed
// attempt produced.
func (m *Manager) fail(ctx context.Context, contact string, req *xrsl.JobRequest, res scheduler.Result, exitCode int, msg string, attempt int) {
	stdout, stderr := res.Stdout, res.Stderr
	_ = m.transition(ctx, contact, req, job.Mutation{
		State:    job.Failed,
		ExitCode: exitCode,
		Error:    msg,
		Stdout:   &stdout,
		Stderr:   &stderr,
		Restarts: intPtr(attempt),
	})
}

func intPtr(n int) *int { return &n }

// restoreTerminal re-inserts a terminal job exactly as journaled, so
// STATUS keeps answering for pre-crash contacts with the recorded output.
func (m *Manager) restoreTerminal(js journal.JobState) error {
	return m.cfg.Table.Create(job.Record{
		Contact:   js.Contact,
		Spec:      js.Spec,
		Owner:     js.Owner,
		Identity:  js.Identity,
		State:     js.State,
		ExitCode:  js.ExitCode,
		Error:     js.Error,
		Stdout:    js.Stdout,
		Stderr:    js.Stderr,
		Restarts:  js.Restarts,
		Submitted: js.Submitted,
		Updated:   js.Updated,
	})
}

// restoreFailed registers a journaled job that cannot be resumed and
// immediately fails it with a recovery annotation, so the outcome is
// visible to STATUS rather than silently dropped.
func (m *Manager) restoreFailed(js journal.JobState, msg string) error {
	now := m.cfg.Clock.Now()
	rec := job.Record{
		Contact:   js.Contact,
		Spec:      js.Spec,
		Owner:     js.Owner,
		Identity:  js.Identity,
		State:     job.Unsubmitted,
		Submitted: js.Submitted,
		Updated:   now,
	}
	if rec.Submitted.IsZero() {
		rec.Submitted = now
	}
	if err := m.cfg.Table.Create(rec); err != nil {
		return err
	}
	return m.transition(context.Background(), js.Contact, nil, job.Mutation{
		State:    job.Failed,
		ExitCode: -1,
		Error:    msg,
		Restarts: intPtr(js.Restarts),
	})
}

// Resume re-registers a journaled, non-terminal job under its original
// contact and restarts its manager goroutine. Execution starts at the
// journaled restart count (clamped to the request's restart budget), so
// the interrupted attempt is re-run rather than the job gaining a fresh
// budget. The submission is not re-journaled: the journal seeded its
// folded state from the very records being recovered, so the next
// snapshot already covers this job.
func (m *Manager) Resume(req *xrsl.JobRequest, js journal.JobState) error {
	now := m.cfg.Clock.Now()
	rec := job.Record{
		Contact:   js.Contact,
		Spec:      js.Spec,
		Owner:     js.Owner,
		Identity:  js.Identity,
		State:     job.Unsubmitted,
		Submitted: js.Submitted,
		Updated:   now,
	}
	if rec.Submitted.IsZero() {
		rec.Submitted = now
	}
	if err := m.cfg.Table.Create(rec); err != nil {
		return err
	}
	start := js.Restarts
	if start > req.Restart {
		start = req.Restart
	}
	if start < 0 {
		start = 0
	}
	if _, err := m.cfg.Backends.Select(req.JobType); err != nil {
		// The backend the job ran on does not exist in this process: it
		// cannot be re-attached, only reported.
		m.fail(context.Background(), js.Contact, req, scheduler.Result{}, -1,
			"recovery: "+err.Error(), start)
		return nil
	}
	if err := m.transition(context.Background(), js.Contact, req, job.Mutation{
		State: job.Pending, Restarts: intPtr(start),
	}); err != nil {
		return err
	}
	jobCtx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	m.cancels[js.Contact] = cancel
	m.mu.Unlock()
	go func() {
		defer func() {
			cancel()
			m.mu.Lock()
			delete(m.cancels, js.Contact)
			m.mu.Unlock()
		}()
		m.runFrom(jobCtx, js.Contact, req, start)
	}()
	m.cfg.JobsSpawned.Inc()
	return nil
}

// RecoverJournal rebuilds the job table from a journal replay. Terminal
// jobs are restored verbatim; non-terminal jobs are resubmitted to their
// backends under their original contacts, resuming from the last
// journaled checkpoint and honouring the remaining restart budget. Jobs
// whose spec no longer decodes — or whose backend is absent — come back
// FAILED with a "recovery:" annotation instead of vanishing. It returns
// the contacts of the jobs that were resumed.
func (m *Manager) RecoverJournal(rec *journal.Recovered, envFor func(owner string) rsl.Env) ([]string, error) {
	if rec == nil {
		return nil, nil
	}
	var resumed []string
	replayed := 0
	for _, js := range rec.Jobs {
		if js.State.Terminal() {
			if err := m.restoreTerminal(js); err != nil {
				return resumed, fmt.Errorf("gram: recover %q: %w", js.Contact, err)
			}
			continue
		}
		replayed++
		req, err := xrsl.DecodeOne(js.Spec, envFor(js.Owner))
		if err != nil || req.Kind != xrsl.KindJob {
			msg := "recovery: spec is not a restartable job"
			if err != nil {
				msg = "recovery: " + err.Error()
			}
			if rerr := m.restoreFailed(js, msg); rerr != nil {
				return resumed, fmt.Errorf("gram: recover %q: %w", js.Contact, rerr)
			}
			continue
		}
		// Resume from the last checkpoint the crashed run journaled (§10).
		req.Job.Checkpoint = js.Checkpoint
		if err := m.Resume(req.Job, js); err != nil {
			return resumed, fmt.Errorf("gram: recover %q: %w", js.Contact, err)
		}
		resumed = append(resumed, js.Contact)
	}
	m.cfg.Journal.NoteRecovered(replayed)
	return resumed, nil
}
