package gram

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// Client speaks GRAMP to a GRAM (or InfoGram) job endpoint over one
// authenticated connection. It corresponds to the client tier of Figure 1:
// submit a job, poll its status through the job handle, cancel it, or
// receive event notifications through a callback listener.
type Client struct {
	conn    *wire.Conn
	peer    *gsi.Peer
	clk     clock.Clock
	timeout time.Duration
	traced  bool // server accepted the TRACE capability
}

// Dial connects and authenticates to a GRAM service at addr.
func Dial(addr string, cred *gsi.Credential, trust *gsi.TrustStore) (*Client, error) {
	return DialClock(addr, cred, trust, clock.System)
}

// DialTimeout is Dial with a bound on connection establishment, the
// handshake, and every subsequent request/response exchange. Zero means
// unbounded.
func DialTimeout(addr string, cred *gsi.Credential, trust *gsi.TrustStore, timeout time.Duration) (*Client, error) {
	return dial(addr, cred, trust, clock.System, timeout)
}

// DialClock is Dial with an injected clock for tests.
func DialClock(addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock) (*Client, error) {
	return dial(addr, cred, trust, clk, 0)
}

func dial(addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock, timeout time.Duration) (*Client, error) {
	var conn *wire.Conn
	var err error
	if timeout > 0 {
		conn, err = wire.DialTimeout(addr, timeout)
	} else {
		conn, err = wire.Dial(addr)
	}
	if err != nil {
		return nil, fmt.Errorf("gram: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, clk: clk, timeout: timeout}
	ctx, cancel := c.callCtx()
	defer cancel()
	peer, err := gsi.ClientHandshakeContext(ctx, conn, cred, trust, clk.Now())
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.peer = peer
	// Offer trace propagation; an old server declines with ERROR and the
	// client simply sends unprefixed frames.
	traced, err := wire.NegotiateTrace(ctx, conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.traced = traced
	return c, nil
}

// callCtx bounds one exchange by the client's timeout; without one the
// context is merely cancellable.
func (c *Client) callCtx() (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(context.Background(), c.timeout)
	}
	return context.WithCancel(context.Background())
}

// call performs one deadline-bounded request/response exchange. On a
// trace-negotiated connection each request carries a freshly minted,
// sampled trace context so the server records a span tree for it.
func (c *Client) call(req wire.Frame) (wire.Frame, error) {
	if c.traced {
		req = wire.EncodeTraceCtx(wire.TraceContext{Trace: telemetry.NewTraceID(), Sampled: true}, req)
	}
	ctx, cancel := c.callCtx()
	defer cancel()
	return c.conn.CallContext(ctx, req)
}

// Server returns the authenticated server identity.
func (c *Client) Server() *gsi.Peer { return c.peer }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// errorReply converts an ERROR frame to an error.
func errorReply(f wire.Frame) error {
	return fmt.Errorf("gram: server error: %s", strings.TrimSpace(string(f.Payload)))
}

// Ping checks service liveness.
func (c *Client) Ping() error {
	resp, err := c.call(wire.Frame{Verb: VerbPing})
	if err != nil {
		return err
	}
	if resp.Verb != VerbPong {
		return errorReply(resp)
	}
	return nil
}

// Submit sends an RSL job specification and returns the job contact.
func (c *Client) Submit(rslSrc string) (string, error) {
	resp, err := c.call(wire.Frame{Verb: VerbSubmit, Payload: []byte(rslSrc)})
	if err != nil {
		return "", err
	}
	if resp.Verb != VerbSubmitted {
		return "", errorReply(resp)
	}
	return string(resp.Payload), nil
}

// Status polls a job by contact.
func (c *Client) Status(contact string) (StatusReply, error) {
	resp, err := c.call(wire.Frame{Verb: VerbStatus, Payload: []byte(contact)})
	if err != nil {
		return StatusReply{}, err
	}
	if resp.Verb != VerbStatusOK {
		return StatusReply{}, errorReply(resp)
	}
	var reply StatusReply
	if err := json.Unmarshal(resp.Payload, &reply); err != nil {
		return StatusReply{}, fmt.Errorf("gram: decode status: %w", err)
	}
	return reply, nil
}

// Cancel cancels a job by contact.
func (c *Client) Cancel(contact string) error {
	resp, err := c.call(wire.Frame{Verb: VerbCancel, Payload: []byte(contact)})
	if err != nil {
		return err
	}
	if resp.Verb != VerbCancelOK {
		return errorReply(resp)
	}
	return nil
}

// Signal suspends or resumes a job ("suspend" / "resume").
func (c *Client) Signal(contact, signal string) error {
	resp, err := c.call(wire.Frame{Verb: VerbSignal, Payload: []byte(contact + " " + signal)})
	if err != nil {
		return err
	}
	if resp.Verb != VerbSignalOK {
		return errorReply(resp)
	}
	return nil
}

// WaitTerminal polls until the job reaches DONE or FAILED, with the given
// poll interval (the paper's polling alternative to event notification).
func (c *Client) WaitTerminal(ctx context.Context, contact string, poll time.Duration) (StatusReply, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(contact)
		if err != nil {
			return StatusReply{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// CallbackListener receives job event notifications pushed by the service,
// the event-notification path of Figure 1. Its contact address goes into
// the RSL callback tag.
type CallbackListener struct {
	server *wire.Server
	events chan job.Event
	addr   string
}

// NewCallbackListener starts a listener on an ephemeral port.
func NewCallbackListener() (*CallbackListener, error) {
	l := &CallbackListener{events: make(chan job.Event, 64)}
	l.server = wire.NewServer(wire.HandlerFunc(l.serve))
	addr, err := l.server.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.addr = addr
	return l, nil
}

// Contact returns the address to put in the RSL callback tag.
func (l *CallbackListener) Contact() string { return l.addr }

// Events returns the stream of received events.
func (l *CallbackListener) Events() <-chan job.Event { return l.events }

// Close stops the listener.
func (l *CallbackListener) Close() error { return l.server.Close() }

func (l *CallbackListener) serve(c *wire.Conn) {
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		if f.Verb != VerbCallback {
			continue
		}
		var ev job.Event
		if err := json.Unmarshal(f.Payload, &ev); err != nil {
			continue
		}
		select {
		case l.events <- ev:
		default:
			// Drop rather than block the service's dialer.
		}
	}
}
