package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.StdDev() != 0 {
		t.Errorf("zero value not empty: %+v", w)
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic data set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := w.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("Mean = %v", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("Variance with n=1 should be 0, got %v", w.Variance())
	}
}

// TestWelfordMatchesNaive checks Welford against the two-pass formula on
// random data.
func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(xs []float64) bool {
		// Constrain to finite, moderate values.
		data := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			data = append(data, x)
		}
		if len(data) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range data {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(data))
		var ss float64
		for _, x := range data {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(data)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(w.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(w.Variance()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesConcurrent(t *testing.T) {
	var s Series
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				s.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Count != workers*each {
		t.Errorf("Count = %d, want %d", st.Count, workers*each)
	}
	if diff := st.Mean - time.Millisecond; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Mean = %v, want ~1ms", st.Mean)
	}
	if st.StdDev > time.Microsecond {
		t.Errorf("StdDev = %v, want ~0 for constant data", st.StdDev)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Count: 3, Mean: 1500 * time.Millisecond, StdDev: 250 * time.Millisecond}
	s := st.String()
	want := "n=3 mean=1.500000s stddev=0.250000s"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

func TestCatalogue(t *testing.T) {
	c := NewCatalogue()
	if _, ok := c.Stats("Memory"); ok {
		t.Error("Stats on empty catalogue should report !ok")
	}
	c.Observe("Memory", 10*time.Millisecond)
	c.Observe("Memory", 30*time.Millisecond)
	c.Observe("CPU", 5*time.Millisecond)

	st, ok := c.Stats("Memory")
	if !ok || st.Count != 2 {
		t.Fatalf("Memory stats = %+v ok=%v", st, ok)
	}
	if diff := st.Mean - 20*time.Millisecond; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Memory mean = %v, want ~20ms", st.Mean)
	}
	kws := c.Keywords()
	if len(kws) != 2 || kws[0] != "CPU" || kws[1] != "Memory" {
		t.Errorf("Keywords = %v", kws)
	}
}

func TestCatalogueConcurrent(t *testing.T) {
	c := NewCatalogue()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kw := []string{"a", "b", "c"}[i%3]
			for j := 0; j < 500; j++ {
				c.Observe(kw, time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for _, kw := range c.Keywords() {
		st, _ := c.Stats(kw)
		total += st.Count
	}
	if total != 8*500 {
		t.Errorf("total observations = %d, want 4000", total)
	}
}

func TestCatalogueConcurrentReadersAndWriters(t *testing.T) {
	// Stats and Keywords must be safe while Observe runs: the selfmetrics
	// provider and the performance tag read the catalogue on the request
	// path while providers are still executing. Run with -race.
	c := NewCatalogue()
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			kw := []string{"x", "y"}[i%2]
			for j := 0; j < 300; j++ {
				c.Observe(kw, time.Duration(j)*time.Microsecond)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, kw := range c.Keywords() {
					if st, ok := c.Stats(kw); ok && st.Count < 0 {
						t.Error("negative count")
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if st, ok := c.Stats("x"); !ok || st.Count != 600 {
		t.Errorf("Stats(x) = %+v, %v", st, ok)
	}
	if st, ok := c.Stats("y"); !ok || st.Count != 600 {
		t.Errorf("Stats(y) = %+v, %v", st, ok)
	}
}
