// Package metrics implements the runtime performance catalogue behind the
// xRSL "performance" tag (paper §6.5): for every information value the
// service measures how long it takes to obtain it and reports the running
// mean and standard deviation. Statistics use Welford's online algorithm
// so they are single-pass and numerically stable.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Welford accumulates a running mean and variance. The zero value is an
// empty accumulator ready for use. Not safe for concurrent use; wrap in a
// Series for that.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator), or 0 when fewer
// than two observations exist.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Series is a concurrency-safe Welford accumulator for durations, used per
// information-provider keyword.
type Series struct {
	mu sync.Mutex
	w  Welford
}

// Observe records one duration sample.
func (s *Series) Observe(d time.Duration) {
	s.mu.Lock()
	s.w.Add(d.Seconds())
	s.mu.Unlock()
}

// Snapshot returns the current statistics.
func (s *Series) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Count:  s.w.Count(),
		Mean:   time.Duration(s.w.Mean() * float64(time.Second)),
		StdDev: time.Duration(s.w.StdDev() * float64(time.Second)),
	}
}

// Stats is a point-in-time summary of a Series.
type Stats struct {
	Count  int64
	Mean   time.Duration
	StdDev time.Duration
}

// String renders the stats the way the performance tag reports them:
// seconds with standard deviation.
func (st Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.6fs stddev=%.6fs",
		st.Count, st.Mean.Seconds(), st.StdDev.Seconds())
}

// Catalogue tracks one Series per keyword. It backs the
// getAverageUpdateTime method of the paper's SystemInformation interface
// and the performance tag of xRSL.
type Catalogue struct {
	mu     sync.Mutex
	series map[string]*Series
}

// NewCatalogue returns an empty catalogue.
func NewCatalogue() *Catalogue {
	return &Catalogue{series: make(map[string]*Series)}
}

// Observe records a duration sample for keyword.
func (c *Catalogue) Observe(keyword string, d time.Duration) {
	c.seriesFor(keyword).Observe(d)
}

// Stats returns the statistics for keyword; ok is false if the keyword has
// never been observed.
func (c *Catalogue) Stats(keyword string) (Stats, bool) {
	c.mu.Lock()
	s, ok := c.series[keyword]
	c.mu.Unlock()
	if !ok {
		return Stats{}, false
	}
	return s.Snapshot(), true
}

// Keywords returns the observed keywords in sorted order.
func (c *Catalogue) Keywords() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.series))
	for k := range c.series {
		out = append(out, k)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

func (c *Catalogue) seriesFor(keyword string) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.series[keyword]
	if !ok {
		s = &Series{}
		c.series[keyword] = s
	}
	return s
}
