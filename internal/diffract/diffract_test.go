package diffract

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(3, 4, 42, PhaseA)
	b := Generate(3, 4, 42, PhaseA)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("pattern not deterministic at (%d,%d)", i, j)
			}
		}
	}
	// Different seed differs somewhere (the noise term).
	c := Generate(3, 4, 43, PhaseA)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical patterns")
	}
}

func TestGenerateShape(t *testing.T) {
	p := Generate(0, 0, 1, PhaseA)
	if len(p) != PatternSize || len(p[0]) != PatternSize {
		t.Fatalf("pattern is %dx%d", len(p), len(p[0]))
	}
	for i := range p {
		for j := range p[i] {
			if p[i][j] < 0 || math.IsNaN(p[i][j]) {
				t.Fatalf("bad intensity at (%d,%d): %v", i, j, p[i][j])
			}
		}
	}
}

func TestAnalyzeClassifiesPhases(t *testing.T) {
	for _, phase := range []Phase{PhaseA, PhaseB} {
		correct := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			pat := Generate(i, i*7, uint64(i), phase)
			a := Analyze(i, i*7, pat)
			if a.Phase == phase {
				correct++
			}
		}
		if correct < trials*9/10 {
			t.Errorf("phase %s: %d/%d correct", phase, correct, trials)
		}
	}
}

func TestAnalyzeOrientationEstimate(t *testing.T) {
	pat := Generate(0, 0, 7, PhaseB)
	a := Analyze(0, 0, pat)
	want := math.Pi / 7
	if math.Abs(a.Orientation-want) > 0.15 {
		t.Errorf("orientation = %v, want ~%v", a.Orientation, want)
	}
	if a.PeakIntensity <= 0 {
		t.Errorf("peak intensity = %v", a.PeakIntensity)
	}
}

func TestSpecimenPhaseStructure(t *testing.T) {
	const w, h = 16, 16
	// The top row (y=0) is phase A, the bottom row phase B somewhere.
	sawA, sawB := false, false
	for x := 0; x < w; x++ {
		if SpecimenPhase(x, 0, w, h) == PhaseA {
			sawA = true
		}
		if SpecimenPhase(x, h-1, w, h) == PhaseB {
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Errorf("specimen lacks both domains: A=%v B=%v", sawA, sawB)
	}
}

func TestAnalyzePointAccuracy(t *testing.T) {
	// End-to-end per-point pipeline: regenerate + analyse; the domain map
	// recovered from a full scan matches ground truth closely (E14's
	// scientific payload).
	const w, h = 12, 12
	m := NewDomainMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := AnalyzePoint(x, y, w, h, 99)
			m.Set(x, y, a.Phase)
		}
	}
	if acc := m.Accuracy(99); acc < 0.9 {
		t.Errorf("domain map accuracy = %v, want >= 0.9", acc)
	}
}

func TestSpectrum(t *testing.T) {
	pat := Generate(0, 0, 5, PhaseA)
	spec := Spectrum(pat)
	if len(spec) != PatternSize {
		t.Fatalf("spectrum size %d", len(spec))
	}
	// DC component equals the total intensity.
	var total float64
	for i := range pat {
		for j := range pat[i] {
			total += pat[i][j]
		}
	}
	if math.Abs(spec[0][0]-total)/total > 1e-9 {
		t.Errorf("DC = %v, want %v", spec[0][0], total)
	}
	// Parseval-ish sanity: spectrum is non-negative everywhere.
	for i := range spec {
		for j := range spec[i] {
			if spec[i][j] < 0 || math.IsNaN(spec[i][j]) {
				t.Fatalf("bad magnitude at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpectrumLinearity(t *testing.T) {
	// |DFT(2x)| = 2|DFT(x)|.
	pat := Generate(1, 1, 3, PhaseA)
	doubled := make(Pattern, len(pat))
	for i := range pat {
		doubled[i] = make([]float64, len(pat[i]))
		for j := range pat[i] {
			doubled[i][j] = 2 * pat[i][j]
		}
	}
	s1 := Spectrum(pat)
	s2 := Spectrum(doubled)
	for i := range s1 {
		for j := range s1[i] {
			if math.Abs(s2[i][j]-2*s1[i][j]) > 1e-6*(1+s1[i][j]) {
				t.Fatalf("linearity violated at (%d,%d): %v vs %v", i, j, s2[i][j], 2*s1[i][j])
			}
		}
	}
}

func TestArgsRoundTrip(t *testing.T) {
	prop := func(x, y uint8, w, h uint8, seed uint64) bool {
		width, height := int(w)+1, int(h)+1
		args := EncodeArgs(int(x), int(y), width, height, seed)
		gx, gy, gw, gh, gs, err := DecodeArgs(args)
		return err == nil && gx == int(x) && gy == int(y) &&
			gw == width && gh == height && gs == seed
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if _, _, _, _, _, err := DecodeArgs([]string{"1", "2"}); err == nil {
		t.Error("short args accepted")
	}
	if _, _, _, _, _, err := DecodeArgs([]string{"a", "b", "c", "d", "e"}); err == nil {
		t.Error("non-numeric args accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	a := Analysis{X: 3, Y: 9, Orientation: 0.4488, PeakIntensity: 1.25, Phase: PhaseB}
	line := FormatResult(a)
	back, err := ParseResult(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.X != a.X || back.Y != a.Y || back.Phase != a.Phase {
		t.Errorf("back = %+v", back)
	}
	if math.Abs(back.Orientation-a.Orientation) > 1e-3 {
		t.Errorf("orientation = %v", back.Orientation)
	}
	if _, err := ParseResult("garbage"); err == nil {
		t.Error("garbage parsed")
	}
}

func TestDomainMapAccessors(t *testing.T) {
	m := NewDomainMap(4, 3)
	m.Set(2, 1, PhaseB)
	if m.At(2, 1) != PhaseB || m.At(0, 0) != PhaseA {
		t.Error("Set/At broken")
	}
	if (&DomainMap{}).Accuracy(1) != 0 {
		t.Error("empty map accuracy should be 0")
	}
}
