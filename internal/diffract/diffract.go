// Package diffract implements the "computationally mediated sciences"
// workload of paper §8: a focused electron probe scans a two-dimensional
// field of a specimen; at each point a two-dimensional electron diffraction
// pattern is acquired, and analysing the spatial variation of the patterns
// reveals microstructural domains (ferro-/electro-magnetic domain formation
// and motion).
//
// The paper's instrument is a synchrotron/photon source; per DESIGN.md we
// substitute a deterministic synthetic pattern generator with the same
// computational shape: many independent per-point analyses, each a 2D
// spectral computation, scheduled across a sporadic grid via InfoGram.
package diffract

import (
	"fmt"
	"math"
	"strconv"
)

// PatternSize is the edge length of a diffraction pattern in pixels.
const PatternSize = 32

// Pattern is one 2D diffraction pattern (PatternSize x PatternSize
// intensities).
type Pattern [][]float64

// Phase identifies the microstructural domain a specimen point belongs to.
type Phase int

// Domain phases of the synthetic specimen.
const (
	// PhaseA is the reference lattice orientation.
	PhaseA Phase = iota
	// PhaseB is the rotated domain: its lattice peaks sit at a different
	// orientation, the subtle change a researcher looks for.
	PhaseB
)

// String renders the phase.
func (p Phase) String() string {
	if p == PhaseB {
		return "B"
	}
	return "A"
}

// lcg is a deterministic pseudo-random source so patterns regenerate
// identically on any resource from (x, y, seed) alone.
type lcg struct{ state uint64 }

func (r *lcg) next() float64 {
	// Numerical Recipes LCG constants.
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / float64(1<<53)
}

// SpecimenPhase defines the ground-truth domain structure of the synthetic
// specimen: a tilted boundary splits the field into two domains, with a
// sinusoidal wobble so the boundary is not axis-aligned.
func SpecimenPhase(x, y, width, height int) Phase {
	fx := float64(x) / float64(max(width-1, 1))
	fy := float64(y) / float64(max(height-1, 1))
	boundary := 0.5 + 0.18*math.Sin(3*math.Pi*fx)
	if fy > boundary {
		return PhaseB
	}
	return PhaseA
}

// orientation returns the lattice angle for a phase, in radians.
func orientation(p Phase) float64 {
	if p == PhaseB {
		return math.Pi / 7 // ~25.7 degrees rotation for domain B
	}
	return 0
}

// Generate produces the diffraction pattern for specimen point (x, y): a
// set of Bragg-like peaks at the domain's lattice orientation plus
// deterministic shot noise.
func Generate(x, y int, seed uint64, phase Phase) Pattern {
	pat := make(Pattern, PatternSize)
	for i := range pat {
		pat[i] = make([]float64, PatternSize)
	}
	rng := &lcg{state: seed ^ uint64(x)*2654435761 ^ uint64(y)*40503}
	theta := orientation(phase)
	cos, sin := math.Cos(theta), math.Sin(theta)

	// Lattice peaks: reciprocal-lattice points at radius r along the
	// rotated axes, mirrored (a diffraction pattern is centro-symmetric).
	const peakRadius = 9.0
	center := float64(PatternSize) / 2
	addPeak := func(dx, dy float64) {
		px := center + dx*cos - dy*sin
		py := center + dx*sin + dy*cos
		for i := 0; i < PatternSize; i++ {
			for j := 0; j < PatternSize; j++ {
				d2 := (float64(i)-py)*(float64(i)-py) + (float64(j)-px)*(float64(j)-px)
				pat[i][j] += math.Exp(-d2 / 1.5)
			}
		}
	}
	addPeak(peakRadius, 0)
	addPeak(-peakRadius, 0)
	addPeak(0, peakRadius)
	addPeak(0, -peakRadius)
	// Central beam.
	addPeak(0, 0)

	// Shot noise at 5% of peak intensity.
	for i := range pat {
		for j := range pat[i] {
			pat[i][j] += 0.05 * rng.next()
		}
	}
	return pat
}

// Analysis is the result of analysing one pattern.
type Analysis struct {
	X, Y int
	// Orientation is the estimated lattice angle in radians, folded into
	// [0, pi/2).
	Orientation float64
	// PeakIntensity is the strongest off-center peak intensity.
	PeakIntensity float64
	// Phase is the classified domain.
	Phase Phase
}

// Analyze estimates the lattice orientation of a pattern by locating the
// strongest off-center peak and classifies the domain phase.
func Analyze(x, y int, pat Pattern) Analysis {
	center := float64(PatternSize) / 2
	bestI, bestJ, bestV := 0, 0, -1.0
	for i := 0; i < PatternSize; i++ {
		for j := 0; j < PatternSize; j++ {
			di, dj := float64(i)-center, float64(j)-center
			r := math.Hypot(di, dj)
			if r < 4 { // skip the central beam
				continue
			}
			if pat[i][j] > bestV {
				bestV = pat[i][j]
				bestI, bestJ = i, j
			}
		}
	}
	di := float64(bestI) - center
	dj := float64(bestJ) - center
	angle := math.Atan2(di, dj)
	// Fold the centro-symmetric, 4-fold-symmetric angle into [0, pi/2).
	angle = math.Mod(angle+2*math.Pi, math.Pi/2)

	phase := PhaseA
	// Phase B sits at pi/7 (~0.449); the fold of phase A is 0 (or near
	// pi/2). Classify by distance to the two references.
	refB := math.Pi / 7
	dA := math.Min(angle, math.Abs(angle-math.Pi/2))
	dB := math.Abs(angle - refB)
	if dB < dA {
		phase = PhaseB
	}
	return Analysis{X: x, Y: y, Orientation: angle, PeakIntensity: bestV, Phase: phase}
}

// AnalyzePoint regenerates the pattern for (x, y) from the scan geometry
// and analyses it; this is the unit of work submitted as a grid job.
func AnalyzePoint(x, y, width, height int, seed uint64) Analysis {
	truth := SpecimenPhase(x, y, width, height)
	pat := Generate(x, y, seed, truth)
	return Analyze(x, y, pat)
}

// Spectrum computes the 2D discrete Fourier transform magnitude of a
// pattern using row-column decomposition; analysis pipelines use it to
// study periodicity beyond single peaks.
func Spectrum(pat Pattern) Pattern {
	n := len(pat)
	// Precompute twiddle factors.
	cosT := make([][]float64, n)
	sinT := make([][]float64, n)
	for k := range cosT {
		cosT[k] = make([]float64, n)
		sinT[k] = make([]float64, n)
		for t := 0; t < n; t++ {
			arg := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			cosT[k][t] = math.Cos(arg)
			sinT[k][t] = math.Sin(arg)
		}
	}
	// Row transform.
	rowRe := make([][]float64, n)
	rowIm := make([][]float64, n)
	for i := 0; i < n; i++ {
		rowRe[i] = make([]float64, n)
		rowIm[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			var re, im float64
			for t := 0; t < n; t++ {
				re += pat[i][t] * cosT[k][t]
				im += pat[i][t] * sinT[k][t]
			}
			rowRe[i][k] = re
			rowIm[i][k] = im
		}
	}
	// Column transform and magnitude.
	out := make(Pattern, n)
	for k := range out {
		out[k] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			var re, im float64
			for t := 0; t < n; t++ {
				re += rowRe[t][j]*cosT[k][t] - rowIm[t][j]*sinT[k][t]
				im += rowRe[t][j]*sinT[k][t] + rowIm[t][j]*cosT[k][t]
			}
			out[k][j] = math.Hypot(re, im)
		}
	}
	return out
}

// DomainMap aggregates per-point analyses into the specimen's domain map
// and scores it against ground truth.
type DomainMap struct {
	Width, Height int
	Phases        []Phase // row-major
}

// NewDomainMap allocates a map for a width x height scan.
func NewDomainMap(width, height int) *DomainMap {
	return &DomainMap{Width: width, Height: height, Phases: make([]Phase, width*height)}
}

// Set records the classified phase at (x, y).
func (m *DomainMap) Set(x, y int, p Phase) {
	m.Phases[y*m.Width+x] = p
}

// At returns the classified phase at (x, y).
func (m *DomainMap) At(x, y int) Phase { return m.Phases[y*m.Width+x] }

// Accuracy compares the map against the synthetic ground truth.
func (m *DomainMap) Accuracy(seed uint64) float64 {
	if m.Width == 0 || m.Height == 0 {
		return 0
	}
	correct := 0
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			if m.At(x, y) == SpecimenPhase(x, y, m.Width, m.Height) {
				correct++
			}
		}
	}
	return float64(correct) / float64(m.Width*m.Height)
}

// EncodeArgs renders a scan point as grid-job arguments.
func EncodeArgs(x, y, width, height int, seed uint64) []string {
	return []string{
		strconv.Itoa(x), strconv.Itoa(y),
		strconv.Itoa(width), strconv.Itoa(height),
		strconv.FormatUint(seed, 10),
	}
}

// DecodeArgs parses grid-job arguments back into a scan point.
func DecodeArgs(args []string) (x, y, width, height int, seed uint64, err error) {
	if len(args) != 5 {
		return 0, 0, 0, 0, 0, fmt.Errorf("diffract: want 5 args (x y width height seed), got %d", len(args))
	}
	if x, err = strconv.Atoi(args[0]); err != nil {
		return
	}
	if y, err = strconv.Atoi(args[1]); err != nil {
		return
	}
	if width, err = strconv.Atoi(args[2]); err != nil {
		return
	}
	if height, err = strconv.Atoi(args[3]); err != nil {
		return
	}
	seed, err = strconv.ParseUint(args[4], 10, 64)
	return
}

// FormatResult renders an analysis as the job's stdout line.
func FormatResult(a Analysis) string {
	return fmt.Sprintf("x=%d y=%d phase=%s orientation=%.4f peak=%.4f",
		a.X, a.Y, a.Phase, a.Orientation, a.PeakIntensity)
}

// ParseResult parses a job stdout line back into an analysis.
func ParseResult(line string) (Analysis, error) {
	var a Analysis
	var phase string
	n, err := fmt.Sscanf(line, "x=%d y=%d phase=%s orientation=%f peak=%f",
		&a.X, &a.Y, &phase, &a.Orientation, &a.PeakIntensity)
	if err != nil || n != 5 {
		return Analysis{}, fmt.Errorf("diffract: malformed result %q", line)
	}
	if phase == "B" {
		a.Phase = PhaseB
	}
	return a, nil
}
