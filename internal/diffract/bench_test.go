package diffract

import "testing"

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(i%16, (i/16)%16, 7, PhaseB)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	pat := Generate(3, 4, 7, PhaseB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(3, 4, pat)
	}
}

func BenchmarkAnalyzePoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = AnalyzePoint(i%16, (i/16)%16, 16, 16, 7)
	}
}

func BenchmarkSpectrum(b *testing.B) {
	pat := Generate(0, 0, 7, PhaseA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Spectrum(pat)
	}
}
