package vo

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/cache"
	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/quality"
	"infogram/internal/xrsl"
)

// Broker schedules jobs across the members of a virtual organization by
// querying each member's CPULoad through InfoGram with the cached response
// mode and a quality threshold — the "more sophisticated resource
// management strategies" the paper motivates quality-of-information for
// (§5.2). One client connection per member is reused across decisions.
type Broker struct {
	cred  *gsi.Credential
	trust *gsi.TrustStore

	mu      sync.Mutex
	clients map[string]*core.Client
	addrs   []string
	rr      atomic.Uint64 // round-robin tie-break counter
}

// NewBroker builds a broker over the given member addresses.
func NewBroker(addrs []string, cred *gsi.Credential, trust *gsi.TrustStore) *Broker {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &Broker{
		cred:    cred,
		trust:   trust,
		clients: make(map[string]*core.Client),
		addrs:   cp,
	}
}

// Close drops all member connections.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for addr, cl := range b.clients {
		cl.Close()
		delete(b.clients, addr)
	}
}

// client returns a cached authenticated client for addr.
func (b *Broker) client(addr string) (*core.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cl, ok := b.clients[addr]; ok {
		return cl, nil
	}
	cl, err := core.Dial(addr, b.cred, b.trust)
	if err != nil {
		return nil, err
	}
	b.clients[addr] = cl
	return cl, nil
}

// Load is one member's load observation.
type Load struct {
	Addr    string
	Load    int
	Quality quality.Score
}

// Loads queries every member's CPULoad. threshold is the quality tag value
// (0 disables); mode selects the response tag. Unreachable members are
// skipped.
func (b *Broker) Loads(mode cache.Mode, threshold quality.Score) ([]Load, error) {
	req := xrsl.InfoRequest{
		Keywords: []string{"CPULoad"},
		Response: mode,
		Quality:  threshold,
	}
	var out []Load
	for _, addr := range b.addrs {
		cl, err := b.client(addr)
		if err != nil {
			continue
		}
		res, err := cl.Query(req)
		if err != nil || len(res.Entries) == 0 {
			continue
		}
		e := res.Entries[0]
		loadStr, _ := e.Get("CPULoad:load1")
		load, err := strconv.Atoi(loadStr)
		if err != nil {
			continue
		}
		l := Load{Addr: addr, Load: load, Quality: 100}
		if qs, ok := e.Get("quality:score"); ok {
			if f, err := strconv.ParseFloat(qs, 64); err == nil {
				l.Quality = quality.Score(f)
			}
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vo: no member answered a load query")
	}
	return out, nil
}

// LeastLoaded picks the member with the lowest load, rotating round-robin
// among equally loaded members so that a burst of fast jobs (whose load
// feedback lags behind the cache TTL) still spreads across the grid.
func (b *Broker) LeastLoaded(mode cache.Mode, threshold quality.Score) (Load, error) {
	loads, err := b.Loads(mode, threshold)
	if err != nil {
		return Load{}, err
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Load != loads[j].Load {
			return loads[i].Load < loads[j].Load
		}
		return loads[i].Addr < loads[j].Addr
	})
	ties := 1
	for ties < len(loads) && loads[ties].Load == loads[0].Load {
		ties++
	}
	n := b.rr.Add(1)
	return loads[int(n)%ties], nil
}

// Placement reports where a brokered job ran and its outcome.
type Placement struct {
	Addr    string
	Contact string
	Status  gram.StatusReply
}

// Run brokers one job: pick the least-loaded member, submit, and wait for
// a terminal state.
func (b *Broker) Run(ctx context.Context, req xrsl.JobRequest, mode cache.Mode, threshold quality.Score) (Placement, error) {
	target, err := b.LeastLoaded(mode, threshold)
	if err != nil {
		return Placement{}, err
	}
	return b.RunOn(ctx, target.Addr, req)
}

// RunOn submits a job to a specific member and waits for completion.
func (b *Broker) RunOn(ctx context.Context, addr string, req xrsl.JobRequest) (Placement, error) {
	cl, err := b.client(addr)
	if err != nil {
		return Placement{}, err
	}
	contact, err := cl.SubmitJob(req)
	if err != nil {
		return Placement{}, err
	}
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		return Placement{Addr: addr, Contact: contact}, err
	}
	return Placement{Addr: addr, Contact: contact, Status: st}, nil
}

// Submit brokers a job without waiting; the caller polls via the returned
// placement's contact on the member's client.
func (b *Broker) Submit(req xrsl.JobRequest, mode cache.Mode, threshold quality.Score) (Placement, error) {
	target, err := b.LeastLoaded(mode, threshold)
	if err != nil {
		return Placement{}, err
	}
	cl, err := b.client(target.Addr)
	if err != nil {
		return Placement{}, err
	}
	contact, err := cl.SubmitJob(req)
	if err != nil {
		return Placement{}, err
	}
	return Placement{Addr: target.Addr, Contact: contact}, nil
}

// Wait polls a previously submitted placement to a terminal state.
func (b *Broker) Wait(ctx context.Context, p Placement) (gram.StatusReply, error) {
	cl, err := b.client(p.Addr)
	if err != nil {
		return gram.StatusReply{}, err
	}
	return cl.WaitTerminal(ctx, p.Contact, 5*time.Millisecond)
}

// RunBatch brokers a batch of jobs with the given submission parallelism,
// returning placements in job order. Failed placements carry Err.
type BatchResult struct {
	Placement Placement
	Err       error
}

// RunBatch executes jobs across the grid with at most parallel in flight.
func (b *Broker) RunBatch(ctx context.Context, jobs []xrsl.JobRequest, parallel int, mode cache.Mode, threshold quality.Score) []BatchResult {
	if parallel <= 0 {
		parallel = 4
	}
	out := make([]BatchResult, len(jobs))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p, err := b.Run(ctx, jobs[i], mode, threshold)
			out[i] = BatchResult{Placement: p, Err: err}
		}(i)
	}
	wg.Wait()
	return out
}
