package vo_test

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/core"
	"infogram/internal/diffract"
	"infogram/internal/job"
	"infogram/internal/scheduler"
	"infogram/internal/vo"
	"infogram/internal/xrsl"
)

func newGrid(t *testing.T, resources int) *vo.SporadicGrid {
	t.Helper()
	g, err := vo.NewSporadicGrid(vo.SporadicConfig{
		OrgName:   "aps.anl.gov",
		Resources: resources,
		LoadTTL:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func TestSporadicGridBringUp(t *testing.T) {
	g := newGrid(t, 3)
	if len(g.Members) != 3 || len(g.Addrs()) != 3 {
		t.Fatalf("members = %d", len(g.Members))
	}
	cred := g.AnyCredential()
	if cred == nil {
		t.Fatal("no user credential")
	}
	// Every member answers an identity query over InfoGram.
	for _, m := range g.Members {
		cl, err := core.Dial(m.Addr, cred, g.Trust)
		if err != nil {
			t.Fatalf("dial %s: %v", m.Name, err)
		}
		res, err := cl.QueryRaw("&(info=Resource)")
		cl.Close()
		if err != nil {
			t.Fatalf("query %s: %v", m.Name, err)
		}
		if v, _ := res.Entries[0].Get("Resource:name"); v != m.Name {
			t.Errorf("Resource:name = %q, want %q", v, m.Name)
		}
	}
}

func TestLoadProviderReflectsJobTable(t *testing.T) {
	g := newGrid(t, 1)
	m := g.Members[0]
	cred := g.AnyCredential()
	cl, err := core.Dial(m.Addr, cred, g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	load := func() int {
		t.Helper()
		res, err := cl.QueryRaw("&(info=CPULoad)(response=immediate)")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Entries[0].Get("CPULoad:load1")
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	if l := load(); l != 0 {
		t.Errorf("idle load = %d", l)
	}
	// Park a blocking job; load rises.
	release := make(chan struct{})
	m.Func.RegisterFunc("park", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
			return "", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	contact, err := cl.Submit("&(executable=park)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if l := load(); l != 1 {
		t.Errorf("busy load = %d, want 1", l)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if l := load(); l != 0 {
		t.Errorf("post-job load = %d", l)
	}
}

func TestBrokerLeastLoaded(t *testing.T) {
	g := newGrid(t, 3)
	broker := vo.NewBroker(g.Addrs(), g.AnyCredential(), g.Trust)
	defer broker.Close()

	loads, err := broker.Loads(cache.Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 3 {
		t.Fatalf("loads = %+v", loads)
	}
	// Park a job on member 0 so it becomes the most loaded.
	release := make(chan struct{})
	defer close(release)
	g.Members[0].Func.RegisterFunc("park", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
			return "", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	cl, err := core.Dial(g.Members[0].Addr, g.AnyCredential(), g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Submit("&(executable=park)(jobtype=func)"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	target, err := broker.LeastLoaded(cache.Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if target.Addr == g.Members[0].Addr {
		t.Errorf("broker chose the loaded member %s", target.Addr)
	}
	if target.Load != 0 {
		t.Errorf("least load = %d", target.Load)
	}
}

func TestBrokerRunJob(t *testing.T) {
	g := newGrid(t, 2)
	broker := vo.NewBroker(g.Addrs(), g.AnyCredential(), g.Trust)
	defer broker.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	p, err := broker.Run(ctx, xrsl.JobRequest{
		Executable: vo.AnalysisJobName,
		Arguments:  diffract.EncodeArgs(1, 2, 8, 8, 77),
		JobType:    "func",
	}, cache.Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status.State != job.Done {
		t.Fatalf("placement = %+v", p)
	}
	a, err := diffract.ParseResult(strings.TrimSpace(p.Status.Stdout))
	if err != nil {
		t.Fatal(err)
	}
	if a.X != 1 || a.Y != 2 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestSporadicGridEndToEnd(t *testing.T) {
	// E14: scan a small specimen field across the grid via the broker and
	// reconstruct the domain map.
	if testing.Short() {
		t.Skip("short mode")
	}
	const w, h = 6, 6
	const seed = 2002
	g := newGrid(t, 3)
	broker := vo.NewBroker(g.Addrs(), g.AnyCredential(), g.Trust)
	defer broker.Close()

	jobs := make([]xrsl.JobRequest, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			jobs = append(jobs, xrsl.JobRequest{
				Executable: vo.AnalysisJobName,
				Arguments:  diffract.EncodeArgs(x, y, w, h, seed),
				JobType:    "func",
			})
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results := broker.RunBatch(ctx, jobs, 6, cache.Cached, 50)

	m := diffract.NewDomainMap(w, h)
	placements := map[string]int{}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Placement.Status.State != job.Done {
			t.Fatalf("job %d state = %s (%s)", i, r.Placement.Status.State, r.Placement.Status.Error)
		}
		a, err := diffract.ParseResult(strings.TrimSpace(r.Placement.Status.Stdout))
		if err != nil {
			t.Fatalf("job %d result: %v", i, err)
		}
		m.Set(a.X, a.Y, a.Phase)
		placements[r.Placement.Addr]++
	}
	if acc := m.Accuracy(seed); acc < 0.85 {
		t.Errorf("domain map accuracy = %v", acc)
	}
	// The broker spread work across members rather than piling onto one.
	if len(placements) < 2 {
		t.Errorf("all jobs placed on one member: %v", placements)
	}
}

func TestIndexDiscovery(t *testing.T) {
	// A grid with an index: clients discover members through one GIIS
	// query and then broker jobs to them — no static address list.
	g, err := vo.NewSporadicGrid(vo.SporadicConfig{
		OrgName:   "indexed.org",
		Resources: 3,
		WithIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Index == nil {
		t.Fatal("no index")
	}
	cred := g.AnyCredential()
	addrs, err := vo.DiscoverMembers(g.Index.Addr(), cred, g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("discovered %d members: %v", len(addrs), addrs)
	}
	want := map[string]bool{}
	for _, m := range g.Members {
		want[m.Addr] = true
	}
	for _, a := range addrs {
		if !want[a] {
			t.Errorf("discovered unknown address %q", a)
		}
	}
	// The discovered addresses drive a working broker.
	broker := vo.NewBroker(addrs, cred, g.Trust)
	defer broker.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	p, err := broker.Run(ctx, xrsl.JobRequest{
		Executable: vo.AnalysisJobName,
		Arguments:  diffract.EncodeArgs(0, 0, 4, 4, 1),
		JobType:    "func",
	}, cache.Immediate, 0)
	if err != nil || p.Status.State != job.Done {
		t.Fatalf("brokered job via discovery: %+v %v", p, err)
	}
}

func TestBrokerWithAllMembersDown(t *testing.T) {
	g := newGrid(t, 2)
	broker := vo.NewBroker(g.Addrs(), g.AnyCredential(), g.Trust)
	defer broker.Close()
	g.Close() // everything dies
	if _, err := broker.Loads(cache.Cached, 0); err == nil {
		t.Error("Loads with all members down succeeded")
	}
	if _, err := broker.LeastLoaded(cache.Cached, 0); err == nil {
		t.Error("LeastLoaded with all members down succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := broker.Run(ctx, xrsl.JobRequest{Executable: "x", JobType: "func"}, cache.Cached, 0); err == nil {
		t.Error("Run with all members down succeeded")
	}
}

func TestBrokerSkipsDeadMember(t *testing.T) {
	g := newGrid(t, 3)
	broker := vo.NewBroker(g.Addrs(), g.AnyCredential(), g.Trust)
	defer broker.Close()
	// Kill one member; the broker keeps working with the rest.
	g.Members[1].Service.Close()
	loads, err := broker.Loads(cache.Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 2 {
		t.Errorf("loads = %+v", loads)
	}
	for _, l := range loads {
		if l.Addr == g.Members[1].Addr {
			t.Error("dead member answered")
		}
	}
}

func TestDiscoverMembersErrors(t *testing.T) {
	g := newGrid(t, 1) // no index
	cred := g.AnyCredential()
	if _, err := vo.DiscoverMembers("127.0.0.1:1", cred, g.Trust); err == nil {
		t.Error("discovery against dead index succeeded")
	}
}

func TestGridWithNamedUsers(t *testing.T) {
	g, err := vo.NewSporadicGrid(vo.SporadicConfig{
		OrgName:   "org",
		Resources: 1,
		Users: map[string]string{
			"/O=Grid/CN=carol": "carol",
			"/O=Grid/CN=dave":  "dave",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	carol, ok := g.Credential("/O=Grid/CN=carol")
	if !ok {
		t.Fatal("carol has no credential")
	}
	cl, err := core.Dial(g.Members[0].Addr, carol, g.Trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.QueryRaw("&(info=Resource)"); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Credential("/O=Grid/CN=ghost"); ok {
		t.Error("ghost credential exists")
	}
}
