// Package vo implements the virtual-organization layer of paper §4 and the
// sporadic-grid application of §8: bring up a set of InfoGram resources
// "just for a short period of time during sophisticated experiments",
// broker jobs to the least-loaded resource using cached, quality-annotated
// information queries, and tear everything down when the experiment ends.
package vo

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"infogram/internal/clock"
	"infogram/internal/core"
	"infogram/internal/diffract"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
)

// Member is one resource of a sporadic grid.
type Member struct {
	Name    string
	Addr    string
	Service *core.Service
	Func    *scheduler.Func
	// GRIS is the member's MDS face, present when the grid runs an index.
	GRIS *mds.GRIS
}

// SporadicConfig configures a sporadic-grid bring-up.
type SporadicConfig struct {
	// OrgName names the virtual organization.
	OrgName string
	// Resources is the number of InfoGram services to start; at least 1.
	Resources int
	// LoadTTL is the cache lifetime of each member's CPULoad provider.
	LoadTTL time.Duration
	// Users maps identity DNs to local accounts; a credential is issued
	// for each and available via Credential(). When empty, a single
	// "experimenter" user is created.
	Users map[string]string
	// ExecMode is the in-process execution mode for func jobs.
	ExecMode scheduler.ExecMode
	// WithIndex additionally runs a GIIS for the organization: every
	// member exposes its providers through an MDS GRIS registered in the
	// index, so clients can discover the grid's members (paper §3/§4).
	WithIndex bool
	// Clock defaults to the system clock.
	Clock clock.Clock
}

// SporadicGrid is a running short-lived grid: a CA, user credentials, and
// N InfoGram resources sharing a trust root and gridmap. Its deployment
// cost is one function call, the Go rendering of the paper's "easy to
// install it on a number of machines" Web Start story (§7, §8).
type SporadicGrid struct {
	CA      *gsi.CA
	Trust   *gsi.TrustStore
	Gridmap *gsi.Gridmap
	Members []*Member
	// Index is the organization's GIIS when configured with WithIndex.
	Index *mds.GIIS

	creds map[string]*gsi.Credential
	clk   clock.Clock
}

// NewSporadicGrid brings the grid up on loopback ephemeral ports.
func NewSporadicGrid(cfg SporadicConfig) (*SporadicGrid, error) {
	if cfg.Resources < 1 {
		cfg.Resources = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.LoadTTL <= 0 {
		cfg.LoadTTL = 100 * time.Millisecond
	}
	if len(cfg.Users) == 0 {
		cfg.Users = map[string]string{"/O=Grid/OU=" + cfg.OrgName + "/CN=experimenter": "exp"}
	}
	now := cfg.Clock.Now()
	ca, err := gsi.NewCA("/O=Grid/CN="+cfg.OrgName+" CA", 24*time.Hour, now)
	if err != nil {
		return nil, err
	}
	g := &SporadicGrid{
		CA:      ca,
		Trust:   gsi.NewTrustStore(ca.Certificate()),
		Gridmap: gsi.NewGridmap(),
		creds:   make(map[string]*gsi.Credential),
		clk:     cfg.Clock,
	}
	for dn, local := range cfg.Users {
		cred, err := ca.IssueIdentity(dn, 12*time.Hour, now)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.creds[dn] = cred
		g.Gridmap.Add(dn, local)
	}

	for i := 0; i < cfg.Resources; i++ {
		name := fmt.Sprintf("node%02d.%s", i, cfg.OrgName)
		member, err := g.startMember(name, cfg, now)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Members = append(g.Members, member)
	}

	if cfg.WithIndex {
		indexCred, err := ca.IssueIdentity("/O=Grid/OU="+cfg.OrgName+"/CN=index", 24*time.Hour, now)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Index = mds.NewGIIS(mds.GIISConfig{
			OrgName:    cfg.OrgName,
			Credential: indexCred,
			Trust:      g.Trust,
		})
		if _, err := g.Index.Listen("127.0.0.1:0"); err != nil {
			g.Close()
			return nil, err
		}
		for _, m := range g.Members {
			m.GRIS = m.Service.GRIS()
			if _, err := m.GRIS.Listen("127.0.0.1:0"); err != nil {
				g.Close()
				return nil, err
			}
			g.Index.Register(m.GRIS.Addr())
		}
	}
	return g, nil
}

// DiscoverMembers queries a VO index for its members' InfoGram contact
// addresses: every member advertises a Resource provider whose "contact"
// attribute is its service address, so one GIIS search reveals the whole
// grid (the paper's resource-discovery path, §4).
func DiscoverMembers(giisAddr string, cred *gsi.Credential, trust *gsi.TrustStore) ([]string, error) {
	cl, err := mds.Dial(giisAddr, cred, trust)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=Resource)"})
	if err != nil {
		return nil, err
	}
	var addrs []string
	for _, e := range entries {
		if contact, ok := e.Get("Resource:contact"); ok && contact != "" {
			addrs = append(addrs, contact)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("vo: the index lists no resources")
	}
	return addrs, nil
}

// startMember builds and starts one InfoGram resource.
func (g *SporadicGrid) startMember(name string, cfg SporadicConfig, now time.Time) (*Member, error) {
	svcCred, err := g.CA.IssueIdentity("/O=Grid/OU="+cfg.OrgName+"/CN=service/"+name, 24*time.Hour, now)
	if err != nil {
		return nil, err
	}
	registry := provider.NewRegistry(cfg.Clock)
	fn := scheduler.NewFunc(cfg.ExecMode, scheduler.Budgets{})
	RegisterAnalysisJobs(fn)

	svc := core.NewService(core.Config{
		ResourceName: name,
		Credential:   svcCred,
		Trust:        g.Trust,
		Gridmap:      g.Gridmap,
		Registry:     registry,
		Backends: gram.Backends{
			Exec: &scheduler.Fork{},
			Func: fn,
		},
		Clock: cfg.Clock,
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	// Standard providers: identity, runtime, and the load provider the
	// broker schedules on (derived from the member's own job table).
	registry.Register(&provider.StaticProvider{
		KeywordName: "Resource",
		Values: provider.Attributes{
			{Name: "name", Value: name},
			{Name: "contact", Value: addr},
			{Name: "org", Value: cfg.OrgName},
		},
	}, provider.RegisterOptions{TTL: time.Hour})
	registry.Register(provider.RuntimeProvider{}, provider.RegisterOptions{TTL: cfg.LoadTTL})
	registry.Register(NewLoadProvider(svc), provider.RegisterOptions{TTL: cfg.LoadTTL})

	return &Member{Name: name, Addr: addr, Service: svc, Func: fn}, nil
}

// Credential returns the credential issued for identity dn.
func (g *SporadicGrid) Credential(dn string) (*gsi.Credential, bool) {
	c, ok := g.creds[dn]
	return c, ok
}

// AnyCredential returns some user credential (convenient when the grid was
// created with the default single user).
func (g *SporadicGrid) AnyCredential() *gsi.Credential {
	for _, c := range g.creds {
		return c
	}
	return nil
}

// Addrs returns the member service addresses.
func (g *SporadicGrid) Addrs() []string {
	out := make([]string, len(g.Members))
	for i, m := range g.Members {
		out[i] = m.Addr
	}
	return out
}

// Close dissolves the sporadic grid.
func (g *SporadicGrid) Close() {
	if g.Index != nil {
		g.Index.Close()
	}
	for _, m := range g.Members {
		if m.GRIS != nil {
			m.GRIS.Close()
		}
		if m.Service != nil {
			m.Service.Close()
		}
	}
}

// NewLoadProvider builds the CPULoad information provider of the paper's
// motivating example (§5.1): it reports the resource's current load. In
// this simulated grid the load is the number of pending+active jobs in the
// member's own job table, so scheduling feedback is real: brokering jobs
// to a member raises the load its provider reports.
func NewLoadProvider(svc *core.Service) provider.Provider {
	p := provider.NewFuncProvider("CPULoad", func(ctx context.Context) (provider.Attributes, error) {
		var active, pending int
		if t := svc.Table(); t != nil {
			for _, rec := range t.List() {
				switch rec.State {
				case job.Active:
					active++
				case job.Pending:
					pending++
				}
			}
		}
		return provider.Attributes{
			{Name: "load1", Value: strconv.Itoa(active + pending)},
			{Name: "active", Value: strconv.Itoa(active)},
			{Name: "pending", Value: strconv.Itoa(pending)},
		}, nil
	})
	p.SourceName = "func:jobtable-load"
	p.Schemas = []provider.AttrSchema{
		{Name: "load1", Type: "int", Doc: "pending+active jobs on the resource"},
		{Name: "active", Type: "int", Doc: "jobs currently executing"},
		{Name: "pending", Type: "int", Doc: "jobs queued"},
	}
	return p
}

// AnalysisJobName is the registered in-process function for diffraction
// analysis.
const AnalysisJobName = "diffract-analyze"

// RegisterAnalysisJobs installs the §8 analysis kernels on a func backend.
func RegisterAnalysisJobs(fn *scheduler.Func) {
	fn.RegisterFunc(AnalysisJobName, func(ctx context.Context, sb *scheduler.Sandbox, args []string, _ string) (string, error) {
		x, y, w, h, seed, err := diffract.DecodeArgs(args)
		if err != nil {
			return "", err
		}
		// Account the pattern analysis against the sandbox budget.
		if err := sb.StepN(int64(diffract.PatternSize * diffract.PatternSize)); err != nil {
			return "", err
		}
		a := diffract.AnalyzePoint(x, y, w, h, seed)
		return diffract.FormatResult(a) + "\n", nil
	})
}
