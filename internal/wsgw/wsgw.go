// Package wsgw implements the Web-services gateway the paper plans as its
// second phase: "Improve the reliability of the job execution and in a
// second phase while replacing the protocol used to perform the Job
// submission with SOAP" and "It is straight forward to cast the InfoGram
// in WSDL" (§1, §11). The gateway exposes InfoGram operations over HTTP
// with SOAP-style XML envelopes and serves a WSDL description, while the
// grid side of the bridge authenticates with an ordinary GSI credential —
// the trust model 2002-era portals used.
//
// Operations (POST to the service path, one operation element per call):
//
//	<Envelope><Body><Submit><specification>xRSL</specification></Submit></Body></Envelope>
//	<Envelope><Body><Status><contact>...</contact></Status></Body></Envelope>
//	<Envelope><Body><Cancel><contact>...</contact></Cancel></Body></Envelope>
//
// GET with ?wsdl returns the service description.
package wsgw

import (
	"encoding/xml"
	"io"
	"net/http"
	"sync"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/xrsl"
)

// Config wires a gateway.
type Config struct {
	// Backend is the InfoGram service address the gateway bridges to.
	Backend string
	// Credential and Trust authenticate the gateway to the backend.
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Token, when non-empty, must be presented by web clients in the
	// X-InfoGram-Token header.
	Token string
}

// Gateway is an http.Handler bridging SOAP-style requests to InfoGram.
type Gateway struct {
	cfg Config

	mu sync.Mutex
	cl *core.Client
}

// New builds a gateway. The backend connection is established lazily and
// re-established after errors.
func New(cfg Config) *Gateway { return &Gateway{cfg: cfg} }

// client returns a live backend client, dialing if necessary.
func (g *Gateway) client() (*core.Client, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cl != nil {
		return g.cl, nil
	}
	cl, err := core.Dial(g.cfg.Backend, g.cfg.Credential, g.cfg.Trust)
	if err != nil {
		return nil, err
	}
	g.cl = cl
	return cl, nil
}

// dropClient discards a broken backend connection.
func (g *Gateway) dropClient() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cl != nil {
		g.cl.Close()
		g.cl = nil
	}
}

// Close releases the backend connection.
func (g *Gateway) Close() {
	g.dropClient()
}

// Envelope shapes.

type envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    body     `xml:"Body"`
}

type body struct {
	Submit *submitOp `xml:"Submit"`
	Status *statusOp `xml:"Status"`
	Cancel *cancelOp `xml:"Cancel"`
}

type submitOp struct {
	Specification string `xml:"specification"`
}

type statusOp struct {
	Contact string `xml:"contact"`
}

type cancelOp struct {
	Contact string `xml:"contact"`
}

type responseEnvelope struct {
	XMLName xml.Name     `xml:"Envelope"`
	Body    responseBody `xml:"Body"`
}

// responseBody carries exactly one response element.
type responseBody struct {
	Submit *SubmitResponse `xml:",omitempty"`
	Status *StatusResponse `xml:",omitempty"`
	Cancel *CancelResponse `xml:",omitempty"`
	Fault  *Fault          `xml:",omitempty"`
}

// SubmitResponse is the reply to a Submit operation: a job yields a
// contact, an information query yields an inline result document.
type SubmitResponse struct {
	XMLName xml.Name `xml:"SubmitResponse"`
	Kind    string   `xml:"kind"`
	Contact string   `xml:"contact,omitempty"`
	Format  string   `xml:"result>format,omitempty"`
	Result  string   `xml:"result>document,omitempty"`
}

// StatusResponse is the reply to a Status operation.
type StatusResponse struct {
	XMLName  xml.Name `xml:"StatusResponse"`
	Contact  string   `xml:"contact"`
	State    string   `xml:"state"`
	ExitCode int      `xml:"exitCode"`
	Error    string   `xml:"error,omitempty"`
	Stdout   string   `xml:"stdout,omitempty"`
}

// CancelResponse is the reply to a Cancel operation.
type CancelResponse struct {
	XMLName xml.Name `xml:"CancelResponse"`
	Contact string   `xml:"contact"`
}

// Fault is the error reply.
type Fault struct {
	XMLName xml.Name `xml:"Fault"`
	Code    string   `xml:"faultcode"`
	Message string   `xml:"faultstring"`
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			_, _ = io.WriteString(w, WSDL)
			return
		}
		http.Error(w, "POST an envelope, or GET ?wsdl", http.StatusBadRequest)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if g.cfg.Token != "" && r.Header.Get("X-InfoGram-Token") != g.cfg.Token {
		g.fault(w, http.StatusUnauthorized, "Client", "missing or invalid token")
		return
	}
	var env envelope
	if err := xml.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&env); err != nil {
		g.fault(w, http.StatusBadRequest, "Client", "malformed envelope: "+err.Error())
		return
	}
	switch {
	case env.Body.Submit != nil:
		g.handleSubmit(w, env.Body.Submit.Specification)
	case env.Body.Status != nil:
		g.handleStatus(w, env.Body.Status.Contact)
	case env.Body.Cancel != nil:
		g.handleCancel(w, env.Body.Cancel.Contact)
	default:
		g.fault(w, http.StatusBadRequest, "Client", "envelope carries no known operation")
	}
}

// call runs fn against the backend, reconnecting once on failure.
func (g *Gateway) call(fn func(cl *core.Client) error) error {
	cl, err := g.client()
	if err != nil {
		return err
	}
	if err := fn(cl); err != nil {
		g.dropClient()
		cl, err2 := g.client()
		if err2 != nil {
			return err
		}
		return fn(cl)
	}
	return nil
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, spec string) {
	// Classify the specification before touching the backend so a job is
	// never submitted twice. The gateway supports single requests; grid
	// clients use the native protocol for multi-requests.
	reqs, err := xrsl.Decode(spec, nil)
	if err != nil {
		g.fault(w, http.StatusBadRequest, "Client", err.Error())
		return
	}
	if len(reqs) != 1 {
		g.fault(w, http.StatusBadRequest, "Client", "the gateway accepts a single request per Submit")
		return
	}
	var resp SubmitResponse
	switch reqs[0].Kind {
	case xrsl.KindInfo:
		err = g.call(func(cl *core.Client) error {
			res, e := cl.QueryRaw(spec)
			if e != nil {
				return e
			}
			resp = SubmitResponse{Kind: "info", Format: string(res.Format), Result: res.Raw}
			return nil
		})
	default:
		err = g.call(func(cl *core.Client) error {
			contact, e := cl.Submit(spec)
			if e != nil {
				return e
			}
			resp = SubmitResponse{Kind: "job", Contact: contact}
			return nil
		})
	}
	if err != nil {
		g.fault(w, http.StatusBadGateway, "Server", err.Error())
		return
	}
	g.reply(w, responseBody{Submit: &resp})
}

func (g *Gateway) handleStatus(w http.ResponseWriter, contact string) {
	var st gram.StatusReply
	err := g.call(func(cl *core.Client) error {
		var e error
		st, e = cl.Status(contact)
		return e
	})
	if err != nil {
		g.fault(w, http.StatusBadGateway, "Server", err.Error())
		return
	}
	g.reply(w, responseBody{Status: &StatusResponse{
		Contact:  st.Contact,
		State:    st.State.String(),
		ExitCode: st.ExitCode,
		Error:    st.Error,
		Stdout:   st.Stdout,
	}})
}

func (g *Gateway) handleCancel(w http.ResponseWriter, contact string) {
	err := g.call(func(cl *core.Client) error { return cl.Cancel(contact) })
	if err != nil {
		g.fault(w, http.StatusBadGateway, "Server", err.Error())
		return
	}
	g.reply(w, responseBody{Cancel: &CancelResponse{Contact: contact}})
}

func (g *Gateway) reply(w http.ResponseWriter, payload responseBody) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = io.WriteString(w, xml.Header)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(responseEnvelope{Body: payload}); err != nil {
		// Headers are already out; the client sees a truncated document.
		return
	}
	_ = enc.Flush()
}

func (g *Gateway) fault(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, xml.Header)
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	_ = enc.Encode(responseEnvelope{Body: responseBody{Fault: &Fault{Code: code, Message: msg}}})
	_ = enc.Flush()
}

// WSDL is the service description served at ?wsdl: the paper's "cast the
// InfoGram in WSDL", listing the three operations and their message
// shapes.
const WSDL = `<?xml version="1.0" encoding="UTF-8"?>
<definitions name="InfoGram"
    targetNamespace="urn:infogram"
    xmlns="http://schemas.xmlsoap.org/wsdl/">
  <documentation>
    InfoGram: a Grid service that supports both information queries and
    job execution. A Submit operation carries an xRSL specification; an
    information specification answers inline, a job specification answers
    with a job contact usable in Status and Cancel.
  </documentation>
  <message name="SubmitRequest"><part name="specification" type="xsd:string"/></message>
  <message name="SubmitResponse">
    <part name="kind" type="xsd:string"/>
    <part name="contact" type="xsd:string"/>
    <part name="result" type="xsd:string"/>
  </message>
  <message name="StatusRequest"><part name="contact" type="xsd:string"/></message>
  <message name="StatusResponse">
    <part name="state" type="xsd:string"/>
    <part name="exitCode" type="xsd:int"/>
    <part name="stdout" type="xsd:string"/>
  </message>
  <message name="CancelRequest"><part name="contact" type="xsd:string"/></message>
  <message name="CancelResponse"><part name="contact" type="xsd:string"/></message>
  <portType name="InfoGramPortType">
    <operation name="Submit">
      <input message="SubmitRequest"/><output message="SubmitResponse"/>
    </operation>
    <operation name="Status">
      <input message="StatusRequest"/><output message="StatusResponse"/>
    </operation>
    <operation name="Cancel">
      <input message="CancelRequest"/><output message="CancelResponse"/>
    </operation>
  </portType>
</definitions>
`
