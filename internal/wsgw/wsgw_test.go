package wsgw_test

import (
	"context"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/wsgw"
)

// harness: an InfoGram backend plus an HTTP gateway in front of it.
type harness struct {
	backend *core.Service
	gateway *wsgw.Gateway
	web     *httptest.Server
}

func newHarness(t *testing.T, token string) *harness {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, _ := ca.IssueIdentity("/O=Grid/CN=svc", time.Hour, now)
	gwCred, _ := ca.IssueIdentity("/O=Grid/CN=web-gateway", time.Hour, now)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=web-gateway", "webuser")

	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "1024"}},
	}, provider.RegisterOptions{TTL: time.Hour})

	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "web job done", nil
	})
	backend := core.NewService(core.Config{
		ResourceName: "ws.example",
		Credential:   svcCred, Trust: trust, Gridmap: gm,
		Registry: reg,
		Backends: gram.Backends{Func: fn},
	})
	addr, err := backend.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })

	gw := wsgw.New(wsgw.Config{
		Backend:    addr,
		Credential: gwCred,
		Trust:      trust,
		Token:      token,
	})
	t.Cleanup(gw.Close)
	web := httptest.NewServer(gw)
	t.Cleanup(web.Close)
	return &harness{backend: backend, gateway: gw, web: web}
}

// post sends an envelope and returns the decoded body payload.
func post(t *testing.T, h *harness, token, envelope string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, h.web.URL, strings.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/xml")
	if token != "" {
		req.Header.Set("X-InfoGram-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestWSDL(t *testing.T) {
	h := newHarness(t, "")
	resp, err := http.Get(h.web.URL + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"<definitions", "Submit", "Status", "Cancel", "urn:infogram"} {
		if !strings.Contains(body, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestInfoQueryOverHTTP(t *testing.T) {
	h := newHarness(t, "")
	_, body := post(t, h, "",
		`<Envelope><Body><Submit><specification>(info=Memory)</specification></Submit></Body></Envelope>`)
	if !strings.Contains(body, "<kind>info</kind>") {
		t.Fatalf("body = %s", body)
	}
	if !strings.Contains(body, "Memory:total: 1024") {
		t.Errorf("result document missing data: %s", body)
	}
}

func TestJobOverHTTP(t *testing.T) {
	h := newHarness(t, "")
	_, body := post(t, h, "",
		`<Envelope><Body><Submit><specification>(executable=noop)(jobtype=func)</specification></Submit></Body></Envelope>`)
	if !strings.Contains(body, "<kind>job</kind>") {
		t.Fatalf("body = %s", body)
	}
	// Extract the contact.
	var env struct {
		Body struct {
			Resp wsgw.SubmitResponse `xml:"SubmitResponse"`
		} `xml:"Body"`
	}
	if err := xml.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	contact := env.Body.Resp.Contact
	if contact == "" {
		t.Fatal("no contact")
	}
	// Poll over HTTP until terminal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, statusBody := post(t, h, "",
			`<Envelope><Body><Status><contact>`+contact+`</contact></Status></Body></Envelope>`)
		if strings.Contains(statusBody, "<state>DONE</state>") {
			if !strings.Contains(statusBody, "web job done") {
				t.Errorf("stdout missing: %s", statusBody)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", statusBody)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	h := newHarness(t, "")
	// Cancel of an unknown contact surfaces as a Fault.
	resp, body := post(t, h, "",
		`<Envelope><Body><Cancel><contact>gram://nope/1/1</contact></Cancel></Body></Envelope>`)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(body, "<Fault>") {
		t.Errorf("status=%d body=%s", resp.StatusCode, body)
	}
}

func TestTokenAuth(t *testing.T) {
	h := newHarness(t, "sekret")
	resp, body := post(t, h, "",
		`<Envelope><Body><Submit><specification>(info=Memory)</specification></Submit></Body></Envelope>`)
	if resp.StatusCode != http.StatusUnauthorized || !strings.Contains(body, "Fault") {
		t.Errorf("unauthenticated: status=%d body=%s", resp.StatusCode, body)
	}
	resp, body = post(t, h, "sekret",
		`<Envelope><Body><Submit><specification>(info=Memory)</specification></Submit></Body></Envelope>`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<kind>info</kind>") {
		t.Errorf("authenticated: status=%d body=%s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	h := newHarness(t, "")
	cases := []struct {
		name     string
		envelope string
		status   int
	}{
		{"garbage", "not xml", http.StatusBadRequest},
		{"empty body op", "<Envelope><Body></Body></Envelope>", http.StatusBadRequest},
		{"bad xrsl", "<Envelope><Body><Submit><specification>((((</specification></Submit></Body></Envelope>", http.StatusBadRequest},
		{"multi rejected", "<Envelope><Body><Submit><specification>+(&amp;(info=all))(&amp;(info=schema))</specification></Submit></Body></Envelope>", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, _ := post(t, h, "", c.envelope)
			if resp.StatusCode != c.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.status)
			}
		})
	}
	// GET without ?wsdl.
	resp, err := http.Get(h.web.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bare GET status = %d", resp.StatusCode)
	}
}

func TestGatewayReconnects(t *testing.T) {
	h := newHarness(t, "")
	// Prime the backend connection.
	if _, body := post(t, h, "",
		`<Envelope><Body><Submit><specification>(info=Memory)</specification></Submit></Body></Envelope>`); !strings.Contains(body, "info") {
		t.Fatalf("prime failed: %s", body)
	}
	// Simulate a dropped backend connection: close it behind the
	// gateway's back, then issue another request — the gateway must
	// redial transparently.
	h.gateway.Close()
	_, body := post(t, h, "",
		`<Envelope><Body><Submit><specification>(info=Memory)</specification></Submit></Body></Envelope>`)
	if !strings.Contains(body, "Memory:total: 1024") {
		t.Errorf("post-reconnect body = %s", body)
	}
}
