// Package job defines the job model shared by the GRAM baseline and the
// InfoGram service: the GRAM 1.1 state machine, job contact handles (the
// "GlobusID" of paper §2), status events, and an in-memory job table with
// event subscription used for both polling and callback notification.
package job

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a GRAM job state.
type State int

// GRAM 1.1 job states.
const (
	Unsubmitted State = iota
	Pending           // accepted and queued
	Active            // running
	Suspended         // temporarily not running
	Done              // finished successfully
	Failed            // finished unsuccessfully
)

// String renders the state in GRAM's upper-case convention.
func (s State) String() string {
	switch s {
	case Unsubmitted:
		return "UNSUBMITTED"
	case Pending:
		return "PENDING"
	case Active:
		return "ACTIVE"
	case Suspended:
		return "SUSPENDED"
	case Done:
		return "DONE"
	case Failed:
		return "FAILED"
	}
	return fmt.Sprintf("STATE(%d)", int(s))
}

// ParseState converts a state name back to a State.
func ParseState(s string) (State, error) {
	switch strings.ToUpper(s) {
	case "UNSUBMITTED":
		return Unsubmitted, nil
	case "PENDING":
		return Pending, nil
	case "ACTIVE":
		return Active, nil
	case "SUSPENDED":
		return Suspended, nil
	case "DONE":
		return Done, nil
	case "FAILED":
		return Failed, nil
	}
	return Unsubmitted, fmt.Errorf("job: unknown state %q", s)
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

// validTransition encodes the GRAM state machine.
func validTransition(from, to State) bool {
	if from == to {
		return true
	}
	switch from {
	case Unsubmitted:
		return to == Pending || to == Failed
	case Pending:
		return to == Active || to == Failed || to == Done
	case Active:
		return to == Suspended || to == Done || to == Failed
	case Suspended:
		return to == Active || to == Failed || to == Done
	default:
		// Done / Failed are terminal, except a fault-tolerant restart
		// which moves Failed back to Pending (paper §6.1).
		return from == Failed && to == Pending
	}
}

// Event is one job state-change notification, delivered to pollers and
// callback subscribers alike.
type Event struct {
	Contact  string    `json:"contact"`
	State    State     `json:"state"`
	ExitCode int       `json:"exitCode"`
	Error    string    `json:"error,omitempty"`
	Restarts int       `json:"restarts,omitempty"`
	Time     time.Time `json:"time"`
}

// Record is the job table's view of one job.
type Record struct {
	Contact   string
	Spec      string // originating xRSL, for accounting and restart
	Owner     string // local account from the gridmap
	Identity  string // authenticated Grid identity
	State     State
	ExitCode  int
	Error     string
	Stdout    string
	Stderr    string
	Restarts  int
	Submitted time.Time
	Updated   time.Time
}

// Table is a concurrency-safe job table with per-job event fan-out. It
// backs the middle tier's view of jobs in both GRAM and InfoGram.
type Table struct {
	mu   sync.RWMutex
	jobs map[string]*entry
	seq  atomic.Uint64
	host string
}

type entry struct {
	rec  Record
	subs []chan Event
}

// NewTable creates a table issuing contacts under the given host:port
// string, mirroring how GRAM job contacts embed the job manager address.
func NewTable(host string) *Table {
	return &Table{jobs: make(map[string]*entry), host: host}
}

// NewContact allocates a fresh job contact handle. The layout follows the
// GRAM convention of address + job id + timestamp.
func (t *Table) NewContact(now time.Time) string {
	id := t.seq.Add(1)
	return fmt.Sprintf("gram://%s/%d/%d", t.host, id, now.UnixNano())
}

// Create inserts a new job record in the given initial state.
func (t *Table) Create(rec Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.jobs[rec.Contact]; dup {
		return fmt.Errorf("job: duplicate contact %q", rec.Contact)
	}
	t.jobs[rec.Contact] = &entry{rec: rec}
	return nil
}

// Remove deletes a job record outright. It exists for submission
// rollback: when the durability layer refuses the submit record, the job
// must not remain visible in the table it was never journaled into.
func (t *Table) Remove(contact string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.jobs, contact)
}

// Get returns a snapshot of the job record.
func (t *Table) Get(contact string) (Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.jobs[contact]
	if !ok {
		return Record{}, fmt.Errorf("job: unknown contact %q", contact)
	}
	return e.rec, nil
}

// List returns snapshots of all jobs, ordered by contact.
func (t *Table) List() []Record {
	t.mu.RLock()
	out := make([]Record, 0, len(t.jobs))
	for _, e := range t.jobs {
		out = append(out, e.rec)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Contact < out[j].Contact })
	return out
}

// Len returns the number of jobs in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.jobs)
}

// Mutation describes a state update applied by Transition.
type Mutation struct {
	State    State
	ExitCode int
	Error    string
	Stdout   *string // nil leaves unchanged
	Stderr   *string
	Restarts *int
}

// Transition applies a validated state change and notifies subscribers.
func (t *Table) Transition(contact string, m Mutation, now time.Time) (Event, error) {
	t.mu.Lock()
	e, ok := t.jobs[contact]
	if !ok {
		t.mu.Unlock()
		return Event{}, fmt.Errorf("job: unknown contact %q", contact)
	}
	if !validTransition(e.rec.State, m.State) {
		from := e.rec.State
		t.mu.Unlock()
		return Event{}, fmt.Errorf("job: invalid transition %s -> %s for %q", from, m.State, contact)
	}
	e.rec.State = m.State
	e.rec.ExitCode = m.ExitCode
	e.rec.Error = m.Error
	e.rec.Updated = now
	if m.Stdout != nil {
		e.rec.Stdout = *m.Stdout
	}
	if m.Stderr != nil {
		e.rec.Stderr = *m.Stderr
	}
	if m.Restarts != nil {
		e.rec.Restarts = *m.Restarts
	}
	ev := Event{
		Contact:  contact,
		State:    e.rec.State,
		ExitCode: e.rec.ExitCode,
		Error:    e.rec.Error,
		Restarts: e.rec.Restarts,
		Time:     now,
	}
	subs := make([]chan Event, len(e.subs))
	copy(subs, e.subs)
	t.mu.Unlock()

	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop rather than block the job manager;
			// pollers will still observe the final state.
		}
	}
	return ev, nil
}

// Subscribe returns a channel receiving state events for contact. The
// channel is buffered; cancel releases it.
func (t *Table) Subscribe(contact string) (<-chan Event, func(), error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.jobs[contact]
	if !ok {
		return nil, nil, fmt.Errorf("job: unknown contact %q", contact)
	}
	ch := make(chan Event, 16)
	e.subs = append(e.subs, ch)
	cancel := func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		for i, c := range e.subs {
			if c == ch {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				break
			}
		}
	}
	return ch, cancel, nil
}
