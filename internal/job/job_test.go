package job

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var now = time.Date(2002, 7, 24, 12, 0, 0, 0, time.UTC)

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		Unsubmitted: "UNSUBMITTED", Pending: "PENDING", Active: "ACTIVE",
		Suspended: "SUSPENDED", Done: "DONE", Failed: "FAILED",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
		back, err := ParseState(want)
		if err != nil || back != st {
			t.Errorf("ParseState(%q) = %v, %v", want, back, err)
		}
		// Lower case accepted.
		back, err = ParseState(strings.ToLower(want))
		if err != nil || back != st {
			t.Errorf("ParseState lower(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseState("LIMBO"); err == nil {
		t.Error("ParseState(LIMBO) succeeded")
	}
}

func TestTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		Unsubmitted: false, Pending: false, Active: false,
		Suspended: false, Done: true, Failed: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v", st, st.Terminal())
		}
	}
}

func newJob(t *testing.T, tbl *Table) string {
	t.Helper()
	contact := tbl.NewContact(now)
	if err := tbl.Create(Record{Contact: contact, State: Unsubmitted, Submitted: now}); err != nil {
		t.Fatal(err)
	}
	return contact
}

func TestLifecycle(t *testing.T) {
	tbl := NewTable("127.0.0.1:2119")
	contact := newJob(t, tbl)
	if !strings.HasPrefix(contact, "gram://127.0.0.1:2119/") {
		t.Errorf("contact = %q", contact)
	}

	steps := []State{Pending, Active, Done}
	for _, st := range steps {
		if _, err := tbl.Transition(contact, Mutation{State: st}, now); err != nil {
			t.Fatalf("to %s: %v", st, err)
		}
	}
	rec, err := tbl.Get(contact)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Done {
		t.Errorf("state = %s", rec.State)
	}
}

func TestInvalidTransitions(t *testing.T) {
	tbl := NewTable("h:1")
	bad := []struct{ from, to State }{
		{Unsubmitted, Active},
		{Unsubmitted, Done},
		{Pending, Suspended},
		{Done, Active},
		{Done, Failed},
		{Done, Pending},
		{Failed, Active},
	}
	for _, c := range bad {
		contact := newJob(t, tbl)
		walkTo(t, tbl, contact, c.from)
		if _, err := tbl.Transition(contact, Mutation{State: c.to}, now); err == nil {
			t.Errorf("transition %s -> %s allowed", c.from, c.to)
		}
	}
}

// walkTo drives a fresh job to the given state through legal steps.
func walkTo(t *testing.T, tbl *Table, contact string, target State) {
	t.Helper()
	var path []State
	switch target {
	case Unsubmitted:
	case Pending:
		path = []State{Pending}
	case Active:
		path = []State{Pending, Active}
	case Suspended:
		path = []State{Pending, Active, Suspended}
	case Done:
		path = []State{Pending, Active, Done}
	case Failed:
		path = []State{Pending, Failed}
	}
	for _, st := range path {
		if _, err := tbl.Transition(contact, Mutation{State: st}, now); err != nil {
			t.Fatalf("walk to %s: %v", st, err)
		}
	}
}

func TestFailedRestartsToPending(t *testing.T) {
	// The §6.1 fault-tolerance path: FAILED -> PENDING.
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	walkTo(t, tbl, contact, Failed)
	restarts := 1
	ev, err := tbl.Transition(contact, Mutation{State: Pending, Restarts: &restarts}, now)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if ev.Restarts != 1 {
		t.Errorf("Restarts = %d", ev.Restarts)
	}
}

func TestSuspendResume(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	walkTo(t, tbl, contact, Suspended)
	if _, err := tbl.Transition(contact, Mutation{State: Active}, now); err != nil {
		t.Errorf("resume: %v", err)
	}
}

func TestTransitionUpdatesRecord(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	walkTo(t, tbl, contact, Active)
	stdout, stderr := "out", "err"
	later := now.Add(time.Minute)
	if _, err := tbl.Transition(contact, Mutation{
		State: Done, ExitCode: 0, Stdout: &stdout, Stderr: &stderr,
	}, later); err != nil {
		t.Fatal(err)
	}
	rec, _ := tbl.Get(contact)
	if rec.Stdout != "out" || rec.Stderr != "err" || !rec.Updated.Equal(later) {
		t.Errorf("rec = %+v", rec)
	}
}

func TestUnknownContact(t *testing.T) {
	tbl := NewTable("h:1")
	if _, err := tbl.Get("gram://nope/1/2"); err == nil {
		t.Error("Get unknown succeeded")
	}
	if _, err := tbl.Transition("gram://nope/1/2", Mutation{State: Pending}, now); err == nil {
		t.Error("Transition unknown succeeded")
	}
	if _, _, err := tbl.Subscribe("gram://nope/1/2"); err == nil {
		t.Error("Subscribe unknown succeeded")
	}
}

func TestDuplicateCreate(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	if err := tbl.Create(Record{Contact: contact}); err == nil {
		t.Error("duplicate Create succeeded")
	}
}

func TestContactsUnique(t *testing.T) {
	tbl := NewTable("h:1")
	prop := func(n uint8) bool {
		seen := make(map[string]bool)
		for i := 0; i < int(n%32)+2; i++ {
			c := tbl.NewContact(now)
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSubscription(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	ch, cancel, err := tbl.Subscribe(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	walkTo(t, tbl, contact, Done)
	var states []State
	for i := 0; i < 3; i++ {
		select {
		case ev := <-ch:
			states = append(states, ev.State)
		case <-time.After(time.Second):
			t.Fatalf("missing event %d", i)
		}
	}
	if states[0] != Pending || states[1] != Active || states[2] != Done {
		t.Errorf("states = %v", states)
	}
}

func TestUnsubscribeStopsEvents(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	ch, cancel, err := tbl.Subscribe(contact)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	walkTo(t, tbl, contact, Done)
	select {
	case ev, ok := <-ch:
		if ok {
			t.Errorf("received %v after cancel", ev)
		}
	default:
	}
}

func TestSlowSubscriberDoesNotBlock(t *testing.T) {
	tbl := NewTable("h:1")
	contact := newJob(t, tbl)
	// Subscribe but never read: transitions must not block.
	_, cancel, err := tbl.Subscribe(contact)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		walkTo(t, tbl, contact, Active)
		for i := 0; i < 100; i++ {
			_, _ = tbl.Transition(contact, Mutation{State: Suspended}, now)
			_, _ = tbl.Transition(contact, Mutation{State: Active}, now)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("transitions blocked on slow subscriber")
	}
}

func TestListSortedAndLen(t *testing.T) {
	tbl := NewTable("h:1")
	for i := 0; i < 5; i++ {
		newJob(t, tbl)
	}
	if tbl.Len() != 5 {
		t.Errorf("Len = %d", tbl.Len())
	}
	list := tbl.List()
	for i := 1; i < len(list); i++ {
		if list[i-1].Contact >= list[i].Contact {
			t.Errorf("List not sorted at %d", i)
		}
	}
}

func TestConcurrentTransitions(t *testing.T) {
	tbl := NewTable("h:1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				contact := tbl.NewContact(now)
				if err := tbl.Create(Record{Contact: contact}); err != nil {
					t.Error(err)
					return
				}
				for _, st := range []State{Pending, Active, Done} {
					if _, err := tbl.Transition(contact, Mutation{State: st}, now); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if tbl.Len() != 8*50 {
		t.Errorf("Len = %d", tbl.Len())
	}
}
