package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

// waitGoroutines polls until the goroutine count drops back near the
// baseline, failing on a leak.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
}

func memoryRegistry() *provider.Registry {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "1024"}},
	}, provider.RegisterOptions{TTL: time.Second})
	return reg
}

// Soak the pool lifecycle: concurrent checkouts, checkins, discards, and a
// Close landing mid-traffic, with a goroutine-leak check at the end (run
// under -race).
func TestPoolSoakConcurrentLifecycle(t *testing.T) {
	g := newTestGrid(t, memoryRegistry())
	baseline := runtime.NumGoroutine()

	tel := telemetry.NewRegistry()
	pool := core.NewPool(g.addr, g.user, g.trust, core.PoolOptions{
		Size:        3,
		IdleTimeout: 50 * time.Millisecond, // exercise the reaper during the soak
		Client:      core.Options{Telemetry: tel},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const workers = 12
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				cl, err := pool.Checkout(ctx)
				if errors.Is(err, core.ErrPoolClosed) {
					return
				}
				if err != nil {
					errCh <- err
					return
				}
				if err := cl.Ping(); err != nil {
					pool.Discard(cl)
					errCh <- err
					return
				}
				if (w+i)%7 == 0 {
					pool.Discard(cl) // force periodic re-dials
				} else {
					pool.Checkin(cl)
				}
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond) // let the soak run, reaper included
	pool.Close()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if _, err := pool.Checkout(ctx); !errors.Is(err, core.ErrPoolClosed) {
		t.Fatalf("Checkout after Close: err = %v; want ErrPoolClosed", err)
	}
	if open, idle := pool.Stats(); open != 0 || idle != 0 {
		t.Fatalf("pool not drained after Close: open=%d idle=%d", open, idle)
	}
	waitGoroutines(t, baseline)
}

// A server restart must be absorbed transparently: the checkout-time health
// check evicts the dead connections and dials fresh against the new
// process, without surfacing an error to the pool's caller.
func TestPoolSurvivesServerRestart(t *testing.T) {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")

	newService := func() *core.Service {
		return core.NewService(core.Config{
			ResourceName: "restart.resource",
			Credential:   svcCred,
			Trust:        trust,
			Gridmap:      gm,
			Registry:     memoryRegistry(),
			Backends:     gram.Backends{Exec: &scheduler.Fork{}},
		})
	}
	svc := newService()
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	pool := core.NewPool(addr, user, trust, core.PoolOptions{
		Size:             2,
		HealthCheckAfter: time.Millisecond, // ping-check any conn idle > 1ms
	})
	defer pool.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Ping(ctx); err != nil {
		t.Fatalf("ping before restart: %v", err)
	}
	if open, _ := pool.Stats(); open != 1 {
		t.Fatalf("open connections before restart = %d, want 1", open)
	}

	// Kill the server and bring a new process up on the same address; the
	// port may linger briefly, so rebinding retries.
	svc.Close()
	svc2 := newService()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = svc2.Listen(addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer svc2.Close()
	time.Sleep(5 * time.Millisecond) // push the idle conn past HealthCheckAfter

	// The pooled connection is now dead. The checkout health check must
	// notice, evict it, and hand out a fresh authenticated connection.
	if err := pool.Ping(ctx); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	res, err := pool.QueryRaw(ctx, "&(info=Memory)")
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("empty query result after restart")
	}
	if open, _ := pool.Stats(); open != 1 {
		t.Fatalf("open connections after restart = %d, want 1 (dead conn not evicted)", open)
	}
}
