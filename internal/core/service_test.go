package core_test

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/ldif"
	"infogram/internal/logging"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/quality"
	"infogram/internal/scheduler"
	"infogram/internal/xrsl"
)

// countingProvider returns an incrementing value and counts executions.
func countingProvider(keyword string) (*provider.FuncProvider, *atomic.Int64) {
	var n atomic.Int64
	p := provider.NewFuncProvider(keyword, func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "n", Value: strconv.FormatInt(n.Add(1), 10)}}, nil
	})
	return p, &n
}

func TestResponseModes(t *testing.T) {
	// E6: the three response-tag semantics over the wire.
	reg := provider.NewRegistry(nil)
	p, execs := countingProvider("Counter")
	reg.Register(p, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	read := func(response string) string {
		t.Helper()
		res, err := cl.QueryRaw("&(info=Counter)(response=" + response + ")")
		if err != nil {
			t.Fatalf("response=%s: %v", response, err)
		}
		v, _ := res.Entries[0].Get("Counter:n")
		return v
	}

	if v := read("cached"); v != "1" {
		t.Errorf("first cached read = %q", v)
	}
	if v := read("cached"); v != "1" {
		t.Errorf("second cached read = %q (TTL should hold)", v)
	}
	if v := read("immediate"); v != "2" {
		t.Errorf("immediate read = %q (must re-execute)", v)
	}
	// immediate updated the cache.
	if v := read("last"); v != "2" {
		t.Errorf("last read = %q", v)
	}
	if v := read("cached"); v != "2" {
		t.Errorf("cached after immediate = %q", v)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("provider executions = %d, want 2", got)
	}
}

func TestQualityThresholdRefresh(t *testing.T) {
	// E7: the quality tag regenerates information whose degradation score
	// is below the threshold, even inside the TTL.
	reg := provider.NewRegistry(nil)
	p, execs := countingProvider("Sensor")
	reg.Register(p, provider.RegisterOptions{
		TTL:     time.Hour,
		Degrade: quality.Linear{Horizon: 200 * time.Millisecond},
	})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.QueryRaw("&(info=Sensor)")
	if err != nil {
		t.Fatal(err)
	}
	if qv, _ := res.Entries[0].Get("quality:score"); qv == "" {
		t.Error("no quality:score attribute")
	}
	if fn, _ := res.Entries[0].Get("quality:function"); !strings.HasPrefix(fn, "linear") {
		t.Errorf("quality:function = %q", fn)
	}
	// Let quality decay below 50, then demand >= 90: a refresh happens.
	time.Sleep(120 * time.Millisecond)
	res, err = cl.QueryRaw("&(info=Sensor)(quality=90)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Entries[0].Get("Sensor:n"); v != "2" {
		t.Errorf("value after threshold refresh = %q", v)
	}
	if execs.Load() != 2 {
		t.Errorf("execs = %d", execs.Load())
	}
	// A low threshold is satisfied by the (fresh) cache.
	if _, err := cl.QueryRaw("&(info=Sensor)(quality=10)"); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 2 {
		t.Errorf("low threshold forced refresh: execs = %d", execs.Load())
	}
}

func TestSelfCorrectingDriftExposed(t *testing.T) {
	// §5.2's data-assimilation analogy end to end: a drifting value with
	// a self-correcting degradation function reports its observed drift
	// statistics in query results.
	reg := provider.NewRegistry(nil)
	sc := quality.NewSelfCorrecting(quality.Linear{Horizon: time.Second})
	var v atomic.Int64
	p := provider.NewFuncProvider("Drifty", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "v", Value: strconv.FormatInt(v.Add(50), 10)}}, nil
	})
	reg.Register(p, provider.RegisterOptions{
		TTL:     time.Nanosecond, // refresh every query so drift is observed
		Degrade: sc,
		Drift: func(old, new any) float64 {
			oa, _ := old.(provider.Attributes).Get("v")
			na, _ := new.(provider.Attributes).Get("v")
			of, _ := strconv.ParseFloat(oa, 64)
			nf, _ := strconv.ParseFloat(na, 64)
			if of == 0 {
				return 0
			}
			d := (nf - of) / of
			if d < 0 {
				d = -d
			}
			return d
		},
	})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var res core.InfoResult
	for i := 0; i < 5; i++ {
		time.Sleep(5 * time.Millisecond)
		res, err = cl.QueryRaw("&(info=Drifty)")
		if err != nil {
			t.Fatal(err)
		}
	}
	if fn, _ := res.Entries[0].Get("quality:function"); !strings.HasPrefix(fn, "selfcorrecting") {
		t.Errorf("quality:function = %q", fn)
	}
	if n, ok := res.Entries[0].Get("quality:driftObservations"); !ok || n == "0" {
		t.Errorf("driftObservations = %q %v", n, ok)
	}
	if _, ok := res.Entries[0].Get("quality:driftSigma"); !ok {
		t.Error("no quality:driftSigma")
	}
	if sc.Observations() == 0 {
		t.Error("no drift fed back")
	}
}

func TestPerformanceTagAccuracy(t *testing.T) {
	// E8: the performance tag reports mean and stddev of retrieval time.
	reg := provider.NewRegistry(nil)
	p := provider.NewFuncProvider("Slow", func(ctx context.Context) (provider.Attributes, error) {
		time.Sleep(20 * time.Millisecond)
		return provider.Attributes{{Name: "v", Value: "x"}}, nil
	})
	reg.Register(p, provider.RegisterOptions{TTL: 0})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var res core.InfoResult
	for i := 0; i < 4; i++ {
		res, err = cl.QueryRaw("&(info=Slow)(performance=true)")
		if err != nil {
			t.Fatal(err)
		}
	}
	e := res.Entries[0]
	meanStr, ok := e.Get("performance:mean")
	if !ok {
		t.Fatal("no performance:mean")
	}
	mean, err := strconv.ParseFloat(meanStr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.015 || mean > 0.5 {
		t.Errorf("mean = %v s, expected ~0.02", mean)
	}
	if _, ok := e.Get("performance:stddev"); !ok {
		t.Error("no performance:stddev")
	}
	if n, _ := e.Get("performance:samples"); n != "4" {
		t.Errorf("samples = %q", n)
	}
	// Without the tag, no performance attributes are attached.
	res, err = cl.QueryRaw("&(info=Slow)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Entries[0].Get("performance:mean"); ok {
		t.Error("performance attributes leaked without the tag")
	}
}

func TestSchemaReflection(t *testing.T) {
	// E9: (info=schema) returns the hierarchical schema with attribute
	// properties (§6.4).
	reg := provider.NewRegistry(nil)
	fp := provider.NewFuncProvider("Load", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "load1", Value: "0.5"}}, nil
	})
	fp.Schemas = []provider.AttrSchema{{Name: "load1", Type: "float", Doc: "1-minute load"}}
	reg.Register(fp, provider.RegisterOptions{
		TTL:     500 * time.Millisecond,
		Degrade: quality.Exponential{HalfLife: time.Second},
	})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	entries, err := cl.Schema()
	if err != nil {
		t.Fatal(err)
	}
	// Load plus the built-in selfmetrics and selftrace providers.
	if len(entries) != 3 {
		t.Fatalf("schema entries = %d", len(entries))
	}
	e := entries[0]
	for _, cand := range entries {
		if kw, _ := cand.Get("keyword"); kw == "Load" {
			e = cand
			break
		}
	}
	checks := map[string]string{
		"keyword":         "Load",
		"ttl":             "500",
		"degradation":     "exponential(1s)",
		"attribute:load1": "float: 1-minute load",
	}
	for name, want := range checks {
		if v, _ := e.Get(name); v != want {
			t.Errorf("%s = %q, want %q", name, v, want)
		}
	}
	// Schema in XML format too.
	res, err := cl.QueryRaw("&(info=schema)(format=xml)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != xrsl.FormatXML || len(res.Entries) != 3 {
		t.Errorf("xml schema = %+v", res.Format)
	}
}

func TestFormatNegotiation(t *testing.T) {
	// E10: the same query returns identical data as LDIF and XML.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "1024"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ldifRes, err := cl.QueryRaw("&(info=Memory)")
	if err != nil {
		t.Fatal(err)
	}
	xmlRes, err := cl.QueryRaw("&(info=Memory)(format=xml)")
	if err != nil {
		t.Fatal(err)
	}
	if ldifRes.Format != xrsl.FormatLDIF || xmlRes.Format != xrsl.FormatXML {
		t.Errorf("formats = %v, %v", ldifRes.Format, xmlRes.Format)
	}
	if !strings.HasPrefix(xmlRes.Raw, "<?xml") {
		t.Errorf("xml raw = %q...", xmlRes.Raw[:40])
	}
	// Same decoded values regardless of encoding. LDIF serves cached;
	// ensure attribute equality modulo quality:age differences by
	// comparing the Memory attributes only.
	getMem := func(entries []ldif.Entry) string {
		v, _ := entries[0].Get("Memory:total")
		return v
	}
	if getMem(ldifRes.Entries) != getMem(xmlRes.Entries) {
		t.Error("LDIF and XML values differ")
	}
}

func TestDSMLFormat(t *testing.T) {
	// The paper's "straightforward to support other formats such as
	// DSML": (format=dsml) returns a DSMLv1 document over the wire.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "1024"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.QueryRaw("&(info=Memory)(format=dsml)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != xrsl.FormatDSML {
		t.Errorf("Format = %v", res.Format)
	}
	if !strings.Contains(res.Raw, "dsml.org/DSML") {
		t.Errorf("raw = %q", res.Raw[:80])
	}
	if v, _ := res.Entries[0].Get("Memory:total"); v != "1024" {
		t.Errorf("Memory:total = %q", v)
	}
	if v, _ := res.Entries[0].Get("objectclass"); v != provider.ObjectClass {
		t.Errorf("objectclass = %q", v)
	}
}

func TestFilterTag(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values: provider.Attributes{
			{Name: "total", Value: "1024"},
			{Name: "free", Value: "512"},
		},
	}, provider.RegisterOptions{TTL: time.Hour})
	reg.Register(&provider.StaticProvider{
		KeywordName: "CPU",
		Values:      provider.Attributes{{Name: "count", Value: "8"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.QueryRaw(`&(info=all)(filter="Memory:*")`)
	if err != nil {
		t.Fatal(err)
	}
	// Only the Memory entry survives (CPU has no matching attribute).
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if _, ok := res.Entries[0].Get("Memory:total"); !ok {
		t.Error("Memory:total filtered out")
	}
	if _, ok := res.Entries[0].Get("quality:score"); ok {
		t.Error("quality:score not filtered out")
	}
	// Exact-name filter.
	res, err = cl.QueryRaw(`&(info=all)(filter="Memory:free")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || len(res.Entries[0].Attrs) != 4 {
		// objectclass, kw, resource + Memory:free
		t.Errorf("entries = %+v", res.Entries)
	}
}

func TestUnknownKeywordFailsWholeQuery(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "A"}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.QueryRaw("&(info=A)(info=Ghost)"); err == nil {
		t.Error("unknown keyword accepted (all-or-nothing violated)")
	}
}

func TestAuthorizationContracts(t *testing.T) {
	// E12: the paper's "allow 3-4pm to user X" contract enforced per
	// operation over the wire, driven by a fake clock.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "K"}, provider.RegisterOptions{TTL: time.Hour})

	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, _ := ca.IssueIdentity("/O=Grid/CN=svc", 24*time.Hour, now)
	userX, _ := ca.IssueIdentity("/O=Grid/CN=userX", 24*time.Hour, now)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=userX", "userx")

	// Window covering the current hour for jobs; info always allowed.
	h := now.Hour()
	policy := gsi.NewPolicy(gsi.Deny)
	policy.Add(gsi.Contract{Subject: "*", Operation: gsi.OpInfoQuery, Effect: gsi.Allow})
	policy.Add(gsi.Contract{
		Subject:   "/O=Grid/CN=userX",
		Operation: gsi.OpJobSubmit,
		Window: gsi.Window{
			From: time.Duration(h) * time.Hour,
			To:   time.Duration(h+1) * time.Hour,
		},
		Effect: gsi.Allow,
	})

	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "", nil
	})
	svc := core.NewService(core.Config{
		ResourceName: "authz.test",
		Credential:   svcCred, Trust: trust, Gridmap: gm, Policy: policy,
		Registry: reg,
		Backends: gram.Backends{Func: fn},
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cl, err := core.Dial(addr, userX, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Inside the window: both operations work.
	if _, err := cl.QueryRaw("&(info=K)"); err != nil {
		t.Errorf("info inside window: %v", err)
	}
	if _, err := cl.Submit("&(executable=noop)(jobtype=func)"); err != nil {
		t.Errorf("job inside window: %v", err)
	}
}

func TestRestartRecovery(t *testing.T) {
	// E11: kill the service mid-job; a new service replays the log and
	// resubmits the unfinished work.
	logBuf := &syncBuffer{}
	logger := logging.NewLogger(logBuf)

	reg := provider.NewRegistry(nil)
	g := newTestGridWithLog(t, reg, logger)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}

	// A job that blocks forever in service 1.
	blockC := make(chan struct{})
	g.fn.RegisterFunc("block", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-blockC:
			return "released", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	if _, err := cl.Submit("&(executable=block)(jobtype=func)"); err != nil {
		t.Fatal(err)
	}
	// And one that completed.
	doneContact, err := cl.Submit("&(executable=hello)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.WaitTerminal(ctx, doneContact, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	g.svc.Close() // crash

	// Service 2 recovers from the same log. Its func backend resolves
	// "block" instantly so the recovered job completes.
	reg2 := provider.NewRegistry(nil)
	g2 := newTestGridWithLog(t, reg2, logging.NewLogger(&bytes.Buffer{}))
	g2.fn.RegisterFunc("block", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "recovered-run", nil
	})
	records, err := logging.Replay(bytes.NewReader(logBuf.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	contacts, err := g2.svc.Recover(records)
	if err != nil {
		t.Fatal(err)
	}
	if len(contacts) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (only the unfinished one)", len(contacts))
	}
	cl2, err := core.Dial(g2.addr, g2.user, g2.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	st, err := cl2.WaitTerminal(ctx, contacts[0], 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Done || st.Stdout != "recovered-run" {
		t.Errorf("recovered job = %+v", st)
	}
	close(blockC)
}

func TestCheckpointResume(t *testing.T) {
	// §10: "automatic restart capabilities enabled through
	// checkpointing." A job checkpoints its progress; the service
	// crashes; the recovered job resumes from the last checkpoint rather
	// than from scratch.
	logBuf := &syncBuffer{}
	g := newTestGridWithLog(t, provider.NewRegistry(nil), logging.NewLogger(logBuf))

	// Phase 1: the job advances to step 3, checkpointing each step, then
	// stalls until the service dies.
	stall := make(chan struct{})
	g.fn.RegisterFunc("phased", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		start := 0
		if r := sb.Restored(); r != "" {
			if _, err := fmt.Sscanf(r, "step=%d", &start); err != nil {
				return "", err
			}
		}
		for i := start; i < 3; i++ {
			sb.Checkpoint(fmt.Sprintf("step=%d", i+1))
		}
		if start == 0 {
			// Fresh run: stall so the crash interrupts it.
			select {
			case <-stall:
			case <-ctx.Done():
			}
			return "", ctx.Err()
		}
		return fmt.Sprintf("resumed-from=%d", start), nil
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit("&(executable=phased)(jobtype=func)"); err != nil {
		t.Fatal(err)
	}
	// Wait until the checkpoints reach the log.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs, _ := logging.Replay(bytes.NewReader(logBuf.Snapshot()))
		n := 0
		for _, r := range recs {
			if r.Kind == logging.KindCheckpoint {
				n++
			}
		}
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoints never logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Close()
	g.svc.Close() // crash
	close(stall)

	// Phase 2: recovery resumes from step=3.
	g2 := newTestGridWithLog(t, provider.NewRegistry(nil), nil)
	g2.fn.RegisterFunc("phased", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "resumed-from-checkpoint:" + sb.Restored(), nil
	})
	records, err := logging.Replay(bytes.NewReader(logBuf.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	contacts, err := g2.svc.Recover(records)
	if err != nil || len(contacts) != 1 {
		t.Fatalf("recovered %d (%v)", len(contacts), err)
	}
	cl2, err := core.Dial(g2.addr, g2.user, g2.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := cl2.WaitTerminal(ctx, contacts[0], 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Done || st.Stdout != "resumed-from-checkpoint:step=3" {
		t.Errorf("recovered job = %+v", st)
	}
}

func TestInfoQueriesAreLogged(t *testing.T) {
	logBuf := &syncBuffer{}
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "K"}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGridWithLog(t, reg, logging.NewLogger(logBuf))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.QueryRaw("&(info=K)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryRaw("&(info=all)"); err != nil {
		t.Fatal(err)
	}
	recs, err := logging.Replay(bytes.NewReader(logBuf.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	var queries [][]string
	for _, r := range recs {
		if r.Kind == logging.KindInfoQuery {
			if r.Identity != "/O=Grid/CN=alice" {
				t.Errorf("query identity = %q", r.Identity)
			}
			queries = append(queries, r.Keywords)
		}
	}
	if len(queries) != 2 || queries[0][0] != "K" || queries[1][0] != "all" {
		t.Errorf("logged queries = %v", queries)
	}
}

func TestSandboxEnforcementThroughService(t *testing.T) {
	// E13: an untrusted in-process job is stopped by the restricted
	// sandbox when submitted through the full service stack.
	reg := provider.NewRegistry(nil)
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", time.Hour, now)
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, _ := ca.IssueIdentity("/O=Grid/CN=svc", time.Hour, now)
	user, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")

	fn := scheduler.NewFunc(scheduler.RestrictedMode, scheduler.Budgets{
		Steps: 1000, AllocBytes: 1 << 20, WallTime: time.Minute,
	})
	fn.RegisterFunc("hog", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		for {
			if err := sb.Step(); err != nil {
				return "", err
			}
		}
	})
	svc := core.NewService(core.Config{
		ResourceName: "sandbox.test",
		Credential:   svcCred, Trust: trust, Gridmap: gm,
		Registry: reg,
		Backends: gram.Backends{Func: fn},
	})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cl, err := core.Dial(addr, user, trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	contact, err := cl.Submit("&(executable=hog)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Failed || !strings.Contains(st.Error, "exit code") {
		t.Errorf("st = %+v", st)
	}
	if !strings.Contains(st.Stderr, "step budget") {
		t.Errorf("stderr = %q", st.Stderr)
	}
}

func TestMDSBackwardCompat(t *testing.T) {
	// E17: the same InfoGram providers answer through the MDS protocol —
	// a GRIS bound to the service registry, registered in a GIIS.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "2048"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)

	gris := g.svc.GRIS()
	if _, err := gris.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer gris.Close()

	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName:    "vo",
		Credential: g.svcCred,
		Trust:      g.trust,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register(gris.Addr())

	// An MDS client querying the GIIS sees InfoGram's information.
	mcl, err := mds.Dial(giis.Addr(), g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer mcl.Close()
	entries, err := mcl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	if v, _ := entries[0].Get("Memory:total"); v != "2048" {
		t.Errorf("Memory:total = %q", v)
	}
	// And the same data is visible through the InfoGram protocol — one
	// provider registry, two protocols during the gradual transition.
	icl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer icl.Close()
	res, err := icl.QueryRaw("&(info=Memory)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Entries[0].Get("Memory:total"); v != "2048" {
		t.Errorf("InfoGram Memory:total = %q", v)
	}
}

func TestFigure4SingleProtocol(t *testing.T) {
	// E4 structural claim: the combined workflow (query load, then submit
	// a job) runs over ONE connection to ONE port with ONE protocol.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "CPULoad",
		Values:      provider.Attributes{{Name: "load1", Value: "0"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.QueryRaw("&(info=CPULoad)"); err != nil {
		t.Fatal(err)
	}
	contact, err := cl.Submit("&(executable=hello)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := g.svc.AcceptedConns(); got != 1 {
		t.Errorf("connections used = %d, want 1 (Figure 4)", got)
	}
	_ = cache.Cached
}
