package core

import (
	"context"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/xrsl"
)

func respTestRegistry(clk clock.Clock) *provider.Registry {
	reg := provider.NewRegistry(clk)
	reg.Register(provider.NewFuncProvider("Memory", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "free", Value: "1024"}}, nil
	}), provider.RegisterOptions{TTL: 10 * time.Second, Clock: clk})
	reg.Register(provider.NewFuncProvider("CPULoad", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "load", Value: "0.5"}}, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	return reg
}

func TestRespCacheStoreLookup(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	rc := newRespCache(reg, 4, 1<<20, time.Minute, 0, clk)
	req := &xrsl.InfoRequest{Keywords: []string{"Memory"}, Filter: "Memory:*"}

	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("hit on empty cache")
	}
	rc.store(req, "rendered-body", false)
	body, neg, ok := rc.lookup(req)
	if !ok || neg != "" || body != "rendered-body" {
		t.Fatalf("lookup = (%q, %q, %v)", body, neg, ok)
	}

	// Distinct request dimensions must be distinct entries.
	other := &xrsl.InfoRequest{Keywords: []string{"Memory"}, Filter: "Memory:free"}
	if _, _, ok := rc.lookup(other); ok {
		t.Fatal("different filter hit the same entry")
	}
	xml := &xrsl.InfoRequest{Keywords: []string{"Memory"}, Filter: "Memory:*", Format: xrsl.FormatXML}
	if _, _, ok := rc.lookup(xml); ok {
		t.Fatal("different format hit the same entry")
	}
}

func TestRespCacheTTLCappedByProviderTTL(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	// Cache cap 1 minute, but Memory's provider TTL is 10s: the blob must
	// expire with its input.
	rc := newRespCache(reg, 4, 1<<20, time.Minute, 0, clk)
	req := &xrsl.InfoRequest{Keywords: []string{"Memory"}}
	rc.store(req, "body", false)
	clk.Advance(11 * time.Second)
	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("blob outlived its provider's TTL")
	}

	// CPULoad's TTL (1m) exceeds the cap: capped at the cache TTL.
	rc2 := newRespCache(reg, 4, 1<<20, 5*time.Second, 0, clk)
	req2 := &xrsl.InfoRequest{Keywords: []string{"CPULoad"}}
	rc2.store(req2, "body", false)
	clk.Advance(6 * time.Second)
	if _, _, ok := rc2.lookup(req2); ok {
		t.Fatal("blob outlived the cache TTL cap")
	}
}

func TestRespCacheZeroTTLProviderNeverCached(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	reg.Register(provider.NewFuncProvider("Live", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "v", Value: "x"}}, nil
	}), provider.RegisterOptions{TTL: 0, Clock: clk})
	rc := newRespCache(reg, 4, 1<<20, time.Minute, 0, clk)

	req := &xrsl.InfoRequest{Keywords: []string{"Live"}}
	rc.store(req, "body", false)
	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("execute-every-request keyword was response-cached")
	}
	// A multi-keyword query covering the TTL-0 keyword is tainted too.
	mixed := &xrsl.InfoRequest{Keywords: []string{"Memory", "Live"}}
	rc.store(mixed, "body", false)
	if _, _, ok := rc.lookup(mixed); ok {
		t.Fatal("response covering a TTL-0 keyword was cached")
	}
}

func TestRespCacheNegativeShorterTTL(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	// Cap 40s → default negative TTL 10s.
	rc := newRespCache(reg, 4, 1<<20, 40*time.Second, 0, clk)

	req := &xrsl.InfoRequest{Keywords: []string{"Ghost"}}
	rc.storeNegative(req, `provider: unknown keyword "Ghost"`)
	_, neg, ok := rc.lookup(req)
	if !ok || neg == "" {
		t.Fatalf("negative lookup = (%q, %v)", neg, ok)
	}
	clk.Advance(11 * time.Second)
	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("negative entry outlived the negative TTL")
	}

	// Empty-match bodies use the negative TTL as well; a normal body
	// stored at the same instant survives.
	emptyReq := &xrsl.InfoRequest{Keywords: []string{"Memory"}, Filter: "NoSuch:*"}
	fullReq := &xrsl.InfoRequest{Keywords: []string{"Memory"}}
	rc.store(emptyReq, "", true)
	rc.store(fullReq, "body", false)
	clk.Advance(9 * time.Second) // < Memory's 10s provider TTL... both alive
	if _, _, ok := rc.lookup(emptyReq); !ok {
		t.Fatal("empty-match entry gone before negative TTL")
	}
	clk.Advance(2 * time.Second) // 11s: past negTTL 10s and provider TTL 10s
	if _, _, ok := rc.lookup(emptyReq); ok {
		t.Fatal("empty-match entry outlived the negative TTL")
	}
}

func TestRespCacheInvalidatedByRegistryGeneration(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	rc := newRespCache(reg, 4, 1<<20, time.Minute, 0, clk)

	req := &xrsl.InfoRequest{Keywords: []string{"Ghost"}}
	rc.storeNegative(req, `provider: unknown keyword "Ghost"`)
	if _, neg, ok := rc.lookup(req); !ok || neg == "" {
		t.Fatal("negative entry not cached")
	}
	// Registering the keyword bumps the generation: the cached error must
	// become unreachable immediately, not after its TTL.
	reg.Register(provider.NewFuncProvider("Ghost", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "v", Value: "now-exists"}}, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("stale negative entry served after re-registration")
	}

	// Positive entries are invalidated by membership churn too.
	pos := &xrsl.InfoRequest{Keywords: []string{"Memory"}}
	rc.store(pos, "body", false)
	reg.Unregister("Ghost")
	if _, _, ok := rc.lookup(pos); ok {
		t.Fatal("cached body survived a membership change")
	}
}

func TestRespCacheNotCacheable(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	rc := newRespCache(respTestRegistry(clk), 4, 1<<20, time.Minute, 0, clk)
	cases := []struct {
		name string
		req  *xrsl.InfoRequest
	}{
		{"immediate", &xrsl.InfoRequest{Keywords: []string{"Memory"}, Response: cache.Immediate}},
		{"quality", &xrsl.InfoRequest{Keywords: []string{"Memory"}, Quality: 50}},
		{"schema", &xrsl.InfoRequest{Schema: true}},
		{"performance", &xrsl.InfoRequest{Keywords: []string{"Memory"}, Performance: true}},
	}
	for _, tc := range cases {
		if rc.cacheable(tc.req) {
			t.Errorf("%s request reported cacheable", tc.name)
		}
	}
	if !rc.cacheable(&xrsl.InfoRequest{Keywords: []string{"Memory"}}) {
		t.Error("plain cached-mode request reported uncacheable")
	}
}

// TestRespCacheLookupAllocationFree pins the full hit path — key build
// from the request, shard lookup, blob alias — at zero heap allocations.
func TestRespCacheLookupAllocationFree(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	rc := newRespCache(respTestRegistry(clk), 8, 1<<20, time.Minute, 0, clk)
	req := &xrsl.InfoRequest{Keywords: []string{"Memory", "CPULoad"}, Filter: "Memory:*"}
	rc.store(req, "the rendered body", false)
	allocs := testing.AllocsPerRun(1000, func() {
		body, _, ok := rc.lookup(req)
		if !ok || body == "" {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("lookup allocates %.1f objects per hit; want 0", allocs)
	}
}
