package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/wire"
)

// gateProvider blocks Fetch until its gate releases, simulating a slow
// information source.
type gateProvider struct {
	keyword string
	gate    chan struct{}
	attrs   provider.Attributes
}

func (g *gateProvider) Keyword() string { return g.keyword }
func (g *gateProvider) Source() string  { return "test:gate" }
func (g *gateProvider) Fetch(ctx context.Context) (provider.Attributes, error) {
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.attrs, nil
}

// A single mux'd client must survive concurrent mixed traffic with every
// response routed to its caller (run under -race).
func TestMuxClientConcurrentRequests(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "total", Value: "1024"}},
	}, provider.RegisterOptions{TTL: time.Second})
	g := newTestGrid(t, reg)

	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const workers, iters = 16, 10
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w%2 == 0 {
					if err := cl.Ping(); err != nil {
						errCh <- fmt.Errorf("worker %d ping: %w", w, err)
						return
					}
					continue
				}
				res, err := cl.QueryRaw("&(info=Memory)")
				if err != nil {
					errCh <- fmt.Errorf("worker %d query: %w", w, err)
					return
				}
				if len(res.Entries) == 0 {
					errCh <- fmt.Errorf("worker %d: empty query result", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// A seed-era client that never offers MUX must still work against the new
// server: the serial one-frame-in, one-frame-out protocol is unchanged.
// This speaks the raw wire protocol exactly as the pre-mux client did.
func TestSerialWireCompatAgainstMuxServer(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Second})
	g := newTestGrid(t, reg)

	conn, err := wire.Dial(g.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, err := gsi.ClientHandshake(conn, g.user, g.trust, time.Now()); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	// Two serial round trips prove the connection stays in serial framing
	// (a mux'd server reply would be rejected as an unknown verb or a
	// mangled payload here).
	for i := 0; i < 2; i++ {
		resp, err := conn.Call(wire.Frame{Verb: gram.VerbPing})
		if err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		if resp.Verb != gram.VerbPong {
			t.Fatalf("ping %d: verb %s, want %s", i, resp.Verb, gram.VerbPong)
		}
		if len(resp.Payload) != 0 {
			t.Fatalf("ping %d: unexpected payload %q (mux framing leaked into a serial connection?)", i, resp.Payload)
		}
	}
	resp, err := conn.Call(wire.Frame{Verb: gram.VerbSubmit, Payload: []byte("&(info=Memory)")})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Verb != core.VerbResultLDIF {
		t.Fatalf("query: verb %s, want %s", resp.Verb, core.VerbResultLDIF)
	}
}

// The DisableMux escape hatch keeps the high-level client on the serial
// protocol even against a mux-aware server.
func TestDisableMuxClient(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Second})
	g := newTestGrid(t, reg)

	cl, err := core.DialWithOptions(g.addr, g.user, g.trust, core.Options{DisableMux: true})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	res, err := cl.QueryRaw("&(info=Memory)")
	if err != nil {
		t.Fatalf("QueryRaw: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("empty query result")
	}
}

// A slow request on a mux'd connection must not head-of-line block a fast
// one behind it — the whole point of per-connection request concurrency.
func TestMuxNoHeadOfLineBlocking(t *testing.T) {
	gate := make(chan struct{})
	reg := provider.NewRegistry(nil)
	reg.Register(&gateProvider{
		keyword: "Slow",
		gate:    gate,
		attrs:   provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{}) // TTL 0: fetch on every query
	reg.Register(&provider.StaticProvider{
		KeywordName: "Fast",
		Values:      provider.Attributes{{Name: "v", Value: "2"}},
	}, provider.RegisterOptions{TTL: time.Second})
	g := newTestGrid(t, reg)

	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := cl.QueryRaw("&(info=Slow)")
		slowDone <- err
	}()
	// Give the slow request time to reach the server first, so the fast
	// one genuinely queues behind it on the same connection.
	time.Sleep(50 * time.Millisecond)

	// The fast query must complete while the slow one is still parked on
	// its provider. Bound it so a head-of-line regression fails the test
	// instead of deadlocking it.
	fastDone := make(chan error, 1)
	go func() {
		_, err := cl.QueryRaw("&(info=Fast)")
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast query: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fast query blocked behind the slow one: head-of-line blocking")
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow query finished before its gate released: %v", err)
	default:
	}

	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow query after release: %v", err)
	}
}
