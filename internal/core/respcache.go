package core

import (
	"sync"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
	"infogram/internal/xrsl"
	"infogram/internal/zerocopy"
)

// respCache caches fully rendered information responses — the body bytes
// a cache hit writes straight to the wire — in a sharded arena-backed
// byte cache. It sits above the per-keyword provider cache (§5.1/§6.2),
// which stays the fill path on miss: a response-cache miss still
// coalesces provider executions through the single-flight Entry and
// honors inter-execution delays. What this layer removes from the hit
// path is everything else — collect fan-out, quality augmentation,
// filtering, and LDIF/DSML rendering.
//
// Keys embed the registry's membership generation, so registering or
// unregistering a provider makes every previously cached response
// unreachable in O(1); the dead entries age out through TTL eviction and
// arena compaction.
type respCache struct {
	c   *bytecache.Cache
	reg *provider.Registry
	// ttl caps every entry's lifetime; effective TTL is min(ttl, the
	// smallest provider TTL among the keywords a response covers), so a
	// rendered blob never outlives the §5.1 freshness of its inputs.
	ttl time.Duration
	// negTTL bounds negative entries — unknown keywords and
	// filters that matched nothing — which must recover quickly after a
	// provider registration or a data change.
	negTTL time.Duration

	scratch sync.Pool // *[]byte, reused for key and value assembly

	negHits *telemetry.Counter
}

// Value-blob flag bytes: every cached value is one flag byte followed by
// the payload.
const (
	respOK  = 0 // payload is the rendered response body
	respNeg = 1 // payload is the error text of a deterministic failure
)

// newRespCache builds the response cache; ttl must be positive.
func newRespCache(reg *provider.Registry, shards int, maxBytes int64, ttl, negTTL time.Duration, clk clock.Clock) *respCache {
	if negTTL <= 0 || negTTL > ttl {
		negTTL = ttl / 4
		if negTTL <= 0 {
			negTTL = ttl
		}
	}
	rc := &respCache{
		c: bytecache.New(bytecache.Options{
			Shards:     shards,
			MaxBytes:   maxBytes,
			DefaultTTL: ttl,
			Clock:      clk,
		}),
		reg:    reg,
		ttl:    ttl,
		negTTL: negTTL,
	}
	rc.scratch.New = func() any {
		b := make([]byte, 0, 256)
		return &b
	}
	return rc
}

// setTelemetry arms the underlying byte cache's counters and gauges.
func (rc *respCache) setTelemetry(reg *telemetry.Registry) {
	rc.c.SetTelemetry(reg)
	rc.negHits = reg.Counter("infogram_respcache_negative_hits_total",
		"information queries answered from a cached negative result")
}

// cacheable reports whether a request's answer may be served from and
// stored into the response cache. Immediate mode demands a fresh provider
// execution, a quality threshold changes which values are acceptable over
// time, schema reflection answers from live registration state, and
// performance augmentation embeds per-execution timing stats — none of
// which a rendered blob can honor.
func (rc *respCache) cacheable(req *xrsl.InfoRequest) bool {
	return req.Response == cache.Cached && req.Quality == 0 && !req.Schema && !req.Performance
}

// appendKey renders the cache key for req into buf: registry generation
// first (membership churn invalidates wholesale), then every request
// dimension that selects a distinct rendered body.
func (rc *respCache) appendKey(buf []byte, req *xrsl.InfoRequest) []byte {
	gen := rc.reg.Generation()
	buf = append(buf,
		byte(gen), byte(gen>>8), byte(gen>>16), byte(gen>>24),
		byte(gen>>32), byte(gen>>40), byte(gen>>48), byte(gen>>56))
	var flags byte
	if req.All {
		flags |= 1
	}
	buf = append(buf, flags, byte(req.Response))
	buf = append(buf, req.Format...)
	buf = append(buf, 0)
	for _, kw := range req.Keywords {
		buf = append(buf, kw...)
		buf = append(buf, 0)
	}
	buf = append(buf, 0)
	buf = append(buf, req.Filter...)
	return buf
}

// lookup answers req from the cache. ok reports a hit; on a hit, either
// negErr carries a cached deterministic failure or body aliases the
// cached blob (zero-copy — the arena is append-only, so the alias stays
// valid). The hit path performs no heap allocation.
func (rc *respCache) lookup(req *xrsl.InfoRequest) (body string, negErr string, ok bool) {
	bufp := rc.scratch.Get().(*[]byte)
	key := rc.appendKey((*bufp)[:0], req)
	blob, hit := rc.c.Get(key)
	*bufp = key[:0]
	rc.scratch.Put(bufp)
	if !hit || len(blob) == 0 {
		return "", "", false
	}
	payload := zerocopy.String(blob[1:])
	if blob[0] == respNeg {
		rc.negHits.Inc()
		return "", payload, true
	}
	return payload, "", true
}

// store caches a successful rendered body. empty marks a response whose
// filter matched nothing: still worth caching (the evaluation cost is
// identical) but under the shorter negative TTL, so new data appears
// promptly.
func (rc *respCache) store(req *xrsl.InfoRequest, body string, empty bool) {
	ttl, ok := rc.storeTTL(req)
	if !ok {
		return
	}
	if empty && rc.negTTL < ttl {
		ttl = rc.negTTL
	}
	rc.put(req, respOK, body, ttl)
}

// storeNegative caches a deterministic failure (an unknown keyword) under
// the negative TTL, so a flood of identical bad queries stops paying
// resolve cost — and a subsequent registration, by advancing the
// generation, makes the entry unreachable immediately.
func (rc *respCache) storeNegative(req *xrsl.InfoRequest, errText string) {
	rc.put(req, respNeg, errText, rc.negTTL)
}

// put assembles flag+payload in pooled scratch and inserts it. Set copies
// into the shard arena, so the scratch buffer is immediately reusable.
func (rc *respCache) put(req *xrsl.InfoRequest, flag byte, payload string, ttl time.Duration) {
	keyp := rc.scratch.Get().(*[]byte)
	key := rc.appendKey((*keyp)[:0], req)
	valp := rc.scratch.Get().(*[]byte)
	val := append((*valp)[:0], flag)
	val = append(val, payload...)
	rc.c.Set(key, val, ttl)
	*keyp = key[:0]
	rc.scratch.Put(keyp)
	*valp = val[:0]
	rc.scratch.Put(valp)
}

// storeTTL resolves the lifetime a cached response may have: the cap,
// lowered to the smallest provider TTL among the covered keywords. A
// keyword with TTL 0 executes on every request (Table 1) — selfmetrics,
// selftrace — so any response covering one is never cached. Unknown
// keywords report not-cacheable here; their error is cached separately
// via storeNegative.
func (rc *respCache) storeTTL(req *xrsl.InfoRequest) (time.Duration, bool) {
	ttl := rc.ttl
	kws := req.Keywords
	if len(kws) == 0 {
		kws = rc.reg.Keywords()
	}
	for _, kw := range kws {
		g, ok := rc.reg.Lookup(kw)
		if !ok {
			return 0, false
		}
		pt := g.TTL()
		if pt <= 0 {
			return 0, false
		}
		if pt < ttl {
			ttl = pt
		}
	}
	return ttl, true
}

// stats exposes the underlying cache aggregates (tests, debug).
func (rc *respCache) stats() bytecache.Stats { return rc.c.Stats() }
