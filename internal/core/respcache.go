package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
	"infogram/internal/xrsl"
	"infogram/internal/zerocopy"
)

// respCache caches fully rendered information responses — the body bytes
// a cache hit writes straight to the wire — in a sharded arena-backed
// byte cache. It sits above the per-keyword provider cache (§5.1/§6.2),
// which stays the fill path on miss: a response-cache miss still
// coalesces provider executions through the single-flight Entry and
// honors inter-execution delays. What this layer removes from the hit
// path is everything else — collect fan-out, quality augmentation,
// filtering, and LDIF/DSML rendering.
//
// Keys embed the registry's membership generation, so registering or
// unregistering a provider makes every previously cached response
// unreachable in O(1); the dead entries age out through TTL eviction and
// arena compaction.
type respCache struct {
	c   *bytecache.Cache
	reg *provider.Registry
	// ttl caps every entry's lifetime; effective TTL is min(ttl, the
	// smallest provider TTL among the keywords a response covers), so a
	// rendered blob never outlives the §5.1 freshness of its inputs.
	ttl time.Duration
	// negTTL bounds negative entries — unknown keywords and
	// filters that matched nothing — which must recover quickly after a
	// provider registration or a data change.
	negTTL time.Duration

	scratch sync.Pool // *[]byte, reused for key and value assembly

	// tracked remembers, per key hash, the request whose rendered answer
	// was stored — enough for the refresh-ahead scanner to re-execute the
	// fill and swap the blob before the TTL lapses. The map is bounded
	// (maxTracked) and only touched on the store path and by the scanner,
	// never on the hit path.
	trackMu sync.Mutex
	tracked map[uint64]*trackedReq

	negHits *telemetry.Counter
}

// trackedReq is one refresh-ahead candidate: the cloned request and the
// key it was cached under.
type trackedReq struct {
	req *xrsl.InfoRequest
	key []byte
	// inflight guards against queueing the same entry twice while a
	// refresh is still running (1 while queued or executing).
	inflight atomic.Bool
}

// maxTracked bounds the refresh-ahead candidate map. When full, new stores
// are simply not tracked: the scanner prunes entries that expired or aged
// out of the cache each cycle, and hot keys — re-stored on every refill —
// re-enter the moment space frees up. An approximate top-K, not a
// guarantee, which is all refresh-ahead needs.
const maxTracked = 4096

// minNegTTL floors the negative-TTL default: TTL/4 of a small -cache-ttl
// would otherwise truncate toward zero and make empty or failed answers
// effectively uncacheable — the exact flood they exist to absorb.
const minNegTTL = time.Second

// Value-blob flag bytes: every cached value is one flag byte followed by
// the payload.
const (
	respOK  = 0 // payload is the rendered response body
	respNeg = 1 // payload is the error text of a deterministic failure
)

// newRespCache builds the response cache; ttl must be positive.
func newRespCache(reg *provider.Registry, shards int, maxBytes int64, ttl, negTTL time.Duration, clk clock.Clock) *respCache {
	if negTTL <= 0 || negTTL > ttl {
		negTTL = ttl / 4
		if negTTL < minNegTTL {
			negTTL = minNegTTL
		}
		if negTTL > ttl {
			negTTL = ttl
		}
	}
	rc := &respCache{
		c: bytecache.New(bytecache.Options{
			Shards:     shards,
			MaxBytes:   maxBytes,
			DefaultTTL: ttl,
			Clock:      clk,
		}),
		reg:    reg,
		ttl:    ttl,
		negTTL: negTTL,
	}
	rc.scratch.New = func() any {
		b := make([]byte, 0, 256)
		return &b
	}
	rc.tracked = make(map[uint64]*trackedReq)
	return rc
}

// setTelemetry arms the underlying byte cache's counters and gauges.
func (rc *respCache) setTelemetry(reg *telemetry.Registry) {
	rc.c.SetTelemetry(reg)
	rc.negHits = reg.Counter("infogram_respcache_negative_hits_total",
		"information queries answered from a cached negative result")
}

// cacheable reports whether a request's answer may be served from and
// stored into the response cache. Immediate mode demands a fresh provider
// execution, a quality threshold changes which values are acceptable over
// time, schema reflection answers from live registration state, and
// performance augmentation embeds per-execution timing stats — none of
// which a rendered blob can honor.
func (rc *respCache) cacheable(req *xrsl.InfoRequest) bool {
	return req.Response == cache.Cached && req.Quality == 0 && !req.Schema && !req.Performance
}

// appendKey renders the cache key for req into buf: registry generation
// first (membership churn invalidates wholesale), then every request
// dimension that selects a distinct rendered body.
func (rc *respCache) appendKey(buf []byte, req *xrsl.InfoRequest) []byte {
	gen := rc.reg.Generation()
	buf = append(buf,
		byte(gen), byte(gen>>8), byte(gen>>16), byte(gen>>24),
		byte(gen>>32), byte(gen>>40), byte(gen>>48), byte(gen>>56))
	var flags byte
	if req.All {
		flags |= 1
	}
	buf = append(buf, flags, byte(req.Response))
	buf = append(buf, req.Format...)
	buf = append(buf, 0)
	for _, kw := range req.Keywords {
		buf = append(buf, kw...)
		buf = append(buf, 0)
	}
	buf = append(buf, 0)
	buf = append(buf, req.Filter...)
	return buf
}

// lookup answers req from the cache. ok reports a hit; on a hit, either
// negErr carries a cached deterministic failure or body aliases the
// cached blob (zero-copy — the arena is append-only, so the alias stays
// valid). The hit path performs no heap allocation.
func (rc *respCache) lookup(req *xrsl.InfoRequest) (body string, negErr string, ok bool) {
	bufp := rc.scratch.Get().(*[]byte)
	key := rc.appendKey((*bufp)[:0], req)
	blob, hit := rc.c.Get(key)
	*bufp = key[:0]
	rc.scratch.Put(bufp)
	if !hit || len(blob) == 0 {
		return "", "", false
	}
	payload := zerocopy.String(blob[1:])
	if blob[0] == respNeg {
		rc.negHits.Inc()
		return "", payload, true
	}
	return payload, "", true
}

// store caches a successful rendered body. empty marks a response whose
// filter matched nothing: still worth caching (the evaluation cost is
// identical) but under the shorter negative TTL, so new data appears
// promptly.
func (rc *respCache) store(req *xrsl.InfoRequest, body string, empty bool) {
	ttl, ok := rc.storeTTL(req)
	if !ok {
		return
	}
	if empty && rc.negTTL < ttl {
		ttl = rc.negTTL
	}
	rc.put(req, respOK, body, ttl)
	if !empty {
		rc.track(req)
	}
}

// track remembers req as a refresh-ahead candidate. Runs on the store
// (miss) path, so its allocations are amortized against a provider
// execution. When the map is full the entry is simply not tracked.
func (rc *respCache) track(req *xrsl.InfoRequest) {
	key := rc.appendKey(nil, req)
	h := hashKey(key)
	rc.trackMu.Lock()
	if t, ok := rc.tracked[h]; ok {
		// Same hash: refresh the key bytes (the generation stamp may have
		// advanced) and keep the existing entry's inflight state.
		t.key = key
		rc.trackMu.Unlock()
		return
	}
	if len(rc.tracked) >= maxTracked {
		rc.trackMu.Unlock()
		return
	}
	clone := *req
	clone.Keywords = append([]string(nil), req.Keywords...)
	rc.tracked[h] = &trackedReq{req: &clone, key: key}
	rc.trackMu.Unlock()
}

// candidates appends every tracked entry to dst (scanner use).
func (rc *respCache) candidates(dst []*trackedReq) []*trackedReq {
	rc.trackMu.Lock()
	for _, t := range rc.tracked {
		dst = append(dst, t)
	}
	rc.trackMu.Unlock()
	return dst
}

// untrack drops a candidate whose cache entry is gone or orphaned.
func (rc *respCache) untrack(t *trackedReq) {
	h := hashKey(t.key)
	rc.trackMu.Lock()
	if cur, ok := rc.tracked[h]; ok && cur == t {
		delete(rc.tracked, h)
	}
	rc.trackMu.Unlock()
}

// hashKey mirrors the byte cache's FNV-1a so the tracker and the cache
// agree on identity.
func hashKey(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// storeNegative caches a deterministic failure (an unknown keyword) under
// the negative TTL, so a flood of identical bad queries stops paying
// resolve cost — and a subsequent registration, by advancing the
// generation, makes the entry unreachable immediately.
func (rc *respCache) storeNegative(req *xrsl.InfoRequest, errText string) {
	rc.put(req, respNeg, errText, rc.negTTL)
}

// put assembles flag+payload in pooled scratch and inserts it. Set copies
// into the shard arena, so the scratch buffer is immediately reusable.
func (rc *respCache) put(req *xrsl.InfoRequest, flag byte, payload string, ttl time.Duration) {
	keyp := rc.scratch.Get().(*[]byte)
	key := rc.appendKey((*keyp)[:0], req)
	valp := rc.scratch.Get().(*[]byte)
	val := append((*valp)[:0], flag)
	val = append(val, payload...)
	rc.c.Set(key, val, ttl)
	*keyp = key[:0]
	rc.scratch.Put(keyp)
	*valp = val[:0]
	rc.scratch.Put(valp)
}

// storeTTL resolves the lifetime a cached response may have: the cap,
// lowered to the smallest provider TTL among the covered keywords. A
// keyword with TTL 0 executes on every request (Table 1) — selfmetrics,
// selftrace — so any response covering one is never cached. Unknown
// keywords report not-cacheable here; their error is cached separately
// via storeNegative.
func (rc *respCache) storeTTL(req *xrsl.InfoRequest) (time.Duration, bool) {
	ttl := rc.ttl
	kws := req.Keywords
	if len(kws) == 0 {
		kws = rc.reg.Keywords()
	}
	for _, kw := range kws {
		g, ok := rc.reg.Lookup(kw)
		if !ok {
			return 0, false
		}
		pt := g.TTL()
		if pt <= 0 {
			return 0, false
		}
		if pt < ttl {
			ttl = pt
		}
	}
	return ttl, true
}

// stats exposes the underlying cache aggregates (tests, debug).
func (rc *respCache) stats() bytecache.Stats { return rc.c.Stats() }

// registryDigest fingerprints the provider population — sorted keywords
// and their TTLs — so a snapshot taken under one membership is never
// trusted by a server configured with another. The generation counter
// alone cannot carry this: it restarts at the same value for any
// same-length registration sequence.
func registryDigest(reg *provider.Registry) uint64 {
	kws := reg.Keywords()
	sort.Strings(kws)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, kw := range kws {
		for i := 0; i < len(kw); i++ {
			mix(kw[i])
		}
		mix(0)
		var ttl int64
		if g, ok := reg.Lookup(kw); ok {
			ttl = int64(g.TTL())
		}
		for i := 0; i < 8; i++ {
			mix(byte(ttl >> (8 * i)))
		}
	}
	return h
}

// newPersister wires the byte cache's snapshot lifecycle to this cache's
// invalidation scheme: the registry generation is embedded at offset 0 of
// every key, so restore re-stamps it, and the registry digest gates
// whether a snapshot is trusted at all.
func (rc *respCache) newPersister(path string, interval time.Duration, compress bool, clk clock.Clock) *bytecache.Persister {
	return bytecache.NewPersister(rc.c, bytecache.PersistOptions{
		Path:     path,
		Interval: interval,
		Name:     "resp",
		Compress: compress,
		Meta: func() bytecache.SnapshotMeta {
			return bytecache.SnapshotMeta{
				Generation: rc.reg.Generation(),
				Digest:     registryDigest(rc.reg),
			}
		},
		MapKey: func(snap, cur bytecache.SnapshotMeta) func([]byte, bytecache.SnapshotMeta) ([]byte, bool) {
			return bytecache.GenKeyMapper(0, cur.Generation)
		},
		Clock: clk,
	})
}
