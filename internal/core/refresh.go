package core

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/telemetry"
)

// The refresh-ahead pool keeps hot response-cache entries from ever
// expiring under load: a scanner walks the tracked candidates, and entries
// that are both popular (enough hits since the last fill) and old (past
// the configured fraction of their TTL) are re-executed through the
// ordinary fill path — infoEngine.Answer in Immediate mode, which still
// coalesces through each provider's single-flight Entry and is still
// suppressed by the §6.2 minimum inter-execution delay, so refresh-ahead
// can never hammer a provider harder than the paper allows. The rendered
// blob is swapped in place under the original key; readers keep hitting
// the whole time. The result: a steady-state hot key pays the provider
// path in the background, never on a request, and its p99 is the hit path.

const (
	// refreshMinHits is how many reads an entry must have absorbed since
	// its last fill to be worth refreshing — one-hit wonders expire.
	refreshMinHits = 2
	// refreshQueue bounds the scanner→worker queue; a full queue skips the
	// entry until the next scan (the global rate limit).
	refreshQueue = 64
	// refreshTimeout bounds one background fill when the service has no
	// RequestTimeout of its own.
	refreshTimeout = 30 * time.Second
)

// refresher owns the scanner goroutine and the bounded worker pool.
type refresher struct {
	rc    *respCache
	info  *infoEngine
	clk   clock.Clock
	frac  float64 // refresh once elapsed >= frac * lifetime
	every time.Duration
	fill  time.Duration // per-refresh deadline

	queue    chan *trackedReq
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	refreshed *telemetry.Counter
	failed    *telemetry.Counter
	skipped   *telemetry.Counter
	trackedG  *telemetry.Gauge
}

// newRefresher builds the pool. frac is clamped to [0.1, 0.95]; workers
// defaults to 2.
func newRefresher(rc *respCache, info *infoEngine, clk clock.Clock, frac float64, workers int, fill time.Duration) *refresher {
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.95 {
		frac = 0.95
	}
	if workers <= 0 {
		workers = 2
	}
	if fill <= 0 {
		fill = refreshTimeout
	}
	// Scan often enough that an entry is seen a few times inside its
	// refresh window (the last (1-frac) of its life), bounded to stay
	// cheap for long TTLs and sane for very short ones.
	every := time.Duration(float64(rc.ttl) * (1 - frac) / 4)
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	if every > 5*time.Second {
		every = 5 * time.Second
	}
	r := &refresher{
		rc:    rc,
		info:  info,
		clk:   clk,
		frac:  frac,
		every: every,
		fill:  fill,
		queue: make(chan *trackedReq, refreshQueue),
		stop:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// setTelemetry binds the pool's counters.
func (r *refresher) setTelemetry(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.refreshed = reg.Counter("infogram_refresh_ahead_total",
		"hot cache entries proactively refreshed before TTL expiry")
	r.failed = reg.Counter("infogram_refresh_ahead_errors_total",
		"refresh-ahead fills that failed or came back degraded")
	r.skipped = reg.Counter("infogram_refresh_ahead_skipped_total",
		"refresh-ahead candidates deferred because the worker queue was full")
	r.trackedG = reg.Gauge("infogram_refresh_ahead_tracked",
		"entries currently tracked as refresh-ahead candidates")
}

// start launches the scanner loop.
func (r *refresher) start() {
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.scan()
			case <-r.stop:
				return
			}
		}
	}()
}

// close stops the scanner and the workers. Idempotent.
func (r *refresher) close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() {
		close(r.stop)
		if r.done != nil {
			<-r.done
		}
		close(r.queue)
	})
}

// scan walks the tracked candidates once, pruning dead ones and queueing
// the hot-and-aging ones.
func (r *refresher) scan() {
	now := r.clk.Now().UnixNano()
	gen := r.rc.reg.Generation()
	cands := r.rc.candidates(nil)
	r.trackedG.Set(int64(len(cands)))
	for _, t := range cands {
		// A membership change orphaned the key: the entry is unreachable
		// and a refresh would resurrect data under dead keys.
		if len(t.key) < 8 || binary.LittleEndian.Uint64(t.key) != gen {
			r.rc.untrack(t)
			continue
		}
		info, ok := r.rc.c.Info(t.key)
		if !ok {
			// Expired or evicted; the next request-path miss re-tracks it.
			r.rc.untrack(t)
			continue
		}
		if info.Hits < refreshMinHits || info.Expire <= info.Stored {
			continue
		}
		if now-info.Stored < int64(r.frac*float64(info.Expire-info.Stored)) {
			continue
		}
		if !t.inflight.CompareAndSwap(false, true) {
			continue // already queued or refreshing
		}
		select {
		case r.queue <- t:
		default:
			t.inflight.Store(false)
			r.skipped.Inc()
		}
	}
}

// worker drains the queue, re-executing fills.
func (r *refresher) worker() {
	for t := range r.queue {
		r.refresh(t)
		t.inflight.Store(false)
	}
}

// refresh re-executes one entry's fill and swaps the blob in place.
func (r *refresher) refresh(t *trackedReq) {
	ctx, cancel := context.WithTimeout(context.Background(), r.fill)
	defer cancel()
	// Immediate mode forces the provider executions the refresh exists
	// for; each provider's Entry still coalesces with concurrent request
	// fills and still serves its cached value when the §6.2 delay has not
	// elapsed, so the per-provider execution rate is bounded exactly as it
	// is for clients.
	fresh := *t.req
	fresh.Response = cache.Immediate
	body, empty, degraded, err := r.info.Answer(ctx, &fresh)
	if err != nil || degraded {
		// Providers are down; the entry keeps aging toward its TTL, and if
		// it expires the request path's CollectDegraded serves the
		// provider cache's last value, marked stale.
		r.failed.Inc()
		return
	}
	// Stored under the original request (and its original response mode),
	// so the key — including the mode byte — matches what clients look up.
	r.rc.store(t.req, body, empty)
	r.refreshed.Inc()
}
