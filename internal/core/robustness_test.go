package core_test

// Failure injection: misbehaving clients, dead callback listeners, garbage
// frames, and protocol misuse must degrade gracefully — a Grid service
// lives on a hostile network.

import (
	"context"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/job"
	"infogram/internal/provider"
	"infogram/internal/wire"
)

func TestGarbageBeforeHandshake(t *testing.T) {
	g := newTestGrid(t, provider.NewRegistry(nil))
	// Raw connection sending junk instead of AUTH: the server must drop
	// it without disturbing other clients.
	conn, err := wire.Dial(g.addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.WriteString("GARBAGE", "not an auth frame")
	// Server replies AUTH-ERR or closes; either way the next real client
	// works.
	conn.Close()

	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatalf("clean client after garbage client: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
}

func TestMalformedFrameMidSession(t *testing.T) {
	g := newTestGrid(t, provider.NewRegistry(nil))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// An unknown verb gets an ERROR frame, not a dropped connection.
	if _, err := cl.Submit("((broken"); err == nil {
		t.Error("malformed xRSL accepted")
	}
	// The session is still alive.
	if err := cl.Ping(); err != nil {
		t.Errorf("Ping after error: %v", err)
	}
}

func TestDeadCallbackListenerDoesNotBreakJob(t *testing.T) {
	reg := provider.NewRegistry(nil)
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Create a listener, learn its address, kill it: callbacks go
	// nowhere, the job must still complete.
	listener, err := gram.NewCallbackListener()
	if err != nil {
		t.Fatal(err)
	}
	contactAddr := listener.Contact()
	listener.Close()

	contact, err := cl.Submit("&(executable=hello)(jobtype=func)(callback=" + contactAddr + ")")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Done {
		t.Errorf("st = %+v", st)
	}
}

func TestSubmitMisuseHints(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "K"}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Submit of an info query hints at Query.
	if _, err := cl.Submit("&(info=K)"); err == nil {
		t.Error("Submit of info query succeeded")
	}
	// QueryRaw of a job hints at Submit — and must not leave a stray job
	// behind? It does submit (the server cannot know the caller's intent)
	// but the client reports the misuse.
	if _, err := cl.QueryRaw("&(executable=hello)(jobtype=func)"); err == nil {
		t.Error("QueryRaw of job spec succeeded")
	}
}

func TestClientDisconnectMidJob(t *testing.T) {
	// A client that submits and vanishes: the job still runs to
	// completion and is visible to a second client.
	g := newTestGrid(t, provider.NewRegistry(nil))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	contact, err := cl.Submit("&(executable=hello)(jobtype=func)")
	if err != nil {
		t.Fatal(err)
	}
	cl.Close() // vanish

	cl2, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl2.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != job.Done {
		t.Errorf("orphaned job = %+v", st)
	}
}

func TestProviderFailureIsIsolated(t *testing.T) {
	// One broken provider fails its own queries but not the service.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Good",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	bad, err := provider.NewExecProvider("Bad", "/nonexistent/tool")
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(bad, provider.RegisterOptions{TTL: time.Hour})

	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.QueryRaw("&(info=Bad)"); err == nil {
		t.Error("broken provider succeeded")
	}
	res, err := cl.QueryRaw("&(info=Good)")
	if err != nil {
		t.Fatalf("good provider after bad: %v", err)
	}
	if v, _ := res.Entries[0].Get("Good:v"); v != "1" {
		t.Errorf("Good:v = %q", v)
	}
	// (info=all) fails all-or-nothing because Bad is included...
	if _, err := cl.QueryRaw("&(info=all)"); err == nil {
		t.Error("all-or-nothing violated")
	}
	// ...and the service survives it all.
	if err := cl.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
}
