package core_test

// Client-protocol edge cases: mixed multi-request outcomes, DSML through
// multi-requests, last-mode on a cold cache, and denied parts inside a
// multi-request.

import (
	"context"
	"strings"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/core"
	"infogram/internal/provider"
	"infogram/internal/xrsl"
)

func TestMultiRequestWithErrorPart(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "K",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Part 2 queries an unknown keyword: it fails, the others succeed.
	parts, err := cl.SubmitMulti("+(&(info=K))(&(info=Ghost))(&(executable=hello)(jobtype=func))")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Kind != "info" || parts[0].Info == nil {
		t.Errorf("part 0 = %+v", parts[0])
	}
	if parts[1].Kind != "error" || parts[1].Err == nil {
		t.Errorf("part 1 = %+v", parts[1])
	}
	if parts[2].Kind != "job" || parts[2].Contact == "" {
		t.Errorf("part 2 = %+v", parts[2])
	}
}

func TestMultiRequestMixedFormats(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "K",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	parts, err := cl.SubmitMulti("+(&(info=K))(&(info=K)(format=xml))(&(info=K)(format=dsml))")
	if err != nil {
		t.Fatal(err)
	}
	wantFormats := []xrsl.Format{xrsl.FormatLDIF, xrsl.FormatXML, xrsl.FormatDSML}
	for i, p := range parts {
		if p.Info == nil {
			t.Fatalf("part %d: %+v", i, p)
		}
		if p.Info.Format != wantFormats[i] {
			t.Errorf("part %d format = %v, want %v", i, p.Info.Format, wantFormats[i])
		}
		if v, _ := p.Info.Entries[0].Get("K:v"); v != "1" {
			t.Errorf("part %d K:v = %q", i, v)
		}
	}
}

func TestSingleElementMultiRequest(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "K"}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// A '+' with one component answers like a plain request; SubmitMulti
	// normalizes it.
	parts, err := cl.SubmitMulti("+(&(info=K))")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0].Kind != "info" {
		t.Errorf("parts = %+v", parts)
	}
}

func TestLastModeColdCacheOverWire(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{KeywordName: "K"}, provider.RegisterOptions{TTL: time.Hour})
	g := newTestGrid(t, reg)
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// response=last with nothing cached: the paper's querystate
	// exception surfaces as a query error.
	if _, err := cl.QueryRaw("&(info=K)(response=last)"); err == nil ||
		!strings.Contains(err.Error(), "never fetched") {
		t.Errorf("cold last-mode: %v", err)
	}
	// After one cached read, last works.
	if _, err := cl.QueryRaw("&(info=K)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryRaw("&(info=K)(response=last)"); err != nil {
		t.Errorf("warm last-mode: %v", err)
	}
	_ = cache.Last
}

func TestJobControlThroughInfoGram(t *testing.T) {
	// Job control parity with GRAM on the unified service: typed submit,
	// suspend/resume of a forked process group, and cancel.
	reg := provider.NewRegistry(nil)
	g := newTestGrid(t, reg)
	if g.svc.Addr() != g.addr {
		t.Errorf("Addr = %q", g.svc.Addr())
	}
	if g.svc.Registry() != reg {
		t.Error("Registry accessor broken")
	}
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Server().Identity; got != "/O=Grid/CN=service" {
		t.Errorf("Server identity = %q", got)
	}

	// Typed submission of a forked job.
	contact, err := cl.SubmitJob(xrsl.JobRequest{
		Executable: "/bin/sh",
		Arguments:  []string{"-c", "sleep 0.15; echo through"},
		JobType:    "exec",
		Count:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.svc.Table().Len() != 1 {
		t.Errorf("table len = %d", g.svc.Table().Len())
	}
	// Reach ACTIVE, suspend, verify, resume, finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Status(contact)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.String() == "ACTIVE" {
			break
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("never ACTIVE: %v", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cl.Signal(contact, "suspend"); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	st, err := cl.Status(contact)
	if err != nil || st.State.String() != "SUSPENDED" {
		t.Fatalf("after suspend: %v %v", st.State, err)
	}
	if err := cl.Signal(contact, "resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil || final.State.String() != "DONE" || !strings.Contains(final.Stdout, "through") {
		t.Fatalf("final = %+v %v", final, err)
	}

	// Cancel a long fork job.
	contact2, err := cl.SubmitJob(xrsl.JobRequest{
		Executable: "/bin/sleep", Arguments: []string{"30"}, JobType: "exec", Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := cl.Cancel(contact2); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st2, err := cl.WaitTerminal(ctx, contact2, 5*time.Millisecond)
	if err != nil || st2.State.String() != "FAILED" {
		t.Errorf("cancelled = %+v %v", st2, err)
	}
	// Error paths over the wire.
	if err := cl.Cancel("gram://nope/9/9"); err == nil {
		t.Error("cancel unknown succeeded")
	}
	if err := cl.Signal("gram://nope/9/9", "suspend"); err == nil {
		t.Error("signal unknown succeeded")
	}
	if err := cl.Signal(contact2, "badpayloadnospace"); err == nil {
		t.Error("malformed signal succeeded")
	}
}

func TestEmptyRegistryInfoAll(t *testing.T) {
	// An "empty" registry still carries the built-in selfmetrics and
	// selftrace providers the service registers at construction, so
	// info=all answers with exactly those two entries.
	g := newTestGrid(t, provider.NewRegistry(nil))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.QueryRaw("&(info=all)")
	if err != nil {
		t.Fatalf("info=all on empty registry: %v", err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want selfmetrics and selftrace", len(res.Entries))
	}
	kws := map[string]bool{}
	for _, e := range res.Entries {
		kw, _ := e.Get("kw")
		kws[kw] = true
	}
	if !kws[provider.SelfMetricsKeyword] || !kws[provider.SelfTraceKeyword] {
		t.Errorf("keywords = %v, want %q and %q", kws, provider.SelfMetricsKeyword, provider.SelfTraceKeyword)
	}
	schema, err := cl.Schema()
	if err != nil || len(schema) != 2 {
		t.Errorf("schema = %v, %v", schema, err)
	}
}
