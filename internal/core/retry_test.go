package core_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/faultinject"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// fastRetry keeps retry tests quick without disabling the policy.
var fastRetry = core.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

func retriesCounter(tel *telemetry.Registry) *telemetry.Counter {
	return tel.Counter("infogram_client_retries_total",
		"transparent client retries after transient connect, handshake, or wire failures")
}

// A refused connection is transient: Dial retries MaxAttempts times, each
// retry counted, before giving up.
func TestDialRetriesRefusedConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nobody home: every dial is refused

	tel := telemetry.NewRegistry()
	g := newTestGrid(t, provider.NewRegistry(nil))
	_, err = core.DialWithOptions(addr, g.user, g.trust, core.Options{
		Retry: fastRetry, Telemetry: tel,
	})
	if err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
	if got := retriesCounter(tel).Value(); got != 2 {
		t.Fatalf("retries = %d; want 2 (three attempts)", got)
	}
}

// An authentication failure is a protocol answer, not a transport fault:
// no retry.
func TestDialAuthFailureNotRetried(t *testing.T) {
	g := newTestGrid(t, provider.NewRegistry(nil))
	// A client that trusts a different CA rejects the server's identity.
	otherCA, err := gsi.NewCA("/O=Grid/CN=Other CA", time.Hour, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.NewRegistry()
	_, err = core.DialWithOptions(g.addr, g.user, gsi.NewTrustStore(otherCA.Certificate()), core.Options{
		Retry: fastRetry, Telemetry: tel,
	})
	if err == nil {
		t.Fatal("handshake against an untrusted server succeeded")
	}
	if got := retriesCounter(tel).Value(); got != 0 {
		t.Fatalf("auth failure was retried %d times", got)
	}
}

// A transport fault during SUBMIT must surface as an error with zero
// retries: the job may already be running server-side.
func TestSubmitNotRetriedOnTransportFault(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	g := newTestGrid(t, provider.NewRegistry(nil))
	tel := telemetry.NewRegistry()
	cl, err := core.DialWithOptions(g.addr, g.user, g.trust, core.Options{
		Retry: fastRetry, RequestTimeout: 2 * time.Second, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The fault lands on whichever side reads next: the client sees either
	// its own injected read error or the EOF of the server tearing down.
	faultinject.Arm(faultinject.WireRead, faultinject.Action{Err: errors.New("torn mid-submit"), Count: 1})
	_, err = cl.Submit("&(executable=hello)(jobtype=func)")
	if err == nil {
		t.Fatal("Submit succeeded despite the transport fault")
	}
	if got := retriesCounter(tel).Value(); got != 0 {
		t.Fatalf("submission retried %d times; submissions must never retry", got)
	}
}

// The same fault on an idempotent query IS retried and recovered.
func TestQueryRetriedOnTransportFault(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Load",
		Values:      provider.Attributes{{Name: "v", Value: "7"}},
	}, provider.RegisterOptions{TTL: time.Minute})
	g := newTestGrid(t, reg)
	tel := telemetry.NewRegistry()
	cl, err := core.DialWithOptions(g.addr, g.user, g.trust, core.Options{
		Retry: fastRetry, RequestTimeout: 2 * time.Second, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	faultinject.Arm(faultinject.WireRead, faultinject.Action{Err: errors.New("torn mid-query"), Count: 1})
	res, err := cl.QueryRaw("&(info=Load)")
	if err != nil {
		t.Fatalf("query did not survive one transport fault: %v", err)
	}
	if v, _ := res.Entries[0].Get("Load:v"); v != "7" {
		t.Fatalf("post-retry entries = %v", res.Entries)
	}
	if got := retriesCounter(tel).Value(); got == 0 {
		t.Fatal("recovery happened without a counted retry")
	}
}
