package core

import (
	"errors"
	"strings"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/logging"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// instruments bundles every telemetry handle the service touches on the
// request path. All handles are resolved once at construction so the hot
// path does no registry lookups; the per-verb maps are read-only after
// newInstruments returns.
type instruments struct {
	tel *telemetry.Registry

	connsAccepted *telemetry.Counter
	connsActive   *telemetry.Gauge
	bytesRead     *telemetry.Counter
	bytesWritten  *telemetry.Counter
	frameErrors   *telemetry.Counter

	authOK      *telemetry.Counter
	authFailed  *telemetry.Counter
	authExpired *telemetry.Counter
	authLatency *telemetry.Histogram

	inFlight         *telemetry.Gauge
	infoQueries      *telemetry.Counter
	jobSubmissions   *telemetry.Counter
	requestsDegraded *telemetry.Counter

	muxConns    *telemetry.Counter
	muxInFlight *telemetry.Gauge

	replFollowers      *telemetry.Gauge
	replRecordsShipped *telemetry.Counter

	admissionAdmitted *telemetry.Counter
	admissionWaiting  *telemetry.Gauge
	admissionWait     *telemetry.Histogram
	admissionRejects  map[string]*telemetry.Counter
	rejectsOther      *telemetry.Counter

	spawnLatency *telemetry.Histogram
	jobsSpawned  *telemetry.Counter

	requests map[string]*telemetry.Counter
	latency  map[string]*telemetry.Histogram
	// unknownRequests/unknownLatency absorb verbs outside the
	// instrumented set, so a hostile or future verb never indexes the
	// maps with a missing key.
	unknownRequests *telemetry.Counter
	unknownLatency  *telemetry.Histogram
}

// instrumentedVerbs is the protocol surface measured per verb.
var instrumentedVerbs = []string{
	gram.VerbPing, gram.VerbSubmit, gram.VerbStatus, gram.VerbCancel, gram.VerbSignal,
}

// newInstruments registers the service's metric families in tel.
func newInstruments(tel *telemetry.Registry) *instruments {
	in := &instruments{
		tel: tel,

		connsAccepted: tel.Counter("infogram_connections_accepted_total", "connections accepted by the gatekeeper listener"),
		connsActive:   tel.Gauge("infogram_connections_active", "connections currently being served"),
		bytesRead:     tel.Counter("infogram_wire_bytes_read_total", "protocol bytes read from clients, framing included"),
		bytesWritten:  tel.Counter("infogram_wire_bytes_written_total", "protocol bytes written to clients, framing included"),
		frameErrors:   tel.Counter("infogram_wire_frame_errors_total", "malformed or oversized protocol frames"),

		authOK:      tel.Counter("infogram_auth_total", "GSI handshake outcomes", telemetry.Label{Key: "outcome", Value: "ok"}),
		authFailed:  tel.Counter("infogram_auth_total", "GSI handshake outcomes", telemetry.Label{Key: "outcome", Value: "failed"}),
		authExpired: tel.Counter("infogram_auth_total", "GSI handshake outcomes", telemetry.Label{Key: "outcome", Value: "expired"}),
		authLatency: tel.Histogram("infogram_auth_duration_seconds", "GSI mutual-authentication handshake latency"),

		inFlight:         tel.Gauge("infogram_requests_in_flight", "protocol requests currently executing"),
		infoQueries:      tel.Counter("infogram_info_queries_total", "information query parts evaluated"),
		jobSubmissions:   tel.Counter("infogram_job_submissions_total", "job submission parts evaluated"),
		requestsDegraded: tel.Counter("infogram_requests_degraded_total", "information replies answered partially because a provider failed or timed out"),

		muxConns:    tel.Counter("infogram_mux_connections_total", "connections upgraded to multiplexed framing"),
		muxInFlight: tel.Gauge("infogram_mux_inflight", "mux'd requests currently executing, summed over all connections"),

		replFollowers:      tel.Gauge("infogram_repl_followers", "hot-standby followers currently tailing the journal"),
		replRecordsShipped: tel.Counter("infogram_repl_records_shipped_total", "live journal records shipped to followers"),

		admissionAdmitted: tel.Counter("infogram_admission_admitted_total", "requests passed through the admission gates"),
		admissionWaiting:  tel.Gauge("infogram_admission_waiting", "requests parked in the backpressure wait queue"),
		admissionWait:     tel.Histogram("infogram_admission_wait_seconds", "time spent waiting for a global inflight slot"),
		admissionRejects:  make(map[string]*telemetry.Counter, 3),

		spawnLatency: tel.Histogram("infogram_gram_spawn_duration_seconds", "time from job submission to manager goroutine launch"),
		jobsSpawned:  tel.Counter("infogram_gram_jobs_spawned_total", "job manager goroutines launched"),

		requests: make(map[string]*telemetry.Counter, len(instrumentedVerbs)),
		latency:  make(map[string]*telemetry.Histogram, len(instrumentedVerbs)),
	}
	for _, verb := range instrumentedVerbs {
		l := telemetry.Label{Key: "verb", Value: strings.ToLower(verb)}
		in.requests[verb] = tel.Counter("infogram_requests_total", "protocol requests dispatched, by verb", l)
		in.latency[verb] = tel.Histogram("infogram_request_duration_seconds", "request handling latency, by verb", l)
	}
	unknown := telemetry.Label{Key: "verb", Value: "unknown"}
	in.unknownRequests = tel.Counter("infogram_requests_total", "protocol requests dispatched, by verb", unknown)
	in.unknownLatency = tel.Histogram("infogram_request_duration_seconds", "request handling latency, by verb", unknown)
	for _, scope := range []string{wire.RejectScopeQuota, wire.RejectScopeOverload, wire.RejectScopeBacklog} {
		in.admissionRejects[scope] = tel.Counter("infogram_admission_rejected_total",
			"requests refused by admission control, by gate", telemetry.Label{Key: "scope", Value: scope})
	}
	in.rejectsOther = tel.Counter("infogram_admission_rejected_total",
		"requests refused by admission control, by gate", telemetry.Label{Key: "scope", Value: "other"})
	return in
}

// admissionRejected returns the per-scope rejection counter, with a
// catch-all for unexpected scopes so callers never index a missing key.
func (in *instruments) admissionRejected(scope string) *telemetry.Counter {
	if c, ok := in.admissionRejects[scope]; ok {
		return c
	}
	return in.rejectsOther
}

// requestCounter returns the per-verb request counter, or the catch-all
// "unknown" counter for verbs outside the instrumented set.
func (in *instruments) requestCounter(verb string) *telemetry.Counter {
	if c, ok := in.requests[verb]; ok {
		return c
	}
	return in.unknownRequests
}

// requestLatency is requestCounter's histogram counterpart.
func (in *instruments) requestLatency(verb string) *telemetry.Histogram {
	if h, ok := in.latency[verb]; ok {
		return h
	}
	return in.unknownLatency
}

// serverInstruments is what the wire listener feeds.
func (in *instruments) serverInstruments() wire.ServerInstruments {
	return wire.ServerInstruments{Accepted: in.connsAccepted, Active: in.connsActive}
}

// connInstruments is what each accepted connection feeds.
func (in *instruments) connInstruments() wire.ConnInstruments {
	return wire.ConnInstruments{
		BytesRead:    in.bytesRead,
		BytesWritten: in.bytesWritten,
		FrameErrors:  in.frameErrors,
	}
}

// observeAuth classifies one handshake outcome and its latency. Expired
// certificates (typically short-lived proxies) are an expected operational
// event and get their own bucket.
func (in *instruments) observeAuth(err error, elapsed time.Duration) {
	in.authLatency.Observe(elapsed)
	switch {
	case err == nil:
		in.authOK.Inc()
	case errors.Is(err, gsi.ErrExpired):
		in.authExpired.Inc()
	default:
		in.authFailed.Inc()
	}
}

// span appends a span record to log, tagging it with the trace ID and —
// when a live span is supplied — the span/parent IDs, so a grep for the
// trace correlates log records with the stored span tree. A nil log or
// empty trace drops the record; a nil span leaves the IDs blank.
func span(log *logging.Logger, clk clock.Clock, trace telemetry.TraceID, sp *telemetry.Span, name, contact string, elapsed time.Duration) {
	if log == nil || trace == "" {
		return
	}
	_ = log.Append(logging.Record{
		Time:      clk.Now(),
		Kind:      logging.KindSpan,
		Contact:   contact,
		Trace:     string(trace),
		Span:      name,
		SpanID:    sp.ID().String(),
		ParentID:  sp.Parent().String(),
		ElapsedUS: elapsed.Microseconds(),
	})
}
