package core_test

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// counterValue reads one counter/gauge from a registry snapshot (label-
// free series only).
func counterValue(reg *telemetry.Registry, name string) int64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value
		}
	}
	return -1
}

// TestResponseCacheServesRepeatQueries drives the same filtered query
// repeatedly over the wire and verifies the rendered blob is served from
// the byte cache (hits counted) with the body identical to the first
// answer.
func TestResponseCacheServesRepeatQueries(t *testing.T) {
	reg := provider.NewRegistry(nil)
	var execs atomic.Int64
	reg.Register(provider.NewFuncProvider("Memory", func(ctx context.Context) (provider.Attributes, error) {
		execs.Add(1)
		return provider.Attributes{{Name: "free", Value: "1024"}, {Name: "total", Value: "2048"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})

	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
		cfg.CacheShards = 8
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	first, err := cl.QueryRaw(`&(info=Memory)(filter="Memory:free")`)
	if err != nil {
		t.Fatal(err)
	}
	tel := g.svc.Telemetry()
	if got := counterValue(tel, "infogram_bytecache_misses_total"); got < 1 {
		t.Fatalf("bytecache misses after first query = %d; want >= 1", got)
	}
	for i := 0; i < 5; i++ {
		res, err := cl.QueryRaw(`&(info=Memory)(filter="Memory:free")`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) != len(first.Entries) {
			t.Fatalf("cached reply shape differs: %d vs %d entries", len(res.Entries), len(first.Entries))
		}
		v, _ := res.Entries[0].Get("Memory:free")
		if v != "1024" {
			t.Fatalf("cached reply Memory:free = %q", v)
		}
		if _, ok := res.Entries[0].Get("Memory:total"); ok {
			t.Fatal("filter projection lost on cached reply")
		}
	}
	if got := counterValue(tel, "infogram_bytecache_hits_total"); got != 5 {
		t.Fatalf("bytecache hits = %d; want 5", got)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("provider executions = %d; want 1", got)
	}
	if got := counterValue(tel, "infogram_bytecache_resident_bytes"); got <= 0 {
		t.Fatalf("resident bytes gauge = %d; want > 0", got)
	}
}

// TestResponseCacheNegativeUnknownKeyword verifies a query for an
// unregistered keyword is cached as a negative entry — and that
// registering the keyword makes the cached error unreachable immediately
// (generation-keyed invalidation), not after the negative TTL.
func TestResponseCacheNegativeUnknownKeyword(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Base", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "v", Value: "1"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})

	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 3; i++ {
		_, err := cl.QueryRaw("&(info=Ghost)")
		if err == nil {
			t.Fatal("unknown keyword did not error")
		}
		if !strings.Contains(err.Error(), "Ghost") {
			t.Fatalf("error %v does not name the keyword", err)
		}
	}
	tel := g.svc.Telemetry()
	if got := counterValue(tel, "infogram_respcache_negative_hits_total"); got != 2 {
		t.Fatalf("negative hits = %d; want 2 (first query fills, two hit)", got)
	}

	// Registration must invalidate the cached error at once.
	var n atomic.Int64
	g.svc.Registry().Register(provider.NewFuncProvider("Ghost", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "n", Value: strconv.FormatInt(n.Add(1), 10)}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	res, err := cl.QueryRaw("&(info=Ghost)")
	if err != nil {
		t.Fatalf("query after registration still failing: %v", err)
	}
	if v, _ := res.Entries[0].Get("Ghost:n"); v != "1" {
		t.Fatalf("Ghost:n = %q after registration", v)
	}
}

// TestResponseCacheEmptyFilterCached verifies an empty-match filter
// result is cached (the evaluation cost is the same) and served from
// cache on repeat.
func TestResponseCacheEmptyFilterCached(t *testing.T) {
	reg := provider.NewRegistry(nil)
	var execs atomic.Int64
	reg.Register(provider.NewFuncProvider("Memory", func(ctx context.Context) (provider.Attributes, error) {
		execs.Add(1)
		return provider.Attributes{{Name: "free", Value: "1024"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 3; i++ {
		res, err := cl.QueryRaw(`&(info=Memory)(filter="NoSuchAttr:*")`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) != 0 {
			t.Fatalf("empty-match filter returned %d entries", len(res.Entries))
		}
	}
	tel := g.svc.Telemetry()
	if got := counterValue(tel, "infogram_bytecache_hits_total"); got != 2 {
		t.Fatalf("bytecache hits = %d; want 2", got)
	}
}

// TestResponseCacheImmediateBypasses verifies response=immediate never
// answers from the response cache.
func TestResponseCacheImmediateBypasses(t *testing.T) {
	reg := provider.NewRegistry(nil)
	var execs atomic.Int64
	reg.Register(provider.NewFuncProvider("Counter", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "n", Value: strconv.FormatInt(execs.Add(1), 10)}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.QueryRaw("&(info=Counter)"); err != nil {
		t.Fatal(err)
	}
	res, err := cl.QueryRaw("&(info=Counter)(response=immediate)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Entries[0].Get("Counter:n"); v != "2" {
		t.Fatalf("immediate read = %q; want 2 (fresh execution)", v)
	}
}
