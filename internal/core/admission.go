package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"infogram/internal/gsi"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// This file is the service's admission control: the decisions made *before*
// a request is parsed, authorized, or executed. The paper's gatekeeper
// authenticates and authorizes; at production scale it also has to decide
// how much work to accept, because an open-loop arrival curve does not slow
// down when the server does — requests keep arriving at the offered rate
// and anything the server cannot refuse cheaply turns into unbounded queue
// growth (the GRIS/GIIS collapse measured in the MDS performance studies).
// Two gates run in order:
//
//  1. Quota: the identity's §5.3 contract may carry rate=/burst=, enforced
//     as a per-identity token bucket (gsi.Policy.Admit).
//  2. Backpressure: a global max-inflight slot gate with a bounded wait
//     queue; when the queue passes a priority-dependent threshold the
//     request is shed instead of parked.
//
// Both refusals answer with a REJECT frame carrying a retry-after hint —
// the cheapest response the server can produce, sent before any provider
// or scheduler work.

// DefaultQueueTimeout bounds how long an admitted-but-waiting request may
// sit in the backpressure queue before it is shed, when Config.QueueTimeout
// is zero. Waiting longer than a second for a slot means the server is far
// behind the arrival rate; answering REJECT then is kinder than answering
// late.
const DefaultQueueTimeout = time.Second

// gate is the global max-inflight backpressure gate. Slots bound
// concurrent request execution across every connection (composing with the
// per-connection -conn-parallelism bound, which only limits one client);
// the wait queue absorbs short bursts; the shed thresholds turn sustained
// excess into fast rejections, low-priority classes first.
type gate struct {
	slots   chan struct{}
	shed    int           // wait-queue length beyond which high priority sheds
	timeout time.Duration // max time a request may wait for a slot
	waiting atomic.Int64
}

// newGate builds the backpressure gate; maxInflight <= 0 disables it.
func newGate(maxInflight, shedQueue int, timeout time.Duration) *gate {
	if maxInflight <= 0 {
		return nil
	}
	if shedQueue <= 0 {
		shedQueue = 2 * maxInflight
	}
	if timeout <= 0 {
		timeout = DefaultQueueTimeout
	}
	return &gate{
		slots:   make(chan struct{}, maxInflight),
		shed:    shedQueue,
		timeout: timeout,
	}
}

// threshold is the wait-queue occupancy at which priority p sheds: low
// classes give up at half the queue, normal at three quarters, high only
// when it is full — so under sustained overload the queue keeps serving
// interactive clients while batch clients see fast REJECTs.
func (g *gate) threshold(p gsi.Priority) int {
	switch {
	case p > gsi.PriorityNormal:
		return g.shed
	case p < gsi.PriorityNormal:
		return (g.shed + 1) / 2
	default:
		return (3*g.shed + 3) / 4
	}
}

// hint estimates a retry-after for a shed request: proportional to the
// queue ahead of it, bounded so clients never park for long on a guess.
func (g *gate) hint(waiting int) time.Duration {
	d := time.Duration(1+waiting) * 20 * time.Millisecond
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// acquire claims an execution slot, waiting up to the gate timeout when the
// server is at capacity. It returns ok=false — with a retry-after hint —
// when the request should be shed instead: the wait queue is already past
// the priority's threshold, or the wait timed out. A nil gate admits
// everything.
func (g *gate) acquire(p gsi.Priority, waitGauge *telemetry.Gauge) (retryAfter time.Duration, ok bool) {
	if g == nil {
		return 0, true
	}
	select {
	case g.slots <- struct{}{}:
		return 0, true
	default:
	}
	w := int(g.waiting.Load())
	if w >= g.threshold(p) {
		return g.hint(w), false
	}
	g.waiting.Add(1)
	waitGauge.Inc()
	defer func() {
		g.waiting.Add(-1)
		waitGauge.Dec()
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return 0, true
	case <-timer.C:
		return g.hint(int(g.waiting.Load())), false
	}
}

// release frees an acquired slot.
func (g *gate) release() {
	if g != nil {
		<-g.slots
	}
}

// admit runs both admission gates for one request. On refusal it returns
// the REJECT response frame and admitted=false; on admission the caller
// must call release() when the request finishes. The root span (may be
// nil) is tagged rather than failed: a rejection is the mechanism working,
// not an error, but it should still be visible in the trace store.
func (s *Service) admit(verb string, peer *gsi.Peer, root *telemetry.Span) (release func(), reject wire.Frame, admitted bool) {
	adm := s.cfg.Quota.Admit(peer.Identity, s.cfg.Clock.Now(), 1)
	if !adm.OK {
		s.instr.admissionRejected(wire.RejectScopeQuota).Inc()
		rejectSpan(root, wire.RejectScopeQuota, adm.RetryAfter)
		return nil, wire.EncodeReject(wire.Reject{
			RetryAfter: adm.RetryAfter,
			Scope:      wire.RejectScopeQuota,
			Reason:     adm.Rule,
		}), false
	}
	start := s.cfg.Clock.Now()
	retryAfter, ok := s.gate.acquire(adm.Priority, s.instr.admissionWaiting)
	if s.gate != nil {
		s.instr.admissionWait.Observe(s.cfg.Clock.Now().Sub(start))
	}
	if !ok {
		s.instr.admissionRejected(wire.RejectScopeOverload).Inc()
		rejectSpan(root, wire.RejectScopeOverload, retryAfter)
		return nil, wire.EncodeReject(wire.Reject{
			RetryAfter: retryAfter,
			Scope:      wire.RejectScopeOverload,
			Reason:     fmt.Sprintf("server at capacity (verb %s, priority %s)", verb, adm.Priority),
		}), false
	}
	s.instr.admissionAdmitted.Inc()
	return s.gate.release, wire.Frame{}, true
}

// rejectSpan tags a root span with the rejection outcome.
func rejectSpan(root *telemetry.Span, scope string, retryAfter time.Duration) {
	if root == nil {
		return
	}
	root.SetAttr("rejected", scope)
	root.SetAttr("retry_after_ms", fmt.Sprintf("%d", retryAfter.Milliseconds()))
}

// RejectedError is the client-side face of a REJECT frame: the server
// refused the request before doing any work on it. It is not a transport
// failure — the connection stays healthy and is kept — and the client does
// not retry it like one: hammering a server that is explicitly saying "not
// now" is how overload turns into collapse. Callers that want to retry
// should wait at least RetryAfter first; because rejection happens before
// parsing or execution, retrying is safe even for submissions.
type RejectedError struct {
	// Scope names the gate that refused ("quota", "overload", "backlog").
	Scope string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
	// Reason is the server's human-readable explanation.
	Reason string
}

// Error implements the error interface.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("infogram: rejected (%s): retry after %s: %s", e.Scope, e.RetryAfter, e.Reason)
}
