// Package core implements the InfoGram service itself: the unified Grid
// service of paper §6 and Figures 3/4 that answers both job submissions
// and information queries over a single protocol on a single port. "If we
// think abstractly about job execution and an information service, we must
// recognize that they are based on the same principle: A query formulated
// and submitted to a server followed by a stream of information that
// returns the result based on the query" (§4).
//
// The request protocol is GRAMP extended: a SUBMIT frame carries xRSL; if
// the specification is a job it is executed by a job manager exactly as in
// the GRAM baseline, and if it carries info tags the same SUBMIT returns
// the information — "[a]t the protocol level we have replaced an LDAP
// search query with a query cast as a simple job submission through RSL"
// (§6.5). Multi-requests (+) mix both kinds in one round trip.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/logging"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/rsl"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
	"infogram/internal/zerocopy"
)

// Protocol verbs specific to InfoGram; job verbs are shared with GRAMP
// (gram.VerbSubmit etc.), which is what makes the service backwards
// compatible with GRAM clients.
const (
	// VerbResultLDIF carries an information result in LDIF.
	VerbResultLDIF = "RESULT-LDIF"
	// VerbResultXML carries an information result in XML.
	VerbResultXML = "RESULT-XML"
	// VerbResultDSML carries an information result in DSMLv1.
	VerbResultDSML = "RESULT-DSML"
	// VerbMulti carries the JSON-encoded results of a multi-request.
	VerbMulti = "MULTI"
)

// Config wires an InfoGram service.
type Config struct {
	// ResourceName names this resource in information entry DNs.
	ResourceName string
	// Credential/Trust/Gridmap/Policy form the security layer of the
	// gatekeeper (Figure 3: Security Authentication + Authorization).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	Gridmap    *gsi.Gridmap
	Policy     *gsi.Policy
	// Registry holds the key information providers (the system monitor +
	// system information service of Figure 3).
	Registry *provider.Registry
	// Backends are the local schedulers for job execution.
	Backends gram.Backends
	// Log is the logging service of Figure 3 (restart + accounting).
	Log *logging.Logger
	// Telemetry receives the service's metrics; a private registry is
	// created when nil, so instrumentation is always live. Callers that
	// want to expose the metrics (Prometheus endpoint, shared registry)
	// pass their own.
	Telemetry *telemetry.Registry
	// Clock defaults to the system clock.
	Clock clock.Clock
	// Env provides server-side RSL substitution variables.
	Env rsl.Env
	// RequestTimeout, when positive, bounds every connection I/O operation
	// and every request's handling: the handshake, each frame read and
	// write (so a client feeding or draining bytes too slowly is cut off),
	// and the evaluation of each SUBMIT. It also bounds the idle wait for
	// the next request, so clients that park connections longer than this
	// must reconnect (the client's retry policy does so transparently).
	// Zero disables all of these bounds.
	RequestTimeout time.Duration
	// ProviderTimeout, when positive, bounds each information provider's
	// retrieval and switches info queries from the paper's all-or-nothing
	// §6.3 semantics to graceful degradation: keywords whose provider
	// fails or times out are reported in a degraded status entry while the
	// rest of the reply is delivered. Zero keeps all-or-nothing.
	ProviderTimeout time.Duration
	// CollectParallelism bounds the two request-path fan-outs: the
	// provider worker pool behind a multi-keyword info query, and the
	// concurrent evaluation of a multi-request's (+) parts. 1 forces both
	// serial; 0 (or negative) selects provider.DefaultParallelism.
	CollectParallelism int
}

// Service is one InfoGram instance.
type Service struct {
	cfg     Config
	manager *gram.Manager
	table   *job.Table
	server  *wire.Server
	dialer  *gram.CallbackDialer
	info    *infoEngine
	instr   *instruments

	mu   sync.Mutex
	addr string
}

// NewService builds an InfoGram service.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	if cfg.Registry == nil {
		cfg.Registry = provider.NewRegistry(cfg.Clock)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	cfg.Telemetry.MarkStart(cfg.Clock.Now())
	// Per-keyword cache counters, for providers registered before and
	// after this point.
	cfg.Registry.SetTelemetry(cfg.Telemetry)
	cfg.Registry.SetParallelism(cfg.CollectParallelism)
	// The self-monitoring provider (§4 dogfooded): the service's own
	// telemetry is just another key information provider, queryable with
	// &(info=selfmetrics). TTL 0 = execute on every request, so the
	// answer always reflects the current counters.
	if _, ok := cfg.Registry.Lookup(provider.SelfMetricsKeyword); !ok {
		cfg.Registry.Register(provider.NewSelfMetrics(cfg.Telemetry), provider.RegisterOptions{})
	}
	s := &Service{cfg: cfg, dialer: gram.NewCallbackDialer()}
	s.instr = newInstruments(cfg.Telemetry)
	s.info = &infoEngine{
		resource:        cfg.ResourceName,
		registry:        cfg.Registry,
		providerTimeout: cfg.ProviderTimeout,
	}
	s.server = wire.NewServer(wire.HandlerFunc(s.serveConn))
	s.server.Instrument(s.instr.serverInstruments())
	return s
}

// Listen binds the service and returns the bound address.
func (s *Service) Listen(addr string) (string, error) {
	bound, err := s.server.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.table = job.NewTable(bound)
	s.manager = gram.NewManager(gram.ManagerConfig{
		Table:        s.table,
		Backends:     s.cfg.Backends,
		Log:          s.cfg.Log,
		Notify:       s.dialer,
		Clock:        s.cfg.Clock,
		SpawnLatency: s.instr.spawnLatency,
		JobsSpawned:  s.instr.jobsSpawned,
	})
	s.mu.Unlock()
	if s.cfg.Log != nil {
		_ = s.cfg.Log.Append(logging.Record{Time: s.cfg.Clock.Now(), Kind: logging.KindServiceStart})
	}
	return bound, nil
}

// Addr returns the bound address.
func (s *Service) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Registry returns the provider registry.
func (s *Service) Registry() *provider.Registry { return s.cfg.Registry }

// Table returns the job table (nil before Listen).
func (s *Service) Table() *job.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// AcceptedConns reports accepted connections (experiments E3/E4). It is a
// thin reader over the telemetry counter that now carries the count.
func (s *Service) AcceptedConns() int64 { return s.instr.connsAccepted.Value() }

// Telemetry returns the service's metrics registry (for exposition or
// embedding into a larger one).
func (s *Service) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Close shuts the service down.
func (s *Service) Close() error {
	s.dialer.Close()
	return s.server.Close()
}

// GRIS exposes the same provider registry through the MDS directory
// protocol, the backward-compatibility path of §6.5: "this information
// service can easily be integrated into the Globus MDS information service
// architecture". The returned GRIS can be registered with any GIIS.
func (s *Service) GRIS() *mds.GRIS {
	return mds.NewGRIS(mds.GRISConfig{
		ResourceName: s.cfg.ResourceName,
		Registry:     s.cfg.Registry,
		Credential:   s.cfg.Credential,
		Trust:        s.cfg.Trust,
		Policy:       s.cfg.Policy,
		Clock:        s.cfg.Clock,
	})
}

// Recover replays a log and resubmits every job that had not reached a
// terminal state, implementing the restart capability of §6 ("the log can
// be used to restart our InfoGRAM service in case it needs to be
// restarted"). It returns the recovered job contacts (new contacts are
// allocated; the log ties them to the original spec).
func (s *Service) Recover(records []logging.Record) ([]string, error) {
	pending := logging.Recover(records)
	contacts := make([]string, 0, len(pending))
	for _, rj := range pending {
		req, err := xrsl.DecodeOne(rj.Spec, s.env(rj.Owner))
		if err != nil || req.Kind != xrsl.KindJob {
			continue // info queries and undecodable specs are not restartable
		}
		// Resume from the last checkpoint the crashed run logged (§10).
		req.Job.Checkpoint = rj.Checkpoint
		contact, err := s.manager.Submit(context.Background(), req.Job, job.Record{
			Spec:     rj.Spec,
			Owner:    rj.Owner,
			Identity: rj.Identity,
		})
		if err != nil {
			return contacts, fmt.Errorf("core: recover %q: %w", rj.Contact, err)
		}
		contacts = append(contacts, contact)
	}
	return contacts, nil
}

// serveConn is the InfoGram gatekeeper: one GSI handshake, one gridmap
// lookup, then a loop over the single unified protocol. A trace ID is
// minted per connection-request and follows the request through every
// layer; each verb is timed into the per-verb latency histogram and, when
// a logger is configured, emitted as a span record.
func (s *Service) serveConn(c *wire.Conn) {
	c.Instrument(s.instr.connInstruments())
	// The request timeout doubles as the connection's per-operation I/O
	// deadline: a slow sender cannot park a handshake or frame read, and a
	// slow reader cannot wedge a response write.
	if s.cfg.RequestTimeout > 0 {
		c.SetIOTimeout(s.cfg.RequestTimeout)
	}
	trace := telemetry.NewTraceID()
	ctx := telemetry.WithTrace(context.Background(), trace)

	authStart := s.cfg.Clock.Now()
	hctx, hcancel := s.requestCtx(ctx)
	peer, err := gsi.ServerHandshakeContext(hctx, c, s.cfg.Credential, s.cfg.Trust, authStart)
	hcancel()
	authElapsed := s.cfg.Clock.Now().Sub(authStart)
	s.instr.observeAuth(err, authElapsed)
	span(s.cfg.Log, s.cfg.Clock, trace, "auth", "", authElapsed)
	if err != nil {
		return
	}
	local, err := s.cfg.Gridmap.Map(peer.Identity)
	if err != nil {
		_ = c.WriteString(gram.VerbError, fmt.Sprintf("gatekeeper: %v", err))
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		// Count before handling, so a request that queries selfmetrics
		// sees itself in the answer. Verbs outside the instrumented set
		// fall into the catch-all "unknown" series rather than indexing
		// the per-verb maps with a hostile key.
		s.instr.requestCounter(f.Verb).Inc()
		s.instr.inFlight.Inc()
		start := s.cfg.Clock.Now()
		// The payload buffer is freshly allocated per frame and never
		// reused, so handlers may alias it as a string without a copy.
		payload := zerocopy.String(f.Payload)
		switch f.Verb {
		case gram.VerbPing:
			_ = c.WriteString(gram.VerbPong, "")
		case gram.VerbSubmit:
			rctx, rcancel := s.requestCtx(ctx)
			s.handleSubmit(rctx, c, payload, peer, local)
			rcancel()
		case gram.VerbStatus:
			s.handleStatus(c, strings.TrimSpace(payload))
		case gram.VerbCancel:
			s.handleCancel(c, strings.TrimSpace(payload))
		case gram.VerbSignal:
			s.handleSignal(c, strings.TrimSpace(payload))
		default:
			_ = c.WriteString(gram.VerbError, fmt.Sprintf("infogram: unknown verb %s", f.Verb))
		}
		elapsed := s.cfg.Clock.Now().Sub(start)
		s.instr.requestLatency(f.Verb).Observe(elapsed)
		s.instr.inFlight.Dec()
		span(s.cfg.Log, s.cfg.Clock, trace, "request:"+f.Verb, "", elapsed)
	}
}

// requestCtx derives the per-request context: bounded by the configured
// request timeout when one is set, plain cancellation otherwise.
func (s *Service) requestCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(parent, s.cfg.RequestTimeout)
	}
	return context.WithCancel(parent)
}

// PartResult is one element of a multi-request response.
type PartResult struct {
	Kind    string `json:"kind"` // "job", "info", or "error"
	Contact string `json:"contact,omitempty"`
	Format  string `json:"format,omitempty"`
	Body    string `json:"body,omitempty"`
	Error   string `json:"error,omitempty"`
	// Degraded marks an info part answered partially because one or more
	// providers failed or timed out.
	Degraded bool `json:"degraded,omitempty"`
}

// handleSubmit dispatches one SUBMIT frame: job, info, or multi-request.
func (s *Service) handleSubmit(ctx context.Context, c *wire.Conn, src string, peer *gsi.Peer, local string) {
	reqs, err := xrsl.Decode(src, s.env(local))
	if err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	if len(reqs) == 1 {
		s.respondSingle(ctx, c, reqs[0], peer, local)
		return
	}
	// Multi-request: evaluate every part, report per-part outcomes in
	// request order. Parts are independent requests (jobs and info mixed),
	// so they evaluate concurrently under the same fan-out bound as
	// provider collection; every layer a part touches — policy, job
	// manager, provider cache, telemetry — already serves concurrent
	// connections, so concurrent parts of one connection need no extra
	// locking, and the per-part info/job counters stay exact.
	parts := make([]PartResult, len(reqs))
	if bound := min(s.cfg.Registry.Parallelism(), len(reqs)); bound <= 1 {
		for i, req := range reqs {
			parts[i] = s.evalPart(ctx, req, peer, local)
		}
	} else {
		sem := make(chan struct{}, bound)
		var wg sync.WaitGroup
		for i, req := range reqs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				parts[i] = s.evalPart(ctx, req, peer, local)
			}()
		}
		wg.Wait()
	}
	payload, err := json.Marshal(parts)
	if err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbMulti, Payload: payload})
}

func (s *Service) respondSingle(ctx context.Context, c *wire.Conn, req *xrsl.Request, peer *gsi.Peer, local string) {
	part := s.evalPart(ctx, req, peer, local)
	switch part.Kind {
	case "job":
		_ = c.WriteString(gram.VerbSubmitted, part.Contact)
	case "info":
		verb := VerbResultLDIF
		switch xrsl.Format(part.Format) {
		case xrsl.FormatXML:
			verb = VerbResultXML
		case xrsl.FormatDSML:
			verb = VerbResultDSML
		}
		// The rendered body is written once and never mutated, so the
		// frame may alias it instead of copying.
		_ = c.Write(wire.Frame{Verb: verb, Payload: zerocopy.Bytes(part.Body)})
	default:
		_ = c.WriteString(gram.VerbError, part.Error)
	}
}

// evalPart authorizes and executes one request part, counting it into the
// info-query or job-submission counter before execution so a selfmetrics
// query observes itself.
func (s *Service) evalPart(ctx context.Context, req *xrsl.Request, peer *gsi.Peer, local string) PartResult {
	now := s.cfg.Clock.Now()
	switch req.Kind {
	case xrsl.KindJob:
		s.instr.jobSubmissions.Inc()
		if err := s.cfg.Policy.Authorize(peer.Identity, gsi.OpJobSubmit, now); err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		contact, err := s.manager.Submit(ctx, req.Job, job.Record{
			Spec:     req.Source,
			Owner:    local,
			Identity: peer.Identity,
		})
		if err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		return PartResult{Kind: "job", Contact: contact}
	case xrsl.KindInfo:
		s.instr.infoQueries.Inc()
		if err := s.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, now); err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		s.logInfoQuery(ctx, req.Info, peer, local)
		start := s.cfg.Clock.Now()
		body, degraded, err := s.info.Answer(ctx, req.Info)
		span(s.cfg.Log, s.cfg.Clock, telemetry.TraceFrom(ctx), "info-collect", "", s.cfg.Clock.Now().Sub(start))
		if err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		if degraded {
			s.instr.requestsDegraded.Inc()
		}
		return PartResult{Kind: "info", Format: string(req.Info.Format), Body: body, Degraded: degraded}
	default:
		return PartResult{Kind: "error", Error: "infogram: unclassifiable request"}
	}
}

func (s *Service) logInfoQuery(ctx context.Context, info *xrsl.InfoRequest, peer *gsi.Peer, local string) {
	if s.cfg.Log == nil {
		return
	}
	keywords := info.Keywords
	if info.Schema {
		keywords = []string{"schema"}
	} else if info.All || len(keywords) == 0 {
		keywords = []string{"all"}
	}
	_ = s.cfg.Log.Append(logging.Record{
		Time:     s.cfg.Clock.Now(),
		Kind:     logging.KindInfoQuery,
		Identity: peer.Identity,
		Owner:    local,
		Keywords: keywords,
		Trace:    string(telemetry.TraceFrom(ctx)),
	})
}

// env mirrors gram.Service's substitution environment.
func (s *Service) env(local string) rsl.Env {
	env := rsl.NewEnv("LOGNAME", local, "HOME", "/home/"+local)
	for k, v := range s.cfg.Env {
		env[k] = v
	}
	return env
}

func (s *Service) handleStatus(c *wire.Conn, contact string) {
	rec, err := s.table.Get(contact)
	if err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	reply := gram.StatusReply{
		Contact:  rec.Contact,
		State:    rec.State,
		ExitCode: rec.ExitCode,
		Error:    rec.Error,
		Stdout:   rec.Stdout,
		Stderr:   rec.Stderr,
		Restarts: rec.Restarts,
	}
	b, err := json.Marshal(reply)
	if err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: gram.VerbStatusOK, Payload: b})
}

func (s *Service) handleCancel(c *wire.Conn, contact string) {
	if err := s.manager.Cancel(contact); err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	_ = c.WriteString(gram.VerbCancelOK, contact)
}

func (s *Service) handleSignal(c *wire.Conn, payload string) {
	contact, signal, ok := strings.Cut(payload, " ")
	if !ok {
		_ = c.WriteString(gram.VerbError, "infogram: SIGNAL payload must be 'contact signal'")
		return
	}
	if err := s.manager.Signal(contact, strings.TrimSpace(signal)); err != nil {
		_ = c.WriteString(gram.VerbError, err.Error())
		return
	}
	_ = c.WriteString(gram.VerbSignalOK, contact)
}
