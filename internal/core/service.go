// Package core implements the InfoGram service itself: the unified Grid
// service of paper §6 and Figures 3/4 that answers both job submissions
// and information queries over a single protocol on a single port. "If we
// think abstractly about job execution and an information service, we must
// recognize that they are based on the same principle: A query formulated
// and submitted to a server followed by a stream of information that
// returns the result based on the query" (§4).
//
// The request protocol is GRAMP extended: a SUBMIT frame carries xRSL; if
// the specification is a job it is executed by a job manager exactly as in
// the GRAM baseline, and if it carries info tags the same SUBMIT returns
// the information — "[a]t the protocol level we have replaced an LDAP
// search query with a query cast as a simple job submission through RSL"
// (§6.5). Multi-requests (+) mix both kinds in one round trip.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"path/filepath"

	"infogram/internal/bytecache"
	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/journal"
	"infogram/internal/logging"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/rsl"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
	"infogram/internal/zerocopy"
)

// Protocol verbs specific to InfoGram; job verbs are shared with GRAMP
// (gram.VerbSubmit etc.), which is what makes the service backwards
// compatible with GRAM clients.
const (
	// VerbResultLDIF carries an information result in LDIF.
	VerbResultLDIF = "RESULT-LDIF"
	// VerbResultXML carries an information result in XML.
	VerbResultXML = "RESULT-XML"
	// VerbResultDSML carries an information result in DSMLv1.
	VerbResultDSML = "RESULT-DSML"
	// VerbMulti carries the JSON-encoded results of a multi-request.
	VerbMulti = "MULTI"
)

// Config wires an InfoGram service.
type Config struct {
	// ResourceName names this resource in information entry DNs.
	ResourceName string
	// Credential/Trust/Gridmap/Policy form the security layer of the
	// gatekeeper (Figure 3: Security Authentication + Authorization).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	Gridmap    *gsi.Gridmap
	Policy     *gsi.Policy
	// Registry holds the key information providers (the system monitor +
	// system information service of Figure 3).
	Registry *provider.Registry
	// Backends are the local schedulers for job execution.
	Backends gram.Backends
	// Log is the logging service of Figure 3 (restart + accounting).
	Log *logging.Logger
	// Journal is the optional durable job-state layer (write-ahead
	// journal + snapshots). When set, every submission and transition is
	// journaled before it is acknowledged, and RecoverJournal can rebuild
	// the job table after a crash. Nil keeps the in-memory behaviour.
	Journal *journal.Journal
	// Telemetry receives the service's metrics; a private registry is
	// created when nil, so instrumentation is always live. Callers that
	// want to expose the metrics (Prometheus endpoint, shared registry)
	// pass their own.
	Telemetry *telemetry.Registry
	// Tracer records request span trees. When nil one is built from
	// TraceOptions (unless DisableTracing is set), so tracing is on by
	// default; the disarmed per-operation cost is a single context
	// lookup.
	Tracer *telemetry.Tracer
	// TraceOptions configures the tracer built when Tracer is nil
	// (sample rate, slow-trace threshold, store capacity).
	TraceOptions telemetry.TracerOptions
	// DisableTracing turns span recording and TRACE negotiation off
	// entirely; the server then declines TRACE offers like a pre-trace
	// peer.
	DisableTracing bool
	// Clock defaults to the system clock.
	Clock clock.Clock
	// Env provides server-side RSL substitution variables.
	Env rsl.Env
	// RequestTimeout, when positive, bounds every connection I/O operation
	// and every request's handling: the handshake, each frame read and
	// write (so a client feeding or draining bytes too slowly is cut off),
	// and the evaluation of each SUBMIT. It also bounds the idle wait for
	// the next request, so clients that park connections longer than this
	// must reconnect (the client's retry policy does so transparently).
	// Zero disables all of these bounds.
	RequestTimeout time.Duration
	// ProviderTimeout, when positive, bounds each information provider's
	// retrieval and switches info queries from the paper's all-or-nothing
	// §6.3 semantics to graceful degradation: keywords whose provider
	// fails or times out are reported in a degraded status entry while the
	// rest of the reply is delivered. Zero keeps all-or-nothing.
	ProviderTimeout time.Duration
	// CollectParallelism bounds the two request-path fan-outs: the
	// provider worker pool behind a multi-keyword info query, and the
	// concurrent evaluation of a multi-request's (+) parts. 1 forces both
	// serial; 0 (or negative) selects provider.DefaultParallelism.
	CollectParallelism int
	// Quota is the admission-control policy: §5.3 contracts whose rate=
	// clauses meter each identity with a token bucket, charged before any
	// request work happens (an empty bucket answers REJECT with a
	// retry-after hint). Nil — or a policy without rate clauses — leaves
	// admission unmetered. It is deliberately separate from Policy:
	// Authorize decides *whether* an identity may do something, Admit
	// decides *how much*, and most deployments want the quota file
	// independent of the authorization file.
	Quota *gsi.Policy
	// MaxInflight, when positive, bounds concurrent request execution
	// across all connections (the global backpressure gate). Requests
	// beyond it wait briefly for a slot; requests beyond the wait queue
	// are shed with REJECT. Zero disables the gate.
	MaxInflight int
	// ShedQueue bounds the backpressure wait queue; the shed thresholds
	// are priority-dependent (low sheds at half, normal at three
	// quarters, high at full). Zero defaults to 2*MaxInflight.
	ShedQueue int
	// QueueTimeout bounds how long a request may wait for an inflight
	// slot before being shed. Zero defaults to DefaultQueueTimeout.
	QueueTimeout time.Duration
	// SubmitBacklog, when positive, refuses job submissions with REJECT
	// while the selected backend already holds this many pending tasks,
	// before the job is registered or journaled.
	SubmitBacklog int
	// CacheTTL, when positive, enables the sharded response cache: fully
	// rendered information bodies are cached by (registry generation,
	// keywords, filter, format, mode) and cache hits are written to the
	// wire zero-copy, skipping collect, filter, and render entirely. The
	// effective per-entry TTL is min(CacheTTL, the smallest provider TTL
	// among the covered keywords), so a blob never outlives the §5.1
	// freshness of its inputs; the per-keyword provider cache remains the
	// fill path on miss, preserving §6.2 single-flight and
	// inter-execution-delay semantics. Zero disables the layer.
	CacheTTL time.Duration
	// CacheNegTTL bounds negative entries — unknown keywords and
	// filters matching nothing. Zero defaults to CacheTTL/4.
	CacheNegTTL time.Duration
	// CacheShards is the response-cache shard count (rounded up to a
	// power of two); 0 selects bytecache.DefaultShards.
	CacheShards int
	// CacheMaxBytes is the response cache's total byte budget; 0 selects
	// bytecache.DefaultMaxBytes.
	CacheMaxBytes int64
	// CacheStateDir, when set (and the cache is enabled), persists the
	// response cache across restarts: a snapshot is restored at
	// construction, written periodically (CacheSnapshotInterval) and on
	// Close, so a restarted server answers previously hot keys warm
	// instead of re-paying every provider. Entries are restored with their
	// original deadlines (expired ones dropped), keys are re-stamped to
	// the current registry generation, and a corrupt or foreign snapshot
	// falls back to a cold start.
	CacheStateDir string
	// CacheSnapshotInterval is the period between background cache
	// snapshots; 0 snapshots only at Close (a clean shutdown still
	// restarts warm, a kill does not).
	CacheSnapshotInterval time.Duration
	// SnapshotCompress writes cache snapshots gzip-compressed. Restore
	// reads both layouts, so the flag can change between restarts without
	// losing the warm start.
	SnapshotCompress bool
	// RefreshAhead, when in (0,1), proactively re-fills hot cache entries
	// once that fraction of their TTL has elapsed: a bounded worker pool
	// re-executes the provider collect + render through the single-flight
	// fill path (still honouring each provider's §6.2 inter-execution
	// delay) and swaps the blob in place, so steady-state hot keys never
	// pay the provider path on a request. 0 disables.
	RefreshAhead float64
	// RefreshWorkers bounds concurrent refresh-ahead fills; 0 selects 2.
	RefreshWorkers int
	// ConnParallelism bounds concurrent request evaluation on one
	// multiplexed connection: after a client negotiates MUX mode, up to
	// this many of its requests execute at once (responses return by
	// correlation ID, so ordering is preserved per request, not per
	// connection). 1 forces mux'd connections serial; 0 (or negative)
	// selects DefaultConnParallelism. Serial (non-mux) connections are
	// unaffected.
	ConnParallelism int
}

// DefaultConnParallelism is the per-connection worker bound for mux'd
// connections when Config.ConnParallelism is zero. Requests are mostly
// provider- and scheduler-bound, not CPU-bound, so a moderate constant
// beats scaling with the host: the global fan-out bound
// (CollectParallelism) governs total provider pressure.
const DefaultConnParallelism = 8

// Service is one InfoGram instance.
type Service struct {
	cfg     Config
	manager *gram.Manager
	table   *job.Table
	server  *wire.Server
	dialer  *gram.CallbackDialer
	info    *infoEngine
	resp    *respCache
	persist *bytecache.Persister
	refresh *refresher
	instr   *instruments
	gate    *gate

	mu   sync.Mutex
	addr string
}

// NewService builds an InfoGram service.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	if cfg.Registry == nil {
		cfg.Registry = provider.NewRegistry(cfg.Clock)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	cfg.Telemetry.MarkStart(cfg.Clock.Now())
	// Per-keyword cache counters, for providers registered before and
	// after this point.
	cfg.Registry.SetTelemetry(cfg.Telemetry)
	cfg.Registry.SetParallelism(cfg.CollectParallelism)
	// The self-monitoring provider (§4 dogfooded): the service's own
	// telemetry is just another key information provider, queryable with
	// &(info=selfmetrics). TTL 0 = execute on every request, so the
	// answer always reflects the current counters.
	if _, ok := cfg.Registry.Lookup(provider.SelfMetricsKeyword); !ok {
		cfg.Registry.Register(provider.NewSelfMetrics(cfg.Telemetry), provider.RegisterOptions{})
	}
	if cfg.Tracer == nil && !cfg.DisableTracing {
		opts := cfg.TraceOptions
		if opts.Telemetry == nil {
			opts.Telemetry = cfg.Telemetry
		}
		cfg.Tracer = telemetry.NewTracer(opts)
	}
	// The tracing counterpart of selfmetrics: retained traces are just
	// another key information provider, queryable with &(info=selftrace).
	if cfg.Tracer != nil {
		if _, ok := cfg.Registry.Lookup(provider.SelfTraceKeyword); !ok {
			cfg.Registry.Register(provider.NewSelfTrace(cfg.Tracer), provider.RegisterOptions{})
		}
	}
	s := &Service{cfg: cfg, dialer: gram.NewCallbackDialer()}
	s.instr = newInstruments(cfg.Telemetry)
	s.gate = newGate(cfg.MaxInflight, cfg.ShedQueue, cfg.QueueTimeout)
	s.info = &infoEngine{
		resource:        cfg.ResourceName,
		registry:        cfg.Registry,
		providerTimeout: cfg.ProviderTimeout,
	}
	if cfg.CacheTTL > 0 {
		s.resp = newRespCache(cfg.Registry, cfg.CacheShards, cfg.CacheMaxBytes,
			cfg.CacheTTL, cfg.CacheNegTTL, cfg.Clock)
		s.resp.setTelemetry(cfg.Telemetry)
		if cfg.CacheStateDir != "" {
			// Restore happens here — after the self providers above are
			// registered, so the registry digest the snapshot is checked
			// against matches the one it was taken under; and before
			// Listen, so the first request already hits warm.
			s.persist = s.resp.newPersister(
				filepath.Join(cfg.CacheStateDir, "respcache.snap"),
				cfg.CacheSnapshotInterval, cfg.SnapshotCompress, cfg.Clock)
			s.persist.SetTelemetry(cfg.Telemetry)
			_, _ = s.persist.Restore() // every failure mode is a cold start
			s.persist.Start()
		}
		if cfg.RefreshAhead > 0 {
			s.refresh = newRefresher(s.resp, s.info, cfg.Clock,
				cfg.RefreshAhead, cfg.RefreshWorkers, cfg.RequestTimeout)
			s.refresh.setTelemetry(cfg.Telemetry)
			s.refresh.start()
		}
	}
	s.server = wire.NewServer(wire.HandlerFunc(s.serveConn))
	s.server.Instrument(s.instr.serverInstruments())
	return s
}

// Listen binds the service and returns the bound address.
func (s *Service) Listen(addr string) (string, error) {
	bound, err := s.server.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.table = job.NewTable(bound)
	s.manager = gram.NewManager(gram.ManagerConfig{
		Table:        s.table,
		Backends:     s.cfg.Backends,
		Log:          s.cfg.Log,
		Journal:      s.cfg.Journal,
		Notify:       s.dialer,
		Clock:        s.cfg.Clock,
		SpawnLatency: s.instr.spawnLatency,
		JobsSpawned:  s.instr.jobsSpawned,
		MaxBacklog:   s.cfg.SubmitBacklog,
	})
	s.mu.Unlock()
	if s.cfg.Log != nil {
		_ = s.cfg.Log.Append(logging.Record{Time: s.cfg.Clock.Now(), Kind: logging.KindServiceStart})
	}
	return bound, nil
}

// Addr returns the bound address.
func (s *Service) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Registry returns the provider registry.
func (s *Service) Registry() *provider.Registry { return s.cfg.Registry }

// Table returns the job table (nil before Listen).
func (s *Service) Table() *job.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// AcceptedConns reports accepted connections (experiments E3/E4). It is a
// thin reader over the telemetry counter that now carries the count.
func (s *Service) AcceptedConns() int64 { return s.instr.connsAccepted.Value() }

// Telemetry returns the service's metrics registry (for exposition or
// embedding into a larger one).
func (s *Service) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Tracer returns the service's tracer (nil when tracing is disabled).
func (s *Service) Tracer() *telemetry.Tracer { return s.cfg.Tracer }

// SnapshotCache writes a response-cache snapshot now. A no-op (nil error)
// when cache persistence is not configured.
func (s *Service) SnapshotCache() error { return s.persist.Snapshot() }

// Close shuts the service down.
func (s *Service) Close() error {
	s.dialer.Close()
	s.refresh.close()
	err := s.server.Close()
	// The final snapshot runs after the server stops accepting requests,
	// so it captures the cache's last state.
	if perr := s.persist.Close(); err == nil && perr != nil {
		err = perr
	}
	if jerr := s.cfg.Journal.Close(); err == nil {
		err = jerr
	}
	return err
}

// GRIS exposes the same provider registry through the MDS directory
// protocol, the backward-compatibility path of §6.5: "this information
// service can easily be integrated into the Globus MDS information service
// architecture". The returned GRIS can be registered with any GIIS.
func (s *Service) GRIS() *mds.GRIS {
	return mds.NewGRIS(mds.GRISConfig{
		ResourceName:  s.cfg.ResourceName,
		Registry:      s.cfg.Registry,
		Credential:    s.cfg.Credential,
		Trust:         s.cfg.Trust,
		Policy:        s.cfg.Policy,
		Clock:         s.cfg.Clock,
		Tracer:        s.cfg.Tracer,
		CacheTTL:      s.cfg.CacheTTL,
		CacheNegTTL:   s.cfg.CacheNegTTL,
		CacheShards:   s.cfg.CacheShards,
		CacheMaxBytes: s.cfg.CacheMaxBytes,
	})
}

// Recover replays a log and resubmits every job that had not reached a
// terminal state, implementing the restart capability of §6 ("the log can
// be used to restart our InfoGRAM service in case it needs to be
// restarted"). It returns the recovered job contacts (new contacts are
// allocated; the log ties them to the original spec).
func (s *Service) Recover(records []logging.Record) ([]string, error) {
	pending := logging.Recover(records)
	contacts := make([]string, 0, len(pending))
	for _, rj := range pending {
		req, err := xrsl.DecodeOne(rj.Spec, s.env(rj.Owner))
		if err != nil || req.Kind != xrsl.KindJob {
			continue // info queries and undecodable specs are not restartable
		}
		// Resume from the last checkpoint the crashed run logged (§10).
		req.Job.Checkpoint = rj.Checkpoint
		contact, err := s.manager.Submit(context.Background(), req.Job, job.Record{
			Spec:     rj.Spec,
			Owner:    rj.Owner,
			Identity: rj.Identity,
		})
		if err != nil {
			return contacts, fmt.Errorf("core: recover %q: %w", rj.Contact, err)
		}
		contacts = append(contacts, contact)
	}
	return contacts, nil
}

// RecoverJournal rebuilds the job table from a journal replay: terminal
// jobs become queryable again under their original contacts with their
// recorded output, and non-terminal jobs are resubmitted to their
// backends, resuming from the last journaled checkpoint with their
// remaining restart budget (jobs that cannot be re-attached come back
// FAILED with a "recovery:" annotation). Call it after Listen and before
// serving traffic; it returns the contacts of the resumed jobs.
func (s *Service) RecoverJournal(rec *journal.Recovered) ([]string, error) {
	s.mu.Lock()
	m := s.manager
	s.mu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("core: RecoverJournal before Listen")
	}
	return m.RecoverJournal(rec, s.env)
}

// serveConn is the InfoGram gatekeeper: one GSI handshake, one gridmap
// lookup, then a loop over the single unified protocol. A trace ID is
// minted per connection and follows each request through every layer;
// each verb is timed into the per-verb latency histogram and, when a
// logger is configured, emitted as a span record.
//
// The loop starts strictly serial — read one frame, answer it — which is
// the seed-era wire contract, so clients that never heard of MUX work
// unchanged. A MUX frame upgrades the connection: the one handshake and
// gridmap identity are reused for every subsequent request, but requests
// dispatch concurrently and responses return by correlation ID.
func (s *Service) serveConn(c *wire.Conn) {
	c.Instrument(s.instr.connInstruments())
	// The request timeout doubles as the connection's per-operation I/O
	// deadline: a slow sender cannot park a handshake or frame read, and a
	// slow reader cannot wedge a response write.
	if s.cfg.RequestTimeout > 0 {
		c.SetIOTimeout(s.cfg.RequestTimeout)
	}
	trace := telemetry.NewTraceID()
	ctx := telemetry.WithTrace(context.Background(), trace)

	authStart := s.cfg.Clock.Now()
	hctx, hcancel := s.requestCtx(ctx)
	peer, err := gsi.ServerHandshakeContext(hctx, c, s.cfg.Credential, s.cfg.Trust, authStart)
	hcancel()
	authElapsed := s.cfg.Clock.Now().Sub(authStart)
	s.instr.observeAuth(err, authElapsed)
	span(s.cfg.Log, s.cfg.Clock, trace, nil, "auth", "", authElapsed)
	if err != nil {
		return
	}
	// The handshake predates any trace, so its timing is kept aside and
	// recorded as a child of the connection's first traced request.
	ts := &traceState{hsStart: authStart, hsDur: authElapsed}
	ts.hsPending.Store(true)
	local, err := s.cfg.Gridmap.Map(peer.Identity)
	if err != nil {
		_ = c.WriteString(gram.VerbError, fmt.Sprintf("gatekeeper: %v", err))
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		if f.Verb == wire.VerbTrace {
			// Capability negotiation: a tracing server accepts and from
			// then on expects a trace-context prefix on every request
			// frame; a server without a tracer declines with ERROR,
			// byte-identical to a pre-trace peer.
			if s.cfg.Tracer == nil {
				if err := c.Write(errorFrame("infogram: tracing not enabled")); err != nil {
					return
				}
				continue
			}
			if err := c.WriteString(wire.VerbTraceOK, ""); err != nil {
				return
			}
			ts.enabled = true
			continue
		}
		if f.Verb == wire.VerbRepl {
			// Capability upgrade to a replication stream: a journaled
			// leader accepts and ships its history plus a live record
			// feed (repl.go); a journal-less service declines with
			// ERROR, byte-identical to a pre-capability peer.
			if s.cfg.Journal == nil {
				if err := c.Write(errorFrame("infogram: replication requires a journal (-state-dir)")); err != nil {
					return
				}
				continue
			}
			s.serveRepl(c)
			return
		}
		if f.Verb == wire.VerbMux {
			// Capability upgrade: acknowledge, then dispatch this
			// connection's remaining requests concurrently. Negotiation
			// itself is not a protocol request, so it is not counted
			// into the per-verb series.
			if err := c.WriteString(wire.VerbMuxOK, ""); err != nil {
				return
			}
			s.serveMux(ctx, c, peer, local, ts)
			return
		}
		resp := s.dispatch(ctx, f, peer, local, ts)
		_ = c.Write(resp)
	}
}

// traceState is the per-connection tracing state: whether the peer
// negotiated the trace-context prefix, and the handshake timing waiting
// to be recorded into the connection's first traced request.
type traceState struct {
	enabled   bool // trace prefix negotiated (set only pre-mux, in the serial loop)
	hsStart   time.Time
	hsDur     time.Duration
	hsPending atomic.Bool
}

// connParallelism resolves the per-connection mux worker bound.
func (s *Service) connParallelism() int {
	if s.cfg.ConnParallelism > 0 {
		return s.cfg.ConnParallelism
	}
	return DefaultConnParallelism
}

// serveMux serves the post-negotiation half of a multiplexed connection:
// every frame carries a correlation ID, and up to connParallelism
// requests evaluate concurrently under one worker semaphore — reusing the
// connection's single GSI handshake and gridmap identity for all of them,
// while SUBMIT authorization (evalPart) still runs per request. The read
// loop itself provides backpressure: when the semaphore is full it stops
// reading, so a client cannot queue unbounded work on one connection.
func (s *Service) serveMux(ctx context.Context, c *wire.Conn, peer *gsi.Peer, local string, ts *traceState) {
	s.instr.muxConns.Inc()
	sem := make(chan struct{}, s.connParallelism())
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		id, req, err := wire.DecodeMux(f)
		if err != nil {
			// A peer that negotiated mux and then sends uncorrelated
			// frames is broken; count the violation and drop it.
			s.instr.frameErrors.Inc()
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s.instr.muxInFlight.Inc()
			resp := s.dispatch(ctx, req, peer, local, ts)
			s.instr.muxInFlight.Dec()
			// Conn serializes concurrent writers; responses may leave in
			// any completion order because the ID re-pairs them.
			_ = c.Write(wire.EncodeMux(id, resp))
		}()
	}
}

// dispatch instruments and evaluates one request frame, returning the
// response frame. It is shared by the serial loop and the mux workers:
// every layer below it — policy, job manager, provider cache, telemetry —
// already serves concurrent connections, so concurrent dispatches on one
// connection need no extra locking. Counting happens before handling, so
// a request that queries selfmetrics sees itself in the answer; verbs
// outside the instrumented set fall into the catch-all "unknown" series
// rather than indexing the per-verb maps with a hostile key.
func (s *Service) dispatch(ctx context.Context, f wire.Frame, peer *gsi.Peer, local string, ts *traceState) wire.Frame {
	var root *telemetry.Span
	if ts.enabled {
		// The peer negotiated trace propagation: every request frame
		// carries a trace-context prefix. The server joins the caller's
		// trace instead of minting its own, so multi-hop queries build
		// one coherent tree.
		tc, inner, derr := wire.DecodeTraceCtx(f)
		if derr != nil {
			s.instr.frameErrors.Inc()
			return errorFrame(derr.Error())
		}
		f = inner
		ctx = telemetry.WithTrace(ctx, tc.Trace)
		if tc.Sampled {
			ctx, root = s.cfg.Tracer.JoinTrace(ctx, tc.Trace, tc.Parent, "request:"+f.Verb)
		}
	} else if s.cfg.Tracer != nil {
		// Legacy peer on a tracing server: mint a server-local trace.
		ctx, root = s.cfg.Tracer.StartTrace(ctx, "request:"+f.Verb)
	}
	if root != nil {
		root.SetAttr("peer", peer.Identity)
		// The connection's first traced request adopts the handshake
		// timing as a child span (the handshake predates any trace).
		if ts.hsPending.CompareAndSwap(true, false) {
			s.cfg.Tracer.RecordSpan(root, "gsi.handshake", ts.hsStart, ts.hsDur, "")
		}
	}
	s.instr.requestCounter(f.Verb).Inc()
	// Admission runs after the request is counted (so selfmetrics sees the
	// arrival) but before any handling: a rejected request costs one quota
	// charge, one frame write, and nothing else — it never touches the
	// per-verb latency series, because measuring the latency of saying
	// "no" into the same histogram as real work would mask the collapse
	// the histogram exists to reveal.
	release, reject, admitted := s.admit(f.Verb, peer, root)
	if !admitted {
		root.End()
		span(s.cfg.Log, s.cfg.Clock, telemetry.TraceFrom(ctx), root, "reject:"+f.Verb, "", 0)
		return reject
	}
	defer release()
	s.instr.inFlight.Inc()
	start := s.cfg.Clock.Now()
	resp := s.handleFrame(ctx, f, peer, local)
	elapsed := s.cfg.Clock.Now().Sub(start)
	s.instr.requestLatency(f.Verb).ObserveTrace(elapsed, telemetry.TraceFrom(ctx))
	s.instr.inFlight.Dec()
	if resp.Verb == gram.VerbError {
		root.Fail(string(resp.Payload))
	}
	root.End()
	span(s.cfg.Log, s.cfg.Clock, telemetry.TraceFrom(ctx), root, "request:"+f.Verb, "", elapsed)
	return resp
}

// handleFrame evaluates one request and returns its response frame.
func (s *Service) handleFrame(ctx context.Context, f wire.Frame, peer *gsi.Peer, local string) wire.Frame {
	// The payload buffer is freshly allocated per frame and never
	// reused, so handlers may alias it as a string without a copy.
	payload := zerocopy.String(f.Payload)
	switch f.Verb {
	case gram.VerbPing:
		return wire.Frame{Verb: gram.VerbPong}
	case gram.VerbSubmit:
		rctx, rcancel := s.requestCtx(ctx)
		defer rcancel()
		return s.handleSubmit(rctx, payload, peer, local)
	case gram.VerbStatus:
		return s.handleStatus(strings.TrimSpace(payload))
	case gram.VerbCancel:
		return s.handleCancel(strings.TrimSpace(payload))
	case gram.VerbSignal:
		return s.handleSignal(strings.TrimSpace(payload))
	default:
		return errorFrame(fmt.Sprintf("infogram: unknown verb %s", f.Verb))
	}
}

// errorFrame builds an ERROR response.
func errorFrame(msg string) wire.Frame {
	return wire.Frame{Verb: gram.VerbError, Payload: []byte(msg)}
}

// requestCtx derives the per-request context: bounded by the configured
// request timeout when one is set, plain cancellation otherwise.
func (s *Service) requestCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(parent, s.cfg.RequestTimeout)
	}
	return context.WithCancel(parent)
}

// PartResult is one element of a multi-request response.
type PartResult struct {
	Kind    string `json:"kind"` // "job", "info", or "error"
	Contact string `json:"contact,omitempty"`
	Format  string `json:"format,omitempty"`
	Body    string `json:"body,omitempty"`
	Error   string `json:"error,omitempty"`
	// Degraded marks an info part answered partially because one or more
	// providers failed or timed out.
	Degraded bool `json:"degraded,omitempty"`
	// RetryAfterMS, on an error part, marks the refusal as backpressure
	// (scheduler backlog saturated) rather than failure, carrying the
	// server's backoff hint. A single-part submission renders it as a
	// REJECT frame instead of an ERROR.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// handleSubmit dispatches one SUBMIT frame: job, info, or multi-request.
func (s *Service) handleSubmit(ctx context.Context, src string, peer *gsi.Peer, local string) wire.Frame {
	reqs, err := xrsl.Decode(src, s.env(local))
	if err != nil {
		return errorFrame(err.Error())
	}
	if len(reqs) == 1 {
		return partFrame(s.evalPart(ctx, reqs[0], peer, local))
	}
	// Multi-request: evaluate every part, report per-part outcomes in
	// request order. Parts are independent requests (jobs and info mixed),
	// so they evaluate concurrently under the same fan-out bound as
	// provider collection; every layer a part touches — policy, job
	// manager, provider cache, telemetry — already serves concurrent
	// connections, so concurrent parts of one connection need no extra
	// locking, and the per-part info/job counters stay exact.
	parts := make([]PartResult, len(reqs))
	evalSpanned := func(ctx context.Context, i int, req *xrsl.Request) PartResult {
		pctx, sp := telemetry.StartSpan(ctx, "part")
		sp.SetAttr("index", strconv.Itoa(i))
		part := s.evalPart(pctx, req, peer, local)
		if part.Kind == "error" {
			sp.Fail(part.Error)
		}
		sp.End()
		return part
	}
	if bound := min(s.cfg.Registry.Parallelism(), len(reqs)); bound <= 1 {
		for i, req := range reqs {
			parts[i] = evalSpanned(ctx, i, req)
		}
	} else {
		sem := make(chan struct{}, bound)
		var wg sync.WaitGroup
		for i, req := range reqs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				parts[i] = evalSpanned(ctx, i, req)
			}()
		}
		wg.Wait()
	}
	payload, err := json.Marshal(parts)
	if err != nil {
		return errorFrame(err.Error())
	}
	return wire.Frame{Verb: VerbMulti, Payload: payload}
}

// partFrame renders a single request part's outcome as its response
// frame.
func partFrame(part PartResult) wire.Frame {
	switch part.Kind {
	case "job":
		return wire.Frame{Verb: gram.VerbSubmitted, Payload: []byte(part.Contact)}
	case "info":
		verb := VerbResultLDIF
		switch xrsl.Format(part.Format) {
		case xrsl.FormatXML:
			verb = VerbResultXML
		case xrsl.FormatDSML:
			verb = VerbResultDSML
		}
		// The rendered body is written once and never mutated, so the
		// frame may alias it instead of copying.
		return wire.Frame{Verb: verb, Payload: zerocopy.Bytes(part.Body)}
	default:
		if part.RetryAfterMS > 0 {
			return wire.EncodeReject(wire.Reject{
				RetryAfter: time.Duration(part.RetryAfterMS) * time.Millisecond,
				Scope:      wire.RejectScopeBacklog,
				Reason:     part.Error,
			})
		}
		return errorFrame(part.Error)
	}
}

// evalPart authorizes and executes one request part, counting it into the
// info-query or job-submission counter before execution so a selfmetrics
// query observes itself.
func (s *Service) evalPart(ctx context.Context, req *xrsl.Request, peer *gsi.Peer, local string) PartResult {
	now := s.cfg.Clock.Now()
	switch req.Kind {
	case xrsl.KindJob:
		s.instr.jobSubmissions.Inc()
		if err := s.cfg.Policy.Authorize(peer.Identity, gsi.OpJobSubmit, now); err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		contact, err := s.manager.Submit(ctx, req.Job, job.Record{
			Spec:     req.Source,
			Owner:    local,
			Identity: peer.Identity,
		})
		if err != nil {
			// A saturated backlog is backpressure, not failure: surface the
			// drain estimate so the response becomes a REJECT with a
			// retry-after hint instead of an opaque error.
			var sat *scheduler.SaturatedError
			if errors.As(err, &sat) {
				s.instr.admissionRejected(wire.RejectScopeBacklog).Inc()
				return PartResult{Kind: "error", Error: err.Error(), RetryAfterMS: max(sat.RetryAfter.Milliseconds(), 1)}
			}
			return PartResult{Kind: "error", Error: err.Error()}
		}
		return PartResult{Kind: "job", Contact: contact}
	case xrsl.KindInfo:
		s.instr.infoQueries.Inc()
		if err := s.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, now); err != nil {
			return PartResult{Kind: "error", Error: err.Error()}
		}
		s.logInfoQuery(ctx, req.Info, peer, local)
		// Response-cache hit: the stored blob is the rendered body, served
		// zero-copy — no collect, no filter, no render, no allocation
		// beyond what the transport needs.
		useCache := s.resp != nil && s.resp.cacheable(req.Info)
		if useCache {
			if body, negErr, ok := s.resp.lookup(req.Info); ok {
				if negErr != "" {
					return PartResult{Kind: "error", Error: negErr}
				}
				return PartResult{Kind: "info", Format: string(req.Info.Format), Body: body}
			}
		}
		start := s.cfg.Clock.Now()
		ictx, isp := telemetry.StartSpan(ctx, "info.collect")
		body, empty, degraded, err := s.info.Answer(ictx, req.Info)
		if err != nil {
			isp.Fail(err.Error())
		}
		isp.End()
		span(s.cfg.Log, s.cfg.Clock, telemetry.TraceFrom(ctx), isp, "info-collect", "", s.cfg.Clock.Now().Sub(start))
		if err != nil {
			// Unknown keywords are deterministic failures: cache the error
			// text under the negative TTL so repeated bad queries stop
			// paying resolution cost. Transient provider errors are not
			// cached.
			var unk *provider.UnknownKeywordError
			if useCache && errors.As(err, &unk) {
				s.resp.storeNegative(req.Info, err.Error())
			}
			return PartResult{Kind: "error", Error: err.Error()}
		}
		if degraded {
			s.instr.requestsDegraded.Inc()
		}
		// Degraded bodies are partial — caching one would pin the outage
		// into every answer for a TTL.
		if useCache && !degraded {
			s.resp.store(req.Info, body, empty)
		}
		return PartResult{Kind: "info", Format: string(req.Info.Format), Body: body, Degraded: degraded}
	default:
		return PartResult{Kind: "error", Error: "infogram: unclassifiable request"}
	}
}

func (s *Service) logInfoQuery(ctx context.Context, info *xrsl.InfoRequest, peer *gsi.Peer, local string) {
	if s.cfg.Log == nil {
		return
	}
	keywords := info.Keywords
	if info.Schema {
		keywords = []string{"schema"}
	} else if info.All || len(keywords) == 0 {
		keywords = []string{"all"}
	}
	_ = s.cfg.Log.Append(logging.Record{
		Time:     s.cfg.Clock.Now(),
		Kind:     logging.KindInfoQuery,
		Identity: peer.Identity,
		Owner:    local,
		Keywords: keywords,
		Trace:    string(telemetry.TraceFrom(ctx)),
	})
}

// env mirrors gram.Service's substitution environment.
func (s *Service) env(local string) rsl.Env {
	env := rsl.NewEnv("LOGNAME", local, "HOME", "/home/"+local)
	for k, v := range s.cfg.Env {
		env[k] = v
	}
	return env
}

func (s *Service) handleStatus(contact string) wire.Frame {
	rec, err := s.table.Get(contact)
	if err != nil {
		return errorFrame(err.Error())
	}
	reply := gram.StatusReply{
		Contact:  rec.Contact,
		State:    rec.State,
		ExitCode: rec.ExitCode,
		Error:    rec.Error,
		Stdout:   rec.Stdout,
		Stderr:   rec.Stderr,
		Restarts: rec.Restarts,
	}
	b, err := json.Marshal(reply)
	if err != nil {
		return errorFrame(err.Error())
	}
	return wire.Frame{Verb: gram.VerbStatusOK, Payload: b}
}

func (s *Service) handleCancel(contact string) wire.Frame {
	if err := s.manager.Cancel(contact); err != nil {
		return errorFrame(err.Error())
	}
	return wire.Frame{Verb: gram.VerbCancelOK, Payload: []byte(contact)}
}

func (s *Service) handleSignal(payload string) wire.Frame {
	contact, signal, ok := strings.Cut(payload, " ")
	if !ok {
		return errorFrame("infogram: SIGNAL payload must be 'contact signal'")
	}
	if err := s.manager.Signal(contact, strings.TrimSpace(signal)); err != nil {
		return errorFrame(err.Error())
	}
	return wire.Frame{Verb: gram.VerbSignalOK, Payload: []byte(contact)}
}
