package core_test

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// attrInt reads a selfmetrics attribute from an info-query result as an
// integer.
func attrInt(t *testing.T, attrs map[string]string, name string) int64 {
	t.Helper()
	v, ok := attrs[name]
	if !ok {
		t.Fatalf("attribute %q missing; have %v", name, attrs)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("attribute %q = %q: %v", name, v, err)
	}
	return n
}

func TestSelfMetricsQueryObservesItself(t *testing.T) {
	// The acceptance path of the tentpole: an ordinary xRSL info query for
	// the selfmetrics keyword, over the wire protocol with the full GSI
	// handshake, must answer with counters that reflect that very request
	// — the connection it arrived on and the query itself are counted
	// before the provider snapshots the registry.
	g := newTestGrid(t, provider.NewRegistry(nil))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.QueryRaw("&(info=selfmetrics)")
	if err != nil {
		t.Fatalf("info=selfmetrics: %v", err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	attrs := make(map[string]string)
	for _, a := range res.Entries[0].Attrs {
		attrs[a.Name] = a.Value
	}

	prefix := provider.SelfMetricsKeyword + ":"
	if n := attrInt(t, attrs, prefix+"infogram_connections_accepted_total"); n < 1 {
		t.Errorf("connections accepted = %d, want >= 1 (this very connection)", n)
	}
	if n := attrInt(t, attrs, prefix+"infogram_info_queries_total"); n < 1 {
		t.Errorf("info queries = %d, want >= 1 (this very query)", n)
	}
	if n := attrInt(t, attrs, prefix+"infogram_requests_total.submit"); n < 1 {
		t.Errorf("submit requests = %d, want >= 1", n)
	}
	if n := attrInt(t, attrs, prefix+"infogram_auth_total.ok"); n < 1 {
		t.Errorf("auth ok = %d, want >= 1 (this connection's handshake)", n)
	}
	// The service counts its registry-backed view too.
	if g.svc.AcceptedConns() < 1 {
		t.Errorf("AcceptedConns = %d", g.svc.AcceptedConns())
	}
}

func TestPrometheusEndpointServesRequestHistograms(t *testing.T) {
	g := newTestGrid(t, provider.NewRegistry(nil))
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Two sequential queries on one connection: the per-verb latency is
	// observed after each response is written, so once the second
	// response arrives the first observation has definitely landed.
	for i := 0; i < 2; i++ {
		if _, err := cl.QueryRaw("&(info=selfmetrics)"); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(telemetry.Handler(g.svc.Telemetry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every line must be a comment or "name[{labels}] value" — i.e. the
	// text format parses.
	var (
		submitBuckets int
		submitCount   int64 = -1
		lastCum       int64
	)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in %q", line)
		}
		name := fields[0]
		switch {
		case strings.HasPrefix(name, `infogram_request_duration_seconds_bucket{verb="submit",`):
			cum, _ := strconv.ParseInt(fields[1], 10, 64)
			if cum < lastCum {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastCum = cum
			submitBuckets++
		case strings.HasPrefix(name, `infogram_request_duration_seconds_count{verb="submit"}`):
			submitCount, _ = strconv.ParseInt(fields[1], 10, 64)
		}
	}
	if submitBuckets != telemetry.NumBuckets+1 {
		t.Errorf("submit latency buckets = %d, want %d (finite + +Inf)", submitBuckets, telemetry.NumBuckets+1)
	}
	// Both queries' observations have landed (see comment above); the
	// second may still be in flight relative to the scrape only if the
	// scrape raced the response, which it cannot: QueryRaw returned.
	if submitCount < 1 {
		t.Errorf("submit request count = %d, want >= 1", submitCount)
	}
	if !strings.Contains(body, "# TYPE infogram_request_duration_seconds histogram") {
		t.Error("missing TYPE line for the request latency histogram")
	}
	if !strings.Contains(body, "infogram_connections_accepted_total 1") {
		t.Errorf("connections accepted missing or != 1 in exposition:\n%s", firstLines(body, 10))
	}
}

func TestAuthExpiredProxyCounted(t *testing.T) {
	// A client presenting an already-expired proxy is rejected, and the
	// failure lands in the dedicated expired bucket rather than the
	// generic failed one.
	g := newTestGrid(t, provider.NewRegistry(nil))
	proxy, err := g.user.Delegate(-time.Second, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Dial(g.addr, proxy, g.trust); err == nil {
		t.Fatal("dial with expired proxy succeeded")
	}

	tel := g.svc.Telemetry()
	expired := tel.Counter("infogram_auth_total", "", telemetry.Label{Key: "outcome", Value: "expired"})
	failed := tel.Counter("infogram_auth_total", "", telemetry.Label{Key: "outcome", Value: "failed"})
	// The handshake runs in the server's connection goroutine; the client
	// sees the AUTH-ERR before the server increments, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for expired.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if expired.Value() != 1 {
		t.Errorf("expired auth count = %d, want 1", expired.Value())
	}
	if failed.Value() != 0 {
		t.Errorf("failed auth count = %d, want 0", failed.Value())
	}
}

// firstLines returns the first n lines of s, for terse failure output.
func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
