package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/xrsl"
)

// waitFor polls cond until it holds or the deadline lapses — the refresh
// workers run on real goroutines even when the cache clock is fake.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRespCacheNegativeTTLFloor pins the regression: a small -cache-ttl
// used to shrink the default negative TTL toward zero (ttl/4), making
// failed and empty answers effectively uncacheable — the exact flood the
// negative cache exists to absorb. The default now floors at one second,
// capped by the cache TTL itself.
func TestRespCacheNegativeTTLFloor(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	reg := respTestRegistry(clk)
	cases := []struct {
		ttl, want time.Duration
	}{
		{40 * time.Second, 10 * time.Second},             // ttl/4 above the floor: unchanged
		{2 * time.Second, time.Second},                   // ttl/4 = 500ms: floored to 1s
		{500 * time.Millisecond, 500 * time.Millisecond}, // floor capped at the cache TTL
	}
	for _, tc := range cases {
		rc := newRespCache(reg, 4, 1<<20, tc.ttl, 0, clk)
		if rc.negTTL != tc.want {
			t.Errorf("ttl=%v: negTTL = %v; want %v", tc.ttl, rc.negTTL, tc.want)
		}
	}
	// An explicit negative TTL is never second-guessed.
	if rc := newRespCache(reg, 4, 1<<20, time.Minute, 3*time.Second, clk); rc.negTTL != 3*time.Second {
		t.Errorf("explicit negTTL = %v; want 3s", rc.negTTL)
	}

	// Behavioral check at ttl=2s: before the floor, a negative entry died
	// after 500ms; it must now survive most of a second.
	rc := newRespCache(reg, 4, 1<<20, 2*time.Second, 0, clk)
	req := &xrsl.InfoRequest{Keywords: []string{"Ghost"}}
	rc.storeNegative(req, `provider: unknown keyword "Ghost"`)
	clk.Advance(900 * time.Millisecond)
	if _, neg, ok := rc.lookup(req); !ok || neg == "" {
		t.Fatal("negative entry expired before the 1s floor")
	}
	clk.Advance(200 * time.Millisecond)
	if _, _, ok := rc.lookup(req); ok {
		t.Fatal("negative entry outlived the floored TTL")
	}
}

// TestRespCachePersistRoundTrip drives the snapshot lifecycle the way a
// restart does: one respCache snapshots, a second one — same provider
// population reached through a different registration history — restores
// warm with its keys re-stamped to the new generation, and a third with a
// different population refuses the snapshot and stays cold.
func TestRespCachePersistRoundTrip(t *testing.T) {
	clk := clock.NewFake(time.Unix(5000, 0))
	path := filepath.Join(t.TempDir(), "respcache.snap")

	reg1 := respTestRegistry(clk)
	rc1 := newRespCache(reg1, 4, 1<<20, time.Minute, 0, clk)
	req := &xrsl.InfoRequest{Keywords: []string{"Memory"}, Filter: "Memory:*"}
	negReq := &xrsl.InfoRequest{Keywords: []string{"Ghost"}}
	rc1.store(req, "warm-body", false)
	rc1.storeNegative(negReq, `provider: unknown keyword "Ghost"`)
	if err := rc1.newPersister(path, 0, false, clk).Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Restart: the same keywords and TTLs, but extra registration churn so
	// the generation counter differs — exactly what GenKeyMapper re-stamps.
	reg2 := respTestRegistry(clk)
	reg2.Register(provider.NewFuncProvider("Temp", func(ctx context.Context) (provider.Attributes, error) {
		return nil, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	reg2.Unregister("Temp")
	if reg2.Generation() == reg1.Generation() {
		t.Fatal("test needs distinct registry generations")
	}
	rc2 := newRespCache(reg2, 4, 1<<20, time.Minute, 0, clk)
	st, err := rc2.newPersister(path, 0, false, clk).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.DroppedExpired != 0 || st.DroppedKey != 0 {
		t.Fatalf("restore stats = %+v; want 2 restored", st)
	}
	if body, _, ok := rc2.lookup(req); !ok || body != "warm-body" {
		t.Fatalf("restored lookup = (%q, %v); want warm-body hit", body, ok)
	}
	if _, neg, ok := rc2.lookup(negReq); !ok || neg == "" {
		t.Fatal("restored negative entry not served")
	}

	// A restart after the entries' deadlines drops them: original deadlines
	// travel in the snapshot, never extended. Memory's 10s provider TTL has
	// lapsed; the negative entry (15s) is still alive.
	clk.Advance(11 * time.Second)
	rc3 := newRespCache(reg2, 4, 1<<20, time.Minute, 0, clk)
	st, err = rc3.newPersister(path, 0, false, clk).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 || st.DroppedExpired != 1 {
		t.Fatalf("post-expiry restore stats = %+v; want 1 restored, 1 dropped", st)
	}
	if _, _, ok := rc3.lookup(req); ok {
		t.Fatal("restore resurrected an entry past its deadline")
	}

	// A different provider population must refuse the snapshot wholesale:
	// the digest gates acceptance before a single entry is read.
	regOther := provider.NewRegistry(clk)
	regOther.Register(provider.NewFuncProvider("Disk", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "free", Value: "9"}}, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	rcOther := newRespCache(regOther, 4, 1<<20, time.Minute, 0, clk)
	st, err = rcOther.newPersister(path, 0, false, clk).Restore()
	if !errors.Is(err, bytecache.ErrSnapshotRejected) {
		t.Fatalf("foreign-registry restore err = %v; want ErrSnapshotRejected", err)
	}
	if st.Restored != 0 || rcOther.stats().Entries != 0 {
		t.Fatalf("foreign-registry restore brought entries back: %+v", st)
	}
}

// TestRefreshAheadRefreshesHotEntry drives the full refresh-ahead loop
// with a fake cache clock and manual scans: a hot entry (≥2 hits) past the
// refresh fraction of its lifetime is re-executed through the provider in
// the background and its blob swapped in place, so it outlives its
// original deadline without any request paying the provider path.
func TestRefreshAheadRefreshesHotEntry(t *testing.T) {
	clk := clock.NewFake(time.Unix(9000, 0))
	var calls atomic.Int32
	reg := provider.NewRegistry(clk)
	reg.Register(provider.NewFuncProvider("Hot", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "n", Value: fmt.Sprint(calls.Add(1))}}, nil
	}), provider.RegisterOptions{TTL: time.Hour, Clock: clk})
	eng := &infoEngine{resource: "test.resource", registry: reg}
	rc := newRespCache(reg, 4, 1<<20, 10*time.Second, 0, clk)
	r := newRefresher(rc, eng, clk, 0.5, 1, time.Second)
	defer r.close()

	req := &xrsl.InfoRequest{Keywords: []string{"Hot"}}
	body, empty, _, err := eng.Answer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rc.store(req, body, empty)
	if calls.Load() != 1 {
		t.Fatalf("provider calls after fill = %d", calls.Load())
	}
	rc.lookup(req)
	rc.lookup(req) // two hits: hot

	// Young entry: scanned but below the 50% elapsed threshold.
	clk.Advance(2 * time.Second)
	r.scan()
	time.Sleep(50 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatal("entry refreshed before the elapsed-fraction threshold")
	}

	// 6s of its 10s lifetime gone: the scanner queues it, a worker
	// re-executes the provider through the ordinary fill path and re-stores
	// the blob with a fresh deadline.
	clk.Advance(4 * time.Second)
	storedAt := clk.Now().UnixNano()
	r.scan()
	waitFor(t, "background refresh", func() bool { return calls.Load() >= 2 })
	waitFor(t, "refreshed blob store", func() bool {
		info, ok := rc.c.Info(rc.appendKey(nil, req))
		return ok && info.Stored == storedAt
	})

	// Past the original deadline (12s after the first store) the entry is
	// still served — refresh-ahead reset the clock.
	clk.Advance(6 * time.Second)
	if _, _, ok := rc.lookup(req); !ok {
		t.Fatal("hot entry expired despite refresh-ahead")
	}
}

// TestRefreshAheadSkipsColdAndOrphaned: one-hit entries are left to
// expire, and a membership change — which orphans every cached key —
// prunes the candidate instead of refreshing into a dead generation.
func TestRefreshAheadSkipsColdAndOrphaned(t *testing.T) {
	clk := clock.NewFake(time.Unix(9000, 0))
	var calls atomic.Int32
	reg := provider.NewRegistry(clk)
	reg.Register(provider.NewFuncProvider("Hot", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{{Name: "n", Value: fmt.Sprint(calls.Add(1))}}, nil
	}), provider.RegisterOptions{TTL: time.Hour, Clock: clk})
	eng := &infoEngine{resource: "test.resource", registry: reg}
	rc := newRespCache(reg, 4, 1<<20, 10*time.Second, 0, clk)
	r := newRefresher(rc, eng, clk, 0.5, 1, time.Second)
	defer r.close()

	req := &xrsl.InfoRequest{Keywords: []string{"Hot"}}
	body, empty, _, err := eng.Answer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rc.store(req, body, empty)
	rc.lookup(req) // one hit: not hot enough

	clk.Advance(6 * time.Second)
	r.scan()
	time.Sleep(50 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatal("one-hit entry was refreshed")
	}

	// Membership churn: the tracked key's embedded generation is stale, so
	// the scanner untracks it rather than refreshing unreachable data.
	reg.Register(provider.NewFuncProvider("New", func(ctx context.Context) (provider.Attributes, error) {
		return nil, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	r.scan()
	if got := len(rc.candidates(nil)); got != 0 {
		t.Fatalf("tracked candidates after generation bump = %d; want 0", got)
	}
	if calls.Load() != 1 {
		t.Fatal("orphaned entry was refreshed")
	}
}
