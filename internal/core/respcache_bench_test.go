package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/xrsl"
)

// The response-cache benchmark pair: the same keyed info query answered
// through the sharded byte cache versus through the per-keyword provider
// cache plus render (what every query cost before the response cache).
// BENCH acceptance: the hit path must be >= 10x faster at 1M keys under
// Zipf(1.1), allocation-free after the blob.

const benchRespKeys = 1 << 20

func benchRespEngine() (*infoEngine, *respCache) {
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Memory", func(ctx context.Context) (provider.Attributes, error) {
		return provider.Attributes{
			{Name: "free", Value: "1024"},
			{Name: "total", Value: "2048"},
			{Name: "cached", Value: "512"},
		}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	eng := &infoEngine{resource: "bench.resource", registry: reg}
	rc := newRespCache(reg, 256, 1<<30, time.Hour, time.Hour, clock.System)
	return eng, rc
}

// benchRespRequests builds the keyed population: one distinct filter
// string per key, the same query shape the loadgen keyed mode offers.
func benchRespRequests(n int) []*xrsl.InfoRequest {
	reqs := make([]*xrsl.InfoRequest, n)
	for i := range reqs {
		reqs[i] = &xrsl.InfoRequest{
			Keywords: []string{"Memory"},
			Filter:   fmt.Sprintf("key%08d*", i),
		}
	}
	return reqs
}

// benchZipfAccess pre-draws the access sequence so the benchmark loop
// measures the cache, not the random-number generator.
func benchZipfAccess(nKeys, nDraws int, s float64) []int {
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, s, 1, uint64(nKeys-1))
	out := make([]int, nDraws)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// BenchmarkRespCacheHit1MZipf measures the full hit path — cacheability
// check, key build from the request, shard lookup, blob alias — against a
// 1M-key resident population accessed with Zipf(1.1) skew.
func BenchmarkRespCacheHit1MZipf(b *testing.B) {
	eng, rc := benchRespEngine()
	ctx := context.Background()
	reqs := benchRespRequests(benchRespKeys)
	body, _, _, err := eng.Answer(ctx, &xrsl.InfoRequest{Keywords: []string{"Memory"}})
	if err != nil {
		b.Fatal(err)
	}
	for _, req := range reqs {
		rc.store(req, body, false)
	}
	access := benchZipfAccess(benchRespKeys, 1<<16, 1.1)

	b.ResetTimer()
	b.ReportAllocs()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, _, ok := rc.lookup(reqs[access[i%len(access)]]); ok {
			hits++
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(hits)/float64(b.N), "hit_ratio")
	}
	st := rc.stats()
	b.ReportMetric(float64(st.LiveBytes), "resident_bytes")
}

// BenchmarkRespUncachedCollectRender is the comparison point: every query
// pays provider collection (already served from the per-keyword TTL
// cache), entry building, filter evaluation, and rendering.
func BenchmarkRespUncachedCollectRender(b *testing.B) {
	eng, _ := benchRespEngine()
	ctx := context.Background()
	reqs := benchRespRequests(1 << 10) // population size is irrelevant uncached
	access := benchZipfAccess(len(reqs), 1<<16, 1.1)

	// Warm the per-keyword provider cache so the measured path is
	// collect-from-cache plus render, not provider execution.
	if _, _, _, err := eng.Answer(ctx, reqs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := eng.Answer(ctx, reqs[access[i%len(access)]]); err != nil {
			b.Fatal(err)
		}
	}
}
