package core_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/job"
	"infogram/internal/logging"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/xrsl"
)

// syncBuffer is a concurrency-safe byte buffer for log capture: tests read
// it while the service's logger is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// Snapshot returns a copy of the current contents.
func (b *syncBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, b.buf.Len())
	copy(out, b.buf.Bytes())
	return out
}

// testGrid is the shared harness: one CA, one service, one user.
type testGrid struct {
	ca      *gsi.CA
	trust   *gsi.TrustStore
	svc     *core.Service
	svcCred *gsi.Credential
	addr    string
	user    *gsi.Credential
	fn      *scheduler.Func
}

func newTestGrid(t *testing.T, reg *provider.Registry) *testGrid {
	return newTestGridWithLog(t, reg, nil)
}

func newTestGridWithLog(t *testing.T, reg *provider.Registry, logger *logging.Logger) *testGrid {
	return newTestGridConfig(t, reg, logger, nil)
}

// newTestGridConfig is the harness with a pre-Listen config hook, for
// tests exercising admission control and other Config knobs.
func newTestGridConfig(t *testing.T, reg *provider.Registry, logger *logging.Logger, mutate func(*core.Config)) *testGrid {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA", time.Hour, now)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, now)
	if err != nil {
		t.Fatalf("IssueIdentity service: %v", err)
	}
	user, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	if err != nil {
		t.Fatalf("IssueIdentity user: %v", err)
	}
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")

	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("hello", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "hello " + strings.Join(args, " "), nil
	})

	cfg := core.Config{
		ResourceName: "test.resource",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gm,
		Registry:     reg,
		Backends: gram.Backends{
			Exec: &scheduler.Fork{},
			Func: fn,
		},
		Log: logger,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc := core.NewService(cfg)
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return &testGrid{
		ca: ca, trust: trust, svc: svc, svcCred: svcCred,
		addr: addr, user: user, fn: fn,
	}
}

func TestEndToEndInfoAndJob(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values: provider.Attributes{
			{Name: "total", Value: "1024"},
			{Name: "free", Value: "512"},
		},
	}, provider.RegisterOptions{TTL: time.Second})
	g := newTestGrid(t, reg)

	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// Information query over the same connection and protocol as jobs.
	res, err := cl.QueryRaw("&(info=Memory)")
	if err != nil {
		t.Fatalf("QueryRaw: %v", err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(res.Entries))
	}
	if v, _ := res.Entries[0].Get("Memory:total"); v != "1024" {
		t.Errorf("Memory:total = %q, want 1024", v)
	}

	// In-process job execution.
	contact, err := cl.Submit("&(executable=hello)(arguments=grid world)(jobtype=func)")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
	if st.State != job.Done {
		t.Fatalf("job state = %s (err %q), want DONE", st.State, st.Error)
	}
	if st.Stdout != "hello grid world" {
		t.Errorf("stdout = %q", st.Stdout)
	}

	// Multi-request: an info query and a job in one round trip.
	parts, err := cl.SubmitMulti("+(&(info=Memory))(&(executable=hello)(jobtype=func))")
	if err != nil {
		t.Fatalf("SubmitMulti: %v", err)
	}
	if len(parts) != 2 {
		t.Fatalf("expected 2 parts, got %d", len(parts))
	}
	if parts[0].Kind != "info" || parts[0].Info == nil {
		t.Errorf("part 0 = %+v, want info", parts[0])
	}
	if parts[1].Kind != "job" || parts[1].Contact == "" {
		t.Errorf("part 1 = %+v, want job", parts[1])
	}

	// Schema reflection: Memory plus the built-in selfmetrics and
	// selftrace providers.
	schema, err := cl.Schema()
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if len(schema) != 3 {
		t.Fatalf("expected 3 schema entries, got %d", len(schema))
	}
	found := false
	for _, e := range schema {
		if kw, _ := e.Get("keyword"); kw == "Memory" {
			found = true
		}
	}
	if !found {
		t.Errorf("schema missing the Memory provider: %v", schema)
	}

	// Real process execution via fork.
	contact, err = cl.Submit("&(executable=/bin/echo)(arguments=forked)")
	if err != nil {
		t.Fatalf("Submit fork: %v", err)
	}
	st, err = cl.WaitTerminal(ctx, contact, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitTerminal fork: %v", err)
	}
	if st.State != job.Done || !strings.Contains(st.Stdout, "forked") {
		t.Errorf("fork job: state=%s stdout=%q err=%q", st.State, st.Stdout, st.Error)
	}

	_ = xrsl.FormatLDIF // keep the import while the test grows
}
