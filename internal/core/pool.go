package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xrsl"
)

// ErrPoolClosed is returned by every pool operation after Close.
var ErrPoolClosed = fmt.Errorf("infogram: pool closed")

// PoolOptions configures a connection pool.
type PoolOptions struct {
	// Size bounds the number of pooled connections (checked out plus
	// idle). Defaults to 4.
	Size int
	// IdleTimeout is how long an unused connection may sit idle before
	// the reaper closes it. Defaults to 1 minute.
	IdleTimeout time.Duration
	// HealthCheckAfter is the idle age beyond which a connection is
	// pinged before being handed out; a failed ping evicts it and a fresh
	// connection is dialed instead. Defaults to 1 second.
	HealthCheckAfter time.Duration
	// Client configures each pooled Client (timeouts, retry policy,
	// telemetry, mux).
	Client Options
}

func (o PoolOptions) size() int {
	if o.Size <= 0 {
		return 4
	}
	return o.Size
}

func (o PoolOptions) idleTimeout() time.Duration {
	if o.IdleTimeout <= 0 {
		return time.Minute
	}
	return o.IdleTimeout
}

func (o PoolOptions) healthCheckAfter() time.Duration {
	if o.HealthCheckAfter <= 0 {
		return time.Second
	}
	return o.HealthCheckAfter
}

// pooled is one idle pool entry.
type pooled struct {
	client   *Client
	lastUsed time.Time
}

// Pool amortizes the GSI handshake across requests: a bounded set of
// authenticated connections is reused instead of dialing (and paying the
// three-message handshake) per request. Checked-out clients are exclusive
// leases; because each Client is itself mux-capable and concurrency-safe,
// callers who want request-level sharing can also hold one checkout
// long-term — the pool's job is elasticity and health, not serialization.
//
// Connections are handed out most-recently-used first so a bursty workload
// keeps a small hot set and the reaper can retire the cold tail. A
// connection idle past HealthCheckAfter is pinged before reuse; a failed
// ping transparently evicts it and dials fresh, so a server restart costs
// one extra round trip instead of an error surfaced to the caller.
type Pool struct {
	addr  string
	cred  *gsi.Credential
	trust *gsi.TrustStore
	opts  PoolOptions
	clk   clock.Clock

	// slots bounds checked-out-plus-idle connections at opts.size().
	slots chan struct{}

	mu     sync.Mutex
	idle   []*pooled // LIFO: most recently used last
	closed bool

	stop       chan struct{}
	reaperDone chan struct{}

	connsOpen    *telemetry.Gauge
	connsIdle    *telemetry.Gauge
	checkoutWait *telemetry.Histogram
}

// NewPool creates a pool; no connections are dialed until first checkout.
func NewPool(addr string, cred *gsi.Credential, trust *gsi.TrustStore, opts PoolOptions) *Pool {
	if opts.Client.Clock == nil {
		opts.Client.Clock = clock.System
	}
	p := &Pool{
		addr:       addr,
		cred:       cred,
		trust:      trust,
		opts:       opts,
		clk:        opts.Client.Clock,
		slots:      make(chan struct{}, opts.size()),
		stop:       make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	if tel := opts.Client.Telemetry; tel != nil {
		p.connsOpen = tel.Gauge("infogram_pool_conns_open", "pooled connections currently open (checked out plus idle)")
		p.connsIdle = tel.Gauge("infogram_pool_conns_idle", "pooled connections sitting idle")
		p.checkoutWait = tel.Histogram("infogram_pool_checkout_wait_seconds", "time callers waited for a pool slot")
	}
	go p.reaper()
	return p
}

// Checkout leases a connection, dialing and authenticating a fresh one
// only when no healthy idle connection exists. Blocks while the pool is at
// capacity until a lease is returned, the context expires, or the pool
// closes. The caller must return the lease with Checkin (healthy) or
// Discard (observed failing).
func (p *Pool) Checkout(ctx context.Context) (*Client, error) {
	select {
	case <-p.stop:
		return nil, ErrPoolClosed
	default:
	}
	start := p.clk.Now()
	select {
	case p.slots <- struct{}{}:
	case <-p.stop:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p.checkoutWait.Observe(p.clk.Now().Sub(start))

	for {
		entry := p.popIdle()
		if entry == nil {
			break
		}
		if p.clk.Now().Sub(entry.lastUsed) <= p.opts.healthCheckAfter() {
			return entry.client, nil
		}
		// Idle long enough that the server may have restarted or cut us
		// off: verify before handing it to a caller.
		if entry.client.Ping() == nil {
			return entry.client, nil
		}
		entry.client.Close()
		p.connsOpen.Dec()
	}

	client, err := DialWithOptions(p.addr, p.cred, p.trust, p.opts.Client)
	if err != nil {
		<-p.slots
		return nil, err
	}
	p.connsOpen.Inc()
	return client, nil
}

// popIdle takes the most recently used idle connection, or nil.
func (p *Pool) popIdle() *pooled {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle) == 0 {
		return nil
	}
	entry := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	p.connsIdle.Dec()
	return entry
}

// Checkin returns a healthy lease to the pool for reuse.
func (p *Pool) Checkin(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		p.connsOpen.Dec()
		<-p.slots
		return
	}
	p.idle = append(p.idle, &pooled{client: c, lastUsed: p.clk.Now()})
	p.connsIdle.Inc()
	p.mu.Unlock()
	<-p.slots
}

// Discard closes a lease observed failing instead of returning it; the
// freed slot lets the next checkout dial fresh.
func (p *Pool) Discard(c *Client) {
	if c != nil {
		c.Close()
		p.connsOpen.Dec()
	}
	<-p.slots
}

// Close shuts the pool: idle connections are closed, the reaper exits, and
// every subsequent or blocked Checkout returns ErrPoolClosed. Leases still
// checked out stay usable; their Checkin closes them.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.stop)
	for _, entry := range idle {
		entry.client.Close()
		p.connsOpen.Dec()
		p.connsIdle.Dec()
	}
	<-p.reaperDone
	return nil
}

// reaper periodically closes connections idle past IdleTimeout so a burst
// does not pin its peak connection count (and the server-side resources
// behind it) forever.
func (p *Pool) reaper() {
	defer close(p.reaperDone)
	interval := p.opts.idleTimeout() / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.reapIdle()
		}
	}
}

// reapIdle closes every idle connection older than IdleTimeout.
func (p *Pool) reapIdle() {
	cutoff := p.clk.Now().Add(-p.opts.idleTimeout())
	var expired []*pooled
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	keep := p.idle[:0]
	for _, entry := range p.idle {
		if entry.lastUsed.Before(cutoff) {
			expired = append(expired, entry)
		} else {
			keep = append(keep, entry)
		}
	}
	p.idle = keep
	p.mu.Unlock()
	for _, entry := range expired {
		entry.client.Close()
		p.connsOpen.Dec()
		p.connsIdle.Dec()
	}
}

// Stats reports the pool's current shape: open counts checked-out plus
// idle connections, idle the subset sitting unused.
func (p *Pool) Stats() (open, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots) + len(p.idle), len(p.idle)
}

// do runs one operation on a leased connection: transient transport
// failures discard the lease (the client already retried under its own
// policy), anything else returns it for reuse.
func (p *Pool) do(ctx context.Context, fn func(*Client) error) error {
	c, err := p.Checkout(ctx)
	if err != nil {
		return err
	}
	err = fn(c)
	if err != nil && isTransient(err) {
		p.Discard(c)
	} else {
		p.Checkin(c)
	}
	return err
}

// Ping checks service liveness over a pooled connection.
func (p *Pool) Ping(ctx context.Context) error {
	return p.do(ctx, func(c *Client) error { return c.PingContext(ctx) })
}

// QueryRaw evaluates raw xRSL expected to be an information query over a
// pooled connection. The caller's context (and trace context, when it
// carries one) rides along to the leased client.
func (p *Pool) QueryRaw(ctx context.Context, xrslSrc string) (InfoResult, error) {
	var res InfoResult
	err := p.do(ctx, func(c *Client) error {
		var err error
		res, err = c.QueryRawContext(ctx, xrslSrc)
		return err
	})
	return res, err
}

// Query sends a typed information request over a pooled connection.
func (p *Pool) Query(ctx context.Context, req xrsl.InfoRequest) (InfoResult, error) {
	return p.QueryRaw(ctx, req.Encode())
}

// Submit sends raw xRSL for job execution over a pooled connection.
func (p *Pool) Submit(ctx context.Context, xrslSrc string) (string, error) {
	var contact string
	err := p.do(ctx, func(c *Client) error {
		var err error
		contact, err = c.SubmitContext(ctx, xrslSrc)
		return err
	})
	return contact, err
}

// Forward relays one already-formed request frame over a pooled
// connection and returns the raw response frame. See
// Client.ForwardContext; this is the cluster proxy's per-backend
// primitive.
func (p *Pool) Forward(ctx context.Context, req wire.Frame, idempotent bool) (wire.Frame, error) {
	var resp wire.Frame
	err := p.do(ctx, func(c *Client) error {
		var err error
		resp, err = c.ForwardContext(ctx, req, idempotent)
		return err
	})
	return resp, err
}

// Status polls a job by contact over a pooled connection.
func (p *Pool) Status(ctx context.Context, contact string) (gram.StatusReply, error) {
	var reply gram.StatusReply
	err := p.do(ctx, func(c *Client) error {
		var err error
		reply, err = c.StatusContext(ctx, contact)
		return err
	})
	return reply, err
}
