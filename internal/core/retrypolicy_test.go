package core

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for retry := 1; retry <= 8; retry++ {
		a, b := p.backoff(retry), p.backoff(retry)
		if a != b {
			t.Fatalf("backoff(%d) not deterministic: %v vs %v", retry, a, b)
		}
	}
}

func TestBackoffExponentialWithinJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for retry := 1; retry <= 10; retry++ {
		// Un-jittered target: base doubled per retry, capped.
		want := p.BaseDelay
		for i := 1; i < retry; i++ {
			want *= 2
			if want >= p.MaxDelay {
				want = p.MaxDelay
				break
			}
		}
		got := p.backoff(retry)
		if got < want/2 || got >= want {
			t.Errorf("backoff(%d) = %v; want in [%v, %v)", retry, got, want/2, want)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var p RetryPolicy // zero: 50ms base, 2s cap
	if got := p.backoff(1); got < 25*time.Millisecond || got >= 50*time.Millisecond {
		t.Errorf("default backoff(1) = %v; want in [25ms, 50ms)", got)
	}
	if got := p.backoff(20); got < time.Second || got >= 2*time.Second {
		t.Errorf("default backoff(20) = %v; want capped in [1s, 2s)", got)
	}
}

func TestRetryAttempts(t *testing.T) {
	cases := []struct{ max, want int }{{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {5, 5}}
	for _, tc := range cases {
		if got := (RetryPolicy{MaxAttempts: tc.max}).attempts(); got != tc.want {
			t.Errorf("attempts(MaxAttempts=%d) = %d; want %d", tc.max, got, tc.want)
		}
	}
}
