package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/wire"
	"infogram/internal/xmlenc"
	"infogram/internal/xrsl"
)

// Client is the single client an InfoGram deployment needs: one
// authenticated connection, one protocol, both job execution and
// information queries — contrast with the Figure 2 baseline where a client
// must hold a gram.Client and an mds.Client against two ports.
type Client struct {
	conn *wire.Conn
	peer *gsi.Peer
	clk  clock.Clock
}

// Dial connects and authenticates to an InfoGram service.
func Dial(addr string, cred *gsi.Credential, trust *gsi.TrustStore) (*Client, error) {
	return DialClock(addr, cred, trust, clock.System)
}

// DialClock is Dial with an injected clock.
func DialClock(addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock) (*Client, error) {
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("infogram: dial %s: %w", addr, err)
	}
	peer, err := gsi.ClientHandshake(conn, cred, trust, clk.Now())
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, peer: peer, clk: clk}, nil
}

// Server returns the authenticated server identity.
func (c *Client) Server() *gsi.Peer { return c.peer }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func serverError(f wire.Frame) error {
	return fmt.Errorf("infogram: server error: %s", strings.TrimSpace(string(f.Payload)))
}

// Ping checks service liveness.
func (c *Client) Ping() error {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbPing})
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbPong {
		return serverError(resp)
	}
	return nil
}

// Submit sends raw xRSL. For a job it returns the job contact; an info
// query submitted through Submit fails with a type hint — use Query.
func (c *Client) Submit(xrslSrc string) (string, error) {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)})
	if err != nil {
		return "", err
	}
	switch resp.Verb {
	case gram.VerbSubmitted:
		return string(resp.Payload), nil
	case VerbResultLDIF, VerbResultXML, VerbResultDSML:
		return "", fmt.Errorf("infogram: specification was an information query; use Query")
	default:
		return "", serverError(resp)
	}
}

// InfoResult is a decoded information response.
type InfoResult struct {
	Format  xrsl.Format
	Raw     string
	Entries []ldif.Entry
}

// QueryRaw sends raw xRSL expected to be an information query.
func (c *Client) QueryRaw(xrslSrc string) (InfoResult, error) {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)})
	if err != nil {
		return InfoResult{}, err
	}
	return decodeInfoFrame(resp)
}

func decodeInfoFrame(resp wire.Frame) (InfoResult, error) {
	switch resp.Verb {
	case VerbResultLDIF:
		entries, err := ldif.Unmarshal(string(resp.Payload))
		if err != nil {
			return InfoResult{}, err
		}
		return InfoResult{Format: xrsl.FormatLDIF, Raw: string(resp.Payload), Entries: entries}, nil
	case VerbResultXML:
		entries, err := xmlenc.Unmarshal(string(resp.Payload))
		if err != nil {
			return InfoResult{}, err
		}
		return InfoResult{Format: xrsl.FormatXML, Raw: string(resp.Payload), Entries: entries}, nil
	case VerbResultDSML:
		entries, err := xmlenc.UnmarshalDSML(string(resp.Payload))
		if err != nil {
			return InfoResult{}, err
		}
		return InfoResult{Format: xrsl.FormatDSML, Raw: string(resp.Payload), Entries: entries}, nil
	case gram.VerbSubmitted:
		return InfoResult{}, fmt.Errorf("infogram: specification was a job submission; use Submit")
	default:
		return InfoResult{}, serverError(resp)
	}
}

// Query sends a typed information request.
func (c *Client) Query(req xrsl.InfoRequest) (InfoResult, error) {
	return c.QueryRaw(req.Encode())
}

// Schema fetches the service reflection schema (§6.4).
func (c *Client) Schema() ([]ldif.Entry, error) {
	res, err := c.Query(xrsl.InfoRequest{Schema: true})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// SubmitJob sends a typed job request and returns the contact.
func (c *Client) SubmitJob(req xrsl.JobRequest) (string, error) {
	return c.Submit(req.Encode())
}

// MultiPart is the client view of one multi-request part outcome.
type MultiPart struct {
	Kind    string
	Contact string
	Info    *InfoResult
	Err     error
}

// SubmitMulti sends a multi-request (+) carrying any mix of jobs and info
// queries and decodes the per-part outcomes.
func (c *Client) SubmitMulti(xrslSrc string) ([]MultiPart, error) {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)})
	if err != nil {
		return nil, err
	}
	if resp.Verb != VerbMulti {
		// A multi-request with a single component answers directly.
		switch resp.Verb {
		case gram.VerbSubmitted:
			return []MultiPart{{Kind: "job", Contact: string(resp.Payload)}}, nil
		case VerbResultLDIF, VerbResultXML, VerbResultDSML:
			res, err := decodeInfoFrame(resp)
			if err != nil {
				return nil, err
			}
			return []MultiPart{{Kind: "info", Info: &res}}, nil
		default:
			return nil, serverError(resp)
		}
	}
	var parts []PartResult
	if err := json.Unmarshal(resp.Payload, &parts); err != nil {
		return nil, fmt.Errorf("infogram: decode multi response: %w", err)
	}
	out := make([]MultiPart, 0, len(parts))
	for _, p := range parts {
		mp := MultiPart{Kind: p.Kind, Contact: p.Contact}
		switch p.Kind {
		case "info":
			format := xrsl.Format(p.Format)
			var entries []ldif.Entry
			var derr error
			switch format {
			case xrsl.FormatXML:
				entries, derr = xmlenc.Unmarshal(p.Body)
			case xrsl.FormatDSML:
				entries, derr = xmlenc.UnmarshalDSML(p.Body)
			default:
				entries, derr = ldif.Unmarshal(p.Body)
			}
			if derr != nil {
				mp.Err = derr
			} else {
				mp.Info = &InfoResult{Format: format, Raw: p.Body, Entries: entries}
			}
		case "error":
			mp.Err = fmt.Errorf("infogram: %s", p.Error)
		}
		out = append(out, mp)
	}
	return out, nil
}

// Status polls a job by contact.
func (c *Client) Status(contact string) (gram.StatusReply, error) {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbStatus, Payload: []byte(contact)})
	if err != nil {
		return gram.StatusReply{}, err
	}
	if resp.Verb != gram.VerbStatusOK {
		return gram.StatusReply{}, serverError(resp)
	}
	var reply gram.StatusReply
	if err := json.Unmarshal(resp.Payload, &reply); err != nil {
		return gram.StatusReply{}, fmt.Errorf("infogram: decode status: %w", err)
	}
	return reply, nil
}

// Cancel cancels a job by contact.
func (c *Client) Cancel(contact string) error {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbCancel, Payload: []byte(contact)})
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbCancelOK {
		return serverError(resp)
	}
	return nil
}

// Signal suspends or resumes a job ("suspend" / "resume").
func (c *Client) Signal(contact, signal string) error {
	resp, err := c.conn.Call(wire.Frame{Verb: gram.VerbSignal, Payload: []byte(contact + " " + signal)})
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbSignalOK {
		return serverError(resp)
	}
	return nil
}

// WaitTerminal polls until the job reaches a terminal state.
func (c *Client) WaitTerminal(ctx context.Context, contact string, poll time.Duration) (gram.StatusReply, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(contact)
		if err != nil {
			return gram.StatusReply{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}
