package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"infogram/internal/clock"
	"infogram/internal/faultinject"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/xmlenc"
	"infogram/internal/xrsl"
)

// RetryPolicy bounds the client's transparent recovery from transient
// transport failures: connect errors, handshake interruptions, broken or
// timed-out connections. Retries apply only to connection establishment
// and to idempotent requests (ping, query, status) — a SUBMIT that may
// already have reached the server is never replayed, because the job
// could run twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 2s.
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the pause before the retry-th retry (1-based):
// exponential from BaseDelay, capped at MaxDelay, with deterministic
// jitter spreading the result over [d/2, d). The jitter hashes the retry
// index instead of drawing randomness so tests (and replayed incidents)
// see identical schedules.
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= cap || d <= 0 {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	h := uint64(retry) * 0x9E3779B97F4A7C15
	frac := float64(h>>40) / float64(1<<24) // [0,1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// Options configures a client beyond the required credentials.
type Options struct {
	// Clock defaults to the system clock; a clock.Fake with its Sleeper
	// implementation makes backoff instantaneous in tests.
	Clock clock.Clock
	// Retry is the transient-failure retry policy; the zero value
	// disables retrying.
	Retry RetryPolicy
	// DialTimeout bounds connection establishment and, through the wire
	// layer, each subsequent frame operation on the connection. Zero
	// means unbounded.
	DialTimeout time.Duration
	// RequestTimeout bounds each request/response exchange (and each
	// handshake). Zero means unbounded.
	RequestTimeout time.Duration
	// Telemetry optionally receives infogram_client_retries_total.
	Telemetry *telemetry.Registry
	// DisableMux forces the pre-mux serial protocol even against servers
	// that support multiplexing. With mux (the default against a mux-aware
	// server), concurrent requests share the one authenticated connection
	// and responses return by correlation ID; without it they serialize.
	DisableMux bool
	// DisableTrace skips the TRACE capability offer, so requests never
	// carry a trace-context prefix — byte-for-byte the pre-trace
	// protocol. With trace propagation (the default against a tracing
	// server), every request carries the caller's trace context and the
	// server joins the caller's trace instead of minting its own.
	DisableTrace bool
}

// Client is the single client an InfoGram deployment needs: one
// authenticated connection, one protocol, both job execution and
// information queries — contrast with the Figure 2 baseline where a client
// must hold a gram.Client and an mds.Client against two ports.
//
// A Client is safe for concurrent use. Against a mux-aware server (any
// post-negotiation deployment) concurrent requests genuinely share the
// one GSI-authenticated connection out of order; against a pre-mux server
// they serialize on it.
type Client struct {
	addr    string
	cred    *gsi.Credential
	trust   *gsi.TrustStore
	opts    Options
	clk     clock.Clock
	retries *telemetry.Counter

	mu     sync.Mutex
	conn   *wire.Conn
	mux    *wire.MuxConn // non-nil when the server accepted MUX mode
	traced bool          // the server accepted TRACE mode on this conn
	peer   *gsi.Peer
}

// Dial connects and authenticates to an InfoGram service.
func Dial(addr string, cred *gsi.Credential, trust *gsi.TrustStore) (*Client, error) {
	return DialWithOptions(addr, cred, trust, Options{})
}

// DialClock is Dial with an injected clock.
func DialClock(addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock) (*Client, error) {
	return DialWithOptions(addr, cred, trust, Options{Clock: clk})
}

// DialWithOptions is Dial with timeouts, a retry policy, and telemetry.
// Connection establishment itself honours the retry policy: transient
// dial and handshake failures back off and try again.
func DialWithOptions(addr string, cred *gsi.Credential, trust *gsi.TrustStore, opts Options) (*Client, error) {
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	c := &Client{addr: addr, cred: cred, trust: trust, opts: opts, clk: opts.Clock}
	if opts.Telemetry != nil {
		c.retries = opts.Telemetry.Counter("infogram_client_retries_total",
			"transparent client retries after transient connect, handshake, or wire failures")
	}
	attempts := opts.Retry.attempts()
	for attempt := 1; ; attempt++ {
		conn, mux, traced, peer, err := c.connect()
		if err == nil {
			c.conn, c.mux, c.traced, c.peer = conn, mux, traced, peer
			return c, nil
		}
		if attempt >= attempts || !isTransient(err) {
			return nil, err
		}
		c.retries.Inc()
		clock.SleepFor(c.clk, opts.Retry.backoff(attempt))
	}
}

// connect dials, authenticates, and — unless disabled — negotiates the
// trace and mux capabilities on one fresh connection. A server that
// declines an offer (any pre-capability deployment answers it with
// ERROR) leaves the connection in the corresponding legacy mode, so the
// client interoperates in both directions. TRACE is offered before MUX
// because NewMuxConn takes over the connection's read side; on a mux'd
// connection the trace prefix then rides inside the mux inner frame.
func (c *Client) connect() (*wire.Conn, *wire.MuxConn, bool, *gsi.Peer, error) {
	var conn *wire.Conn
	var err error
	if c.opts.DialTimeout > 0 {
		conn, err = wire.DialTimeout(c.addr, c.opts.DialTimeout)
	} else {
		conn, err = wire.Dial(c.addr)
	}
	if err != nil {
		return nil, nil, false, nil, fmt.Errorf("infogram: dial %s: %w", c.addr, err)
	}
	ctx, cancel := c.callCtx(context.Background())
	peer, err := gsi.ClientHandshakeContext(ctx, conn, c.cred, c.trust, c.clk.Now())
	cancel()
	if err != nil {
		conn.Close()
		return nil, nil, false, nil, err
	}
	var traced bool
	if !c.opts.DisableTrace {
		nctx, ncancel := c.callCtx(context.Background())
		traced, err = wire.NegotiateTrace(nctx, conn)
		ncancel()
		if err != nil {
			conn.Close()
			return nil, nil, false, nil, err
		}
	}
	var mux *wire.MuxConn
	if !c.opts.DisableMux {
		nctx, ncancel := c.callCtx(context.Background())
		ok, err := wire.NegotiateMux(nctx, conn)
		ncancel()
		if err != nil {
			conn.Close()
			return nil, nil, false, nil, err
		}
		if ok {
			mux = wire.NewMuxConn(conn)
		}
	}
	return conn, mux, traced, peer, nil
}

func (c *Client) callCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if c.opts.RequestTimeout > 0 {
		return context.WithTimeout(parent, c.opts.RequestTimeout)
	}
	return context.WithCancel(parent)
}

// Server returns the authenticated server identity.
func (c *Client) Server() *gsi.Peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conn, mux := c.conn, c.mux
	c.conn, c.mux = nil, nil
	c.mu.Unlock()
	if mux != nil {
		return mux.Close()
	}
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// current snapshots the live connection (and its mux layer and trace
// mode, when negotiated).
func (c *Client) current() (*wire.Conn, *wire.MuxConn, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn, c.mux, c.traced
}

// dropConn discards a connection observed failing, unless a concurrent
// caller already replaced it.
func (c *Client) dropConn(old *wire.Conn, oldMux *wire.MuxConn) {
	if oldMux != nil {
		oldMux.Close()
	} else {
		old.Close()
	}
	c.mu.Lock()
	if c.conn == old {
		c.conn, c.mux = nil, nil
	}
	c.mu.Unlock()
}

// reconnect establishes a connection if none is live.
func (c *Client) reconnect() error {
	if conn, _, _ := c.current(); conn != nil {
		return nil
	}
	conn, mux, traced, peer, err := c.connect()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.conn != nil {
		c.mu.Unlock()
		// Lost the race to another caller's reconnect.
		if mux != nil {
			mux.Close()
		} else {
			conn.Close()
		}
		return nil
	}
	c.conn, c.mux, c.traced, c.peer = conn, mux, traced, peer
	c.mu.Unlock()
	return nil
}

// call performs one request/response exchange. Idempotent requests (ping,
// query, status) are transparently retried under the retry policy when the
// transport fails: the connection is torn down, the backoff elapses on the
// client's clock, and a fresh connection is dialed and authenticated.
// Non-idempotent requests (submit, cancel, signal) are never retried once
// the request may have been sent. On a traced connection, the caller's
// trace context — the current span when parent carries one, the bare
// trace ID otherwise, a freshly minted trace as the last resort — is
// prefixed to the request so the server joins the caller's trace.
func (c *Client) call(parent context.Context, req wire.Frame, idempotent bool) (wire.Frame, error) {
	attempts := 1
	if idempotent {
		attempts = c.opts.Retry.attempts()
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.retries.Inc()
			clock.SleepFor(c.clk, c.opts.Retry.backoff(attempt-1))
		}
		if err := c.reconnect(); err != nil {
			lastErr = err
			if !isTransient(err) {
				return wire.Frame{}, err
			}
			continue
		}
		conn, mux, traced := c.current()
		if conn == nil {
			lastErr = fmt.Errorf("infogram: connection closed")
			continue
		}
		sendReq := req
		if traced {
			tc := wire.TraceContext{Sampled: true}
			if sp := telemetry.SpanFrom(parent); sp != nil {
				tc.Trace, tc.Parent = sp.Trace(), sp.ID()
			} else if trace := telemetry.TraceFrom(parent); trace != "" {
				tc.Trace = trace
			} else {
				tc.Trace = telemetry.NewTraceID()
			}
			sendReq = wire.EncodeTraceCtx(tc, req)
		}
		ctx, cancel := c.callCtx(parent)
		var resp wire.Frame
		var err error
		if mux != nil {
			resp, err = mux.Call(ctx, sendReq)
		} else {
			resp, err = conn.CallContext(ctx, sendReq)
		}
		cancel()
		if err == nil {
			if resp.Verb == wire.VerbReject {
				// The server's admission control refused the request before
				// doing any work on it. This is a protocol answer, not a
				// transport failure: the connection stays up (dropping it
				// would force a fresh GSI handshake — the most expensive
				// thing a shedding server could be asked to do), and the
				// request is not retried here. The caller gets the scope
				// and backoff hint and decides; retrying immediately would
				// be precisely the hammering the REJECT asked to stop.
				rej, derr := wire.DecodeReject(resp)
				if derr != nil {
					return wire.Frame{}, derr
				}
				return wire.Frame{}, &RejectedError{
					Scope:      rej.Scope,
					RetryAfter: rej.RetryAfter,
					Reason:     rej.Reason,
				}
			}
			return resp, nil
		}
		lastErr = err
		// A mux'd call that failed alone (its own deadline expired while
		// the transport stayed healthy) must not tear down the shared
		// connection under its sibling requests — the correlation ID
		// already guarantees its late response is discarded, never
		// mis-paired. A serial connection has no such guarantee, so it is
		// always dropped: the unread response would otherwise answer the
		// next request.
		if mux == nil || mux.Err() != nil {
			c.dropConn(conn, mux)
		}
		if !idempotent || !isTransient(err) {
			return wire.Frame{}, err
		}
	}
	return wire.Frame{}, lastErr
}

// isTransient classifies errors worth retrying: transport-level failures
// where the server never (or no longer) holds the request. Protocol-level
// rejections — authentication denials, server ERROR frames — are not
// transient.
func isTransient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, faultinject.ErrInjected):
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return true
	case errors.Is(err, os.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return true
	case errors.Is(err, syscall.ECONNREFUSED), errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

func serverError(f wire.Frame) error {
	return fmt.Errorf("infogram: server error: %s", strings.TrimSpace(string(f.Payload)))
}

// Ping checks service liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext is Ping carrying the caller's context (and, on a traced
// connection, its trace context).
func (c *Client) PingContext(ctx context.Context) error {
	resp, err := c.call(ctx, wire.Frame{Verb: gram.VerbPing}, true)
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbPong {
		return serverError(resp)
	}
	return nil
}

// Submit sends raw xRSL. For a job it returns the job contact; an info
// query submitted through Submit fails with a type hint — use Query.
// Submissions are never retried: a transport failure after the request
// was sent leaves the job's fate unknown, and replaying could run it
// twice.
func (c *Client) Submit(xrslSrc string) (string, error) {
	return c.SubmitContext(context.Background(), xrslSrc)
}

// SubmitContext is Submit carrying the caller's context.
func (c *Client) SubmitContext(ctx context.Context, xrslSrc string) (string, error) {
	resp, err := c.call(ctx, wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)}, false)
	if err != nil {
		return "", err
	}
	switch resp.Verb {
	case gram.VerbSubmitted:
		return string(resp.Payload), nil
	case VerbResultLDIF, VerbResultXML, VerbResultDSML:
		return "", fmt.Errorf("infogram: specification was an information query; use Query")
	default:
		return "", serverError(resp)
	}
}

// InfoResult is a decoded information response.
type InfoResult struct {
	Format  xrsl.Format
	Raw     string
	Entries []ldif.Entry
	// Degraded reports that the server answered partially because one or
	// more providers failed or timed out; the reply carries a
	// status=degraded entry naming the missing keywords.
	Degraded bool
}

// QueryRaw sends raw xRSL expected to be an information query. Queries
// are read-only and therefore retried under the retry policy.
func (c *Client) QueryRaw(xrslSrc string) (InfoResult, error) {
	return c.QueryRawContext(context.Background(), xrslSrc)
}

// QueryRawContext is QueryRaw carrying the caller's context.
func (c *Client) QueryRawContext(ctx context.Context, xrslSrc string) (InfoResult, error) {
	resp, err := c.call(ctx, wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)}, true)
	if err != nil {
		return InfoResult{}, err
	}
	return decodeInfoFrame(resp)
}

// entriesDegraded detects the status entry a degraded partial reply
// carries.
func entriesDegraded(entries []ldif.Entry) bool {
	for _, e := range entries {
		for _, a := range e.Attrs {
			if strings.EqualFold(a.Name, "objectclass") && a.Value == DegradedObjectClass {
				return true
			}
		}
	}
	return false
}

func decodeInfoFrame(resp wire.Frame) (InfoResult, error) {
	var format xrsl.Format
	var entries []ldif.Entry
	var err error
	switch resp.Verb {
	case VerbResultLDIF:
		format = xrsl.FormatLDIF
		entries, err = ldif.Unmarshal(string(resp.Payload))
	case VerbResultXML:
		format = xrsl.FormatXML
		entries, err = xmlenc.Unmarshal(string(resp.Payload))
	case VerbResultDSML:
		format = xrsl.FormatDSML
		entries, err = xmlenc.UnmarshalDSML(string(resp.Payload))
	case gram.VerbSubmitted:
		return InfoResult{}, fmt.Errorf("infogram: specification was a job submission; use Submit")
	default:
		return InfoResult{}, serverError(resp)
	}
	if err != nil {
		return InfoResult{}, err
	}
	return InfoResult{
		Format:   format,
		Raw:      string(resp.Payload),
		Entries:  entries,
		Degraded: entriesDegraded(entries),
	}, nil
}

// Query sends a typed information request.
func (c *Client) Query(req xrsl.InfoRequest) (InfoResult, error) {
	return c.QueryRaw(req.Encode())
}

// QueryContext is Query carrying the caller's context.
func (c *Client) QueryContext(ctx context.Context, req xrsl.InfoRequest) (InfoResult, error) {
	return c.QueryRawContext(ctx, req.Encode())
}

// Schema fetches the service reflection schema (§6.4).
func (c *Client) Schema() ([]ldif.Entry, error) {
	res, err := c.Query(xrsl.InfoRequest{Schema: true})
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// SubmitJob sends a typed job request and returns the contact.
func (c *Client) SubmitJob(req xrsl.JobRequest) (string, error) {
	return c.Submit(req.Encode())
}

// MultiPart is the client view of one multi-request part outcome.
type MultiPart struct {
	Kind     string
	Contact  string
	Info     *InfoResult
	Err      error
	Degraded bool
}

// SubmitMulti sends a multi-request (+) carrying any mix of jobs and info
// queries and decodes the per-part outcomes. Because a multi-request may
// contain job submissions, it is never retried.
func (c *Client) SubmitMulti(xrslSrc string) ([]MultiPart, error) {
	return c.SubmitMultiContext(context.Background(), xrslSrc)
}

// SubmitMultiContext is SubmitMulti carrying the caller's context.
func (c *Client) SubmitMultiContext(ctx context.Context, xrslSrc string) ([]MultiPart, error) {
	resp, err := c.call(ctx, wire.Frame{Verb: gram.VerbSubmit, Payload: []byte(xrslSrc)}, false)
	if err != nil {
		return nil, err
	}
	if resp.Verb != VerbMulti {
		// A multi-request with a single component answers directly.
		switch resp.Verb {
		case gram.VerbSubmitted:
			return []MultiPart{{Kind: "job", Contact: string(resp.Payload)}}, nil
		case VerbResultLDIF, VerbResultXML, VerbResultDSML:
			res, err := decodeInfoFrame(resp)
			if err != nil {
				return nil, err
			}
			return []MultiPart{{Kind: "info", Info: &res, Degraded: res.Degraded}}, nil
		default:
			return nil, serverError(resp)
		}
	}
	var parts []PartResult
	if err := json.Unmarshal(resp.Payload, &parts); err != nil {
		return nil, fmt.Errorf("infogram: decode multi response: %w", err)
	}
	out := make([]MultiPart, 0, len(parts))
	for _, p := range parts {
		mp := MultiPart{Kind: p.Kind, Contact: p.Contact, Degraded: p.Degraded}
		switch p.Kind {
		case "info":
			format := xrsl.Format(p.Format)
			var entries []ldif.Entry
			var derr error
			switch format {
			case xrsl.FormatXML:
				entries, derr = xmlenc.Unmarshal(p.Body)
			case xrsl.FormatDSML:
				entries, derr = xmlenc.UnmarshalDSML(p.Body)
			default:
				entries, derr = ldif.Unmarshal(p.Body)
			}
			if derr != nil {
				mp.Err = derr
			} else {
				mp.Info = &InfoResult{Format: format, Raw: p.Body, Entries: entries, Degraded: p.Degraded}
			}
		case "error":
			mp.Err = fmt.Errorf("infogram: %s", p.Error)
		}
		out = append(out, mp)
	}
	return out, nil
}

// ForwardContext relays one already-formed request frame and returns the
// raw response frame, without interpreting either side. This is the
// cluster proxy's primitive: the proxy terminates its own client's GSI
// session, picks the owning backend, and relays the inner frame verbatim
// — queries, submissions, status polls — so backends see exactly the
// frames a direct client would send. idempotent gates the retry policy
// exactly as the typed methods do (never retry a SUBMIT that may have
// been sent). A REJECT from the backend is returned as a frame, not an
// error: the proxy relays the backend's admission decision to the origin
// client untouched.
func (c *Client) ForwardContext(ctx context.Context, req wire.Frame, idempotent bool) (wire.Frame, error) {
	resp, err := c.call(ctx, req, idempotent)
	if err != nil {
		var rej *RejectedError
		if errors.As(err, &rej) {
			return wire.EncodeReject(wire.Reject{
				RetryAfter: rej.RetryAfter,
				Scope:      rej.Scope,
				Reason:     rej.Reason,
			}), nil
		}
		return wire.Frame{}, err
	}
	return resp, nil
}

// Status polls a job by contact. Status reads are idempotent and retried.
func (c *Client) Status(contact string) (gram.StatusReply, error) {
	return c.StatusContext(context.Background(), contact)
}

// StatusContext is Status carrying the caller's context.
func (c *Client) StatusContext(ctx context.Context, contact string) (gram.StatusReply, error) {
	resp, err := c.call(ctx, wire.Frame{Verb: gram.VerbStatus, Payload: []byte(contact)}, true)
	if err != nil {
		return gram.StatusReply{}, err
	}
	if resp.Verb != gram.VerbStatusOK {
		return gram.StatusReply{}, serverError(resp)
	}
	var reply gram.StatusReply
	if err := json.Unmarshal(resp.Payload, &reply); err != nil {
		return gram.StatusReply{}, fmt.Errorf("infogram: decode status: %w", err)
	}
	return reply, nil
}

// Cancel cancels a job by contact.
func (c *Client) Cancel(contact string) error {
	resp, err := c.call(context.Background(), wire.Frame{Verb: gram.VerbCancel, Payload: []byte(contact)}, false)
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbCancelOK {
		return serverError(resp)
	}
	return nil
}

// Signal suspends or resumes a job ("suspend" / "resume").
func (c *Client) Signal(contact, signal string) error {
	resp, err := c.call(context.Background(), wire.Frame{Verb: gram.VerbSignal, Payload: []byte(contact + " " + signal)}, false)
	if err != nil {
		return err
	}
	if resp.Verb != gram.VerbSignalOK {
		return serverError(resp)
	}
	return nil
}

// WaitTerminal polls until the job reaches a terminal state.
func (c *Client) WaitTerminal(ctx context.Context, contact string, poll time.Duration) (gram.StatusReply, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(contact)
		if err != nil {
			return gram.StatusReply{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}
