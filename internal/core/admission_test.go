package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// rejectedTotal reads the admission rejection counter for one scope.
func rejectedTotal(svc *core.Service, scope string) int64 {
	return svc.Telemetry().Counter("infogram_admission_rejected_total", "",
		telemetry.Label{Key: "scope", Value: scope}).Value()
}

func TestQuotaRejectsWithRetryAfterAndKeepsConnection(t *testing.T) {
	quota, err := gsi.ParseContractsString(`allow * for "/O=Grid/CN=alice" rate=0.001 burst=2`)
	if err != nil {
		t.Fatalf("quota: %v", err)
	}
	g := newTestGridConfig(t, provider.NewRegistry(nil), nil, func(cfg *core.Config) {
		cfg.Quota = quota
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The fresh bucket holds its burst of 2; the third request drains it.
	for i := 0; i < 2; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatalf("ping %d inside burst: %v", i, err)
		}
	}
	var rej *core.RejectedError
	err = cl.Ping()
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError, got %v", err)
	}
	if rej.Scope != wire.RejectScopeQuota {
		t.Fatalf("scope = %q, want quota", rej.Scope)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("retry-after hint missing: %+v", rej)
	}

	// A rejection is a protocol answer, not a transport failure: the
	// client must keep the authenticated connection instead of burning a
	// fresh GSI handshake per refusal.
	if err := cl.Ping(); !errors.As(err, &rej) {
		t.Fatalf("second rejection: %v", err)
	}
	if got := g.svc.AcceptedConns(); got != 1 {
		t.Fatalf("rejections cost %d connections, want the original 1", got)
	}
	if got := rejectedTotal(g.svc, wire.RejectScopeQuota); got != 2 {
		t.Fatalf("rejected_total{scope=quota} = %d, want 2", got)
	}
}

func TestQuotaBucketRefills(t *testing.T) {
	quota, err := gsi.ParseContractsString(`allow * rate=50 burst=1`)
	if err != nil {
		t.Fatalf("quota: %v", err)
	}
	g := newTestGridConfig(t, provider.NewRegistry(nil), nil, func(cfg *core.Config) {
		cfg.Quota = quota
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	var rej *core.RejectedError
	if err := cl.Ping(); !errors.As(err, &rej) {
		t.Fatalf("drained bucket should reject, got %v", err)
	}
	// 50 tokens/s: the hinted wait (~20ms) refills one.
	time.Sleep(rej.RetryAfter + 50*time.Millisecond)
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after refill: %v", err)
	}
}

func TestMaxInflightShedsUnderOverload(t *testing.T) {
	reg := provider.NewRegistry(nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	reg.Register(provider.NewFuncProvider("Slow", func(ctx context.Context) (provider.Attributes, error) {
		once.Do(func() { close(entered) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return provider.Attributes{{Name: "v", Value: "1"}}, nil
	}), provider.RegisterOptions{})
	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.MaxInflight = 1
		cfg.ShedQueue = 1
		cfg.QueueTimeout = 2 * time.Second
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	query := func(errs chan<- error) {
		_, err := cl.QueryRaw("&(info=Slow)(response=immediate)")
		errs <- err
	}
	errs := make(chan error, 2)
	// First query occupies the single inflight slot...
	go query(errs)
	<-entered
	// ...the second parks in the wait queue (occupancy 1). Wait for the
	// gauge to show it parked: probing before then races the probe into
	// the queue slot, where it times out and the "parked" query sheds.
	go query(errs)
	waiting := g.svc.Telemetry().Gauge("infogram_admission_waiting", "")
	parkDeadline := time.Now().Add(5 * time.Second)
	for waiting.Value() == 0 {
		if time.Now().After(parkDeadline) {
			t.Fatal("second query never parked in the wait queue")
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the third must shed: normal priority's threshold on a
	// 1-deep queue is 1, already reached.
	deadline := time.Now().Add(5 * time.Second)
	var rej *core.RejectedError
	for {
		_, err := cl.QueryRaw("&(info=Slow)(response=immediate)")
		if errors.As(err, &rej) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overloaded server never shed; last err: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rej.Scope != wire.RejectScopeOverload {
		t.Fatalf("scope = %q, want overload", rej.Scope)
	}
	if rejectedTotal(g.svc, wire.RejectScopeOverload) == 0 {
		t.Fatal("rejected_total{scope=overload} not incremented")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked query %d should complete after release: %v", i, err)
		}
	}
}

func TestSubmitBacklogRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("block", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "", nil
	})
	queue := scheduler.NewQueue(scheduler.QueueConfig{Name: "pbs", Slots: 1, Executor: fn})
	t.Cleanup(queue.Close)
	g := newTestGridConfig(t, provider.NewRegistry(nil), nil, func(cfg *core.Config) {
		cfg.Backends.Queue = queue
		cfg.SubmitBacklog = 1
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const job = "&(executable=block)(jobtype=queue)"
	// Job 1 occupies the slot, job 2 the backlog.
	for i := 0; i < 2; i++ {
		if _, err := cl.Submit(job); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Backend submission is asynchronous (the manager goroutine selects
	// the backend); wait for the backlog to be observable.
	deadline := time.Now().Add(5 * time.Second)
	for queue.Depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want 1", queue.Depth())
		}
		time.Sleep(time.Millisecond)
	}

	_, err = cl.Submit(job)
	var rej *core.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError, got %v", err)
	}
	if rej.Scope != wire.RejectScopeBacklog {
		t.Fatalf("scope = %q, want backlog", rej.Scope)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("retry-after hint missing: %+v", rej)
	}
	if rejectedTotal(g.svc, wire.RejectScopeBacklog) != 1 {
		t.Fatalf("rejected_total{scope=backlog} = %d, want 1", rejectedTotal(g.svc, wire.RejectScopeBacklog))
	}
	// The refused job must not have been registered: only 2 jobs exist.
	if n := g.svc.Table().Len(); n != 2 {
		t.Fatalf("job table holds %d records, want 2 (the rejected submit must not register)", n)
	}
}

func TestDegradedReplyChargedExactlyOneToken(t *testing.T) {
	// A quota-limited identity whose info query degrades (one provider
	// times out) must be charged exactly one token: the partial reply is
	// one answer to one admitted request, not a failure the client or
	// server retries into a second charge.
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Good",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	reg.Register(provider.NewFuncProvider("Bad", func(ctx context.Context) (provider.Attributes, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}), provider.RegisterOptions{})
	quota, err := gsi.ParseContractsString(`allow * for "/O=Grid/CN=alice" rate=0.001 burst=2`)
	if err != nil {
		t.Fatalf("quota: %v", err)
	}
	g := newTestGridConfig(t, reg, nil, func(cfg *core.Config) {
		cfg.Quota = quota
		cfg.ProviderTimeout = 50 * time.Millisecond
	})
	cl, err := core.Dial(g.addr, g.user, g.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.QueryRaw("&(info=Good)(info=Bad)")
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !res.Degraded {
		t.Fatal("query should be degraded (Bad timed out)")
	}
	// One token remains: a second request is still admitted, proving the
	// degraded reply did not double-spend.
	if _, err := cl.QueryRaw("&(info=Good)"); err != nil {
		t.Fatalf("second query should spend the remaining token: %v", err)
	}
	var rej *core.RejectedError
	if _, err := cl.QueryRaw("&(info=Good)"); !errors.As(err, &rej) {
		t.Fatalf("third query should exhaust the bucket, got %v", err)
	}
	if rej.Scope != wire.RejectScopeQuota {
		t.Fatalf("scope = %q, want quota", rej.Scope)
	}
}
