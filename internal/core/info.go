package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"infogram/internal/ldif"
	"infogram/internal/provider"
	"infogram/internal/quality"
	"infogram/internal/xmlenc"
	"infogram/internal/xrsl"
)

// infoEngine answers decoded information queries from the provider
// registry: the "system monitor service" plus "system information service"
// pair of Figure 3, fronted by the xRSL tags of §6.5.
type infoEngine struct {
	resource string
	registry *provider.Registry
	// providerTimeout, when positive, bounds each keyword's retrieval and
	// turns provider failures into degraded partial replies instead of
	// query errors. Zero keeps the all-or-nothing semantics of §6.3.
	providerTimeout time.Duration
}

// Answer evaluates an info request and renders it in the requested format.
// empty reports that no entries survived evaluation (a filter that matched
// nothing) — the response cache stores such bodies under its shorter
// negative TTL. degraded reports whether one or more providers failed or
// timed out and the reply is therefore partial.
func (e *infoEngine) Answer(ctx context.Context, req *xrsl.InfoRequest) (body string, empty, degraded bool, err error) {
	var entries []ldif.Entry
	var missing []provider.DegradedKeyword
	switch {
	case req.Schema:
		entries = e.schemaEntries()
	case e.providerTimeout > 0:
		reports, deg, err := e.registry.CollectDegraded(ctx, req.Keywords, req.Response, req.Quality, e.providerTimeout)
		if err != nil {
			return "", false, false, err
		}
		missing = deg
		entries = provider.ReportEntries(e.resource, reports)
		e.augmentQuality(entries, reports)
		if req.Performance {
			e.augmentPerformance(entries, reports)
		}
	default:
		reports, err := e.registry.Collect(ctx, req.Keywords, req.Response, req.Quality)
		if err != nil {
			return "", false, false, err
		}
		entries = provider.ReportEntries(e.resource, reports)
		e.augmentQuality(entries, reports)
		if req.Performance {
			e.augmentPerformance(entries, reports)
		}
	}
	if req.Filter != "" {
		entries = applyFilter(entries, req.Filter)
	}
	empty = len(entries) == 0
	// The degradation marker is appended after filtering so a client that
	// projected attributes away still learns its reply is partial.
	if len(missing) > 0 {
		entries = append(entries, degradedEntry(e.resource, missing))
	}
	var render func([]ldif.Entry) (string, error)
	switch req.Format {
	case xrsl.FormatXML:
		render = xmlenc.Marshal
	case xrsl.FormatDSML:
		render = xmlenc.MarshalDSML
	default:
		render = ldif.Marshal
	}
	body, err = render(entries)
	return body, empty, len(missing) > 0, err
}

// DegradedObjectClass marks the status entry appended to a partial reply.
const DegradedObjectClass = "InfoGramStatus"

// degradedEntry builds the status entry that flags a partial reply: one
// "missing" attribute per unanswered keyword — or "stale" when the last
// known value was served in its place — plus the provider error that
// caused it.
func degradedEntry(resource string, missing []provider.DegradedKeyword) ldif.Entry {
	entry := ldif.Entry{DN: fmt.Sprintf("status=degraded, resource=%s, o=grid", resource)}
	entry.Add("objectclass", DegradedObjectClass)
	entry.Add("degraded", "true")
	for _, d := range missing {
		if d.Stale {
			entry.Add("stale", d.Keyword)
		} else {
			entry.Add("missing", d.Keyword)
		}
		entry.Add("error:"+strings.ToLower(d.Keyword), d.Err.Error())
	}
	return entry
}

// augmentQuality attaches the quality-of-information assessment of §6.3 to
// each returned keyword block: the degradation score, the value's age, and
// the function that produced the score.
func (e *infoEngine) augmentQuality(entries []ldif.Entry, reports []provider.Report) {
	for i := range reports {
		entries[i].Add("quality:score", fmt.Sprintf("%.2f", float64(reports[i].Result.Quality)))
		// Age renders as ASCII seconds; time.Duration's µs unit would
		// force base64 in LDIF.
		entries[i].Add("quality:age", fmt.Sprintf("%.6fs", reports[i].Result.Age.Seconds()))
		entries[i].Add("quality:fromCache", strconv.FormatBool(reports[i].Result.FromCache))
		if reports[i].Result.Stale {
			// Served past its TTL during a provider outage — the client
			// sees exactly which keyword blocks are beyond their lifetime.
			entries[i].Add("quality:stale", "true")
		}
		if g, ok := e.registry.Lookup(reports[i].Keyword); ok && g.Degradation() != nil {
			entries[i].Add("quality:function", g.Degradation().Name())
			// Self-correcting functions expose their observed drift, the
			// "standard deviation ... of the value" context §5.2 asks for.
			if sc, ok := g.Degradation().(*quality.SelfCorrecting); ok && sc.Observations() > 0 {
				entries[i].Add("quality:driftSigma", fmt.Sprintf("%.6f", sc.DriftSigma()))
				entries[i].Add("quality:driftObservations", strconv.FormatInt(sc.Observations(), 10))
			}
		}
	}
}

// augmentPerformance implements the performance tag: "the number of
// seconds and the standard deviation about how long it takes to obtain a
// particular information value" (§6.5).
func (e *infoEngine) augmentPerformance(entries []ldif.Entry, reports []provider.Report) {
	for i := range reports {
		g, ok := e.registry.Lookup(reports[i].Keyword)
		if !ok {
			continue
		}
		st := g.AverageUpdateTime()
		entries[i].Add("performance:mean", fmt.Sprintf("%.6f", st.Mean.Seconds()))
		entries[i].Add("performance:stddev", fmt.Sprintf("%.6f", st.StdDev.Seconds()))
		entries[i].Add("performance:samples", strconv.FormatInt(st.Count, 10))
	}
}

// schemaEntries implements service reflection (§6.4): one entry per
// keyword describing its source, TTL, degradation function, preferred
// format, retrieval performance, and declared attributes.
func (e *infoEngine) schemaEntries() []ldif.Entry {
	schema := e.registry.Schema()
	out := make([]ldif.Entry, 0, len(schema))
	for _, ks := range schema {
		entry := ldif.Entry{DN: fmt.Sprintf("schema=%s, resource=%s, o=grid", ks.Keyword, e.resource)}
		entry.Add("objectclass", "InfoGramSchema")
		entry.Add("keyword", ks.Keyword)
		entry.Add("source", ks.Source)
		entry.Add("ttl", strconv.FormatInt(ks.TTL.Milliseconds(), 10))
		entry.Add("format", ks.Format)
		if ks.Degradation != "" {
			entry.Add("degradation", ks.Degradation)
		}
		if ks.Performance.Count > 0 {
			entry.Add("performance:mean", fmt.Sprintf("%.6f", ks.Performance.Mean.Seconds()))
			entry.Add("performance:stddev", fmt.Sprintf("%.6f", ks.Performance.StdDev.Seconds()))
		}
		for _, as := range ks.Attributes {
			doc := as.Type
			if as.Doc != "" {
				doc += ": " + as.Doc
			}
			entry.Add("attribute:"+as.Name, doc)
		}
		out = append(out, entry)
	}
	return out
}

// applyFilter keeps, in each entry, only attributes whose names match the
// glob pattern (the filter tag); entries left without any matching
// attribute are dropped. The structural attributes (objectclass, kw,
// resource) are always kept on surviving entries.
func applyFilter(entries []ldif.Entry, pattern string) []ldif.Entry {
	structural := map[string]bool{"objectclass": true, "kw": true, "resource": true, "keyword": true}
	var out []ldif.Entry
	for _, e := range entries {
		kept := ldif.Entry{DN: e.DN}
		matched := false
		for _, a := range e.Attrs {
			if structural[strings.ToLower(a.Name)] {
				kept.Add(a.Name, a.Value)
				continue
			}
			if globMatch(pattern, a.Name) {
				kept.Add(a.Name, a.Value)
				matched = true
			}
		}
		if matched {
			out = append(out, kept)
		}
	}
	return out
}

// globMatch matches pattern with '*' wildcards against s,
// case-insensitively.
func globMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	v := strings.ToLower(s)
	if !strings.Contains(p, "*") {
		return p == v
	}
	parts := strings.Split(p, "*")
	if !strings.HasPrefix(v, parts[0]) {
		return false
	}
	v = v[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(v, mid)
		if idx < 0 {
			return false
		}
		v = v[idx+len(mid):]
	}
	return strings.HasSuffix(v, last)
}
