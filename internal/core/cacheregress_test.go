package core

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"infogram/internal/xrsl"
)

// TestCacheHitPathReference is the nightly regression reference point for
// the response cache, driven by scripts/cache-regress.sh. It is not a
// benchmark: go test -bench reports only the mean, and a hit path that is
// fast on average but stalls in the tail (a shard lock held across
// compaction, an eviction scan on the lookup path) is exactly the
// regression the gate exists to catch. So the test times every lookup
// individually against the same 1M-key Zipf(1.1) population the
// BenchmarkRespCacheHit1MZipf pair uses, reports the p99, and pins
// allocations with testing.AllocsPerRun.
//
// Gated on INFOGRAM_CACHEBENCH=1 because prefilling 1M entries takes
// seconds and the numbers only mean something on a quiet machine. The
// result is written as one JSON object to INFOGRAM_CACHEBENCH_OUT (or the
// test log when unset): {"keys":...,"zipf":...,"samples":...,"p99_ns":...,
// "allocs_per_op":...}.
func TestCacheHitPathReference(t *testing.T) {
	if os.Getenv("INFOGRAM_CACHEBENCH") != "1" {
		t.Skip("set INFOGRAM_CACHEBENCH=1 to run the cache reference point")
	}

	eng, rc := benchRespEngine()
	ctx := context.Background()
	reqs := benchRespRequests(benchRespKeys)
	body, _, _, err := eng.Answer(ctx, &xrsl.InfoRequest{Keywords: []string{"Memory"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		rc.store(req, body, false)
	}
	access := benchZipfAccess(benchRespKeys, 1<<16, 1.1)

	// Warm pass: fault in the resident index and arena pages so the timed
	// pass measures the cache, not first-touch page faults.
	for _, k := range access {
		if _, _, ok := rc.lookup(reqs[k]); !ok {
			t.Fatalf("warm pass: key %d not resident", k)
		}
	}

	// The alloc pin first, while the timing samples are not yet live: the
	// hit path must stay allocation-free, and the shell gate treats any
	// nonzero as a failure (20% over a baseline of 0 is still 0).
	allocs := testing.AllocsPerRun(1000, func() {
		for _, k := range access[:64] {
			rc.lookup(reqs[k])
		}
	}) / 64

	samples := make([]time.Duration, len(access))
	for i, k := range access {
		t0 := time.Now()
		_, _, ok := rc.lookup(reqs[k])
		samples[i] = time.Since(t0)
		if !ok {
			t.Fatalf("timed pass: key %d not resident", k)
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[len(samples)*99/100]

	out, err := json.Marshal(struct {
		Keys    int     `json:"keys"`
		Zipf    float64 `json:"zipf"`
		Samples int     `json:"samples"`
		P99ns   int64   `json:"p99_ns"`
		Allocs  float64 `json:"allocs_per_op"`
	}{benchRespKeys, 1.1, len(samples), p99.Nanoseconds(), allocs})
	if err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("INFOGRAM_CACHEBENCH_OUT"); path != "" {
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("cache reference point: %s", out)
}
