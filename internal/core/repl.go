package core

import (
	"io"
	"os"

	"infogram/internal/wire"
)

// Leader-side journal replication: serveRepl answers a follower's REPL
// offer by shipping the journal's consistent backlog cut (snapshot +
// segment prefixes) and then relaying every subsequent append live. The
// follower half lives in internal/cluster (core cannot import cluster);
// the protocol is documented in internal/wire/repl.go.

// replTapBuffer is the per-follower live-record buffer. A follower that
// falls this many records behind while the backlog ships is dropped and
// must re-sync — bounding leader memory per follower.
const replTapBuffer = 1024

// serveRepl streams the journal to one follower connection. It owns the
// connection from REPL-OK on; returning closes it (the server's conn
// loop has already exited).
func (s *Service) serveRepl(c *wire.Conn) {
	tap, backlog, err := s.cfg.Journal.Subscribe(replTapBuffer)
	if err != nil || tap == nil {
		_ = c.Write(errorFrame("infogram: replication subscribe failed"))
		return
	}
	defer s.cfg.Journal.Unsubscribe(tap)
	s.instr.replFollowers.Inc()
	defer s.instr.replFollowers.Dec()

	m := wire.ReplManifest{SnapshotSize: -1}
	if backlog.Snapshot != nil {
		m.SnapshotSize = int64(len(backlog.Snapshot))
	}
	for _, seg := range backlog.Segments {
		m.Segments = append(m.Segments, wire.ReplSegment{Index: seg.Index, Size: seg.Size})
	}
	mf, err := wire.EncodeReplManifest(m)
	if err != nil {
		return
	}
	if err := c.Write(mf); err != nil {
		return
	}

	// The follower sends nothing after REPL; a read here returns only
	// when it disconnects, which unblocks the tap loop below by closing
	// the tap (Unsubscribe closes its channel).
	go func() {
		_, _ = c.Read()
		s.cfg.Journal.Unsubscribe(tap)
	}()

	// Backlog: snapshot first, then segment prefixes in manifest order.
	for off := 0; off < len(backlog.Snapshot); off += wire.ReplChunkSize {
		end := min(off+wire.ReplChunkSize, len(backlog.Snapshot))
		if err := c.Write(wire.Frame{Verb: wire.VerbReplSnap, Payload: backlog.Snapshot[off:end]}); err != nil {
			return
		}
	}
	for _, seg := range m.Segments {
		// A compaction may have deleted this segment after the cut; the
		// snapshot that replaced it is newer than the one just shipped, so
		// the stream cannot be completed consistently. Drop the follower —
		// its re-sync gets the post-compaction manifest.
		if !s.shipSegment(c, seg) {
			return
		}
	}
	if err := c.Write(wire.Frame{Verb: wire.VerbReplLive}); err != nil {
		return
	}
	for rec := range tap.Records() {
		if err := c.Write(wire.Frame{Verb: wire.VerbReplRec, Payload: rec}); err != nil {
			return
		}
		s.instr.replRecordsShipped.Inc()
	}
	// Tap closed: journal closed, follower disconnected, or the follower
	// fell behind. Either way the stream ends; the connection closes.
}

// shipSegment streams the first seg.Size bytes of one segment file.
func (s *Service) shipSegment(c *wire.Conn, seg wire.ReplSegment) bool {
	f, err := os.Open(s.cfg.Journal.SegmentPath(seg.Index))
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, wire.ReplChunkSize)
	remaining := seg.Size
	for remaining > 0 {
		n := int64(len(buf))
		if remaining < n {
			n = remaining
		}
		read, err := io.ReadFull(f, buf[:n])
		if err != nil {
			return false
		}
		if err := c.Write(wire.Frame{Verb: wire.VerbReplSeg, Payload: buf[:read]}); err != nil {
			return false
		}
		remaining -= int64(read)
	}
	return true
}
