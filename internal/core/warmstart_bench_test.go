package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/provider"
	"infogram/internal/xrsl"
)

// The warm-restart benchmark pair plus the refresh-ahead steady-state
// point. BENCH acceptance: restart-to-first-hit through the restored
// snapshot must be >= 10x faster than the cold path (a ~5ms provider),
// and under Zipf steady state with refresh-ahead armed the hot-decile
// keys must miss < 1% with a p99 within 2x of the pure hit path.

const (
	// warmBenchKeys is the snapshot population for the restart pair.
	warmBenchKeys = 256
	// warmProviderDelay stands in for a real collection (a forked probe, an
	// LRM query): the cost a cold restart pays and a warm one does not.
	warmProviderDelay = 5 * time.Millisecond
	// refreshBenchKeys/refreshProviderDelay shape the steady-state point.
	refreshBenchKeys     = 64
	refreshProviderDelay = 2 * time.Millisecond
	refreshBenchTTL      = 500 * time.Millisecond
	refreshBenchZipf     = 1.2
)

// warmBenchRegistry builds the registry every "process generation" of the
// restart pair starts from — identical shape, so the snapshot digest
// matches across restarts exactly as it does for a real server rebuilt
// from the same config.
func warmBenchRegistry(delay time.Duration) *provider.Registry {
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Payload", func(ctx context.Context) (provider.Attributes, error) {
		time.Sleep(delay)
		return provider.Attributes{{Name: "v", Value: "payload-value"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	return reg
}

// warmBenchSnapshot fills a cache with the keyed population and writes its
// snapshot; returns the requests so restarted generations can replay them.
func warmBenchSnapshot(tb testing.TB, path string) []*xrsl.InfoRequest {
	tb.Helper()
	reg := warmBenchRegistry(warmProviderDelay)
	eng := &infoEngine{resource: "bench.resource", registry: reg}
	rc := newRespCache(reg, 64, 64<<20, time.Hour, 0, clock.System)
	reqs := make([]*xrsl.InfoRequest, warmBenchKeys)
	ctx := context.Background()
	for i := range reqs {
		reqs[i] = &xrsl.InfoRequest{
			Keywords: []string{"Payload"},
			Filter:   fmt.Sprintf("key%05d*", i),
		}
		body, empty, _, err := eng.Answer(ctx, reqs[i])
		if err != nil {
			tb.Fatal(err)
		}
		rc.store(reqs[i], body, empty)
	}
	if err := rc.newPersister(path, 0, false, clock.System).Snapshot(); err != nil {
		tb.Fatal(err)
	}
	return reqs
}

// coldFirstAnswer is one cold restart's first answer: a fresh registry
// (nothing collected yet), a response-cache miss, a real provider
// execution, render, store.
func coldFirstAnswer(tb testing.TB, req *xrsl.InfoRequest) time.Duration {
	tb.Helper()
	reg := warmBenchRegistry(warmProviderDelay)
	eng := &infoEngine{resource: "bench.resource", registry: reg}
	rc := newRespCache(reg, 64, 64<<20, time.Hour, 0, clock.System)
	t0 := time.Now()
	if _, _, ok := rc.lookup(req); ok {
		tb.Fatal("cold cache answered from nowhere")
	}
	body, empty, _, err := eng.Answer(context.Background(), req)
	if err != nil {
		tb.Fatal(err)
	}
	rc.store(req, body, empty)
	return time.Since(t0)
}

// warmFirstHit is one warm restart's first answer: restore the snapshot
// into a fresh cache, then serve the first lookup from it.
func warmFirstHit(tb testing.TB, path string, req *xrsl.InfoRequest) time.Duration {
	tb.Helper()
	reg := warmBenchRegistry(warmProviderDelay)
	rc := newRespCache(reg, 64, 64<<20, time.Hour, 0, clock.System)
	t0 := time.Now()
	st, err := rc.newPersister(path, 0, false, clock.System).Restore()
	if err != nil {
		tb.Fatal(err)
	}
	if st.Restored != warmBenchKeys {
		tb.Fatalf("restored %d entries; want %d", st.Restored, warmBenchKeys)
	}
	if _, _, ok := rc.lookup(req); !ok {
		tb.Fatal("restored cache missed")
	}
	return time.Since(t0)
}

// BenchmarkRestartColdFirstAnswer is the cost a restarted server pays for
// its first query without cache persistence: the full provider execution.
func BenchmarkRestartColdFirstAnswer(b *testing.B) {
	reqs := make([]*xrsl.InfoRequest, warmBenchKeys)
	for i := range reqs {
		reqs[i] = &xrsl.InfoRequest{
			Keywords: []string{"Payload"},
			Filter:   fmt.Sprintf("key%05d*", i),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		req := reqs[i%len(reqs)]
		b.StartTimer()
		_ = coldFirstAnswer(b, req)
	}
}

// BenchmarkRestartWarmFirstHit is the same first query through snapshot
// restore: boot-time restore of the full population plus the first hit.
func BenchmarkRestartWarmFirstHit(b *testing.B) {
	path := filepath.Join(b.TempDir(), "respcache.snap")
	reqs := warmBenchSnapshot(b, path)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = warmFirstHit(b, path, reqs[i%len(reqs)])
	}
}

// refreshBench is the refresh-ahead steady-state rig: one keyword (and one
// deliberately slow provider) per key, so a response-cache miss pays a
// real collection, and the refresher's background refills are what keep
// the hot keys from ever paying it on the request path.
type refreshBench struct {
	eng  *infoEngine
	rc   *respCache
	r    *refresher
	reqs []*xrsl.InfoRequest
}

func newRefreshBench() *refreshBench {
	reg := provider.NewRegistry(nil)
	s := &refreshBench{reqs: make([]*xrsl.InfoRequest, refreshBenchKeys)}
	for i := range s.reqs {
		kw := fmt.Sprintf("Key%03d", i)
		reg.Register(provider.NewFuncProvider(kw, func(ctx context.Context) (provider.Attributes, error) {
			time.Sleep(refreshProviderDelay)
			return provider.Attributes{{Name: "v", Value: kw}}, nil
		}), provider.RegisterOptions{TTL: refreshBenchTTL})
		s.reqs[i] = &xrsl.InfoRequest{Keywords: []string{kw}}
	}
	s.eng = &infoEngine{resource: "bench.resource", registry: reg}
	s.rc = newRespCache(reg, 64, 64<<20, refreshBenchTTL, 0, clock.System)
	s.r = newRefresher(s.rc, s.eng, clock.System, 0.75, 2, time.Second)
	s.r.start()
	return s
}

// one serves a single request: hit from the response cache or the full
// miss path (collect + render + store), as the server's request path does.
func (s *refreshBench) one(ctx context.Context, i int) (hit bool, d time.Duration) {
	t0 := time.Now()
	if _, _, ok := s.rc.lookup(s.reqs[i]); ok {
		return true, time.Since(t0)
	}
	body, empty, _, err := s.eng.Answer(ctx, s.reqs[i])
	if err != nil {
		return false, time.Since(t0)
	}
	s.rc.store(s.reqs[i], body, empty)
	return false, time.Since(t0)
}

// warm fills every key once and runs Zipf traffic long enough for the
// hit counters to mark the hot keys and the scanner to start refreshing
// them — the steady state the measurement then samples.
func (s *refreshBench) warm(ctx context.Context, access []int) {
	for i := range s.reqs {
		s.one(ctx, i)
	}
	deadline := time.Now().Add(time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		s.one(ctx, access[i%len(access)])
	}
}

// refreshMetrics reduces a measured run: hot-decile miss ratio (keys
// ranked by access count), overall p99, and the hit-only p99.
func refreshMetrics(access []int, hits []bool, samples []time.Duration) (hotMiss, p99ns, hitP99ns float64) {
	accesses := make([]int, refreshBenchKeys)
	misses := make([]int, refreshBenchKeys)
	var hitSamples []time.Duration
	for i, k := range access {
		accesses[k]++
		if !hits[i] {
			misses[k]++
		} else {
			hitSamples = append(hitSamples, samples[i])
		}
	}
	rank := make([]int, refreshBenchKeys)
	for i := range rank {
		rank[i] = i
	}
	sort.Slice(rank, func(a, b int) bool { return accesses[rank[a]] > accesses[rank[b]] })
	hotAccess, hotMisses := 0, 0
	for _, k := range rank[:refreshBenchKeys/10] {
		hotAccess += accesses[k]
		hotMisses += misses[k]
	}
	if hotAccess > 0 {
		hotMiss = float64(hotMisses) / float64(hotAccess)
	}
	p99 := func(ds []time.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return float64(sorted[len(sorted)*99/100].Nanoseconds())
	}
	return hotMiss, p99(samples), p99(hitSamples)
}

// BenchmarkRefreshAheadZipfSteadyState measures the request path with the
// refresher armed: Zipf-drawn keyed queries against short-TTL providers,
// hot keys kept warm by background refills.
func BenchmarkRefreshAheadZipfSteadyState(b *testing.B) {
	s := newRefreshBench()
	defer s.r.close()
	ctx := context.Background()
	access := benchZipfAccess(refreshBenchKeys, 1<<16, refreshBenchZipf)
	s.warm(ctx, access)

	run := make([]int, b.N)
	hits := make([]bool, b.N)
	samples := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run[i] = access[i%len(access)]
		hits[i], samples[i] = s.one(ctx, run[i])
	}
	b.StopTimer()
	if b.N < 1000 {
		return // metrics are noise below a sane sample count
	}
	hotMiss, p99, hitP99 := refreshMetrics(run, hits, samples)
	b.ReportMetric(hotMiss, "hot_miss_ratio")
	b.ReportMetric(p99, "p99_ns")
	b.ReportMetric(hitP99, "hit_p99_ns")
}

// TestWarmRestartReference is the nightly regression reference point for
// warm-restart persistence and refresh-ahead, driven by
// scripts/warmstart-regress.sh. Gated on INFOGRAM_WARMBENCH=1 because it
// sleeps through provider delays for seconds and the numbers only mean
// something on a quiet machine. The result is one JSON object written to
// INFOGRAM_WARMBENCH_OUT (or the test log when unset):
// {"restart_cold_ns":...,"restart_warm_ns":...,"restart_speedup":...,
// "hot_miss_ratio":...,"p99_ns":...,"hit_p99_ns":...}.
func TestWarmRestartReference(t *testing.T) {
	if os.Getenv("INFOGRAM_WARMBENCH") != "1" {
		t.Skip("set INFOGRAM_WARMBENCH=1 to run the warm-restart reference point")
	}

	// Restart pair: median of a handful of runs each — the cold side is
	// dominated by the deliberate provider delay, the warm side by reading
	// and inserting the snapshot population.
	path := filepath.Join(t.TempDir(), "respcache.snap")
	reqs := warmBenchSnapshot(t, path)
	median := func(runs int, f func(i int) time.Duration) time.Duration {
		ds := make([]time.Duration, runs)
		for i := range ds {
			ds[i] = f(i)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[runs/2]
	}
	cold := median(9, func(i int) time.Duration { return coldFirstAnswer(t, reqs[i]) })
	warm := median(9, func(i int) time.Duration { return warmFirstHit(t, path, reqs[i]) })

	// Refresh-ahead steady state: a fixed sample count after the warm
	// phase, large enough that the hot-decile ratio and the p99 are stable.
	s := newRefreshBench()
	defer s.r.close()
	ctx := context.Background()
	access := benchZipfAccess(refreshBenchKeys, 1<<16, refreshBenchZipf)
	s.warm(ctx, access)
	const measured = 200_000
	run := make([]int, measured)
	hits := make([]bool, measured)
	samples := make([]time.Duration, measured)
	for i := 0; i < measured; i++ {
		run[i] = access[i%len(access)]
		hits[i], samples[i] = s.one(ctx, run[i])
	}
	hotMiss, p99, hitP99 := refreshMetrics(run, hits, samples)

	out, err := json.Marshal(struct {
		RestartColdNs  int64   `json:"restart_cold_ns"`
		RestartWarmNs  int64   `json:"restart_warm_ns"`
		RestartSpeedup float64 `json:"restart_speedup"`
		HotMissRatio   float64 `json:"hot_miss_ratio"`
		P99ns          float64 `json:"p99_ns"`
		HitP99ns       float64 `json:"hit_p99_ns"`
		Keys           int     `json:"keys"`
		Zipf           float64 `json:"zipf"`
	}{cold.Nanoseconds(), warm.Nanoseconds(),
		float64(cold.Nanoseconds()) / float64(warm.Nanoseconds()),
		hotMiss, p99, hitP99, refreshBenchKeys, refreshBenchZipf})
	if err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("INFOGRAM_WARMBENCH_OUT"); path != "" {
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("warm-restart reference point: %s", out)
}
