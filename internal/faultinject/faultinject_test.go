package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"infogram/internal/telemetry"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	v, err := Eval(context.Background(), WireRead)
	if err != nil || v.Drop || v.Truncate != 0 {
		t.Fatalf("disarmed Eval = %+v, %v; want zero verdict, nil", v, err)
	}
	if got := Armed(); got != nil {
		t.Fatalf("Armed() = %v; want nil", got)
	}
}

func TestArmErrorAndReset(t *testing.T) {
	Reset()
	defer Reset()
	before := Triggered(WireRead)
	Arm(WireRead, Action{Err: errors.New("boom")})
	_, err := Eval(context.Background(), WireRead)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v; want ErrInjected", err)
	}
	if got := Triggered(WireRead) - before; got != 1 {
		t.Fatalf("Triggered delta = %d; want 1", got)
	}
	// Other points are unaffected.
	if _, err := Eval(context.Background(), WireWrite); err != nil {
		t.Fatalf("unarmed point errored: %v", err)
	}
	Reset()
	if _, err := Eval(context.Background(), WireRead); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestBareArmReturnsInjectedError(t *testing.T) {
	Reset()
	defer Reset()
	Arm(GramSpawn, Action{})
	_, err := Eval(context.Background(), GramSpawn)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("bare arm err = %v; want ErrInjected", err)
	}
}

func TestCountLimitsActivations(t *testing.T) {
	Reset()
	defer Reset()
	Arm(GSIHandshake, Action{Err: errors.New("x"), Count: 2})
	for i := 0; i < 2; i++ {
		if _, err := Eval(context.Background(), GSIHandshake); err == nil {
			t.Fatalf("activation %d: want error", i+1)
		}
	}
	if _, err := Eval(context.Background(), GSIHandshake); err != nil {
		t.Fatalf("after count exhausted: %v; want nil", err)
	}
	// Still listed as armed, just inert.
	if got := Armed(); len(got) != 1 || got[0] != GSIHandshake {
		t.Fatalf("Armed() = %v", got)
	}
}

func TestCountUnderConcurrency(t *testing.T) {
	Reset()
	defer Reset()
	Arm(ProviderCollect, Action{Err: errors.New("x"), Count: 5})
	var wg sync.WaitGroup
	var fired, clean [16]bool
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Eval(context.Background(), ProviderCollect); err != nil {
				fired[i] = true
			} else {
				clean[i] = true
			}
		}(i)
	}
	wg.Wait()
	nf := 0
	for _, f := range fired {
		if f {
			nf++
		}
	}
	if nf != 5 {
		t.Fatalf("fired %d times under concurrency; want exactly 5", nf)
	}
}

func TestDelayProceeds(t *testing.T) {
	Reset()
	defer Reset()
	Arm(WireRead, Action{Delay: 30 * time.Millisecond})
	start := time.Now()
	v, err := Eval(context.Background(), WireRead)
	if err != nil || v.Drop {
		t.Fatalf("delay Eval = %+v, %v", v, err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("returned after %v; want >= 30ms", elapsed)
	}
}

func TestDelayCancelledByContext(t *testing.T) {
	Reset()
	defer Reset()
	Arm(WireRead, Action{Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Eval(ctx, WireRead)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want injected + deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v; context did not interrupt the delay", elapsed)
	}
}

func TestHangBlocksUntilCancel(t *testing.T) {
	Reset()
	defer Reset()
	Arm(ProviderCollect, Action{Hang: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Eval(ctx, ProviderCollect)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Eval returned %v before cancellation", err)
	case <-time.After(30 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want injected + canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Eval did not unblock after cancellation")
	}
}

func TestDropAndTruncateVerdicts(t *testing.T) {
	Reset()
	defer Reset()
	Arm(WireRead, Action{Drop: true})
	v, err := Eval(context.Background(), WireRead)
	if err != nil || !v.Drop {
		t.Fatalf("drop Eval = %+v, %v", v, err)
	}
	Arm(WireWrite, Action{Truncate: 7})
	v, err = Eval(context.Background(), WireWrite)
	if err != nil || v.Truncate != 7 {
		t.Fatalf("truncate Eval = %+v, %v", v, err)
	}
}

func TestDisarmSinglePoint(t *testing.T) {
	Reset()
	defer Reset()
	Arm(WireRead, Action{Drop: true})
	Arm(WireWrite, Action{Drop: true})
	Disarm(WireRead)
	if _, err := Eval(context.Background(), WireRead); err != nil {
		t.Fatalf("disarmed point: %v", err)
	}
	if v, _ := Eval(context.Background(), WireWrite); !v.Drop {
		t.Fatal("sibling point lost its arming")
	}
}

func TestTelemetryCounter(t *testing.T) {
	Reset()
	defer func() { Reset(); SetTelemetry(nil) }()
	tel := telemetry.NewRegistry()
	SetTelemetry(tel)
	Arm(SchedulerDispatch, Action{Err: errors.New("x")})
	_, _ = Eval(context.Background(), SchedulerDispatch)
	c := tel.Counter("infogram_faultpoints_triggered_total", "fault-injection failpoint activations",
		telemetry.Label{Key: "point", Value: string(SchedulerDispatch)})
	if c.Value() != 1 {
		t.Fatalf("telemetry counter = %d; want 1", c.Value())
	}
}

func TestSetTelemetryRetrofitsArmedPoints(t *testing.T) {
	Reset()
	defer func() { Reset(); SetTelemetry(nil) }()
	Arm(GramSpawn, Action{Err: errors.New("x"), Count: 3})
	_, _ = Eval(context.Background(), GramSpawn) // consumes one before telemetry
	tel := telemetry.NewRegistry()
	SetTelemetry(tel)
	_, _ = Eval(context.Background(), GramSpawn)
	c := tel.Counter("infogram_faultpoints_triggered_total", "fault-injection failpoint activations",
		telemetry.Label{Key: "point", Value: string(GramSpawn)})
	if c.Value() != 1 {
		t.Fatalf("post-retrofit counter = %d; want 1", c.Value())
	}
	// The remaining count carried over: one consumed before, one after,
	// so a third activation still fires and a fourth does not.
	if _, err := Eval(context.Background(), GramSpawn); err == nil {
		t.Fatal("third activation should fire")
	}
	if _, err := Eval(context.Background(), GramSpawn); err != nil {
		t.Fatalf("fourth activation fired: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, arms map[Point]Action)
	}{
		{spec: "wire.read=error", check: func(t *testing.T, a map[Point]Action) {
			if a[WireRead].Err == nil {
				t.Error("want Err set")
			}
		}},
		{spec: "wire.read=error(no route)*2", check: func(t *testing.T, a map[Point]Action) {
			act := a[WireRead]
			if act.Err == nil || act.Err.Error() != "no route" || act.Count != 2 {
				t.Errorf("got %+v", act)
			}
		}},
		{spec: "provider.collect=delay(250ms)", check: func(t *testing.T, a map[Point]Action) {
			if a[ProviderCollect].Delay != 250*time.Millisecond {
				t.Errorf("delay = %v", a[ProviderCollect].Delay)
			}
		}},
		{spec: "gsi.handshake=hang; wire.write=truncate(4)", check: func(t *testing.T, a map[Point]Action) {
			if !a[GSIHandshake].Hang || a[WireWrite].Truncate != 4 {
				t.Errorf("got %+v", a)
			}
		}},
		{spec: "wire.write=drop, scheduler.dispatch=error*1", check: func(t *testing.T, a map[Point]Action) {
			if !a[WireWrite].Drop || a[SchedulerDispatch].Count != 1 {
				t.Errorf("got %+v", a)
			}
		}},
		{spec: "", wantErr: true},
		{spec: "nonsense", wantErr: true},
		{spec: "bogus.point=error", wantErr: true},
		{spec: "wire.read=explode", wantErr: true},
		{spec: "wire.read=delay(banana)", wantErr: true},
		{spec: "wire.read=truncate(-1)", wantErr: true},
		{spec: "wire.read=error*0", wantErr: true},
		{spec: "wire.read=error(unterminated", wantErr: true},
	}
	for _, tc := range cases {
		arms, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", tc.spec, arms)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		tc.check(t, arms)
	}
}

func TestArmSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := ArmSpec("gram.spawn=error(spawn refused)*1"); err != nil {
		t.Fatal(err)
	}
	_, err := Eval(context.Background(), GramSpawn)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Eval(context.Background(), GramSpawn); err != nil {
		t.Fatalf("count not honoured: %v", err)
	}
}

func BenchmarkEvalDisarmed(b *testing.B) {
	Reset()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(ctx, WireRead); err != nil {
			b.Fatal(err)
		}
	}
}
