// Package faultinject provides named failpoints for deterministic fault
// injection across the InfoGram stack. The MDS performance studies the
// ROADMAP cites (Zhang & Schopf; Zhang, Freschl & Schopf) show information
// services failing ungracefully under load — hung providers, dropped
// queries, latency blow-ups. This package lets tests and operators provoke
// exactly those failures on demand so the degradation paths (deadlines,
// retries, partial replies) can be exercised instead of hoped for.
//
// A failpoint is a named hook compiled into the request path:
//
//	wire.read           frame reads (client and server side)
//	wire.write          frame writes (client and server side)
//	wire.mux            mux'd response delivery in the client demultiplexer
//	gsi.handshake       the GSI mutual-authentication handshake
//	provider.collect    per-keyword information collection
//	gram.spawn          job-manager registration and launch
//	scheduler.dispatch  batch-queue task dispatch
//	journal.append      durable job-state journal record appends
//	journal.fsync       journal fsync-to-stable-storage calls
//
// Disarmed failpoints cost one atomic pointer load and a nil check — no
// map lookup, no lock, no allocation — so the hooks stay compiled into
// production builds. Arming is per-process: tests call Arm/Reset, servers
// arm from a flag or the INFOGRAM_FAULTPOINTS environment variable using
// the spec syntax of ArmSpec.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/telemetry"
)

// Point names one failpoint.
type Point string

// The failpoints compiled into the stack.
const (
	// WireRead fires at the top of every frame read.
	WireRead Point = "wire.read"
	// WireWrite fires at the top of every frame write.
	WireWrite Point = "wire.write"
	// WireMux fires per mux'd response inside the client demultiplexer,
	// so one in-flight call can be poisoned (error, drop, truncate,
	// delay) while its siblings on the same connection complete.
	WireMux Point = "wire.mux"
	// GSIHandshake fires at the start of both handshake sides.
	GSIHandshake Point = "gsi.handshake"
	// ProviderCollect fires once per keyword collected for an info query.
	ProviderCollect Point = "provider.collect"
	// GramSpawn fires before a job manager is registered and launched.
	GramSpawn Point = "gram.spawn"
	// SchedulerDispatch fires when the batch queue dispatches a task.
	SchedulerDispatch Point = "scheduler.dispatch"
	// JournalAppend fires before every job-state journal record append, so
	// a submission can be refused at the durability layer.
	JournalAppend Point = "journal.append"
	// JournalFsync fires before every journal fsync, modelling a disk that
	// stalls or errors exactly at the sync barrier.
	JournalFsync Point = "journal.fsync"
)

// Points returns every known failpoint.
func Points() []Point {
	return []Point{WireRead, WireWrite, WireMux, GSIHandshake, ProviderCollect, GramSpawn, SchedulerDispatch, JournalAppend, JournalFsync}
}

func knownPoint(p Point) bool {
	for _, k := range Points() {
		if k == p {
			return true
		}
	}
	return false
}

// ErrInjected is the base of every error produced by an armed failpoint;
// match with errors.Is to distinguish injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Action describes what an armed failpoint does when evaluated.
type Action struct {
	// Err, when set, is returned to the caller (wrapped so that
	// errors.Is(err, ErrInjected) holds). An Action with no other field
	// set and a nil Err still returns a generic injected error.
	Err error
	// Delay injects latency before the call proceeds normally.
	Delay time.Duration
	// Hang blocks until the caller's context is cancelled, then returns
	// the context error. Callers without a cancellable context block
	// forever, which is itself a reproduction of the hung-provider
	// failure mode.
	Hang bool
	// Drop discards the frame: reads skip one incoming frame, writes
	// report success without sending. Only the wire points honour it.
	Drop bool
	// Truncate caps the payload at this many bytes (0 = disabled). On
	// writes the frame header still advertises the full length, so the
	// peer sees a sender that died mid-frame. Only the wire points
	// honour it.
	Truncate int
	// Count limits how many evaluations trigger the action; 0 means
	// every evaluation. The failpoint stays armed but inert afterwards.
	Count int64
}

// Verdict carries the wire-specific outcomes of an evaluation; the zero
// value means "proceed normally".
type Verdict struct {
	Drop     bool
	Truncate int
}

// armed is one active failpoint.
type armed struct {
	action    Action
	remaining atomic.Int64 // consumed toward action.Count; <0 disables
	counter   *telemetry.Counter
}

type table map[Point]*armed

var (
	active atomic.Pointer[table]

	mu   sync.Mutex // serializes Arm/Disarm/Reset/SetTelemetry
	tel  *telemetry.Registry
	hits sync.Map // Point -> *atomic.Int64, survives re-arming
)

// SetTelemetry attaches a registry: every trigger increments
// infogram_faultpoints_triggered_total{point=...}. Call before arming.
func SetTelemetry(reg *telemetry.Registry) {
	mu.Lock()
	defer mu.Unlock()
	tel = reg
	// Retrofit counters onto already-armed points.
	cur := active.Load()
	if cur == nil {
		return
	}
	next := make(table, len(*cur))
	for p, a := range *cur {
		na := &armed{action: a.action, counter: triggerCounter(p)}
		na.remaining.Store(a.remaining.Load())
		next[p] = na
	}
	active.Store(&next)
}

// triggerCounter resolves the telemetry counter for p. Caller holds mu.
func triggerCounter(p Point) *telemetry.Counter {
	if tel == nil {
		return nil
	}
	return tel.Counter("infogram_faultpoints_triggered_total",
		"fault-injection failpoint activations",
		telemetry.Label{Key: "point", Value: string(p)})
}

// Arm activates the failpoint with the given action, replacing any
// previous arming of the same point.
func Arm(p Point, a Action) {
	mu.Lock()
	defer mu.Unlock()
	cur := active.Load()
	next := make(table)
	if cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	na := &armed{action: a, counter: triggerCounter(p)}
	if a.Count > 0 {
		na.remaining.Store(a.Count)
	}
	next[p] = na
	active.Store(&next)
}

// Disarm deactivates one failpoint.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	cur := active.Load()
	if cur == nil {
		return
	}
	if _, ok := (*cur)[p]; !ok {
		return
	}
	if len(*cur) == 1 {
		active.Store(nil)
		return
	}
	next := make(table, len(*cur)-1)
	for k, v := range *cur {
		if k != p {
			next[k] = v
		}
	}
	active.Store(&next)
}

// Reset disarms every failpoint. Tests defer this after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Store(nil)
}

// Armed lists the currently armed points, sorted.
func Armed() []Point {
	cur := active.Load()
	if cur == nil {
		return nil
	}
	out := make([]Point, 0, len(*cur))
	for p := range *cur {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Triggered reports how many times p has fired since process start
// (arming and disarming do not reset it).
func Triggered(p Point) int64 {
	if v, ok := hits.Load(p); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

func recordHit(p Point, a *armed) {
	v, ok := hits.Load(p)
	if !ok {
		v, _ = hits.LoadOrStore(p, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
	a.counter.Inc()
}

// Eval evaluates the failpoint p. Disarmed points return immediately with
// a zero Verdict and nil error; armed points inject their action. The
// context bounds Delay and Hang actions.
func Eval(ctx context.Context, p Point) (Verdict, error) {
	t := active.Load()
	if t == nil {
		return Verdict{}, nil
	}
	a, ok := (*t)[p]
	if !ok {
		return Verdict{}, nil
	}
	if a.action.Count > 0 && a.remaining.Add(-1) < 0 {
		return Verdict{}, nil
	}
	recordHit(p, a)
	if a.action.Delay > 0 {
		t := time.NewTimer(a.action.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return Verdict{}, fmt.Errorf("%w at %s: %w", ErrInjected, p, ctx.Err())
		}
	}
	if a.action.Hang {
		<-ctx.Done()
		return Verdict{}, fmt.Errorf("%w at %s: hang: %w", ErrInjected, p, ctx.Err())
	}
	if a.action.Err != nil {
		return Verdict{}, fmt.Errorf("%w at %s: %w", ErrInjected, p, a.action.Err)
	}
	if a.action.Drop || a.action.Truncate > 0 {
		return Verdict{Drop: a.action.Drop, Truncate: a.action.Truncate}, nil
	}
	if a.action.Delay > 0 {
		return Verdict{}, nil // delay-only: proceed after the pause
	}
	// Bare arm (no action fields): generic injected error.
	return Verdict{}, fmt.Errorf("%w at %s", ErrInjected, p)
}

// ArmSpec arms failpoints from a textual spec, the syntax of the
// infogram-server -faultpoints flag and the INFOGRAM_FAULTPOINTS
// environment variable:
//
//	point=action[*count][,point=action...]
//
// with actions
//
//	error            return an injected error
//	error(msg)       return an injected error carrying msg
//	delay(duration)  sleep, then proceed (e.g. delay(250ms))
//	hang             block until the caller's deadline cancels
//	drop             drop the frame (wire points only)
//	truncate(n)      truncate the payload to n bytes (wire points only)
//
// and an optional *N suffix limiting the action to the first N
// evaluations, e.g. "wire.read=error*2,provider.collect=delay(1s)".
func ArmSpec(spec string) error {
	arms, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	for p, a := range arms {
		Arm(p, a)
	}
	return nil
}

// ParseSpec parses the ArmSpec syntax without arming anything.
func ParseSpec(spec string) (map[Point]Action, error) {
	out := make(map[Point]Action)
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, actionStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want point=action", part)
		}
		p := Point(strings.TrimSpace(name))
		if !knownPoint(p) {
			return nil, fmt.Errorf("faultinject: unknown failpoint %q", name)
		}
		a, err := parseAction(strings.TrimSpace(actionStr))
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: %w", p, err)
		}
		out[p] = a
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return out, nil
}

func parseAction(s string) (Action, error) {
	var a Action
	if base, count, ok := strings.Cut(s, "*"); ok {
		n, err := strconv.ParseInt(strings.TrimSpace(count), 10, 64)
		if err != nil || n <= 0 {
			return a, fmt.Errorf("bad count %q", count)
		}
		a.Count = n
		s = strings.TrimSpace(base)
	}
	verb, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return a, fmt.Errorf("unterminated argument in %q", s)
		}
		verb, arg = s[:i], s[i+1:len(s)-1]
	}
	switch verb {
	case "error":
		if arg != "" {
			a.Err = errors.New(arg)
		} else {
			a.Err = errors.New("armed error")
		}
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return a, fmt.Errorf("bad delay %q", arg)
		}
		a.Delay = d
	case "hang":
		a.Hang = true
	case "drop":
		a.Drop = true
	case "truncate":
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return a, fmt.Errorf("bad truncate length %q", arg)
		}
		a.Truncate = n
	default:
		return a, fmt.Errorf("unknown action %q (want error, delay, hang, drop, or truncate)", verb)
	}
	return a, nil
}
