package gsi

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"time"

	"infogram/internal/faultinject"
	"infogram/internal/wire"
)

// The mutual-authentication handshake runs before any protocol traffic on
// every authenticated connection (GRAM gatekeeper, MDS GRIS, InfoGram). It
// is a three-message challenge/response:
//
//	client → server  AUTH      {clientChain, clientNonce}
//	server → client  AUTH-OK   {serverChain, serverNonce, sig(clientNonce)}
//	client → server  AUTH-FIN  {sig(serverNonce)}
//
// Each side proves possession of its leaf private key by signing the
// peer's nonce; each side validates the peer chain against its trust
// store. The outcome on both sides is the peer's authenticated identity
// subject.

// Handshake frame verbs.
const (
	verbAuth    = "AUTH"
	verbAuthOK  = "AUTH-OK"
	verbAuthFin = "AUTH-FIN"
	verbAuthErr = "AUTH-ERR"
)

const nonceLen = 32

type authMsg struct {
	Chain Chain  `json:"chain"`
	Nonce []byte `json:"nonce"`
}

type authOKMsg struct {
	Chain Chain  `json:"chain"`
	Nonce []byte `json:"nonce"`
	Sig   []byte `json:"sig"` // over the client nonce
}

type authFinMsg struct {
	Sig []byte `json:"sig"` // over the server nonce
}

// Peer describes the authenticated remote end of a connection.
type Peer struct {
	// Subject is the leaf subject (possibly a proxy DN).
	Subject string
	// Identity is the subject with proxy components stripped; gridmap and
	// authorization decisions use this.
	Identity string
}

func newNonce() ([]byte, error) {
	n := make([]byte, nonceLen)
	if _, err := rand.Read(n); err != nil {
		return nil, fmt.Errorf("gsi: nonce: %w", err)
	}
	return n, nil
}

// ClientHandshake authenticates conn from the client side using cred,
// verifying the server against trust. It returns the server's identity.
func ClientHandshake(conn *wire.Conn, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	return ClientHandshakeContext(context.Background(), conn, cred, trust, now)
}

// ClientHandshakeContext is ClientHandshake with the handshake's frame
// exchange bounded by the context's deadline and cancellation.
func ClientHandshakeContext(ctx context.Context, conn *wire.Conn, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	if _, err := faultinject.Eval(ctx, faultinject.GSIHandshake); err != nil {
		return nil, fmt.Errorf("gsi: handshake: %w", err)
	}
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	req, err := json.Marshal(authMsg{Chain: cred.Chain, Nonce: nonce})
	if err != nil {
		return nil, fmt.Errorf("gsi: encode auth: %w", err)
	}
	resp, err := conn.CallContext(ctx, wire.Frame{Verb: verbAuth, Payload: req})
	if err != nil {
		return nil, fmt.Errorf("gsi: handshake: %w", err)
	}
	switch resp.Verb {
	case verbAuthOK:
	case verbAuthErr:
		return nil, fmt.Errorf("gsi: server rejected authentication: %s", resp.Payload)
	default:
		return nil, fmt.Errorf("gsi: unexpected handshake frame %s", resp.Verb)
	}
	var ok authOKMsg
	if err := json.Unmarshal(resp.Payload, &ok); err != nil {
		return nil, fmt.Errorf("gsi: decode auth-ok: %w", err)
	}
	if err := trust.VerifyChain(ok.Chain, now); err != nil {
		return nil, fmt.Errorf("gsi: server chain: %w", err)
	}
	leaf, err := ok.Chain.Leaf()
	if err != nil {
		return nil, err
	}
	if !ed25519.Verify(leaf.PublicKey, nonce, ok.Sig) {
		return nil, fmt.Errorf("gsi: server failed proof of possession")
	}
	fin, err := json.Marshal(authFinMsg{Sig: ed25519.Sign(cred.Key, ok.Nonce)})
	if err != nil {
		return nil, fmt.Errorf("gsi: encode auth-fin: %w", err)
	}
	if err := conn.WriteContext(ctx, wire.Frame{Verb: verbAuthFin, Payload: fin}); err != nil {
		return nil, fmt.Errorf("gsi: send auth-fin: %w", err)
	}
	return &Peer{Subject: leaf.Subject, Identity: IdentitySubject(leaf.Subject)}, nil
}

// ServerHandshake authenticates conn from the server side. The first frame
// must already have been read by the caller if desired; here we read it
// ourselves. On failure an AUTH-ERR frame is sent before returning.
func ServerHandshake(conn *wire.Conn, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	return ServerHandshakeContext(context.Background(), conn, cred, trust, now)
}

// ServerHandshakeContext is ServerHandshake with the handshake's frame
// exchange bounded by the context's deadline and cancellation.
func ServerHandshakeContext(ctx context.Context, conn *wire.Conn, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	if _, err := faultinject.Eval(ctx, faultinject.GSIHandshake); err != nil {
		return nil, fmt.Errorf("gsi: handshake: %w", err)
	}
	first, err := conn.ReadContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("gsi: read auth: %w", err)
	}
	return serverHandshakeFrame(ctx, conn, first, cred, trust, now)
}

// ServerHandshakeFrame completes the server side of the handshake when the
// initial frame has already been read from conn.
func ServerHandshakeFrame(conn *wire.Conn, first wire.Frame, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	return serverHandshakeFrame(context.Background(), conn, first, cred, trust, now)
}

func serverHandshakeFrame(ctx context.Context, conn *wire.Conn, first wire.Frame, cred *Credential, trust *TrustStore, now time.Time) (*Peer, error) {
	fail := func(format string, args ...any) (*Peer, error) {
		msg := fmt.Sprintf(format, args...)
		_ = conn.WriteString(verbAuthErr, msg)
		return nil, fmt.Errorf("gsi: %s", msg)
	}
	// failErr keeps cause in the returned error chain (errors.Is still
	// works, e.g. for ErrExpired) while sending the same flat message to
	// the peer.
	failErr := func(cause error, context string) (*Peer, error) {
		_ = conn.WriteString(verbAuthErr, fmt.Sprintf("%s: %v", context, cause))
		return nil, fmt.Errorf("gsi: %s: %w", context, cause)
	}
	if first.Verb != verbAuth {
		return fail("expected AUTH, got %s", first.Verb)
	}
	var req authMsg
	if err := json.Unmarshal(first.Payload, &req); err != nil {
		return fail("malformed AUTH payload: %v", err)
	}
	if len(req.Nonce) != nonceLen {
		return fail("bad nonce length %d", len(req.Nonce))
	}
	if err := trust.VerifyChain(req.Chain, now); err != nil {
		return failErr(err, "client chain rejected")
	}
	leaf, err := req.Chain.Leaf()
	if err != nil {
		return fail("empty chain")
	}
	nonce, err := newNonce()
	if err != nil {
		return nil, err
	}
	okPayload, err := json.Marshal(authOKMsg{
		Chain: cred.Chain,
		Nonce: nonce,
		Sig:   ed25519.Sign(cred.Key, req.Nonce),
	})
	if err != nil {
		return nil, fmt.Errorf("gsi: encode auth-ok: %w", err)
	}
	if err := conn.WriteContext(ctx, wire.Frame{Verb: verbAuthOK, Payload: okPayload}); err != nil {
		return nil, fmt.Errorf("gsi: send auth-ok: %w", err)
	}
	finFrame, err := conn.ReadContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("gsi: read auth-fin: %w", err)
	}
	if finFrame.Verb != verbAuthFin {
		return fail("expected AUTH-FIN, got %s", finFrame.Verb)
	}
	var fin authFinMsg
	if err := json.Unmarshal(finFrame.Payload, &fin); err != nil {
		return fail("malformed AUTH-FIN payload: %v", err)
	}
	if !ed25519.Verify(leaf.PublicKey, nonce, fin.Sig) {
		return fail("client failed proof of possession")
	}
	return &Peer{Subject: leaf.Subject, Identity: IdentitySubject(leaf.Subject)}, nil
}
