package gsi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Operation classifies what a client is asking the service to do, so that
// contracts can authorize job execution and information queries
// independently (the paper treats them alike on the wire but lets policy
// distinguish them).
type Operation string

// Operations subject to authorization.
const (
	OpJobSubmit Operation = "job"
	OpInfoQuery Operation = "info"
	OpAny       Operation = "*"
)

// Effect is the result a matching contract produces.
type Effect int

// Contract effects.
const (
	Deny Effect = iota
	Allow
)

// String renders the effect for logs.
func (e Effect) String() string {
	if e == Allow {
		return "allow"
	}
	return "deny"
}

// Window is a daily time window in a fixed location. The paper's example
// contract is "allow access to this resource from 3 to 4 pm to user X"
// (§5.3); a Window expresses the "3 to 4 pm" part. A zero Window matches
// all times. Windows may wrap midnight (From > To).
type Window struct {
	From time.Duration // offset from local midnight, e.g. 15h
	To   time.Duration // exclusive end offset, e.g. 16h
}

// AllDay is the zero window, matching any time of day.
var AllDay = Window{}

// Contains reports whether the time of day of t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	if w.From == 0 && w.To == 0 {
		return true
	}
	day := time.Duration(t.Hour())*time.Hour +
		time.Duration(t.Minute())*time.Minute +
		time.Duration(t.Second())*time.Second
	if w.From <= w.To {
		return day >= w.From && day < w.To
	}
	// Wraps midnight.
	return day >= w.From || day < w.To
}

// String renders the window.
func (w Window) String() string {
	if w.From == 0 && w.To == 0 {
		return "always"
	}
	return fmt.Sprintf("%s-%s", w.From, w.To)
}

// Contract is one authorization rule: it matches an identity (exact DN or
// "*"), an operation, and a time window, and yields an effect. Beyond the
// paper's who/what/when dimensions, an allow contract may also bound *how
// much*: a token-bucket rate quota and a priority class, the admission-
// control extension of the §5.3 grammar ("allow 3-4pm" becomes "allow
// rate=500").
type Contract struct {
	Subject   string // identity DN or "*"
	Operation Operation
	Window    Window
	Effect    Effect
	// Rate, when positive, bounds each matched identity to this many
	// admitted requests per second, enforced by a continuously refilled
	// token bucket. Zero leaves the contract unmetered. A "*" subject
	// meters each identity with its own bucket, not one shared bucket.
	Rate float64
	// Burst is the bucket capacity (the instantaneous excursion above
	// Rate a client may spend). Zero defaults to max(Rate, 1).
	Burst float64
	// Priority is the scheduling class admitted requests carry into the
	// server's overload gate: lower classes are shed earlier when the
	// backpressure queue fills.
	Priority Priority
	// Comment is free-form documentation carried into reflection output.
	Comment string
}

// matches reports whether the contract applies to the request.
func (c Contract) matches(identity string, op Operation, at time.Time) bool {
	if c.Subject != "*" && c.Subject != identity {
		return false
	}
	if c.Operation != OpAny && op != OpAny && c.Operation != op {
		return false
	}
	return c.Window.Contains(at)
}

// Policy is an ordered contract list with a default effect. First matching
// contract wins, mirroring firewall-style evaluation; with no contracts the
// default applies. The zero value denies everything.
type Policy struct {
	mu        sync.RWMutex
	contracts []Contract
	def       Effect

	// buckets holds per-(contract, identity) token-bucket state for
	// rate-carrying contracts, keyed by bucketKey. sync.Map keeps the
	// admission hot path off the policy's RWMutex write side.
	buckets sync.Map
}

// NewPolicy returns a policy with the given default effect.
func NewPolicy(def Effect) *Policy { return &Policy{def: def} }

// AllowAll is a convenience policy that admits every authenticated
// identity; useful where only authentication (not authorization) is under
// test.
func AllowAll() *Policy { return NewPolicy(Allow) }

// Add appends a contract.
func (p *Policy) Add(c Contract) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.contracts = append(p.contracts, c)
}

// Contracts returns a copy of the contract list.
func (p *Policy) Contracts() []Contract {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Contract, len(p.contracts))
	copy(out, p.contracts)
	return out
}

// Authorize decides whether identity may perform op at time at. The error
// describes the denial for audit logs; a nil error means allowed.
func (p *Policy) Authorize(identity string, op Operation, at time.Time) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, c := range p.contracts {
		if c.matches(identity, op, at) {
			if c.Effect == Allow {
				return nil
			}
			return &AuthzError{Identity: identity, Op: op, At: at, Rule: c.describe()}
		}
	}
	if p.def == Allow {
		return nil
	}
	return &AuthzError{Identity: identity, Op: op, At: at, Rule: "default deny"}
}

func (c Contract) describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s for %s during %s", c.Effect, c.Operation, c.Subject, c.Window)
	if c.Rate > 0 {
		fmt.Fprintf(&sb, " rate=%g burst=%g", c.Rate, c.bucketBurst())
	}
	if c.Priority != PriorityNormal {
		fmt.Fprintf(&sb, " priority=%s", c.Priority)
	}
	if c.Comment != "" {
		fmt.Fprintf(&sb, " (%s)", c.Comment)
	}
	return sb.String()
}

// AuthzError reports a denied authorization decision.
type AuthzError struct {
	Identity string
	Op       Operation
	At       time.Time
	Rule     string
}

// Error implements the error interface.
func (e *AuthzError) Error() string {
	return fmt.Sprintf("gsi: %q denied %s at %s by rule: %s",
		e.Identity, e.Op, e.At.Format("15:04:05"), e.Rule)
}
