package gsi

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// at builds a time on a fixed date at the given hour/minute.
func at(hour, minute int) time.Time {
	return time.Date(2002, 7, 24, hour, minute, 0, 0, time.UTC)
}

func TestPaperContract(t *testing.T) {
	// §5.3: "allow access to this resource from 3 to 4 pm to user X".
	p := NewPolicy(Deny)
	p.Add(Contract{
		Subject:   "/O=Grid/CN=userX",
		Operation: OpAny,
		Window:    Window{From: 15 * time.Hour, To: 16 * time.Hour},
		Effect:    Allow,
		Comment:   "afternoon experiment slot",
	})

	if err := p.Authorize("/O=Grid/CN=userX", OpJobSubmit, at(15, 30)); err != nil {
		t.Errorf("userX at 3:30pm denied: %v", err)
	}
	if err := p.Authorize("/O=Grid/CN=userX", OpJobSubmit, at(14, 59)); err == nil {
		t.Error("userX at 2:59pm allowed")
	}
	if err := p.Authorize("/O=Grid/CN=userX", OpJobSubmit, at(16, 0)); err == nil {
		t.Error("userX at 4:00pm allowed (window end is exclusive)")
	}
	if err := p.Authorize("/O=Grid/CN=userY", OpJobSubmit, at(15, 30)); err == nil {
		t.Error("userY allowed by userX's contract")
	}
}

func TestPerOperationContracts(t *testing.T) {
	p := NewPolicy(Deny)
	p.Add(Contract{Subject: "*", Operation: OpInfoQuery, Effect: Allow})
	p.Add(Contract{Subject: "/O=Grid/CN=operator", Operation: OpJobSubmit, Effect: Allow})

	if err := p.Authorize("/O=Grid/CN=anyone", OpInfoQuery, at(10, 0)); err != nil {
		t.Errorf("info query denied: %v", err)
	}
	if err := p.Authorize("/O=Grid/CN=anyone", OpJobSubmit, at(10, 0)); err == nil {
		t.Error("job submit allowed for non-operator")
	}
	if err := p.Authorize("/O=Grid/CN=operator", OpJobSubmit, at(10, 0)); err != nil {
		t.Errorf("operator job denied: %v", err)
	}
}

func TestFirstMatchWins(t *testing.T) {
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "/O=Grid/CN=banned", Operation: OpAny, Effect: Deny})
	p.Add(Contract{Subject: "*", Operation: OpAny, Effect: Allow})
	if err := p.Authorize("/O=Grid/CN=banned", OpInfoQuery, at(9, 0)); err == nil {
		t.Error("deny-first rule did not apply")
	}
}

func TestDefaultEffects(t *testing.T) {
	if err := AllowAll().Authorize("/O=Grid/CN=x", OpJobSubmit, at(1, 0)); err != nil {
		t.Errorf("AllowAll denied: %v", err)
	}
	deny := NewPolicy(Deny)
	err := deny.Authorize("/O=Grid/CN=x", OpJobSubmit, at(1, 0))
	var azErr *AuthzError
	if !errors.As(err, &azErr) {
		t.Fatalf("got %T %v, want *AuthzError", err, err)
	}
	if azErr.Rule != "default deny" {
		t.Errorf("Rule = %q", azErr.Rule)
	}
	var zero Policy
	if err := zero.Authorize("/O=Grid/CN=x", OpInfoQuery, at(1, 0)); err == nil {
		t.Error("zero-value policy should deny")
	}
}

func TestWindowWrapsMidnight(t *testing.T) {
	w := Window{From: 22 * time.Hour, To: 2 * time.Hour}
	if !w.Contains(at(23, 0)) {
		t.Error("23:00 not in 22:00-02:00")
	}
	if !w.Contains(at(1, 0)) {
		t.Error("01:00 not in 22:00-02:00")
	}
	if w.Contains(at(12, 0)) {
		t.Error("12:00 in 22:00-02:00")
	}
}

func TestAllDayWindow(t *testing.T) {
	prop := func(h, m uint8) bool {
		return AllDay.Contains(at(int(h%24), int(m%60)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if AllDay.String() != "always" {
		t.Errorf("String = %q", AllDay.String())
	}
}

// TestWindowComplement: a wrap-around window and its complement partition
// the day (except boundary instants).
func TestWindowComplement(t *testing.T) {
	w := Window{From: 9 * time.Hour, To: 17 * time.Hour}
	comp := Window{From: 17 * time.Hour, To: 9 * time.Hour}
	prop := func(h, m, s uint8) bool {
		tm := time.Date(2002, 7, 24, int(h%24), int(m%60), int(s%60), 0, time.UTC)
		return w.Contains(tm) != comp.Contains(tm)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestContractsSnapshot(t *testing.T) {
	p := NewPolicy(Deny)
	p.Add(Contract{Subject: "*", Operation: OpAny, Effect: Allow})
	cs := p.Contracts()
	if len(cs) != 1 {
		t.Fatalf("Contracts = %d", len(cs))
	}
	cs[0].Subject = "mutated"
	if p.Contracts()[0].Subject != "*" {
		t.Error("Contracts returned a shared slice")
	}
}

func TestAuthzErrorMessage(t *testing.T) {
	p := NewPolicy(Deny)
	p.Add(Contract{
		Subject:   "/O=Grid/CN=userX",
		Operation: OpJobSubmit,
		Window:    Window{From: 15 * time.Hour, To: 16 * time.Hour},
		Effect:    Deny,
		Comment:   "maintenance",
	})
	err := p.Authorize("/O=Grid/CN=userX", OpJobSubmit, at(15, 30))
	if err == nil {
		t.Fatal("expected denial")
	}
	msg := err.Error()
	for _, want := range []string{"userX", "job", "maintenance"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
