package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

var serialCounter atomic.Uint64

func newSerial() uint64 { return serialCounter.Add(1) }

// CA is a certificate authority: the trust anchor of a simulated grid. In
// the paper's production grids this is the Globus CA; here every test or
// deployment creates its own.
type CA struct {
	cert *Certificate
	key  ed25519.PrivateKey
}

// NewCA creates a self-signed CA with the given name, e.g.
// "/O=Grid/CN=Argonne CA", valid for the given lifetime from now.
func NewCA(name string, lifetime time.Duration, now time.Time) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CA key: %w", err)
	}
	cert := &Certificate{
		Serial:    newSerial(),
		Subject:   name,
		Issuer:    name,
		PublicKey: pub,
		NotBefore: now.Add(-clockSkew),
		NotAfter:  now.Add(lifetime),
		IsCA:      true,
	}
	if err := cert.sign(priv); err != nil {
		return nil, err
	}
	return &CA{cert: cert, key: priv}, nil
}

// Certificate returns the CA's self-signed certificate.
func (ca *CA) Certificate() *Certificate { return ca.cert }

// IssueIdentity issues an identity certificate for subject (a DN such as
// "/O=Grid/OU=ANL/CN=gregor"), valid for lifetime, with a default
// delegation budget.
func (ca *CA) IssueIdentity(subject string, lifetime time.Duration, now time.Time) (*Credential, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate identity key: %w", err)
	}
	cert := &Certificate{
		Serial:             newSerial(),
		Subject:            subject,
		Issuer:             ca.cert.Subject,
		PublicKey:          pub,
		NotBefore:          now.Add(-clockSkew),
		NotAfter:           now.Add(lifetime),
		MaxDelegationDepth: 8,
	}
	if err := cert.sign(ca.key); err != nil {
		return nil, err
	}
	return &Credential{Chain: Chain{cert}, Key: priv}, nil
}

// TrustStore holds the CA certificates a verifier trusts.
type TrustStore struct {
	mu    sync.RWMutex
	roots map[string]*Certificate // by subject
}

// NewTrustStore returns a store trusting the given roots.
func NewTrustStore(roots ...*Certificate) *TrustStore {
	ts := &TrustStore{roots: make(map[string]*Certificate)}
	for _, r := range roots {
		ts.AddRoot(r)
	}
	return ts
}

// AddRoot adds a trusted CA certificate.
func (ts *TrustStore) AddRoot(root *Certificate) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.roots[root.Subject] = root
}

// root returns the trusted root with the given subject.
func (ts *TrustStore) root(subject string) (*Certificate, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	r, ok := ts.roots[subject]
	return r, ok
}

// VerifyChain validates a leaf-first chain at time now: every link must be
// signed by its successor, validity windows must cover now, proxy subjects
// must extend their issuer's subject, delegation depths must decrease, and
// the final link must be signed by a trusted root.
func (ts *TrustStore) VerifyChain(ch Chain, now time.Time) error {
	if len(ch) == 0 {
		return fmt.Errorf("gsi: empty certificate chain")
	}
	for i, cert := range ch {
		if err := cert.validAt(now); err != nil {
			return err
		}
		if i == len(ch)-1 {
			// Last chain element: must be issued by a trusted root.
			root, ok := ts.root(cert.Issuer)
			if !ok {
				return fmt.Errorf("gsi: issuer %q is not a trusted CA", cert.Issuer)
			}
			if err := root.validAt(now); err != nil {
				return err
			}
			if err := cert.checkSignature(root.PublicKey); err != nil {
				return err
			}
			if cert.IsProxy {
				return fmt.Errorf("gsi: proxy certificate %q issued directly by CA", cert.Subject)
			}
			continue
		}
		issuer := ch[i+1]
		if cert.Issuer != issuer.Subject {
			return fmt.Errorf("gsi: chain broken: %q issued by %q, next element is %q",
				cert.Subject, cert.Issuer, issuer.Subject)
		}
		if err := cert.checkSignature(issuer.PublicKey); err != nil {
			return err
		}
		if !cert.IsProxy {
			return fmt.Errorf("gsi: non-proxy certificate %q below chain head", cert.Subject)
		}
		if cert.Subject != issuer.Subject+proxySuffix {
			return fmt.Errorf("gsi: proxy subject %q does not extend issuer %q", cert.Subject, issuer.Subject)
		}
		if cert.MaxDelegationDepth >= issuer.MaxDelegationDepth {
			return fmt.Errorf("gsi: proxy %q does not shrink delegation depth", cert.Subject)
		}
		if cert.NotAfter.After(issuer.NotAfter) {
			return fmt.Errorf("gsi: proxy %q outlives its issuer", cert.Subject)
		}
	}
	return nil
}
