package gsi

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"
)

// File persistence for certificates and credentials, the analog of the
// ~/.globus certificate files a Globus user holds. Formats are JSON; the
// private key file should be mode 0600 like a GSI user key.

// credentialFile is the on-disk form of a Credential.
type credentialFile struct {
	Chain Chain              `json:"chain"`
	Key   ed25519.PrivateKey `json:"key"`
}

// SaveCredential writes cred to path with owner-only permissions.
func SaveCredential(path string, cred *Credential) error {
	b, err := json.MarshalIndent(credentialFile{Chain: cred.Chain, Key: cred.Key}, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: encode credential: %w", err)
	}
	if err := os.WriteFile(path, b, 0o600); err != nil {
		return fmt.Errorf("gsi: write credential: %w", err)
	}
	return nil
}

// LoadCredential reads a credential written by SaveCredential.
func LoadCredential(path string) (*Credential, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read credential: %w", err)
	}
	var cf credentialFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return nil, fmt.Errorf("gsi: decode credential %s: %w", path, err)
	}
	if len(cf.Chain) == 0 || len(cf.Key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: credential %s is incomplete", path)
	}
	return &Credential{Chain: cf.Chain, Key: cf.Key}, nil
}

// SaveCertificate writes a single certificate (e.g. a CA root) to path.
func SaveCertificate(path string, cert *Certificate) error {
	b, err := json.MarshalIndent(cert, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: encode certificate: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("gsi: write certificate: %w", err)
	}
	return nil
}

// LoadCertificate reads a certificate written by SaveCertificate.
func LoadCertificate(path string) (*Certificate, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read certificate: %w", err)
	}
	var cert Certificate
	if err := json.Unmarshal(b, &cert); err != nil {
		return nil, fmt.Errorf("gsi: decode certificate %s: %w", path, err)
	}
	return &cert, nil
}
