package gsi

import (
	"strings"
	"testing"
	"time"
)

func TestAdmitUnmeteredAndNilPolicy(t *testing.T) {
	var nilPolicy *Policy
	if adm := nilPolicy.Admit("alice", time.Now(), 1); !adm.OK || adm.Limited {
		t.Fatalf("nil policy should admit unmetered, got %+v", adm)
	}
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "*", Operation: OpAny, Effect: Allow})
	if adm := p.Admit("alice", time.Now(), 1); !adm.OK || adm.Limited {
		t.Fatalf("rate-less contract should admit unmetered, got %+v", adm)
	}
}

func TestAdmitTokenBucket(t *testing.T) {
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "alice", Operation: OpAny, Effect: Allow, Rate: 10, Burst: 2})
	now := time.Now()

	// A fresh bucket holds its full burst.
	for i := 0; i < 2; i++ {
		if adm := p.Admit("alice", now, 1); !adm.OK || !adm.Limited {
			t.Fatalf("charge %d: want admitted+limited, got %+v", i, adm)
		}
	}
	adm := p.Admit("alice", now, 1)
	if adm.OK {
		t.Fatalf("empty bucket admitted: %+v", adm)
	}
	if adm.RetryAfter <= 0 || adm.RetryAfter > time.Second {
		t.Fatalf("retry-after out of range: %s", adm.RetryAfter)
	}
	if !strings.Contains(adm.Rule, "rate=10") {
		t.Fatalf("rule should describe the governing contract, got %q", adm.Rule)
	}

	// 100ms at 10/s refills one token.
	if adm := p.Admit("alice", now.Add(100*time.Millisecond), 1); !adm.OK {
		t.Fatalf("refilled bucket refused: %+v", adm)
	}

	// Refill never exceeds burst: after a long idle stretch only 2 charges fit.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if adm := p.Admit("alice", later, 1); !adm.OK {
			t.Fatalf("post-idle charge %d refused: %+v", i, adm)
		}
	}
	if adm := p.Admit("alice", later, 1); adm.OK {
		t.Fatalf("burst cap not enforced after idle: %+v", adm)
	}
}

func TestAdmitWildcardSubjectMetersPerIdentity(t *testing.T) {
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "*", Operation: OpAny, Effect: Allow, Rate: 1, Burst: 1})
	now := time.Now()
	if adm := p.Admit("alice", now, 1); !adm.OK {
		t.Fatalf("alice's first charge refused: %+v", adm)
	}
	if adm := p.Admit("alice", now, 1); adm.OK {
		t.Fatal("alice's bucket should be empty")
	}
	// bob has his own bucket, untouched by alice's spend.
	if adm := p.Admit("bob", now, 1); !adm.OK {
		t.Fatalf("bob's first charge refused: %+v", adm)
	}
}

func TestAdmitFirstMatchWinsAndWindows(t *testing.T) {
	p := NewPolicy(Allow)
	w, err := ParseWindow("3-4pm")
	if err != nil {
		t.Fatalf("ParseWindow: %v", err)
	}
	p.Add(Contract{Subject: "alice", Operation: OpAny, Effect: Allow, Window: w, Rate: 1, Burst: 1})
	p.Add(Contract{Subject: "alice", Operation: OpAny, Effect: Allow, Rate: 1000, Burst: 1000})

	inside := at(15, 30)
	outside := at(10, 0)
	// Inside the window the first (tight) contract governs.
	if adm := p.Admit("alice", inside, 1); !adm.OK {
		t.Fatalf("first inside-window charge refused: %+v", adm)
	}
	if adm := p.Admit("alice", inside, 1); adm.OK {
		t.Fatal("windowed bucket should be exhausted")
	}
	// Outside it the generous second contract matches instead.
	if adm := p.Admit("alice", outside, 1); !adm.OK {
		t.Fatalf("outside-window charge refused: %+v", adm)
	}
}

func TestAdmitDenyContractsPassThrough(t *testing.T) {
	// Admission is the *how much* gate; deny decisions belong to Authorize
	// so the refusal carries the audit rule instead of a quota hint.
	p := NewPolicy(Deny)
	p.Add(Contract{Subject: "alice", Operation: OpAny, Effect: Deny})
	if adm := p.Admit("alice", time.Now(), 1); !adm.OK || adm.Limited {
		t.Fatalf("deny contract must pass admission unmetered, got %+v", adm)
	}
	if err := p.Authorize("alice", OpInfoQuery, time.Now()); err == nil {
		t.Fatal("Authorize should still deny")
	}
}

func TestAdmitRetryAfterClamped(t *testing.T) {
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "alice", Operation: OpAny, Effect: Allow, Rate: 0.0001, Burst: 1})
	now := time.Now()
	p.Admit("alice", now, 1)
	adm := p.Admit("alice", now, 1)
	if adm.OK {
		t.Fatal("second charge should be refused")
	}
	if adm.RetryAfter != time.Minute {
		t.Fatalf("retry-after should clamp to 1m, got %s", adm.RetryAfter)
	}
}

func TestAdmitPriorityFromContract(t *testing.T) {
	p := NewPolicy(Allow)
	p.Add(Contract{Subject: "batch", Operation: OpAny, Effect: Allow, Rate: 100, Priority: PriorityLow})
	adm := p.Admit("batch", time.Now(), 1)
	if !adm.OK || adm.Priority != PriorityLow {
		t.Fatalf("want admitted at low priority, got %+v", adm)
	}
	if adm := p.Admit("nobody-special", time.Now(), 1); adm.Priority != PriorityNormal {
		t.Fatalf("unmatched identity should default to normal priority, got %+v", adm)
	}
}

func TestParsePriority(t *testing.T) {
	for in, want := range map[string]Priority{"low": PriorityLow, "normal": PriorityNormal, "HIGH": PriorityHigh} {
		got, err := ParsePriority(in)
		if err != nil || got != want {
			t.Fatalf("ParsePriority(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("unknown priority should error")
	}
}
