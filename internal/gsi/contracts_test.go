package gsi

import (
	"strings"
	"testing"
	"time"
)

func TestParseContractsGrammar(t *testing.T) {
	src := `
# comment-only line
default deny
allow info for "/O=Grid/CN=alice" during 3-4pm   # trailing comment
allow * for "/O=Grid/CN=batch" rate=500 burst=50 priority=low
deny job for *
ALLOW JOB for bob during 15:00-16:00 rate=2
`
	p, err := ParseContractsString(src)
	if err != nil {
		t.Fatalf("ParseContractsString: %v", err)
	}
	if p.Default() != Deny {
		t.Fatalf("default effect = %v, want deny", p.Default())
	}
	cs := p.Contracts()
	if len(cs) != 4 {
		t.Fatalf("got %d contracts, want 4: %+v", len(cs), cs)
	}
	if cs[0].Subject != "/O=Grid/CN=alice" || cs[0].Operation != OpInfoQuery {
		t.Fatalf("contract 0 wrong: %+v", cs[0])
	}
	if cs[0].Window.From != 15*time.Hour || cs[0].Window.To != 16*time.Hour {
		t.Fatalf("3-4pm parsed as %+v", cs[0].Window)
	}
	if cs[1].Rate != 500 || cs[1].Burst != 50 || cs[1].Priority != PriorityLow {
		t.Fatalf("contract 1 wrong: %+v", cs[1])
	}
	if cs[2].Effect != Deny || cs[2].Operation != OpJobSubmit || cs[2].Subject != "*" {
		t.Fatalf("contract 2 wrong: %+v", cs[2])
	}
	if cs[3].Rate != 2 || cs[3].Subject != "bob" {
		t.Fatalf("contract 3 wrong: %+v", cs[3])
	}
}

func TestParseContractsDefaultsToAllow(t *testing.T) {
	p, err := ParseContractsString("allow * rate=10\n")
	if err != nil {
		t.Fatalf("ParseContractsString: %v", err)
	}
	if p.Default() != Allow {
		t.Fatal("absent default line should leave the policy allowing")
	}
}

func TestParseContractsErrors(t *testing.T) {
	for _, src := range []string{
		"permit info for alice",      // unknown effect
		"allow info for",             // dangling for
		"allow during",               // dangling during
		"allow rate=-5",              // negative rate
		"allow rate=abc",             // non-numeric rate
		"allow burst=10",             // burst without rate
		"deny rate=5",                // deny cannot carry a rate
		"allow priority=urgent",      // unknown priority
		"allow info frobnicate",      // stray token
		"default",                    // default needs an effect
		"default maybe",              // unknown default effect
		"allow for \"unterminated",   // unterminated quote
		"allow during 4pm-4pm",       // empty window
		"allow during 25:00-26:00",   // bad hours
		"allow during 13pm-14pm",     // meridiem hour out of range
		"allow info during noonish",  // window without dash
		"allow during 3:99-4:00",     // bad minutes
		"default allow\ndefault yes", // second line bad
	} {
		if _, err := ParseContractsString(src); err == nil {
			t.Errorf("ParseContractsString(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("error for %q should carry the line number, got %v", src, err)
		}
	}
}

func TestParseWindowForms(t *testing.T) {
	cases := map[string]Window{
		"15:00-16:00": {From: 15 * time.Hour, To: 16 * time.Hour},
		"3pm-4pm":     {From: 15 * time.Hour, To: 16 * time.Hour},
		"3-4pm":       {From: 15 * time.Hour, To: 16 * time.Hour},
		"11am-2pm":    {From: 11 * time.Hour, To: 14 * time.Hour},
		"12am-1am":    {From: 0, To: 1 * time.Hour},
		"12pm-1pm":    {From: 12 * time.Hour, To: 13 * time.Hour},
		"23:00-1:00":  {From: 23 * time.Hour, To: 1 * time.Hour}, // wraps midnight
		"9:30-10:15":  {From: 9*time.Hour + 30*time.Minute, To: 10*time.Hour + 15*time.Minute},
	}
	for in, want := range cases {
		got, err := ParseWindow(in)
		if err != nil {
			t.Errorf("ParseWindow(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseWindow(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestContractsRoundTripThroughAuthorize(t *testing.T) {
	p, err := ParseContractsString(`
default deny
deny job for "/O=Grid/CN=eve"
allow * for "/O=Grid/CN=eve" rate=100
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	now := time.Now()
	if err := p.Authorize("/O=Grid/CN=eve", OpJobSubmit, now); err == nil {
		t.Fatal("eve's job submission should be denied")
	}
	if err := p.Authorize("/O=Grid/CN=eve", OpInfoQuery, now); err != nil {
		t.Fatalf("eve's info query should be allowed: %v", err)
	}
	if adm := p.Admit("/O=Grid/CN=eve", now, 1); !adm.OK {
		t.Fatalf("first matching contract (deny, rate-less) passes admission through: %+v", adm)
	}
}
