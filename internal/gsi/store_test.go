package gsi

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCredentialPersistence(t *testing.T) {
	dir := t.TempDir()
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := cred.Delegate(30*time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cred.json")
	if err := SaveCredential(path, proxy); err != nil {
		t.Fatal(err)
	}
	// Owner-only permissions, like a GSI user key.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("mode = %v, want 0600", info.Mode().Perm())
	}
	back, err := LoadCredential(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject() != proxy.Subject() || back.Identity() != "/O=Grid/CN=alice" {
		t.Errorf("subject = %q", back.Subject())
	}
	// The reloaded credential still verifies and can authenticate.
	trust := NewTrustStore(ca.Certificate())
	if err := trust.VerifyChain(back.Chain, t0); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestCertificatePersistence(t *testing.T) {
	dir := t.TempDir()
	ca := newTestCA(t)
	path := filepath.Join(dir, "ca.json")
	if err := SaveCertificate(path, ca.Certificate()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCertificate(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject != ca.Certificate().Subject || !back.IsCA {
		t.Errorf("back = %+v", back)
	}
	// The reloaded root anchors verification.
	cred, _ := ca.IssueIdentity("/O=Grid/CN=x", time.Hour, t0)
	trust := NewTrustStore(back)
	if err := trust.VerifyChain(cred.Chain, t0); err != nil {
		t.Errorf("VerifyChain with reloaded root: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCredential(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing credential loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(bad); err == nil {
		t.Error("malformed credential loaded")
	}
	if _, err := LoadCertificate(bad); err == nil {
		t.Error("malformed certificate loaded")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCredential(empty); err == nil {
		t.Error("incomplete credential loaded")
	}
}
