package gsi

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Gridmap maps global Grid identity subjects to local account names, the
// authorization step the gatekeeper performs after authentication ("a
// simple authorization based on mapping the authentication information
// into a local security context (e.g., a Unix login)", paper §2; gridmap
// support is called out in §7).
//
// File format, matching the Globus grid-mapfile:
//
//	"/O=Grid/OU=ANL/CN=gregor" gregor
//	# comment lines and blank lines are ignored
//
// The subject must be quoted when it contains spaces; the local name
// follows after whitespace.
type Gridmap struct {
	mu      sync.RWMutex
	entries map[string]string
}

// NewGridmap returns an empty gridmap.
func NewGridmap() *Gridmap {
	return &Gridmap{entries: make(map[string]string)}
}

// Add maps subject to the local account name.
func (g *Gridmap) Add(subject, local string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[subject] = local
}

// Map resolves the local account for a (possibly proxy) subject. Proxy
// components are stripped before lookup, as in GSI.
func (g *Gridmap) Map(subject string) (string, error) {
	id := IdentitySubject(subject)
	g.mu.RLock()
	local, ok := g.entries[id]
	g.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("gsi: no gridmap entry for %q", id)
	}
	return local, nil
}

// Len returns the number of entries.
func (g *Gridmap) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Subjects returns the mapped subjects in sorted order.
func (g *Gridmap) Subjects() []string {
	g.mu.RLock()
	out := make([]string, 0, len(g.entries))
	for s := range g.entries {
		out = append(out, s)
	}
	g.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ParseGridmap reads gridmap entries from r.
func ParseGridmap(r io.Reader) (*Gridmap, error) {
	g := NewGridmap()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		subject, local, err := parseGridmapLine(line)
		if err != nil {
			return nil, fmt.Errorf("gsi: gridmap line %d: %w", lineNo, err)
		}
		g.Add(subject, local)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gsi: read gridmap: %w", err)
	}
	return g, nil
}

// LoadGridmap reads a gridmap file from path.
func LoadGridmap(path string) (*Gridmap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: open gridmap: %w", err)
	}
	defer f.Close()
	return ParseGridmap(f)
}

func parseGridmapLine(line string) (subject, local string, err error) {
	if strings.HasPrefix(line, `"`) {
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted subject")
		}
		subject = line[1 : 1+end]
		rest := strings.TrimSpace(line[2+end:])
		if rest == "" {
			return "", "", fmt.Errorf("missing local account after subject %q", subject)
		}
		fields := strings.Fields(rest)
		return subject, fields[0], nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", fmt.Errorf("expected subject and local account")
	}
	return fields[0], fields[1], nil
}

// WriteTo renders the gridmap in file format.
func (g *Gridmap) WriteTo(w io.Writer) (int64, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	subjects := make([]string, 0, len(g.entries))
	for s := range g.entries {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	var total int64
	for _, s := range subjects {
		n, err := fmt.Fprintf(w, "%q %s\n", s, g.entries[s])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
