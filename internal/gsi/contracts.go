package gsi

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// This file gives the §5.3 authorization contracts a text form. The paper
// states contracts in prose — "allow access to this resource from 3 to 4
// pm to user X" — and this grammar writes the same sentence down, extended
// with the admission-control dimensions (rate, burst, priority):
//
//	# comments run to end of line
//	default allow
//	allow info for "/O=Grid/CN=alice" during 3-4pm
//	allow * for "/O=Grid/CN=batch" rate=500 burst=50 priority=low
//	deny job for *
//
// Each rule line is:
//
//	(allow|deny) [job|info|*] [for <subject>] [during <window>]
//	             [rate=<per-second>] [burst=<tokens>] [priority=<class>]
//
// The subject is an identity DN (quoted when it contains spaces) or "*";
// omitted clauses default to any operation, any subject, all day. Windows
// accept 24-hour ("15:00-16:00") and meridiem ("3pm-4pm", and the paper's
// "3-4pm" where the left side borrows the right side's am/pm) forms, and
// may wrap midnight. First matching contract wins; the "default" line sets
// what applies when none match (allow when the line is absent, matching
// the -quota flag's intent of adding limits rather than locking out).

// ParseContracts reads a contract policy from r.
func ParseContracts(r io.Reader) (*Policy, error) {
	p := NewPolicy(Allow)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := splitContractFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("gsi: contracts line %d: %w", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "default") {
			if len(fields) != 2 {
				return nil, fmt.Errorf("gsi: contracts line %d: default needs exactly one of allow|deny", lineNo)
			}
			switch strings.ToLower(fields[1]) {
			case "allow":
				p.SetDefault(Allow)
			case "deny":
				p.SetDefault(Deny)
			default:
				return nil, fmt.Errorf("gsi: contracts line %d: default must be allow or deny, got %q", lineNo, fields[1])
			}
			continue
		}
		c, err := parseContract(fields)
		if err != nil {
			return nil, fmt.Errorf("gsi: contracts line %d: %w", lineNo, err)
		}
		p.Add(c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gsi: read contracts: %w", err)
	}
	return p, nil
}

// ParseContractsString parses a contract policy from a string.
func ParseContractsString(s string) (*Policy, error) {
	return ParseContracts(strings.NewReader(s))
}

// LoadContracts reads a contract policy file from path.
func LoadContracts(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: open contracts: %w", err)
	}
	defer f.Close()
	return ParseContracts(f)
}

// parseContract assembles one rule from its fields.
func parseContract(fields []string) (Contract, error) {
	c := Contract{Subject: "*", Operation: OpAny}
	switch strings.ToLower(fields[0]) {
	case "allow":
		c.Effect = Allow
	case "deny":
		c.Effect = Deny
	default:
		return c, fmt.Errorf("rule must start with allow or deny, got %q", fields[0])
	}
	i := 1
	// Optional operation directly after the effect.
	if i < len(fields) {
		switch strings.ToLower(fields[i]) {
		case "job":
			c.Operation = OpJobSubmit
			i++
		case "info":
			c.Operation = OpInfoQuery
			i++
		case "*":
			c.Operation = OpAny
			i++
		}
	}
	for i < len(fields) {
		f := fields[i]
		switch {
		case strings.EqualFold(f, "for"):
			if i+1 >= len(fields) {
				return c, fmt.Errorf("'for' needs a subject")
			}
			c.Subject = fields[i+1]
			i += 2
		case strings.EqualFold(f, "during"):
			if i+1 >= len(fields) {
				return c, fmt.Errorf("'during' needs a time window")
			}
			w, err := ParseWindow(fields[i+1])
			if err != nil {
				return c, err
			}
			c.Window = w
			i += 2
		case strings.HasPrefix(strings.ToLower(f), "rate="):
			v, err := strconv.ParseFloat(f[len("rate="):], 64)
			if err != nil || v <= 0 {
				return c, fmt.Errorf("rate must be a positive per-second number, got %q", f)
			}
			c.Rate = v
			i++
		case strings.HasPrefix(strings.ToLower(f), "burst="):
			v, err := strconv.ParseFloat(f[len("burst="):], 64)
			if err != nil || v <= 0 {
				return c, fmt.Errorf("burst must be a positive token count, got %q", f)
			}
			c.Burst = v
			i++
		case strings.HasPrefix(strings.ToLower(f), "priority="):
			prio, err := ParsePriority(f[len("priority="):])
			if err != nil {
				return c, err
			}
			c.Priority = prio
			i++
		default:
			return c, fmt.Errorf("unexpected token %q", f)
		}
	}
	if c.Rate == 0 && c.Burst > 0 {
		return c, fmt.Errorf("burst without rate has no effect")
	}
	if c.Effect == Deny && c.Rate > 0 {
		return c, fmt.Errorf("deny contracts cannot carry a rate")
	}
	return c, nil
}

// splitContractFields splits a rule line into fields, honoring
// double-quoted subjects (which may contain spaces and '#') and dropping
// unquoted '#' comments.
func splitContractFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == '"':
			if inQuote {
				fields = append(fields, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case inQuote:
			cur.WriteByte(ch)
		case ch == '#':
			flush()
			return fields, nil
		case ch == ' ' || ch == '\t':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quoted subject")
	}
	flush()
	return fields, nil
}

// ParseWindow parses a daily time window: "15:00-16:00", "3pm-4pm", or the
// paper's shorthand "3-4pm" (the left side borrows the right side's
// meridiem). Windows may wrap midnight ("23:00-1:00").
func ParseWindow(s string) (Window, error) {
	from, to, ok := strings.Cut(s, "-")
	if !ok {
		return Window{}, fmt.Errorf("window %q must be <from>-<to>", s)
	}
	f, fMer, err := parseTimeOfDay(from)
	if err != nil {
		return Window{}, fmt.Errorf("window %q: %w", s, err)
	}
	t, tMer, err := parseTimeOfDay(to)
	if err != nil {
		return Window{}, fmt.Errorf("window %q: %w", s, err)
	}
	// "3-4pm": an unqualified left side inherits the right's meridiem.
	if fMer == "" && tMer != "" && f < 12*time.Hour {
		f = applyMeridiem(f, tMer)
	}
	w := Window{From: f, To: t}
	if f == t {
		return Window{}, fmt.Errorf("window %q is empty", s)
	}
	return w, nil
}

// parseTimeOfDay parses "H", "HH:MM", optionally suffixed am/pm, into an
// offset from midnight, reporting which meridiem (if any) was given.
func parseTimeOfDay(s string) (time.Duration, string, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mer := ""
	if strings.HasSuffix(s, "am") || strings.HasSuffix(s, "pm") {
		mer = s[len(s)-2:]
		s = s[:len(s)-2]
	}
	hs, ms, hasMin := strings.Cut(s, ":")
	h, err := strconv.Atoi(hs)
	if err != nil || h < 0 {
		return 0, "", fmt.Errorf("bad hour %q", s)
	}
	var m int
	if hasMin {
		m, err = strconv.Atoi(ms)
		if err != nil || m < 0 || m > 59 {
			return 0, "", fmt.Errorf("bad minutes %q", s)
		}
	}
	if mer != "" {
		if h < 1 || h > 12 {
			return 0, "", fmt.Errorf("meridiem hour %d out of 1-12", h)
		}
		if h == 12 {
			h = 0
		}
	} else if h > 23 {
		return 0, "", fmt.Errorf("hour %d out of 0-23", h)
	}
	d := time.Duration(h)*time.Hour + time.Duration(m)*time.Minute
	if mer != "" {
		d = applyMeridiem(d, mer)
	}
	return d, mer, nil
}

// applyMeridiem shifts a 12-hour offset into the 24-hour day.
func applyMeridiem(d time.Duration, mer string) time.Duration {
	if mer == "pm" {
		return d + 12*time.Hour
	}
	return d
}
