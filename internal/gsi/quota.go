package gsi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Priority is the scheduling class an admitted request carries into the
// server's overload gate. The §5.3 contract decides it; the admission
// layer uses it to shed low classes earlier when the backpressure queue
// fills, so a hot batch client cannot starve interactive ones.
type Priority int

// Priority classes, in shedding order (low is shed first).
const (
	PriorityLow Priority = iota - 1
	PriorityNormal
	PriorityHigh
)

// String renders the class for logs and contract text.
func (p Priority) String() string {
	switch {
	case p < PriorityNormal:
		return "low"
	case p > PriorityNormal:
		return "high"
	default:
		return "normal"
	}
}

// ParsePriority parses a contract priority= value.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "low":
		return PriorityLow, nil
	case "normal", "":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return PriorityNormal, fmt.Errorf("gsi: unknown priority %q (low, normal, or high)", s)
}

// bucketBurst resolves the contract's bucket capacity.
func (c Contract) bucketBurst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	if c.Rate > 1 {
		return c.Rate
	}
	return 1
}

// bucketKey identifies one identity's token bucket under one contract.
// Contracts are append-only (Policy.Add), so the index is stable.
type bucketKey struct {
	contract int
	identity string
}

// bucket is continuously-refilled token-bucket state. Tokens refill at the
// contract rate up to the burst capacity; a charge spends whole tokens.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Admission is the outcome of a quota charge.
type Admission struct {
	// OK reports whether the request may proceed. A request refused here
	// should be answered with a cheap pre-authorization rejection carrying
	// RetryAfter, before any parsing, provider, or scheduler work.
	OK bool
	// RetryAfter, on refusal, is how long until the bucket will hold the
	// charge again — the client's backoff hint.
	RetryAfter time.Duration
	// Priority is the matched contract's scheduling class (PriorityNormal
	// when no contract matched).
	Priority Priority
	// Limited reports that a rate-carrying contract governed the decision
	// (false means the identity is unmetered).
	Limited bool
	// Rule describes the governing contract for audit logs.
	Rule string
}

// maxRetryAfter bounds the backoff hint Admit reports, so a very low rate
// (or a hostile contract) cannot instruct clients to disappear for hours.
const maxRetryAfter = time.Minute

// Admit charges cost tokens against identity's bucket under the first
// contract that matches the identity and time of day. It is the *how
// much* gate that runs before a request is even parsed, which is why the
// operation is not consulted: at admission time a SUBMIT frame could be
// either a job or an info query, so quota contracts match on subject and
// window alone (write them with op "*"; an op-specific contract still
// meters every verb of the identities it matches first).
//
// Allow contracts without a rate admit unmetered. Deny contracts and the
// default effect also admit here — refusing them is Authorize's job, and
// keeping the two decisions separate preserves the audit trail (a denial
// carries the rule text, not a quota hint).
func (p *Policy) Admit(identity string, at time.Time, cost float64) Admission {
	if p == nil {
		return Admission{OK: true}
	}
	if cost <= 0 {
		cost = 1
	}
	p.mu.RLock()
	ci := -1
	var c Contract
	for i := range p.contracts {
		if p.contracts[i].matches(identity, OpAny, at) {
			ci, c = i, p.contracts[i]
			break
		}
	}
	p.mu.RUnlock()
	if ci < 0 || c.Effect != Allow || c.Rate <= 0 {
		var prio Priority
		if ci >= 0 {
			prio = c.Priority
		}
		return Admission{OK: true, Priority: prio}
	}
	b := p.bucketFor(bucketKey{contract: ci, identity: identity}, at, c.bucketBurst())
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := at.Sub(b.last); dt > 0 {
		b.tokens += c.Rate * dt.Seconds()
		if burst := c.bucketBurst(); b.tokens > burst {
			b.tokens = burst
		}
		b.last = at
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return Admission{OK: true, Priority: c.Priority, Limited: true, Rule: c.describe()}
	}
	wait := time.Duration((cost - b.tokens) / c.Rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	if wait > maxRetryAfter {
		wait = maxRetryAfter
	}
	return Admission{
		RetryAfter: wait,
		Priority:   c.Priority,
		Limited:    true,
		Rule:       c.describe(),
	}
}

// bucketFor returns (creating on first use) the bucket for key. A fresh
// bucket starts full, so a new identity gets its burst immediately.
func (p *Policy) bucketFor(key bucketKey, at time.Time, burst float64) *bucket {
	if v, ok := p.buckets.Load(key); ok {
		return v.(*bucket)
	}
	v, _ := p.buckets.LoadOrStore(key, &bucket{tokens: burst, last: at})
	return v.(*bucket)
}

// SetDefault replaces the policy's default effect (what applies when no
// contract matches).
func (p *Policy) SetDefault(def Effect) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.def = def
}

// Default returns the policy's default effect.
func (p *Policy) Default() Effect {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.def
}
