package gsi

import (
	"testing"
	"time"

	"infogram/internal/wire"
)

func BenchmarkIssueIdentity(b *testing.B) {
	ca, err := NewCA("/O=Grid/CN=Bench CA", time.Hour, t0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.IssueIdentity("/O=Grid/CN=user", time.Hour, t0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelegate(b *testing.B) {
	ca, _ := NewCA("/O=Grid/CN=Bench CA", time.Hour, t0)
	cred, err := ca.IssueIdentity("/O=Grid/CN=user", time.Hour, t0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cred.Delegate(30*time.Minute, t0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChain(b *testing.B) {
	ca, _ := NewCA("/O=Grid/CN=Bench CA", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())
	cred, _ := ca.IssueIdentity("/O=Grid/CN=user", time.Hour, t0)
	for _, depth := range []int{0, 2} {
		c := cred
		for i := 0; i < depth; i++ {
			next, err := c.Delegate(30*time.Minute, t0)
			if err != nil {
				b.Fatal(err)
			}
			c = next
		}
		b.Run(chainName(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := trust.VerifyChain(c.Chain, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func chainName(depth int) string {
	if depth == 0 {
		return "identity"
	}
	return "proxy-depth-2"
}

func BenchmarkHandshake(b *testing.B) {
	ca, _ := NewCA("/O=Grid/CN=Bench CA", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())
	client, _ := ca.IssueIdentity("/O=Grid/CN=client", time.Hour, t0)
	server, _ := ca.IssueIdentity("/O=Grid/CN=server", time.Hour, t0)

	srv := wire.NewServer(wire.HandlerFunc(func(c *wire.Conn) {
		_, _ = ServerHandshake(c, server, trust, t0)
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ClientHandshake(conn, client, trust, t0); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}
