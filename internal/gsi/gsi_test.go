package gsi

import (
	"strings"
	"testing"
	"time"

	"infogram/internal/wire"
)

var t0 = time.Date(2002, 7, 24, 12, 0, 0, 0, time.UTC) // HPDC-11 week

func newTestCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("/O=Grid/CN=Test CA", 24*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerifyIdentity(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if err := trust.VerifyChain(cred.Chain, t0); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
	if cred.Identity() != "/O=Grid/CN=alice" {
		t.Errorf("Identity = %q", cred.Identity())
	}
}

func TestUntrustedCARejected(t *testing.T) {
	ca := newTestCA(t)
	other, err := NewCA("/O=Grid/CN=Other CA", 24*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := other.IssueIdentity("/O=Grid/CN=mallory", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if err := trust.VerifyChain(cred.Chain, t0); err == nil {
		t.Error("chain from untrusted CA verified")
	}
}

func TestExpiredCertificateRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if err := trust.VerifyChain(cred.Chain, t0.Add(2*time.Hour)); err == nil {
		t.Error("expired certificate verified")
	}
	if err := trust.VerifyChain(cred.Chain, t0.Add(-time.Hour)); err == nil {
		t.Error("not-yet-valid certificate verified")
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	// Tamper with the subject after signing.
	tampered := *cred.Chain[0]
	tampered.Subject = "/O=Grid/CN=root"
	if err := trust.VerifyChain(Chain{&tampered}, t0); err == nil {
		t.Error("tampered certificate verified")
	}
}

func TestProxyDelegation(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", 10*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())

	proxy, err := cred.Delegate(time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := trust.VerifyChain(proxy.Chain, t0); err != nil {
		t.Errorf("proxy chain: %v", err)
	}
	if proxy.Subject() != "/O=Grid/CN=alice/CN=proxy" {
		t.Errorf("proxy subject = %q", proxy.Subject())
	}
	// Identity strips proxy components.
	if proxy.Identity() != "/O=Grid/CN=alice" {
		t.Errorf("proxy identity = %q", proxy.Identity())
	}
	// Second level.
	proxy2, err := proxy.Delegate(30*time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := trust.VerifyChain(proxy2.Chain, t0); err != nil {
		t.Errorf("proxy2 chain: %v", err)
	}
	if proxy2.Identity() != "/O=Grid/CN=alice" {
		t.Errorf("proxy2 identity = %q", proxy2.Identity())
	}
}

func TestProxyCannotOutliveParent(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := cred.Delegate(100*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Chain[0].NotAfter.After(cred.Chain[0].NotAfter) {
		t.Error("proxy outlives parent")
	}
}

func TestDelegationDepthExhaustion(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", 24*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	cur := cred
	for i := 0; i < 8; i++ {
		next, err := cur.Delegate(time.Hour, t0)
		if err != nil {
			t.Fatalf("delegation %d failed early: %v", i, err)
		}
		cur = next
	}
	if _, err := cur.Delegate(time.Hour, t0); err == nil {
		t.Error("delegation beyond depth budget succeeded")
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.IssueIdentity("/O=Grid/CN=alice", 10*time.Hour, t0)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := cred.Delegate(time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Certificate())
	if err := trust.VerifyChain(proxy.Chain, t0.Add(time.Hour)); err == nil {
		t.Error("expired proxy verified")
	}
}

func TestIdentitySubject(t *testing.T) {
	cases := map[string]string{
		"/O=Grid/CN=alice":                   "/O=Grid/CN=alice",
		"/O=Grid/CN=alice/CN=proxy":          "/O=Grid/CN=alice",
		"/O=Grid/CN=alice/CN=proxy/CN=proxy": "/O=Grid/CN=alice",
	}
	for in, want := range cases {
		if got := IdentitySubject(in); got != want {
			t.Errorf("IdentitySubject(%q) = %q, want %q", in, got, want)
		}
	}
}

// handshakePair runs a handshake over a real TCP connection and returns
// both observed peers.
func handshakePair(t *testing.T, clientCred, serverCred *Credential, trust *TrustStore) (clientSaw, serverSaw *Peer, clientErr, serverErr error) {
	t.Helper()
	srvResult := make(chan struct{})
	srv := wire.NewServer(wire.HandlerFunc(func(c *wire.Conn) {
		serverSaw, serverErr = ServerHandshake(c, serverCred, trust, t0)
		close(srvResult)
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	clientSaw, clientErr = ClientHandshake(conn, clientCred, trust, t0)
	<-srvResult
	return
}

func TestMutualHandshake(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	svc, _ := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())

	cSaw, sSaw, cErr, sErr := handshakePair(t, alice, svc, trust)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake errors: client %v, server %v", cErr, sErr)
	}
	if sSaw.Identity != "/O=Grid/CN=alice" {
		t.Errorf("server saw %q", sSaw.Identity)
	}
	if cSaw.Identity != "/O=Grid/CN=service" {
		t.Errorf("client saw %q", cSaw.Identity)
	}
}

func TestHandshakeWithProxyCredential(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	proxy, err := alice.Delegate(30*time.Minute, t0)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())

	_, sSaw, cErr, sErr := handshakePair(t, proxy, svc, trust)
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake errors: %v / %v", cErr, sErr)
	}
	if sSaw.Subject != "/O=Grid/CN=alice/CN=proxy" {
		t.Errorf("server saw subject %q", sSaw.Subject)
	}
	if sSaw.Identity != "/O=Grid/CN=alice" {
		t.Errorf("server mapped identity %q", sSaw.Identity)
	}
}

func TestHandshakeRejectsUntrustedClient(t *testing.T) {
	ca := newTestCA(t)
	evilCA, _ := NewCA("/O=Evil/CN=CA", time.Hour, t0)
	mallory, _ := evilCA.IssueIdentity("/O=Evil/CN=mallory", time.Hour, t0)
	svc, _ := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())

	_, _, cErr, sErr := handshakePair(t, mallory, svc, trust)
	if cErr == nil {
		t.Error("client handshake with untrusted cert succeeded")
	}
	if sErr == nil {
		t.Error("server accepted untrusted client")
	}
}

func TestHandshakeRejectsUntrustedServer(t *testing.T) {
	ca := newTestCA(t)
	evilCA, _ := NewCA("/O=Evil/CN=CA", time.Hour, t0)
	alice, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	evilSvc, _ := evilCA.IssueIdentity("/O=Evil/CN=service", time.Hour, t0)

	// Server trusts both CAs (accepts alice); client trusts only the good
	// CA and must reject the evil server.
	serverTrust := NewTrustStore(ca.Certificate(), evilCA.Certificate())
	srv := wire.NewServer(wire.HandlerFunc(func(c *wire.Conn) {
		_, _ = ServerHandshake(c, evilSvc, serverTrust, t0)
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	clientTrust := NewTrustStore(ca.Certificate())
	if _, err := ClientHandshake(conn, alice, clientTrust, t0); err == nil {
		t.Error("client accepted untrusted server")
	}
}

func TestHandshakeImpersonationFails(t *testing.T) {
	// A client presenting alice's chain without her key must fail the
	// proof of possession.
	ca := newTestCA(t)
	alice, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, t0)
	bob, _ := ca.IssueIdentity("/O=Grid/CN=bob", time.Hour, t0)
	svc, _ := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, t0)
	trust := NewTrustStore(ca.Certificate())

	forged := &Credential{Chain: alice.Chain, Key: bob.Key}
	_, _, cErr, sErr := handshakePair(t, forged, svc, trust)
	if cErr == nil && sErr == nil {
		t.Error("impersonation with wrong key succeeded")
	}
}

func TestGridmap(t *testing.T) {
	gm := NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")
	gm.Add("/O=Grid/OU=ANL/CN=gregor von laszewski", "gregor")

	if local, err := gm.Map("/O=Grid/CN=alice"); err != nil || local != "alice" {
		t.Errorf("Map = %q, %v", local, err)
	}
	// Proxy subjects map through their identity.
	if local, err := gm.Map("/O=Grid/CN=alice/CN=proxy/CN=proxy"); err != nil || local != "alice" {
		t.Errorf("proxy Map = %q, %v", local, err)
	}
	if _, err := gm.Map("/O=Grid/CN=stranger"); err == nil {
		t.Error("unmapped subject succeeded")
	}
	if gm.Len() != 2 {
		t.Errorf("Len = %d", gm.Len())
	}
}

func TestGridmapParseAndRender(t *testing.T) {
	src := `# grid-mapfile
"/O=Grid/OU=ANL/CN=gregor von laszewski" gregor
/O=Grid/CN=alice alice

# trailing comment
"/O=Grid/CN=bob smith" bob extra-ignored
`
	gm, err := ParseGridmap(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if gm.Len() != 3 {
		t.Fatalf("Len = %d", gm.Len())
	}
	if local, err := gm.Map("/O=Grid/OU=ANL/CN=gregor von laszewski"); err != nil || local != "gregor" {
		t.Errorf("gregor: %q %v", local, err)
	}
	if local, err := gm.Map("/O=Grid/CN=bob smith"); err != nil || local != "bob" {
		t.Errorf("bob: %q %v", local, err)
	}
	// Render and re-parse.
	var sb strings.Builder
	if _, err := gm.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	gm2, err := ParseGridmap(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if gm2.Len() != 3 {
		t.Errorf("round trip Len = %d", gm2.Len())
	}
}

func TestGridmapParseErrors(t *testing.T) {
	bad := []string{
		`"/O=Grid/CN=unterminated`,
		`"/O=Grid/CN=nolocal"`,
		`solo-token`,
	}
	for _, line := range bad {
		if _, err := ParseGridmap(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseGridmap(%q): expected error", line)
		}
	}
}
