// Package gsi simulates the Grid Security Infrastructure the paper relies
// on (§5.3, §7): certificate-based mutual authentication, proxy-credential
// delegation, gridmap files that map global Grid identities to local
// accounts, and authorization contracts such as "allow access to this
// resource from 3 to 4 pm to user X".
//
// The substitution (documented in DESIGN.md) replaces X.509/SSL with
// ed25519-signed certificates in a JSON encoding and a challenge/response
// handshake over the shared wire framing. The trust model is the same as
// GSI's: a certificate authority signs identity certificates; identities
// sign short-lived proxy certificates whose subject extends the identity
// subject; services verify the whole chain against their trusted CA roots
// and authorize on the *identity* subject.
package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Certificate binds a subject distinguished name to a public key, signed by
// an issuer. Proxy certificates carry IsProxy and extend their issuer's
// subject with a "/CN=proxy" component, mirroring GSI proxy naming.
type Certificate struct {
	Serial    uint64            `json:"serial"`
	Subject   string            `json:"subject"`
	Issuer    string            `json:"issuer"`
	PublicKey ed25519.PublicKey `json:"publicKey"`
	NotBefore time.Time         `json:"notBefore"`
	NotAfter  time.Time         `json:"notAfter"`
	IsCA      bool              `json:"isCA,omitempty"`
	IsProxy   bool              `json:"isProxy,omitempty"`
	// MaxDelegationDepth limits how many further proxy levels may hang off
	// this certificate. Identity certificates default to a small positive
	// depth; each proxy must shrink it.
	MaxDelegationDepth int `json:"maxDelegationDepth"`
	// Signature is the issuer's signature over the canonical to-be-signed
	// encoding.
	Signature []byte `json:"signature"`
}

// tbs returns the canonical to-be-signed bytes: the JSON encoding with the
// signature removed.
func (c *Certificate) tbs() ([]byte, error) {
	cp := *c
	cp.Signature = nil
	b, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("gsi: encode certificate: %w", err)
	}
	return b, nil
}

// sign signs the certificate with the issuer's private key.
func (c *Certificate) sign(issuerKey ed25519.PrivateKey) error {
	b, err := c.tbs()
	if err != nil {
		return err
	}
	c.Signature = ed25519.Sign(issuerKey, b)
	return nil
}

// checkSignature verifies the certificate against the issuer public key.
func (c *Certificate) checkSignature(issuerPub ed25519.PublicKey) error {
	b, err := c.tbs()
	if err != nil {
		return err
	}
	if !ed25519.Verify(issuerPub, b, c.Signature) {
		return fmt.Errorf("gsi: bad signature on certificate %q", c.Subject)
	}
	return nil
}

// ErrExpired marks a certificate (typically a short-lived proxy) whose
// validity window has closed. Callers classify authentication failures with
// errors.Is(err, ErrExpired) — expired proxies are an expected operational
// event worth counting separately from genuine credential problems.
var ErrExpired = errors.New("gsi: certificate expired")

// validAt checks the validity window.
func (c *Certificate) validAt(now time.Time) error {
	if now.Before(c.NotBefore) {
		return fmt.Errorf("gsi: certificate %q not yet valid (notBefore %s)", c.Subject, c.NotBefore.Format(time.RFC3339))
	}
	if now.After(c.NotAfter) {
		return fmt.Errorf("%w: %q at %s", ErrExpired, c.Subject, c.NotAfter.Format(time.RFC3339))
	}
	return nil
}

// proxySuffix is the subject component appended by each delegation level.
const proxySuffix = "/CN=proxy"

// IdentitySubject strips proxy components from a subject, yielding the
// underlying identity DN used by gridmaps and authorization.
func IdentitySubject(subject string) string {
	for strings.HasSuffix(subject, proxySuffix) {
		subject = strings.TrimSuffix(subject, proxySuffix)
	}
	return subject
}

// Chain is an ordered certificate chain, leaf first, ending at (but not
// including) a trusted CA root.
type Chain []*Certificate

// Leaf returns the end-entity certificate of the chain.
func (ch Chain) Leaf() (*Certificate, error) {
	if len(ch) == 0 {
		return nil, errors.New("gsi: empty certificate chain")
	}
	return ch[0], nil
}

// Identity returns the identity DN of the chain's leaf (proxy components
// stripped).
func (ch Chain) Identity() (string, error) {
	leaf, err := ch.Leaf()
	if err != nil {
		return "", err
	}
	return IdentitySubject(leaf.Subject), nil
}

// Credential is a certificate chain plus the private key for its leaf; it
// is what a client or service holds locally.
type Credential struct {
	Chain Chain
	Key   ed25519.PrivateKey
}

// Subject returns the leaf subject of the credential.
func (cr *Credential) Subject() string {
	if len(cr.Chain) == 0 {
		return ""
	}
	return cr.Chain[0].Subject
}

// Identity returns the identity DN of the credential.
func (cr *Credential) Identity() string { return IdentitySubject(cr.Subject()) }

// Delegate creates a proxy credential one level below cr, valid for
// lifetime. It fails when the parent's delegation budget is exhausted —
// the proxy-depth rule GSI enforces.
func (cr *Credential) Delegate(lifetime time.Duration, now time.Time) (*Credential, error) {
	parent, err := cr.Chain.Leaf()
	if err != nil {
		return nil, err
	}
	if parent.MaxDelegationDepth <= 0 {
		return nil, fmt.Errorf("gsi: %q has no delegation depth remaining", parent.Subject)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate proxy key: %w", err)
	}
	notAfter := now.Add(lifetime)
	if notAfter.After(parent.NotAfter) {
		notAfter = parent.NotAfter // a proxy cannot outlive its parent
	}
	proxy := &Certificate{
		Serial:             newSerial(),
		Subject:            parent.Subject + proxySuffix,
		Issuer:             parent.Subject,
		PublicKey:          pub,
		NotBefore:          now.Add(-clockSkew),
		NotAfter:           notAfter,
		IsProxy:            true,
		MaxDelegationDepth: parent.MaxDelegationDepth - 1,
	}
	if err := proxy.sign(cr.Key); err != nil {
		return nil, err
	}
	chain := make(Chain, 0, len(cr.Chain)+1)
	chain = append(chain, proxy)
	chain = append(chain, cr.Chain...)
	return &Credential{Chain: chain, Key: priv}, nil
}

// clockSkew is the backdating tolerance applied to new certificates.
const clockSkew = 30 * time.Second
