package wire

import (
	"context"
	"encoding/json"
	"fmt"
)

// Journal replication rides on the frame layout exactly like MUX and
// TRACE: an opt-in capability negotiated after the GSI handshake. A
// follower gatekeeper sends a REPL frame; a leader with a journal
// answers REPL-OK carrying a JSON manifest of its on-disk history (the
// snapshot's byte length and every segment's index and flushed length at
// the cut), then unilaterally streams that history followed by a live
// record feed:
//
//	REPL-SNAP  chunks of snapshot.json            (manifest order)
//	REPL-SEG   chunks of segment bytes, segments in manifest order —
//	           the follower counts bytes against the manifest, so no
//	           per-chunk framing is needed
//	REPL-LIVE  empty: the backlog is fully shipped, live feed follows
//	REPL-REC   one journal record payload (unframed JSON) per frame
//
// REPL takes over the whole connection (it is a stream, not
// request/response — MUX is never negotiated on it). A leader without a
// journal declines with ERROR, exactly as a pre-capability peer would,
// so followers interoperate with any deployment. If the leader cannot
// finish shipping the backlog (a concurrent compaction deleted a
// streamed segment, a slow follower overflowed its tap), it closes the
// connection; the follower re-dials and re-syncs from the fresh
// manifest, which by then covers the compacted history.
const (
	// VerbRepl offers journal replication (follower → leader, after
	// handshake, instead of MUX).
	VerbRepl = "REPL"
	// VerbReplOK accepts the offer; the payload is the JSON manifest.
	VerbReplOK = "REPL-OK"
	// VerbReplSnap carries a chunk of the snapshot file.
	VerbReplSnap = "REPL-SNAP"
	// VerbReplSeg carries a chunk of segment bytes.
	VerbReplSeg = "REPL-SEG"
	// VerbReplLive marks the backlog complete; live records follow.
	VerbReplLive = "REPL-LIVE"
	// VerbReplRec carries one live journal record payload.
	VerbReplRec = "REPL-REC"
)

// ReplChunkSize bounds one REPL-SNAP/REPL-SEG payload, comfortably
// under MaxPayload while keeping per-frame overhead negligible.
const ReplChunkSize = 256 << 10

// ReplSegment is one segment's manifest entry.
type ReplSegment struct {
	Index int   `json:"index"`
	Size  int64 `json:"size"`
}

// ReplManifest is the REPL-OK payload: the history the leader is about
// to ship.
type ReplManifest struct {
	// SnapshotSize is snapshot.json's byte length, -1 when the leader
	// has no snapshot.
	SnapshotSize int64 `json:"snapshot"`
	// Segments lists segment prefixes in replay (and shipping) order.
	Segments []ReplSegment `json:"segments"`
}

// EncodeReplManifest renders the manifest as a REPL-OK frame.
func EncodeReplManifest(m ReplManifest) (Frame, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encode repl manifest: %w", err)
	}
	return Frame{Verb: VerbReplOK, Payload: b}, nil
}

// DecodeReplManifest parses a REPL-OK frame.
func DecodeReplManifest(f Frame) (ReplManifest, error) {
	if f.Verb != VerbReplOK {
		return ReplManifest{}, fmt.Errorf("wire: repl manifest: unexpected verb %q", f.Verb)
	}
	var m ReplManifest
	if err := json.Unmarshal(f.Payload, &m); err != nil {
		return ReplManifest{}, fmt.Errorf("wire: decode repl manifest: %w", err)
	}
	return m, nil
}

// NegotiateRepl offers replication on a freshly authenticated client
// connection. accepted=false means the peer declined (it has no journal
// or predates the capability) — a protocol answer, not a failure.
// After acceptance the connection is a one-way stream: the caller reads
// REPL-SNAP/REPL-SEG/REPL-LIVE/REPL-REC frames until it closes.
func NegotiateRepl(ctx context.Context, conn *Conn) (ReplManifest, bool, error) {
	resp, err := conn.CallContext(ctx, Frame{Verb: VerbRepl})
	if err != nil {
		return ReplManifest{}, false, fmt.Errorf("wire: repl negotiation: %w", err)
	}
	if resp.Verb != VerbReplOK {
		return ReplManifest{}, false, nil
	}
	m, err := DecodeReplManifest(resp)
	if err != nil {
		return ReplManifest{}, false, err
	}
	return m, true, nil
}
