package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/faultinject"
	"infogram/internal/telemetry"
)

// Conn wraps a net.Conn with buffered frame I/O. Reads and writes are each
// serialized by their own mutex so a connection can be shared between a
// request writer and a callback reader (the GRAM client does this for
// status callbacks).
type Conn struct {
	nc net.Conn

	rmu sync.Mutex
	r   *bufio.Reader

	wmu  sync.Mutex
	w    *bufio.Writer
	whdr [64]byte // frame-header scratch, guarded by wmu

	callMu sync.Mutex

	// ioTimeout bounds each individual frame read and write, in
	// nanoseconds. Zero means unbounded (context deadlines, when present,
	// still apply). Atomic so SetIOTimeout is safe while a reader or
	// writer goroutine is in flight.
	ioTimeout atomic.Int64

	// instr is atomic for the same reason: the server attaches telemetry
	// while the connection may already be shared.
	instr atomic.Pointer[ConnInstruments]
}

// ConnInstruments holds the optional per-connection telemetry. Nil metrics
// are no-ops, so a zero value disables instrumentation.
type ConnInstruments struct {
	// BytesRead counts frame bytes successfully read.
	BytesRead *telemetry.Counter
	// BytesWritten counts frame bytes successfully written.
	BytesWritten *telemetry.Counter
	// FrameErrors counts framing failures (malformed headers, oversized
	// payloads, short reads, I/O deadline expiries) in either direction.
	FrameErrors *telemetry.Counter
}

// Instrument attaches telemetry to the connection. The write is atomic,
// so it is safe even when the connection is already shared between
// goroutines; operations that raced the attach simply go uncounted.
func (c *Conn) Instrument(i ConnInstruments) { c.instr.Store(&i) }

// instruments snapshots the attached telemetry (zero value when none).
func (c *Conn) instruments() ConnInstruments {
	if p := c.instr.Load(); p != nil {
		return *p
	}
	return ConnInstruments{}
}

// NewConn wraps nc for frame I/O.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 16<<10),
		w:  bufio.NewWriterSize(nc, 16<<10),
	}
}

// Dial connects to addr over TCP and wraps the connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout. The same duration becomes
// the connection's per-operation I/O timeout, so a peer that accepts and
// then goes silent cannot hang a subsequent Read or Call forever.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	c.SetIOTimeout(d)
	return c, nil
}

// SetIOTimeout bounds every subsequent frame read and write individually;
// zero removes the bound. The write is atomic, so it is safe while other
// goroutines are already reading or writing; operations that are already
// in flight keep the deadline they armed with.
func (c *Conn) SetIOTimeout(d time.Duration) { c.ioTimeout.Store(int64(d)) }

// finNop finishes an operation that armed no deadline and no watcher.
var finNop = func(err error) error { return err }

// armDeadline installs the effective deadline — the earlier of the
// per-operation I/O timeout and the context deadline — on the write (or,
// with write false, read) side of the underlying conn, and watches the
// context so cancellation interrupts an in-flight operation. The returned
// function must be called exactly once with the operation's error: it
// stops the watcher, clears the deadline, and maps a deadline expiry
// caused by the context back to the context's error.
func (c *Conn) armDeadline(ctx context.Context, write bool) func(error) error {
	var dl time.Time
	if io := time.Duration(c.ioTimeout.Load()); io > 0 {
		dl = time.Now().Add(io)
	}
	ctxBound := false
	if d, ok := ctx.Deadline(); ok && (dl.IsZero() || d.Before(dl)) {
		dl = d
		ctxBound = true
	}
	watch := ctx.Done() != nil
	if dl.IsZero() && !watch {
		return finNop
	}
	// The method value is created only past the fast path above, keeping
	// deadline-free frame I/O allocation-free.
	set := c.nc.SetReadDeadline
	if write {
		set = c.nc.SetWriteDeadline
	}
	if !dl.IsZero() {
		_ = set(dl)
	}
	var stop, exited chan struct{}
	if watch {
		stop = make(chan struct{})
		exited = make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				// A deadline in the past fails the in-flight operation
				// immediately with os.ErrDeadlineExceeded.
				_ = set(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	return func(err error) error {
		if watch {
			close(stop)
			<-exited
		}
		_ = set(time.Time{})
		if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("wire: %w", cerr)
			}
			// The armed deadline was the context's, but the net poller's
			// timer can fire a hair before the context's own — report the
			// deadline the caller actually set.
			if ctxBound {
				return fmt.Errorf("wire: %w", context.DeadlineExceeded)
			}
		}
		return err
	}
}

// Read reads the next frame, blocking until one arrives (bounded by the
// connection's I/O timeout, if set).
func (c *Conn) Read() (Frame, error) {
	return c.ReadContext(context.Background())
}

// ReadContext reads the next frame; the context's deadline and
// cancellation bound the read in addition to the connection's I/O
// timeout.
func (c *Conn) ReadContext(ctx context.Context) (Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		v, ferr := faultinject.Eval(ctx, faultinject.WireRead)
		if ferr != nil {
			return Frame{}, ferr
		}
		fin := c.armDeadline(ctx, false)
		f, err := ReadFrame(c.r)
		raw := err
		err = fin(err)
		instr := c.instruments()
		switch {
		case err == nil:
			instr.BytesRead.Add(int64(f.WireSize()))
		case IsFrameError(raw) || errors.Is(raw, os.ErrDeadlineExceeded):
			instr.FrameErrors.Inc()
		}
		if err != nil {
			return Frame{}, err
		}
		if v.Drop {
			continue // injected drop: discard this frame, deliver the next
		}
		if v.Truncate > 0 && len(f.Payload) > v.Truncate {
			f.Payload = f.Payload[:v.Truncate]
		}
		return f, nil
	}
}

// Write writes f and flushes it to the network.
func (c *Conn) Write(f Frame) error {
	return c.WriteContext(context.Background(), f)
}

// WriteContext writes f and flushes it; the context's deadline and
// cancellation bound the write in addition to the connection's I/O
// timeout.
func (c *Conn) WriteContext(ctx context.Context, f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	v, ferr := faultinject.Eval(ctx, faultinject.WireWrite)
	if ferr != nil {
		return ferr
	}
	if v.Drop {
		return nil // injected drop: report success without sending
	}
	fin := c.armDeadline(ctx, true)
	wrote := f.WireSize()
	var err error
	if v.Truncate > 0 && len(f.Payload) > v.Truncate {
		// Injected truncation: the header advertises the full payload
		// length but only Truncate bytes follow, so the peer sees a
		// sender that died mid-frame.
		err = writeTruncatedFrame(c.w, f, v.Truncate)
		wrote -= len(f.Payload) - v.Truncate
	} else {
		// The header is built in the connection's scratch buffer (wmu is
		// held), so a steady-state frame write allocates nothing.
		err = writeFrameInto(c.w, f, c.whdr[:0])
	}
	if err == nil {
		err = c.w.Flush()
	}
	raw := err
	err = fin(err)
	instr := c.instruments()
	if raw != nil {
		if IsFrameError(raw) || errors.Is(raw, os.ErrDeadlineExceeded) {
			instr.FrameErrors.Inc()
		}
		return err
	}
	instr.BytesWritten.Add(int64(wrote))
	return nil
}

// WriteString writes a frame with a string payload.
func (c *Conn) WriteString(verb, payload string) error {
	return c.Write(Frame{Verb: verb, Payload: []byte(payload)})
}

// Call writes a request frame and reads a single response frame. It is the
// basic request/response step used by all three protocol clients. Calls are
// serialized per connection so concurrent callers sharing a client cannot
// interleave each other's request/response pairs. Each leg is bounded by
// the connection's I/O timeout, if set.
func (c *Conn) Call(req Frame) (Frame, error) {
	return c.CallContext(context.Background(), req)
}

// CallContext is Call bounded by the context's deadline and cancellation.
func (c *Conn) CallContext(ctx context.Context, req Frame) (Frame, error) {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	if err := c.WriteContext(ctx, req); err != nil {
		return Frame{}, err
	}
	return c.ReadContext(ctx)
}

// SetDeadline sets the read and write deadline on the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// RemoteAddr returns the remote network address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr returns the local network address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }
