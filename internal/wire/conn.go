package wire

import (
	"bufio"
	"net"
	"sync"
	"time"

	"infogram/internal/telemetry"
)

// Conn wraps a net.Conn with buffered frame I/O. Reads and writes are each
// serialized by their own mutex so a connection can be shared between a
// request writer and a callback reader (the GRAM client does this for
// status callbacks).
type Conn struct {
	nc net.Conn

	rmu sync.Mutex
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	callMu sync.Mutex

	instr ConnInstruments
}

// ConnInstruments holds the optional per-connection telemetry. Nil metrics
// are no-ops, so a zero value disables instrumentation.
type ConnInstruments struct {
	// BytesRead counts frame bytes successfully read.
	BytesRead *telemetry.Counter
	// BytesWritten counts frame bytes successfully written.
	BytesWritten *telemetry.Counter
	// FrameErrors counts framing failures (malformed headers, oversized
	// payloads, short reads) in either direction.
	FrameErrors *telemetry.Counter
}

// Instrument attaches telemetry to the connection. Call before sharing the
// connection between goroutines (the server handler does this first
// thing).
func (c *Conn) Instrument(i ConnInstruments) { c.instr = i }

// NewConn wraps nc for frame I/O.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 16<<10),
		w:  bufio.NewWriterSize(nc, 16<<10),
	}
}

// Dial connects to addr over TCP and wraps the connection.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// Read reads the next frame, blocking until one arrives.
func (c *Conn) Read() (Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	f, err := ReadFrame(c.r)
	switch {
	case err == nil:
		c.instr.BytesRead.Add(int64(f.WireSize()))
	case IsFrameError(err):
		c.instr.FrameErrors.Inc()
	}
	return f, err
}

// Write writes f and flushes it to the network.
func (c *Conn) Write(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteFrame(c.w, f); err != nil {
		if IsFrameError(err) {
			c.instr.FrameErrors.Inc()
		}
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.instr.BytesWritten.Add(int64(f.WireSize()))
	return nil
}

// WriteString writes a frame with a string payload.
func (c *Conn) WriteString(verb, payload string) error {
	return c.Write(Frame{Verb: verb, Payload: []byte(payload)})
}

// Call writes a request frame and reads a single response frame. It is the
// basic request/response step used by all three protocol clients. Calls are
// serialized per connection so concurrent callers sharing a client cannot
// interleave each other's request/response pairs.
func (c *Conn) Call(req Frame) (Frame, error) {
	c.callMu.Lock()
	defer c.callMu.Unlock()
	if err := c.Write(req); err != nil {
		return Frame{}, err
	}
	return c.Read()
}

// SetDeadline sets the read and write deadline on the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// RemoteAddr returns the remote network address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr returns the local network address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }
