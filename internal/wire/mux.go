package wire

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"infogram/internal/faultinject"
)

// Multiplexing rides on top of the frame layout as an opt-in capability
// negotiated after the GSI handshake. A peer that wants out-of-order
// request/response correlation sends a MUX frame; a mux-aware server
// answers MUX-OK and from then on every frame on the connection — both
// directions — carries a decimal correlation ID prefixed to its payload:
//
//	VERB SP DECIMAL-LENGTH LF DECIMAL-ID SP payload-bytes
//
// The verb grammar and frame header are untouched, so mux'd traffic flows
// through the same transport code path (deadlines, instrumentation,
// failpoints) as serial traffic, and a peer that never sends MUX keeps
// today's strictly serial framing — wire compatibility is preserved in
// both directions: an old client never negotiates, and an old server
// answers the MUX frame with ERROR, which the new client takes as
// "declined" and falls back to serial calls.
const (
	// VerbMux offers multiplexed mode (client → server, after handshake).
	VerbMux = "MUX"
	// VerbMuxOK accepts the offer; every subsequent frame is mux-framed.
	VerbMuxOK = "MUX-OK"
)

// ErrMuxSyntax reports a frame that should carry a correlation ID but
// does not.
var ErrMuxSyntax = errors.New("wire: malformed mux correlation id")

// ErrMuxClosed is returned for calls issued against a closed MuxConn.
var ErrMuxClosed = errors.New("wire: mux connection closed")

// EncodeMux wraps f with the correlation ID, producing the frame that
// actually crosses the wire in mux mode.
func EncodeMux(id uint64, f Frame) Frame {
	p := make([]byte, 0, 21+len(f.Payload))
	p = strconv.AppendUint(p, id, 10)
	p = append(p, ' ')
	p = append(p, f.Payload...)
	return Frame{Verb: f.Verb, Payload: p}
}

// DecodeMux splits a mux-framed message into its correlation ID and the
// inner frame. The inner payload aliases f's buffer (no copy).
func DecodeMux(f Frame) (uint64, Frame, error) {
	sp := -1
	for i := 0; i < len(f.Payload); i++ {
		if f.Payload[i] == ' ' {
			sp = i
			break
		}
	}
	if sp <= 0 {
		return 0, Frame{}, fmt.Errorf("%w: %s", ErrMuxSyntax, f)
	}
	id, err := strconv.ParseUint(string(f.Payload[:sp]), 10, 64)
	if err != nil {
		return 0, Frame{}, fmt.Errorf("%w: %s", ErrMuxSyntax, f)
	}
	return id, Frame{Verb: f.Verb, Payload: f.Payload[sp+1:]}, nil
}

// NegotiateMux offers mux mode on a freshly authenticated client
// connection. It returns true when the server accepted (all subsequent
// traffic must be mux-framed), false when the peer declined — a pre-mux
// server answers with ERROR, which is a decline, not a failure. Transport
// errors are returned as errors.
func NegotiateMux(ctx context.Context, conn *Conn) (bool, error) {
	resp, err := conn.CallContext(ctx, Frame{Verb: VerbMux})
	if err != nil {
		return false, fmt.Errorf("wire: mux negotiation: %w", err)
	}
	return resp.Verb == VerbMuxOK, nil
}

// muxResult is one correlated response (or the call's failure).
type muxResult struct {
	f   Frame
	err error
}

// MuxConn is the client end of a multiplexed connection: it assigns each
// call a correlation ID, lets any number of goroutines issue calls
// concurrently, and routes responses — arriving in any order — back to
// the caller that owns them. When the connection dies, every in-flight
// call fails with the transport error, and Err reports it thereafter.
type MuxConn struct {
	conn   *Conn
	nextID atomic.Uint64

	mu    sync.Mutex
	calls map[uint64]chan muxResult
	err   error
}

// NewMuxConn starts demultiplexing conn. The caller must already have
// negotiated mux mode (NegotiateMux); after this call the MuxConn owns
// the connection's read side. Any per-operation I/O timeout is cleared:
// the reader must be allowed to block on an idle connection, and each
// call's context bounds its own wait instead.
func NewMuxConn(conn *Conn) *MuxConn {
	conn.SetIOTimeout(0)
	m := &MuxConn{conn: conn, calls: make(map[uint64]chan muxResult)}
	go m.readLoop()
	return m
}

// readLoop is the single demultiplexer: it owns conn's read side, routes
// each response to the caller registered under its correlation ID, and on
// transport death fails every in-flight call. The wire.mux failpoint
// evaluates per response, so fault injection can poison exactly one
// in-flight call (error, drop, truncate, delay) while its siblings on the
// same connection proceed.
func (m *MuxConn) readLoop() {
	for {
		f, err := m.conn.Read()
		if err != nil {
			m.fail(err)
			return
		}
		id, inner, err := DecodeMux(f)
		if err != nil {
			m.fail(err)
			m.conn.Close()
			return
		}
		if v, ferr := faultinject.Eval(context.Background(), faultinject.WireMux); ferr != nil {
			m.deliver(id, muxResult{err: ferr})
			continue
		} else if v.Drop {
			continue // injected drop: this call's response evaporates
		} else if v.Truncate > 0 && len(inner.Payload) > v.Truncate {
			inner.Payload = inner.Payload[:v.Truncate]
		}
		m.deliver(id, muxResult{f: inner})
	}
}

// deliver hands a result to the caller waiting on id; responses nobody
// waits for (the caller timed out and forgot the ID) are discarded.
func (m *MuxConn) deliver(id uint64, r muxResult) {
	m.mu.Lock()
	ch := m.calls[id]
	delete(m.calls, id)
	m.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// fail marks the connection dead and fails every in-flight call.
func (m *MuxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	err = m.err // the first error (e.g. ErrMuxClosed) is the sticky one
	calls := m.calls
	m.calls = make(map[uint64]chan muxResult)
	m.mu.Unlock()
	for _, ch := range calls {
		ch <- muxResult{err: err}
	}
}

// forget abandons a pending call (its caller gave up).
func (m *MuxConn) forget(id uint64) {
	m.mu.Lock()
	delete(m.calls, id)
	m.mu.Unlock()
}

// Call performs one correlated request/response exchange. It is safe for
// concurrent use: calls in flight at the same time share the connection
// and their responses may return in any order. The context bounds the
// whole exchange; a call that times out fails alone without poisoning
// the connection for its siblings (the late response, if any, is
// discarded by its correlation ID).
func (m *MuxConn) Call(ctx context.Context, req Frame) (Frame, error) {
	id := m.nextID.Add(1)
	ch := make(chan muxResult, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return Frame{}, err
	}
	m.calls[id] = ch
	m.mu.Unlock()
	if err := m.conn.WriteContext(ctx, EncodeMux(id, req)); err != nil {
		m.forget(id)
		return Frame{}, err
	}
	select {
	case r := <-ch:
		return r.f, r.err
	case <-ctx.Done():
		m.forget(id)
		return Frame{}, fmt.Errorf("wire: mux call: %w", ctx.Err())
	}
}

// Err reports the transport error that killed the connection, or nil
// while it is healthy. Callers distinguishing "my call failed" from "the
// connection is dead" (a per-call timeout versus a broken conn) check
// this after a failed Call.
func (m *MuxConn) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Conn returns the underlying framed connection (for Close bookkeeping
// and address accessors; reading it directly would corrupt the demux).
func (m *MuxConn) Conn() *Conn { return m.conn }

// Close closes the underlying connection; the read loop then fails any
// in-flight calls and future calls return ErrMuxClosed.
func (m *MuxConn) Close() error {
	m.mu.Lock()
	if m.err == nil {
		m.err = ErrMuxClosed
	}
	m.mu.Unlock()
	return m.conn.Close()
}
