package wire

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRejectRoundTrip(t *testing.T) {
	cases := []Reject{
		{RetryAfter: 250 * time.Millisecond, Scope: RejectScopeQuota, Reason: "allow * rate=500"},
		{RetryAfter: 0, Scope: RejectScopeOverload},
		{RetryAfter: time.Second, Scope: RejectScopeBacklog, Reason: "pbs: backlog saturated (32 pending)"},
	}
	for _, in := range cases {
		f := EncodeReject(in)
		if f.Verb != VerbReject {
			t.Fatalf("verb = %q", f.Verb)
		}
		got, err := DecodeReject(f)
		if err != nil {
			t.Fatalf("DecodeReject(%+v): %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip: wrote %+v, read %+v", in, got)
		}
	}
}

func TestRejectEncodeNormalizes(t *testing.T) {
	// Encoding must never fail: the rejection path cannot have failure
	// modes of its own. Out-of-range hints clamp, bad scopes normalize.
	f := EncodeReject(Reject{RetryAfter: -5 * time.Second, Scope: "NOT A SCOPE", Reason: "x"})
	got, err := DecodeReject(f)
	if err != nil {
		t.Fatalf("DecodeReject: %v", err)
	}
	if got.RetryAfter != 0 || got.Scope != RejectScopeOverload {
		t.Fatalf("normalized decode = %+v", got)
	}
	f = EncodeReject(Reject{RetryAfter: 48 * time.Hour, Scope: RejectScopeQuota})
	if got, _ = DecodeReject(f); got.RetryAfter != time.Hour {
		t.Fatalf("retry-after should clamp to 1h, got %s", got.RetryAfter)
	}
	// Sub-millisecond hints truncate rather than erroring.
	f = EncodeReject(Reject{RetryAfter: 400 * time.Microsecond, Scope: RejectScopeQuota})
	if got, _ = DecodeReject(f); got.RetryAfter != 0 {
		t.Fatalf("sub-ms hint should truncate to 0, got %s", got.RetryAfter)
	}
}

func TestRejectDecodeErrors(t *testing.T) {
	bad := []Frame{
		{Verb: "PONG", Payload: []byte("100 quota")},                          // wrong verb
		{Verb: VerbReject, Payload: []byte("")},                               // empty
		{Verb: VerbReject, Payload: []byte("abc quota")},                      // non-numeric hint
		{Verb: VerbReject, Payload: []byte("-1 quota")},                       // negative hint
		{Verb: VerbReject, Payload: []byte("999999999 x")},                    // hint beyond 1h
		{Verb: VerbReject, Payload: []byte("100")},                            // missing scope
		{Verb: VerbReject, Payload: []byte("100 QUOTA")},                      // upper-case scope
		{Verb: VerbReject, Payload: []byte("100 sc!ope")},                     // invalid scope chars
		{Verb: VerbReject, Payload: []byte("100 " + strings.Repeat("a", 33))}, // scope too long
	}
	for _, f := range bad {
		if _, err := DecodeReject(f); err == nil {
			t.Errorf("DecodeReject(%q %q) should fail", f.Verb, f.Payload)
		} else if f.Verb == VerbReject && !errors.Is(err, ErrRejectSyntax) {
			t.Errorf("error for %q should wrap ErrRejectSyntax, got %v", f.Payload, err)
		}
	}
}

// FuzzRejectFrameDecode feeds arbitrary payloads to the REJECT decoder.
// Every accepted payload must satisfy the protocol bounds and re-encode to
// a frame that decodes to the same value — a server must never be able to
// park a client beyond the clamp or smuggle a hostile scope through.
func FuzzRejectFrameDecode(f *testing.F) {
	f.Add([]byte("250 quota allow * rate=500"))
	f.Add([]byte("0 overload"))
	f.Add([]byte("1000 backlog pbs: backlog saturated"))
	f.Add([]byte("3600000 quota"))
	f.Add([]byte("3600001 quota"))
	f.Add([]byte("-1 quota"))
	f.Add([]byte("99999999999999999999 quota"))
	f.Add([]byte("250  quota"))
	f.Add([]byte("250 QUOTA"))
	f.Add([]byte(""))
	f.Add([]byte(" "))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeReject(Frame{Verb: VerbReject, Payload: payload})
		if err != nil {
			return // rejection is fine; panics are the bug
		}
		if r.RetryAfter < 0 || r.RetryAfter > time.Hour {
			t.Fatalf("decoded retry-after %s outside [0, 1h]", r.RetryAfter)
		}
		if !validRejectScope(r.Scope) {
			t.Fatalf("decoded invalid scope %q", r.Scope)
		}
		back, err := DecodeReject(EncodeReject(r))
		if err != nil {
			t.Fatalf("re-encoded REJECT does not decode: %v (%+v)", err, r)
		}
		if back != r {
			t.Fatalf("re-encode round trip: %+v != %+v", back, r)
		}
	})
}
