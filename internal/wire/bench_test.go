package wire

import (
	"net"
	"testing"
	"time"
)

// discardConn is a net.Conn that swallows writes; reads are never used by
// the write benchmarks.
type discardConn struct{}

func (discardConn) Read(b []byte) (int, error)       { select {} }
func (discardConn) Write(b []byte) (int, error)      { return len(b), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return nil }
func (discardConn) RemoteAddr() net.Addr             { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkConnWriteFrame measures the steady-state frame write path; the
// per-connection header scratch should make it allocation-free.
func BenchmarkConnWriteFrame(b *testing.B) {
	c := NewConn(discardConn{})
	f := Frame{Verb: "RESULT-LDIF", Payload: make([]byte, 512)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(f); err != nil {
			b.Fatal(err)
		}
	}
}
