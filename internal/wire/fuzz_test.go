package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip guards the encode→decode path: anything WriteFrame
// accepts must read back identically. Rejections (bad verbs, oversized
// payloads) are fine; panics and corruption are not.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("SUBMIT", []byte("(executable=/bin/date)(arguments=-u)"))
	f.Add("PING", []byte{})
	f.Add("RESULT-LDIF", []byte("dn: kw=Date, resource=host, o=grid\nkw: Date\n"))
	f.Add("AUTH", []byte(`{"chain":[],"nonce":"AAAA"}`))
	f.Add("A", []byte{0, 1, 2, 255})
	f.Add("VERB_WITH_UNDERSCORE", []byte("x"))
	f.Add("lower", []byte("rejected verb"))
	f.Add("", []byte("empty verb"))
	f.Fuzz(func(t *testing.T, verb string, payload []byte) {
		fr := Frame{Verb: verb, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			return // rejection is fine; panics are not
		}
		got, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("wrote ok but read failed: verb=%q payload=%d bytes: %v", verb, len(payload), err)
		}
		if got.Verb != verb || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("round trip corrupted: wrote %q/%q, read %q/%q", verb, payload, got.Verb, got.Payload)
		}
	})
}

// FuzzFrameDecode feeds arbitrary bytes — truncated frames, oversized
// lengths, garbage headers, realistic protocol traces — to the decoder.
// Every successfully decoded frame must satisfy the protocol bounds and
// re-encode cleanly.
func FuzzFrameDecode(f *testing.F) {
	// Realistic traces: an InfoGram handshake opener, a query, a job
	// submission, and a GRAMP status poll, back to back.
	f.Add([]byte("AUTH 27\n{\"chain\":[],\"nonce\":\"AAAA\"}SUBMIT 10\n(info=all)"))
	f.Add([]byte("SUBMIT 34\n(executable=/bin/date)(count=2)\nPING 0\n"))
	f.Add([]byte("STATUS 26\nhttps://host:2119/1/123456"))
	// Truncated payload: header promises more than follows.
	f.Add([]byte("RESULT-LDIF 500\ndn: o=grid\n"))
	// Oversized length.
	f.Add([]byte("BIG 99999999999999999999\n"))
	f.Add([]byte("BIG 16777217\n"))
	// Garbage.
	f.Add([]byte("\x00\x01\x02\n\n\n"))
	f.Add([]byte("VERB\n"))
	f.Add([]byte("VERB -3\nxyz"))
	f.Add([]byte(" 3\nabc"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			fr, err := ReadFrame(r)
			if err != nil {
				return // any error ends the stream; panics are the bug
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("decoder accepted %d-byte payload beyond MaxPayload", len(fr.Payload))
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, fr); err != nil {
				t.Fatalf("decoded frame does not re-encode: %v (frame %s)", err, fr)
			}
			got, err := ReadFrame(bufio.NewReader(&buf))
			if err != nil || got.Verb != fr.Verb || !bytes.Equal(got.Payload, fr.Payload) {
				t.Fatalf("re-encoded frame does not round-trip: %v", err)
			}
		}
	})
}
