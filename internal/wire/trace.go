package wire

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"infogram/internal/telemetry"
)

// Trace propagation rides on the frame layout exactly like multiplexing:
// an opt-in capability negotiated after the GSI handshake. A client that
// wants its trace context to cross the wire sends a TRACE frame; a
// trace-aware server answers TRACE-OK and from then on every request
// frame (client → server) carries the trace context prefixed to its
// payload:
//
//	VERB SP DECIMAL-LENGTH LF TRACEID SP PARENT-HEX SP SAMPLED SP payload
//
// Responses are never prefixed. On a multiplexed connection the trace
// prefix sits inside the mux inner frame (after the correlation ID), so
// the two capabilities compose. The verb grammar and frame header are
// untouched and the prefix only appears after a successful negotiation,
// so wire compatibility is preserved in both directions: an old client
// never negotiates, and an old server answers the TRACE frame with
// ERROR, which the new client takes as "declined" and sends unprefixed
// frames.
const (
	// VerbTrace offers trace propagation (client → server, after
	// handshake and before MUX).
	VerbTrace = "TRACE"
	// VerbTraceOK accepts the offer; every subsequent request frame
	// carries a trace-context prefix.
	VerbTraceOK = "TRACE-OK"
)

// ErrTraceSyntax reports a frame that should carry a trace-context
// prefix but does not.
var ErrTraceSyntax = errors.New("wire: malformed trace context")

// TraceContext is the client-minted trace context carried on the wire:
// which trace the request belongs to, which client span is the caller,
// and whether the client asks the server to record spans for it.
type TraceContext struct {
	Trace   telemetry.TraceID
	Parent  telemetry.SpanID
	Sampled bool
}

// EncodeTraceCtx prefixes f's payload with the trace context, producing
// the frame that actually crosses the wire after TRACE negotiation.
func EncodeTraceCtx(tc TraceContext, f Frame) Frame {
	p := make([]byte, 0, len(tc.Trace)+21+len(f.Payload))
	p = append(p, tc.Trace...)
	p = append(p, ' ')
	p = strconv.AppendUint(p, uint64(tc.Parent), 16)
	p = append(p, ' ')
	if tc.Sampled {
		p = append(p, '1')
	} else {
		p = append(p, '0')
	}
	p = append(p, ' ')
	p = append(p, f.Payload...)
	return Frame{Verb: f.Verb, Payload: p}
}

// DecodeTraceCtx splits a trace-prefixed frame into its trace context
// and the inner frame. The inner payload aliases f's buffer (no copy).
func DecodeTraceCtx(f Frame) (TraceContext, Frame, error) {
	var idx [3]int
	n := 0
	for i := 0; i < len(f.Payload) && n < 3; i++ {
		if f.Payload[i] == ' ' {
			idx[n] = i
			n++
		}
	}
	if n < 3 || idx[0] == 0 {
		return TraceContext{}, Frame{}, fmt.Errorf("%w: %s", ErrTraceSyntax, f)
	}
	trace := telemetry.TraceID(f.Payload[:idx[0]])
	parent, err := strconv.ParseUint(string(f.Payload[idx[0]+1:idx[1]]), 16, 64)
	if err != nil {
		return TraceContext{}, Frame{}, fmt.Errorf("%w: %s", ErrTraceSyntax, f)
	}
	var sampled bool
	switch string(f.Payload[idx[1]+1 : idx[2]]) {
	case "1":
		sampled = true
	case "0":
		sampled = false
	default:
		return TraceContext{}, Frame{}, fmt.Errorf("%w: %s", ErrTraceSyntax, f)
	}
	tc := TraceContext{Trace: trace, Parent: telemetry.SpanID(parent), Sampled: sampled}
	return tc, Frame{Verb: f.Verb, Payload: f.Payload[idx[2]+1:]}, nil
}

// NegotiateTrace offers trace propagation on a freshly authenticated
// client connection. It returns true when the server accepted (every
// subsequent request frame must carry a trace-context prefix), false
// when the peer declined — a pre-trace server answers with ERROR, which
// is a decline, not a failure. Transport errors are returned as errors.
func NegotiateTrace(ctx context.Context, conn *Conn) (bool, error) {
	resp, err := conn.CallContext(ctx, Frame{Verb: VerbTrace})
	if err != nil {
		return false, fmt.Errorf("wire: trace negotiation: %w", err)
	}
	return resp.Verb == VerbTraceOK, nil
}
