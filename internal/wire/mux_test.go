package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMuxEncodeDecodeRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 42, 1 << 40} {
		in := Frame{Verb: "RESULT-LDIF", Payload: []byte("dn: kw=CPULoad\nload1: 2\n")}
		id2, out, err := DecodeMux(EncodeMux(id, in))
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if id2 != id || out.Verb != in.Verb || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mangled: id %d->%d, %s -> %s", id, id2, in, out)
		}
	}
	// Empty inner payload survives.
	id, out, err := DecodeMux(EncodeMux(7, Frame{Verb: "PING"}))
	if err != nil || id != 7 || len(out.Payload) != 0 {
		t.Fatalf("empty payload: id=%d payload=%q err=%v", id, out.Payload, err)
	}
}

func TestDecodeMuxRejectsMalformed(t *testing.T) {
	for _, payload := range []string{"", "noid", "12x34 rest", " leading", "-1 neg"} {
		if _, _, err := DecodeMux(Frame{Verb: "PONG", Payload: []byte(payload)}); !errors.Is(err, ErrMuxSyntax) {
			t.Errorf("payload %q: err = %v; want ErrMuxSyntax", payload, err)
		}
	}
}

// muxPair builds a client MuxConn whose peer end is served by handler in
// its own goroutine, over a real TCP socket.
func muxPair(t *testing.T, handler func(c *Conn)) *MuxConn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		handler(NewConn(nc))
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMuxConn(NewConn(nc))
	t.Cleanup(func() {
		m.Close()
		<-done
	})
	return m
}

// The demux must route responses arriving in the opposite order of their
// requests back to the right callers.
func TestMuxOutOfOrderResponses(t *testing.T) {
	m := muxPair(t, func(c *Conn) {
		// Read two requests, answer them in reverse order.
		var frames []Frame
		for len(frames) < 2 {
			f, err := c.Read()
			if err != nil {
				return
			}
			frames = append(frames, f)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			id, inner, err := DecodeMux(frames[i])
			if err != nil {
				return
			}
			_ = c.Write(EncodeMux(id, Frame{Verb: "ECHO", Payload: inner.Payload}))
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			resp, err := m.Call(ctx, Frame{Verb: "REQ", Payload: []byte(want)})
			if err != nil {
				errs[i] = err
				return
			}
			if string(resp.Payload) != want {
				errs[i] = fmt.Errorf("cross-wired response: got %q, want %q", resp.Payload, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

// Concurrent callers hammering one connection must each get their own
// response back (run under -race).
func TestMuxConcurrentCallsCorrelate(t *testing.T) {
	m := muxPair(t, func(c *Conn) {
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			id, inner, err := DecodeMux(f)
			if err != nil {
				return
			}
			// Respond from separate goroutines so replies interleave
			// arbitrarily; Conn serializes the writes.
			go func() {
				_ = c.Write(EncodeMux(id, Frame{Verb: "ECHO", Payload: inner.Payload}))
			}()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const workers, calls = 16, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("w%d-i%d", w, i)
				resp, err := m.Call(ctx, Frame{Verb: "REQ", Payload: []byte(want)})
				if err != nil {
					errCh <- err
					return
				}
				if string(resp.Payload) != want {
					errCh <- fmt.Errorf("cross-wired: got %q, want %q", resp.Payload, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// Connection death must fail every in-flight call promptly and poison
// future calls, not strand callers forever.
func TestMuxConnDeathFailsInflight(t *testing.T) {
	release := make(chan struct{})
	m := muxPair(t, func(c *Conn) {
		_, _ = c.Read() // swallow the request, never answer
		<-release
		c.Close()
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	callErr := make(chan error, 1)
	go func() {
		_, err := m.Call(ctx, Frame{Verb: "REQ"})
		callErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	close(release)
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("call succeeded although the peer died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after connection death")
	}
	if m.Err() == nil {
		t.Fatal("MuxConn.Err() nil after connection death")
	}
	if _, err := m.Call(ctx, Frame{Verb: "REQ"}); err == nil {
		t.Fatal("call on a dead mux connection succeeded")
	}
}

// A call whose context expires fails alone: the connection stays healthy
// and the late response is discarded by correlation ID, so a subsequent
// call is not cross-wired.
func TestMuxCallTimeoutFailsAlone(t *testing.T) {
	hold := make(chan struct{})
	m := muxPair(t, func(c *Conn) {
		first := true
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			id, inner, err := DecodeMux(f)
			if err != nil {
				return
			}
			if first {
				first = false
				<-hold // park the first response past its caller's deadline
			}
			_ = c.Write(EncodeMux(id, Frame{Verb: "ECHO", Payload: inner.Payload}))
		}
	})
	defer close(hold)

	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := m.Call(short, Frame{Verb: "REQ", Payload: []byte("slow")}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out call: err = %v; want DeadlineExceeded", err)
	}
	if m.Err() != nil {
		t.Fatalf("per-call timeout killed the connection: %v", m.Err())
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		resp, err := m.Call(ctx, Frame{Verb: "REQ", Payload: []byte("fast")})
		if err == nil && string(resp.Payload) != "fast" {
			err = fmt.Errorf("cross-wired: got %q", resp.Payload)
		}
		done <- err
	}()
	// Release the parked first response while the second call is in
	// flight: it must be dropped, not delivered to the second caller.
	time.Sleep(20 * time.Millisecond)
	hold <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("follow-up call after sibling timeout: %v", err)
	}
}
