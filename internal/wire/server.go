package wire

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"infogram/internal/telemetry"
)

// Handler serves one accepted connection. The server closes the connection
// after the handler returns, so handlers own the full conversation.
type Handler interface {
	ServeConn(c *Conn)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(c *Conn)

// ServeConn calls f(c).
func (f HandlerFunc) ServeConn(c *Conn) { f(c) }

// Server accepts TCP connections on one port and dispatches each to a
// Handler in its own goroutine. Every service in this repository — the
// GRAM gatekeeper, the MDS GRIS/GIIS, and InfoGram — is a wire.Server with
// a protocol-specific handler; InfoGram's architectural claim is precisely
// that one such server suffices where the baseline needs two (paper §4,
// Figures 2 and 4).
type Server struct {
	handler Handler
	instr   ServerInstruments

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	accepted atomic.Int64
}

// ServerInstruments holds the optional telemetry the accept loop feeds.
// Nil metrics are no-ops, so a zero value disables instrumentation.
type ServerInstruments struct {
	// Accepted counts accepted connections.
	Accepted *telemetry.Counter
	// Active gauges connections whose handler is still running.
	Active *telemetry.Gauge
}

// Instrument attaches telemetry to the accept loop. Call before Listen.
func (s *Server) Instrument(i ServerInstruments) { s.instr = i }

// NewServer returns a server that will dispatch connections to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{})}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("wire: server closed")

// Listen binds addr ("host:port"; use ":0" for an ephemeral port) and
// starts the accept loop in a background goroutine. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// AcceptedConns reports how many connections the server has accepted. The
// Figure 2 vs Figure 4 experiments use this to count per-workflow
// connections across baseline and unified deployments.
func (s *Server) AcceptedConns() int64 { return s.accepted.Load() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.instr.Accepted.Inc()
		s.instr.Active.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				nc.Close()
				s.mu.Lock()
				delete(s.conns, nc)
				s.mu.Unlock()
				s.instr.Active.Dec()
			}()
			s.handler.ServeConn(NewConn(nc))
		}()
	}
}

// Close stops accepting, closes all live connections, and waits for
// handlers to return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
