package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"infogram/internal/faultinject"
	"infogram/internal/telemetry"
)

// deadServer listens, accepts connections, and never writes a byte back —
// the failure mode of a wedged or partitioned peer.
func deadServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	return ln.Addr().String()
}

// Regression: Call against a server that accepts and never replies used to
// hang the caller forever. DialTimeout's duration now also bounds each
// post-dial frame operation.
func TestCallDeadServerTimesOut(t *testing.T) {
	addr := deadServer(t)
	conn, err := DialTimeout(addr, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	_, err = conn.Call(Frame{Verb: "PING"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Call against a dead server returned nil")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v; want deadline exceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Call took %v; the timeout did not bound it", elapsed)
	}
}

func TestCallContextDeadline(t *testing.T) {
	addr := deadServer(t)
	conn, err := Dial(addr) // no I/O timeout: only the context bounds it
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = conn.CallContext(ctx, Frame{Verb: "PING"})
	if err == nil {
		t.Fatal("CallContext returned nil against a dead server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("CallContext took %v", elapsed)
	}
}

func TestCallContextCancelUnblocks(t *testing.T) {
	addr := deadServer(t)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := conn.CallContext(ctx, Frame{Verb: "PING"})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CallContext did not unblock on cancellation")
	}
}

// A read cut off by the I/O deadline counts as a frame error: the peer
// stopped mid-protocol.
func TestDeadlineExpiryCountsFrameError(t *testing.T) {
	addr := deadServer(t)
	conn, err := DialTimeout(addr, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tel := telemetry.NewRegistry()
	frameErrs := tel.Counter("frame_errors", "test")
	conn.Instrument(ConnInstruments{FrameErrors: frameErrs})

	if _, err := conn.Call(Frame{Verb: "PING"}); err == nil {
		t.Fatal("expected timeout")
	}
	if frameErrs.Value() == 0 {
		t.Fatal("deadline expiry did not bump the frame-errors counter")
	}
}

// echoServer echoes every frame back with verb ECHO.
func echoServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(HandlerFunc(func(c *Conn) {
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			if err := c.Write(Frame{Verb: "ECHO", Payload: f.Payload}); err != nil {
				return
			}
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestReadFaultInjectedError(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	_, addr := echoServer(t)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	faultinject.Arm(faultinject.WireRead, faultinject.Action{Err: errors.New("line cut"), Count: 1})
	_, err = conn.Call(Frame{Verb: "PING", Payload: []byte("x")})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v; want injected", err)
	}
	// The fault consumed its count: the connection still works. (The echo
	// of the first request is still in flight, so drain it first.)
	if f, err := conn.Read(); err != nil || f.Verb != "ECHO" {
		t.Fatalf("drain: %v %v", f, err)
	}
	resp, err := conn.Call(Frame{Verb: "PING", Payload: []byte("y")})
	if err != nil || string(resp.Payload) != "y" {
		t.Fatalf("after fault: %v %v", resp, err)
	}
}

func TestReadFaultDropSkipsOneFrame(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	srv := NewServer(HandlerFunc(func(c *Conn) {
		_ = c.Write(Frame{Verb: "FIRST", Payload: []byte("1")})
		_ = c.Write(Frame{Verb: "SECOND", Payload: []byte("2")})
		// Hold the connection open until the client is done.
		_, _ = c.Read()
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	faultinject.Arm(faultinject.WireRead, faultinject.Action{Drop: true, Count: 1})
	f, err := conn.Read()
	if err != nil {
		t.Fatal(err)
	}
	if f.Verb != "SECOND" {
		t.Fatalf("got %v; the armed drop should have discarded FIRST", f)
	}
}

func TestReadFaultTruncatesPayload(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	_, addr := echoServer(t)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Arm after the request is written: with count 1 the verdict is
	// consumed by the client's read of the echo.
	if err := conn.Write(Frame{Verb: "PING", Payload: []byte("abcdefgh")}); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.WireRead, faultinject.Action{Truncate: 3, Count: 1})
	f, err := conn.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, []byte("abc")) {
		t.Fatalf("payload = %q; want truncated %q", f.Payload, "abc")
	}
}

func TestWriteFaultDropNeverSends(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	_, addr := echoServer(t)
	conn, err := DialTimeout(addr, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	faultinject.Arm(faultinject.WireWrite, faultinject.Action{Drop: true, Count: 1})
	start := time.Now()
	_, err = conn.Call(Frame{Verb: "PING", Payload: []byte("x")})
	if err == nil {
		t.Fatal("dropped request still produced a response")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v; want deadline (no response ever comes)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v", elapsed)
	}
}

func TestWriteFaultTruncateBreaksFrame(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	srvErrs := telemetry.NewRegistry().Counter("srv_frame_errors", "test")
	srv := NewServer(HandlerFunc(func(c *Conn) {
		c.SetIOTimeout(200 * time.Millisecond)
		c.Instrument(ConnInstruments{FrameErrors: srvErrs})
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			_ = c.Write(Frame{Verb: "ECHO", Payload: f.Payload})
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTimeout(addr, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	faultinject.Arm(faultinject.WireWrite, faultinject.Action{Truncate: 2, Count: 1})
	_, err = conn.Call(Frame{Verb: "PING", Payload: []byte("abcdefgh")})
	if err == nil {
		t.Fatal("truncated request still produced a response")
	}
	// The server saw a sender die mid-frame: its bounded read of the
	// missing payload bytes expires and counts a frame error.
	deadline := time.Now().Add(5 * time.Second)
	for srvErrs.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srvErrs.Value() == 0 {
		t.Fatal("server never counted the broken frame")
	}
}

func TestSetIOTimeoutBoundsRead(t *testing.T) {
	addr := deadServer(t)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetIOTimeout(100 * time.Millisecond)
	start := time.Now()
	if _, err := conn.Read(); err == nil {
		t.Fatal("Read returned nil with nothing to read")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Read took %v", elapsed)
	}
	// Clearing the timeout restores unbounded reads (verified indirectly:
	// a fresh short deadline still applies per-operation, i.e. deadlines
	// are not sticky from the expired one).
	conn.SetIOTimeout(50 * time.Millisecond)
	if _, err := conn.Read(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("per-operation deadline did not re-arm")
	}
}
