// Package wire implements the low-level framed message transport shared by
// the three protocols in this repository: GRAMP (the GRAM job protocol),
// the MDS directory protocol, and the unified InfoGram protocol. Each
// protocol defines its own verbs and payload encodings on top of the same
// frame layout, mirroring how the Globus services shared TCP but differed
// at the protocol layer (paper §4).
//
// A frame on the wire is:
//
//	VERB SP DECIMAL-LENGTH LF payload-bytes
//
// VERB is an upper-case token ([A-Z0-9_-]+, at most 32 bytes). The length
// counts the payload bytes that follow the newline. A zero-length payload
// is legal. Frames larger than MaxPayload are rejected to bound memory.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// MaxPayload bounds the size of a single frame payload. The information
// service returns whole key-information-provider blocks at once (all-or-
// nothing queries, paper §6.3), so payloads are modest; 16 MiB is generous.
const MaxPayload = 16 << 20

// maxVerbLen bounds the verb token length.
const maxVerbLen = 32

// Frame is one protocol message: a verb and an opaque payload whose
// encoding is defined by the protocol that owns the verb.
type Frame struct {
	Verb    string
	Payload []byte
}

// WireSize returns the number of bytes the frame occupies on the wire:
// header (verb, space, decimal length, LF) plus payload.
func (f Frame) WireSize() int {
	n := len(f.Verb) + 2 + len(f.Payload) // verb, SP, LF, payload
	l := len(f.Payload)
	for {
		n++
		l /= 10
		if l == 0 {
			return n
		}
	}
}

// String renders a short human-readable description for logs.
func (f Frame) String() string {
	const peek = 48
	p := f.Payload
	if len(p) > peek {
		p = p[:peek]
	}
	return fmt.Sprintf("%s[%d]%q", f.Verb, len(f.Payload), p)
}

// Common framing errors.
var (
	ErrVerbSyntax  = errors.New("wire: malformed verb")
	ErrFrameSyntax = errors.New("wire: malformed frame header")
	ErrTooLarge    = errors.New("wire: frame exceeds maximum payload size")
)

// IsFrameError reports whether err is a protocol framing violation (as
// opposed to an I/O error such as a closed connection); the telemetry
// layer counts these separately.
func IsFrameError(err error) bool {
	return errors.Is(err, ErrVerbSyntax) || errors.Is(err, ErrFrameSyntax) || errors.Is(err, ErrTooLarge)
}

// validVerb reports whether s is a legal verb token.
func validVerb(s string) bool {
	if len(s) == 0 || len(s) > maxVerbLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// appendFrameHeader appends f's wire header — verb, SP, decimal payload
// length, LF — to hdr. A validated verb (≤ maxVerbLen bytes) plus the
// widest length fits in 54 bytes, so a caller passing a fixed-size
// scratch buffer of 64 bytes never triggers a grow.
func appendFrameHeader(hdr []byte, f Frame) []byte {
	hdr = append(hdr, f.Verb...)
	hdr = append(hdr, ' ')
	hdr = strconv.AppendInt(hdr, int64(len(f.Payload)), 10)
	return append(hdr, '\n')
}

// writeFrameInto writes f to w, building the header in hdr's backing
// array; the Conn write path passes a per-connection scratch so
// steady-state frame writes allocate nothing.
func writeFrameInto(w io.Writer, f Frame, hdr []byte) error {
	if !validVerb(f.Verb) {
		return fmt.Errorf("%w: %q", ErrVerbSyntax, f.Verb)
	}
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f.Payload))
	}
	if _, err := w.Write(appendFrameHeader(hdr, f)); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: write payload: %w", err)
		}
	}
	return nil
}

// WriteFrame writes f to w in wire format.
func WriteFrame(w io.Writer, f Frame) error {
	return writeFrameInto(w, f, nil)
}

// writeTruncatedFrame writes a deliberately broken frame: the header
// advertises f's full payload length, but only the first n payload bytes
// follow. Fault injection uses it to simulate a sender dying mid-frame.
func writeTruncatedFrame(w io.Writer, f Frame, n int) error {
	if !validVerb(f.Verb) {
		return fmt.Errorf("%w: %q", ErrVerbSyntax, f.Verb)
	}
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f.Payload))
	}
	if _, err := w.Write(appendFrameHeader(nil, f)); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(f.Payload[:n]); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: read header: %w", err)
	}
	line = line[:len(line)-1] // strip LF
	sp := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			sp = i
			break
		}
	}
	if sp <= 0 || sp == len(line)-0 {
		return Frame{}, fmt.Errorf("%w: %q", ErrFrameSyntax, line)
	}
	verb, lenStr := line[:sp], line[sp+1:]
	if !validVerb(verb) {
		return Frame{}, fmt.Errorf("%w: %q", ErrVerbSyntax, verb)
	}
	n, err := strconv.ParseInt(lenStr, 10, 64)
	if err != nil || n < 0 {
		return Frame{}, fmt.Errorf("%w: bad length %q", ErrFrameSyntax, lenStr)
	}
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: read payload: %w", err)
	}
	return Frame{Verb: verb, Payload: payload}, nil
}
