package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// VerbReject is the admission-control rejection response: the gatekeeper
// answers it *before* any parsing, authorization, provider, or scheduler
// work when a client's token bucket is empty or the backpressure queue is
// shedding. It is deliberately the cheapest frame the server can produce —
// under overload, saying no must cost almost nothing, or the act of
// refusing work becomes the collapse it was meant to prevent (the failure
// mode the MDS performance studies measured in GRIS/GIIS under concurrent
// users).
const VerbReject = "REJECT"

// Reject scope tokens: which admission gate refused the request.
const (
	// RejectScopeQuota: the identity's token bucket was empty.
	RejectScopeQuota = "quota"
	// RejectScopeOverload: the global max-inflight gate shed the request.
	RejectScopeOverload = "overload"
	// RejectScopeBacklog: the job scheduler's backlog is saturated.
	RejectScopeBacklog = "backlog"
)

// maxRejectRetryAfter bounds the backoff hint a decoded REJECT may carry,
// so a hostile or corrupted frame cannot park a well-behaved client for
// hours.
const maxRejectRetryAfter = time.Hour

// Reject is the decoded REJECT payload.
type Reject struct {
	// RetryAfter is the server's backoff hint: how long the client should
	// wait before trying again. Honoring it is what separates a polite
	// retry from hammering a server that is already telling you it is
	// over capacity.
	RetryAfter time.Duration
	// Scope names the gate that refused ("quota", "overload", "backlog").
	Scope string
	// Reason is the human-readable explanation (typically the governing
	// contract's text), for logs — clients must not parse it.
	Reason string
}

// ErrRejectSyntax reports a malformed REJECT payload.
var ErrRejectSyntax = errors.New("wire: malformed REJECT payload")

// validRejectScope reports whether s is a legal scope token: lower-case
// letters, digits, and dashes, non-empty, at most 32 bytes.
func validRejectScope(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
		default:
			return false
		}
	}
	return true
}

// EncodeReject renders r as a REJECT frame. The payload is
//
//	RETRY-AFTER-MS SP SCOPE [SP REASON]
//
// with the hint clamped to [0, 1h] and truncated to milliseconds, and an
// invalid scope normalized to "overload" — encoding never fails, because
// the rejection path must not have failure modes of its own.
func EncodeReject(r Reject) Frame {
	if r.RetryAfter < 0 {
		r.RetryAfter = 0
	}
	if r.RetryAfter > maxRejectRetryAfter {
		r.RetryAfter = maxRejectRetryAfter
	}
	if !validRejectScope(r.Scope) {
		r.Scope = RejectScopeOverload
	}
	payload := make([]byte, 0, 20+len(r.Scope)+1+len(r.Reason))
	payload = strconv.AppendInt(payload, r.RetryAfter.Milliseconds(), 10)
	payload = append(payload, ' ')
	payload = append(payload, r.Scope...)
	if r.Reason != "" {
		payload = append(payload, ' ')
		payload = append(payload, r.Reason...)
	}
	return Frame{Verb: VerbReject, Payload: payload}
}

// DecodeReject parses a REJECT frame's payload.
func DecodeReject(f Frame) (Reject, error) {
	if f.Verb != VerbReject {
		return Reject{}, fmt.Errorf("%w: verb %q", ErrRejectSyntax, f.Verb)
	}
	s := string(f.Payload)
	msStr, rest, _ := strings.Cut(s, " ")
	ms, err := strconv.ParseInt(msStr, 10, 64)
	if err != nil || ms < 0 {
		return Reject{}, fmt.Errorf("%w: bad retry-after %q", ErrRejectSyntax, msStr)
	}
	// Compare in milliseconds: converting first would overflow
	// time.Duration for ms > 2^63/1e6 and slip past the bound negative.
	if ms > int64(maxRejectRetryAfter/time.Millisecond) {
		return Reject{}, fmt.Errorf("%w: retry-after %dms beyond %s", ErrRejectSyntax, ms, maxRejectRetryAfter)
	}
	scope, reason, _ := strings.Cut(rest, " ")
	if !validRejectScope(scope) {
		return Reject{}, fmt.Errorf("%w: bad scope %q", ErrRejectSyntax, scope)
	}
	return Reject{
		RetryAfter: time.Duration(ms) * time.Millisecond,
		Scope:      scope,
		Reason:     reason,
	}, nil
}
