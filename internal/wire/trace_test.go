package wire

import (
	"context"
	"errors"
	"net"
	"testing"

	"infogram/internal/telemetry"
)

func TestTraceCtxRoundtrip(t *testing.T) {
	tc := TraceContext{Trace: telemetry.NewTraceID(), Parent: telemetry.NewSpanID(), Sampled: true}
	orig := Frame{Verb: "SUBMIT", Payload: []byte("&(executable=noop)")}
	wireFrame := EncodeTraceCtx(tc, orig)
	got, inner, err := DecodeTraceCtx(wireFrame)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Errorf("decoded = %+v, want %+v", got, tc)
	}
	if inner.Verb != orig.Verb || string(inner.Payload) != string(orig.Payload) {
		t.Errorf("inner = %+v, want %+v", inner, orig)
	}
}

func TestTraceCtxUnsampledZeroParent(t *testing.T) {
	// A request from a client with no local span: zero parent, sampled
	// bit off, empty payload.
	tc := TraceContext{Trace: telemetry.NewTraceID()}
	got, inner, err := DecodeTraceCtx(EncodeTraceCtx(tc, Frame{Verb: "PING"}))
	if err != nil {
		t.Fatal(err)
	}
	if got != tc || got.Sampled || got.Parent != 0 {
		t.Errorf("decoded = %+v, want %+v", got, tc)
	}
	if len(inner.Payload) != 0 {
		t.Errorf("inner payload = %q, want empty", inner.Payload)
	}
}

func TestDecodeTraceCtxRejectsMalformed(t *testing.T) {
	for _, payload := range []string{
		"",           // nothing
		"abc",        // no separators
		"abc 12",     // two fields
		" 12 1 x",    // empty trace
		"abc zz 1 x", // bad parent hex
		"abc 12 2 x", // bad sampled bit
		"abc 12  x",  // empty sampled bit
	} {
		if _, _, err := DecodeTraceCtx(Frame{Verb: "PING", Payload: []byte(payload)}); !errors.Is(err, ErrTraceSyntax) {
			t.Errorf("payload %q: err = %v, want ErrTraceSyntax", payload, err)
		}
	}
}

// tracePair dials a TCP pair and runs handler on the accepting side.
func tracePair(t *testing.T, handler func(c *Conn)) *Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		handler(NewConn(nc))
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc)
	t.Cleanup(func() {
		conn.Close()
		<-done
	})
	return conn
}

func TestNegotiateTraceAccepted(t *testing.T) {
	conn := tracePair(t, func(c *Conn) {
		f, err := c.Read()
		if err != nil || f.Verb != VerbTrace {
			return
		}
		_ = c.WriteString(VerbTraceOK, "")
	})
	ok, err := NegotiateTrace(context.Background(), conn)
	if err != nil || !ok {
		t.Fatalf("NegotiateTrace = %t, %v; want accepted", ok, err)
	}
}

func TestNegotiateTraceDeclinedByOldServer(t *testing.T) {
	// A pre-trace server answers the unknown verb with ERROR; the client
	// must treat that as a decline, not a failure.
	conn := tracePair(t, func(c *Conn) {
		_, _ = c.Read()
		_ = c.WriteString("ERROR", "unknown verb TRACE")
	})
	ok, err := NegotiateTrace(context.Background(), conn)
	if err != nil {
		t.Fatalf("decline surfaced as error: %v", err)
	}
	if ok {
		t.Fatal("ERROR reply treated as acceptance")
	}
}

func TestNegotiateTraceTransportError(t *testing.T) {
	conn := tracePair(t, func(c *Conn) {
		_, _ = c.Read()
		c.Close() // cut the connection instead of answering
	})
	if _, err := NegotiateTrace(context.Background(), conn); err == nil {
		t.Fatal("transport failure not surfaced")
	}
}
