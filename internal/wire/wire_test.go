package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Verb: "SUBMIT", Payload: []byte("(executable=/bin/date)")},
		{Verb: "PING", Payload: nil},
		{Verb: "RESULT-LDIF", Payload: []byte("dn: o=grid\nkw: Memory\n")},
		{Verb: "A", Payload: []byte{0, 1, 2, 255}},
		{Verb: "VERB_WITH_UNDERSCORE", Payload: []byte("x")},
	}
	for _, f := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%v): %v", f, err)
		}
		got, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("ReadFrame(%v): %v", f, err)
		}
		if got.Verb != f.Verb || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("round trip: got %v, want %v", got, f)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	// Any payload bytes survive framing unchanged.
	prop := func(payload []byte) bool {
		f := Frame{Verb: "DATA", Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Verb == "DATA" && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Verb: "ONE", Payload: []byte("first")},
		{Verb: "TWO", Payload: nil},
		{Verb: "THREE", Payload: []byte("third\nwith\nnewlines")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Verb != want.Verb || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %v, want %v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("expected io.EOF after last frame, got %v", err)
	}
}

func TestWriteFrameRejectsBadVerbs(t *testing.T) {
	bad := []string{"", "lower", "HAS SPACE", "X!", strings.Repeat("V", 33)}
	for _, verb := range bad {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Verb: verb}); !errors.Is(err, ErrVerbSyntax) {
			t.Errorf("verb %q: got %v, want ErrVerbSyntax", verb, err)
		}
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, Frame{Verb: "BIG", Payload: make([]byte, MaxPayload+1)})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}

func TestReadFrameRejectsMalformedHeaders(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"no length", "VERB\n"},
		{"negative length", "VERB -1\n"},
		{"non-numeric length", "VERB abc\n"},
		{"bad verb", "lower 3\nabc"},
		{"oversized", "BIG 999999999999\n"},
		{"empty verb", " 3\nabc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFrame(bufio.NewReader(strings.NewReader(tc.input))); err == nil {
				t.Errorf("expected error for %q", tc.input)
			}
		})
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("VERB 10\nshort"))); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestServerEcho(t *testing.T) {
	srv := NewServer(HandlerFunc(func(c *Conn) {
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			if err := c.Write(Frame{Verb: "ECHO", Payload: f.Payload}); err != nil {
				return
			}
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	resp, err := conn.Call(Frame{Verb: "HELLO", Payload: []byte("payload")})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Verb != "ECHO" || string(resp.Payload) != "payload" {
		t.Errorf("got %v", resp)
	}
	if srv.AcceptedConns() != 1 {
		t.Errorf("AcceptedConns = %d, want 1", srv.AcceptedConns())
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := NewServer(HandlerFunc(func(c *Conn) {
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			_ = c.Write(f)
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for j := 0; j < 20; j++ {
				resp, err := conn.Call(Frame{Verb: "MSG", Payload: []byte("data")})
				if err != nil {
					errs <- err
					return
				}
				if string(resp.Payload) != "data" {
					errs <- errors.New("corrupted echo")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.AcceptedConns(); got != clients {
		t.Errorf("AcceptedConns = %d, want %d", got, clients)
	}
}

func TestConcurrentCallsDoNotInterleave(t *testing.T) {
	// Regression: multiple goroutines sharing one Conn must each receive
	// the response to their own request — Call serializes the write/read
	// pair. The server echoes the request payload, so any interleaving
	// shows up as a mismatched echo.
	srv := NewServer(HandlerFunc(func(c *Conn) {
		for {
			f, err := c.Read()
			if err != nil {
				return
			}
			_ = c.Write(Frame{Verb: "ECHO", Payload: f.Payload})
		}
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const workers, calls = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				payload := []byte(strings.Repeat("x", w+1) + ":" + string(rune('a'+i%26)))
				resp, err := conn.Call(Frame{Verb: "REQ", Payload: payload})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Payload, payload) {
					errs <- errors.New("interleaved response: got " + string(resp.Payload) + " want " + string(payload))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	block := make(chan struct{})
	srv := NewServer(HandlerFunc(func(c *Conn) {
		<-block
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() {
		_, err := conn.Read()
		done <- err
	}()
	close(block)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err == nil {
		t.Error("expected read error after server close")
	}
	// Closing twice is safe.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestListenAfterClose(t *testing.T) {
	srv := NewServer(HandlerFunc(func(c *Conn) {}))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("got %v, want ErrServerClosed", err)
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Verb: "LONG", Payload: bytes.Repeat([]byte("x"), 100)}
	s := f.String()
	if !strings.Contains(s, "LONG[100]") {
		t.Errorf("String() = %q", s)
	}
}
