package loadgen

import (
	"context"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// TestSoakOpenLoopUnderAdmission is the long-haul satellite: a sustained
// open-loop run (default 60s, INFOGRAM_SOAK_TIME overrides) against an
// in-process server whose capacity is deliberately small, under -race via
// scripts/check.sh. It proves three things a short test cannot:
//
//  1. the admission path sheds — the offered rate exceeds both the quota
//     and the inflight gate, so rejections must occur continuously;
//  2. shed requests never reach providers — provider executions plus
//     server-side rejections can never exceed what the server admitted;
//  3. nothing leaks — after the run and service close, the goroutine count
//     returns to its baseline.
//
// Gated behind INFOGRAM_SOAK=1 because a minute-long -race run does not
// belong in every `go test ./...`.
func TestSoakOpenLoopUnderAdmission(t *testing.T) {
	if os.Getenv("INFOGRAM_SOAK") != "1" {
		t.Skip("soak test disabled; set INFOGRAM_SOAK=1 (scripts/check.sh does)")
	}
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	dur := 60 * time.Second
	if v := os.Getenv("INFOGRAM_SOAK_TIME"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("INFOGRAM_SOAK_TIME=%q: %v", v, err)
		}
		dur = d
	}

	baseline := runtime.NumGoroutine()

	// A slow provider with TTL 0 (re-executed per query) caps server
	// capacity: with MaxInflight 8 and ~2ms of work per query, the server
	// tops out near 4k info replies/s — and the offered rate plus the
	// quota sit well above what it will admit.
	var execs atomic.Int64
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Slow", func(ctx context.Context) (provider.Attributes, error) {
		execs.Add(1)
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
		return provider.Attributes{{Name: "v", Value: "1"}}, nil
	}), provider.RegisterOptions{})

	quota, err := gsi.ParseContractsString(`allow * for "/O=Grid/CN=alice" rate=150 burst=50`)
	if err != nil {
		t.Fatalf("quota: %v", err)
	}
	addr, svc, user, trust := testService(t, reg, func(cfg *core.Config) {
		cfg.Quota = quota
		cfg.MaxInflight = 8
		cfg.ShedQueue = 16
	})

	g, err := New(Config{
		Addr:           addr,
		Cred:           user,
		Trust:          trust,
		Rate:           400, // ~2.7x the 150/s quota: sustained shedding
		Duration:       dur,
		Mix:            Mix{Info: 1}, // 100% info: every admitted request hits the provider
		PoolSize:       16,
		RequestTimeout: 2 * time.Second,
		InfoXRSL:       "&(info=Slow)(response=immediate)",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := g.Run(context.Background())
	t.Logf("soak: %s", rep)

	if rep.OK == 0 {
		t.Fatalf("nothing succeeded: %+v", rep)
	}
	if rep.Rejected == 0 {
		t.Fatalf("offered 400/s against a 150/s quota but nothing was shed: %+v", rep)
	}
	if rep.Errors > rep.Offered/100 {
		t.Fatalf("error rate above 1%%: %+v", rep)
	}

	// Shed requests must never reach a provider: the REJECT is sent before
	// collection starts. Every provider execution therefore corresponds to
	// an admitted request, and admitted = offered - rejected - overrun
	// (errors are admitted requests that failed later, so they stay in).
	rejectedSrv := svc.Telemetry().Counter("infogram_admission_rejected_total", "",
		telemetry.Label{Key: "scope", Value: "quota"}).Value() +
		svc.Telemetry().Counter("infogram_admission_rejected_total", "",
			telemetry.Label{Key: "scope", Value: "overload"}).Value()
	if rejectedSrv < rep.Rejected {
		t.Errorf("server counted %d rejections, harness saw %d", rejectedSrv, rep.Rejected)
	}
	admitted := rep.Offered - rep.Rejected - rep.Overrun
	if got := execs.Load(); got > admitted {
		t.Errorf("provider executed %d times but only %d requests were admitted — shed requests reached the provider", got, admitted)
	}

	// Close the service and require the goroutine count to come back to
	// baseline (small slack for runtime helpers): a leak per request would
	// be tens of thousands of goroutines after a minute at 400/s.
	svc.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
