// Package loadgen is the open-loop load harness for the InfoGram service:
// it offers requests at a fixed arrival rate regardless of how fast the
// server answers, which is the load model a Grid service actually faces —
// the MDS performance studies ran concurrent-user curves against GRIS/GIIS
// precisely because a million users do not politely wait for each other's
// responses. A closed-loop driver (send, wait, send) self-throttles as the
// server slows down and therefore hides the collapse point; an open-loop
// driver keeps the offered rate constant, so when the server falls behind,
// queueing delay shows up in the measured latency instead of silently
// reducing the load.
//
// Latency is measured from each request's *scheduled* arrival time, not
// from when a connection became available, so connection-pool checkout
// wait — the client-side queue where overload first becomes visible — is
// inside the number (the coordinated-omission correction).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/core"
	"infogram/internal/gsi"
	"infogram/internal/telemetry"
)

// Mix is the per-verb request mix, as relative weights. The zero Mix is
// replaced by DefaultMix.
type Mix struct {
	Ping   int
	Info   int
	Submit int
	Status int
}

// DefaultMix approximates an information-service-heavy workload.
var DefaultMix = Mix{Ping: 6, Info: 3, Submit: 0, Status: 1}

// total sums the weights.
func (m Mix) total() int { return m.Ping + m.Info + m.Submit + m.Status }

// String renders the mix in the flag syntax.
func (m Mix) String() string {
	return fmt.Sprintf("ping=%d,info=%d,submit=%d,status=%d", m.Ping, m.Info, m.Submit, m.Status)
}

// ParseMix parses "ping=6,info=3,submit=0,status=1"; omitted verbs weigh
// zero.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix element %q must be verb=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", v)
		}
		switch strings.ToLower(k) {
		case "ping":
			m.Ping = w
		case "info":
			m.Info = w
		case "submit":
			m.Submit = w
		case "status":
			m.Status = w
		default:
			return m, fmt.Errorf("loadgen: unknown mix verb %q (ping, info, submit, status)", k)
		}
	}
	if m.total() <= 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

// schedule expands the mix into one deterministic cycle of verbs, spread
// so a 6:3:1 mix interleaves rather than clustering (largest-remainder
// round-robin). Determinism matters: two runs at the same rate offer the
// same byte-for-byte sequence, so curves are comparable.
func (m Mix) schedule() []string {
	type slot struct {
		verb   string
		weight int
		credit float64
	}
	slots := []slot{
		{"ping", m.Ping, 0},
		{"info", m.Info, 0},
		{"submit", m.Submit, 0},
		{"status", m.Status, 0},
	}
	total := m.total()
	out := make([]string, 0, total)
	for len(out) < total {
		best := -1
		for i := range slots {
			slots[i].credit += float64(slots[i].weight) / float64(total)
			if slots[i].weight > 0 && (best < 0 || slots[i].credit > slots[best].credit) {
				best = i
			}
		}
		slots[best].credit--
		out = append(out, slots[best].verb)
	}
	return out
}

// Config parameterizes one open-loop run.
type Config struct {
	// Addr is the InfoGram service address.
	Addr string
	// Targets, when non-empty, spreads the offered load round-robin across
	// several service addresses (N gatekeepers, or N cluster proxies) with
	// an independent connection pool per target; Addr is ignored. Status
	// polls are routed back to the target that accepted the job, since
	// direct multi-target runs have no routing tier to find it.
	Targets []string
	// Cred/Trust authenticate the generated clients.
	Cred  *gsi.Credential
	Trust *gsi.TrustStore
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals are offered; the run then drains
	// outstanding requests (bounded by RequestTimeout).
	Duration time.Duration
	// Warmup, when positive, offers arrivals at the configured rate for
	// this long before measurement begins. Warmup requests heat the
	// connection pool and the server's caches but are excluded from every
	// reported number: counters, latency quantiles, and the cache hit-ratio
	// delta (whose baseline is probed after the warmup drains). Without it,
	// a short keyed run measures mostly compulsory misses.
	Warmup time.Duration
	// Mix is the per-verb weight mix; zero selects DefaultMix.
	Mix Mix
	// PoolSize bounds the connection pool (default 16). The pool is the
	// client-side queue: when the server slows down, checkout wait grows,
	// and because latency is measured from the scheduled arrival it is
	// part of the reported number.
	PoolSize int
	// RequestTimeout bounds each request, checkout wait included
	// (default 5s). A request that cannot finish inside it counts as an
	// error — in an open-loop world, an answer that late is a failure.
	RequestTimeout time.Duration
	// MaxOutstanding caps concurrently outstanding requests as a local
	// safety valve (default 4096): arrivals beyond it are counted as
	// overrun instead of spawned, so a collapsed server exhausts the
	// budget rather than the harness's memory.
	MaxOutstanding int
	// InfoXRSL is the information query submitted for "info" arrivals
	// (default "&(info=Runtime)").
	InfoXRSL string
	// Keys, when positive, switches "info" arrivals to keyed queries: each
	// arrival draws a key from [0, Keys) and issues a filter string unique
	// to that key, so the server's response cache faces a realistic keyed
	// population instead of one endlessly repeated query.
	Keys int
	// Zipf is the skew exponent for the key draw (Zipfian when > 1,
	// uniform otherwise). The draw is deterministically seeded: two runs
	// at the same settings offer the same key sequence.
	Zipf float64
	// InfoKeyword is the keyword keyed queries target (default "Runtime").
	InfoKeyword string
	// JobXRSL is the job submitted for "submit" arrivals (required when
	// the mix weights submit).
	JobXRSL string
	// DisableMux forces one-request-at-a-time connections.
	DisableMux bool
}

// Report is the outcome of one run, JSON-shaped for the bench harness.
type Report struct {
	Rate     float64 `json:"rate"`
	Duration float64 `json:"duration_s"`
	Warmup   float64 `json:"warmup_s,omitempty"`
	Mix      string  `json:"mix"`

	Offered   int64 `json:"offered"`
	OK        int64 `json:"ok"`
	Rejected  int64 `json:"rejected"`
	Errors    int64 `json:"errors"`
	Overrun   int64 `json:"overrun"`
	Contacts  int64 `json:"jobs_submitted"`
	ShedQuota int64 `json:"shed_quota"`
	ShedOver  int64 `json:"shed_overload"`
	ShedBack  int64 `json:"shed_backlog"`

	// Goodput is completed-OK per second of offered time.
	Goodput float64 `json:"goodput_rps"`

	// Keyed-mode fields (Keys > 0): the key population, its skew, and the
	// server-side response-cache effectiveness over the run, read as
	// selfmetrics counter deltas.
	Keys        int     `json:"keys,omitempty"`
	Zipf        float64 `json:"zipf,omitempty"`
	CacheHits   int64   `json:"cache_hits,omitempty"`
	CacheMisses int64   `json:"cache_misses,omitempty"`
	HitRatio    float64 `json:"cache_hit_ratio,omitempty"`

	P50us  int64 `json:"p50_us"`
	P90us  int64 `json:"p90_us"`
	P99us  int64 `json:"p99_us"`
	P999us int64 `json:"p999_us"`
	Meanus int64 `json:"mean_us"`
}

// String renders the human-facing summary.
func (r Report) String() string {
	s := fmt.Sprintf(
		"rate=%.0f/s dur=%.0fs offered=%d ok=%d rejected=%d (quota=%d overload=%d backlog=%d) errors=%d overrun=%d goodput=%.1f/s p50=%s p90=%s p99=%s p99.9=%s",
		r.Rate, r.Duration, r.Offered, r.OK, r.Rejected, r.ShedQuota, r.ShedOver, r.ShedBack,
		r.Errors, r.Overrun, r.Goodput,
		time.Duration(r.P50us)*time.Microsecond, time.Duration(r.P90us)*time.Microsecond,
		time.Duration(r.P99us)*time.Microsecond, time.Duration(r.P999us)*time.Microsecond)
	if r.Warmup > 0 {
		s = fmt.Sprintf("warmup=%.0fs ", r.Warmup) + s
	}
	if r.Keys > 0 {
		s += fmt.Sprintf(" keys=%d zipf=%.2f cache_hits=%d cache_misses=%d hit_ratio=%.3f",
			r.Keys, r.Zipf, r.CacheHits, r.CacheMisses, r.HitRatio)
	}
	return s
}

// Generator runs open-loop load against one or more services.
type Generator struct {
	cfg   Config
	pools []*core.Pool // one per target; a single-address run has one
	hist  *telemetry.Histogram
	// rng/zipf drive the keyed-query draw; only the arrival loop touches
	// them, and they are seeded deterministically.
	rng  *rand.Rand
	zipf *rand.Zipf

	offered  atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	errs     atomic.Int64
	overrun  atomic.Int64
	inflight atomic.Int64
	shed     [3]atomic.Int64 // quota, overload, backlog

	mu       sync.Mutex
	contacts []submitted
	statusN  int
}

// submitted remembers which target accepted a job, so status polls can
// go back to it in direct multi-target runs.
type submitted struct {
	contact string
	pool    int
}

// shedIndex maps a REJECT scope to its counter slot.
func shedIndex(scope string) int {
	switch scope {
	case "quota":
		return 0
	case "overload":
		return 1
	default:
		return 2
	}
}

// New builds a generator; Run may be called once.
func New(cfg Config) (*Generator, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 16
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	if cfg.InfoXRSL == "" {
		cfg.InfoXRSL = "&(info=Runtime)"
	}
	if cfg.InfoKeyword == "" {
		cfg.InfoKeyword = "Runtime"
	}
	if cfg.Mix.Submit > 0 && cfg.JobXRSL == "" {
		return nil, fmt.Errorf("loadgen: mix weights submit but no job xRSL is configured")
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []string{cfg.Addr}
	}
	reg := telemetry.NewRegistry()
	g := &Generator{
		cfg:  cfg,
		hist: reg.Histogram("loadgen_latency_seconds", "scheduled-arrival-to-completion latency"),
	}
	for _, addr := range targets {
		g.pools = append(g.pools, core.NewPool(addr, cfg.Cred, cfg.Trust, core.PoolOptions{
			Size: cfg.PoolSize,
			Client: core.Options{
				RequestTimeout: cfg.RequestTimeout,
				DisableMux:     cfg.DisableMux,
			},
		}))
	}
	if cfg.Keys > 0 {
		g.rng = rand.New(rand.NewSource(42))
		if cfg.Zipf > 1 {
			g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, uint64(cfg.Keys-1))
		}
	}
	return g, nil
}

// keyedQuery draws the next key and renders its distinct info query: the
// filter string embeds the key, so every key occupies its own slot in the
// server's response cache.
func (g *Generator) keyedQuery() string {
	var k uint64
	if g.zipf != nil {
		k = g.zipf.Uint64()
	} else {
		k = uint64(g.rng.Intn(g.cfg.Keys))
	}
	return fmt.Sprintf("&(info=%s)(filter=\"key%08d*\")", g.cfg.InfoKeyword, k)
}

// cacheCounters sums the response-cache counters across every target,
// read through the selfmetrics provider — the harness measures hit ratio
// the same way any client would, over the wire. probes reports how many
// targets answered; each answering probe is itself one cache miss
// (selfmetrics is never cached), which the caller subtracts.
func (g *Generator) cacheCounters(ctx context.Context) (hits, misses int64, probes int) {
	for _, pool := range g.pools {
		h, m, ok := g.poolCacheCounters(ctx, pool)
		if !ok {
			continue
		}
		hits += h
		misses += m
		probes++
	}
	return hits, misses, probes
}

func (g *Generator) poolCacheCounters(ctx context.Context, pool *core.Pool) (hits, misses int64, ok bool) {
	cctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	client, err := pool.Checkout(cctx)
	if err != nil {
		return 0, 0, false
	}
	res, err := client.QueryRawContext(cctx, `&(info=selfmetrics)(filter="selfmetrics:infogram_bytecache_*")`)
	if err != nil {
		pool.Discard(client)
		return 0, 0, false
	}
	pool.Checkin(client)
	for _, e := range res.Entries {
		if v, found := e.Get("selfmetrics:infogram_bytecache_hits_total"); found {
			hits, _ = strconv.ParseInt(v, 10, 64)
			ok = true
		}
		if v, found := e.Get("selfmetrics:infogram_bytecache_misses_total"); found {
			misses, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return hits, misses, ok
}

// offer runs one open-loop arrival phase for dur and drains it. record
// selects whether outcomes land in the run's counters and histogram — the
// warmup phase offers identical load but leaves every number untouched.
func (g *Generator) offer(ctx context.Context, verbs []string, dur time.Duration, record bool) time.Duration {
	interval := float64(time.Second) / g.cfg.Rate
	start := time.Now()
	end := start.Add(dur)

	var wg sync.WaitGroup
	for n := int64(0); ; n++ {
		sched := start.Add(time.Duration(float64(n) * interval))
		if sched.After(end) || ctx.Err() != nil {
			break
		}
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if record {
			g.offered.Add(1)
		}
		// The safety valve: an open-loop harness must not let a collapsed
		// server turn into unbounded goroutine growth on the client.
		if g.inflight.Load() >= int64(g.cfg.MaxOutstanding) {
			if record {
				g.overrun.Add(1)
			}
			continue
		}
		g.inflight.Add(1)
		wg.Add(1)
		verb := verbs[n%int64(len(verbs))]
		query := g.cfg.InfoXRSL
		if verb == "info" && g.cfg.Keys > 0 {
			// Drawn in the arrival loop so the key sequence is a pure
			// function of the seed, independent of completion order.
			query = g.keyedQuery()
		}
		// Targets are walked round-robin by arrival index, so a 2-node run
		// offers each node exactly half the load in the same deterministic
		// order every run.
		poolIdx := int(n % int64(len(g.pools)))
		go func() {
			defer wg.Done()
			defer g.inflight.Add(-1)
			g.one(ctx, verb, query, poolIdx, sched, record)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// Run offers arrivals for the configured duration, drains, and reports.
// The context cancels the run early (the partial report is still valid).
func (g *Generator) Run(ctx context.Context) Report {
	defer func() {
		for _, pool := range g.pools {
			pool.Close()
		}
	}()
	verbs := g.cfg.Mix.schedule()

	if g.cfg.Warmup > 0 {
		g.offer(ctx, verbs, g.cfg.Warmup, false)
	}
	// The hit-ratio baseline is read after the warmup drains, so warmup
	// fills (and their compulsory misses) stay out of the measured delta.
	var hits0, miss0 int64
	probed := false
	if g.cfg.Keys > 0 {
		var n int
		hits0, miss0, n = g.cacheCounters(ctx)
		probed = n > 0
	}
	elapsed := g.offer(ctx, verbs, g.cfg.Duration, true)

	snap := g.hist.Snapshot()
	offered := g.offered.Load()
	rep := Report{
		Rate:      g.cfg.Rate,
		Duration:  g.cfg.Duration.Seconds(),
		Warmup:    g.cfg.Warmup.Seconds(),
		Mix:       g.cfg.Mix.String(),
		Offered:   offered,
		OK:        g.ok.Load(),
		Rejected:  g.rejected.Load(),
		Errors:    g.errs.Load(),
		Overrun:   g.overrun.Load(),
		ShedQuota: g.shed[0].Load(),
		ShedOver:  g.shed[1].Load(),
		ShedBack:  g.shed[2].Load(),
		P50us:     snap.Quantile(0.50).Microseconds(),
		P90us:     snap.Quantile(0.90).Microseconds(),
		P99us:     snap.Quantile(0.99).Microseconds(),
		P999us:    snap.Quantile(0.999).Microseconds(),
		Meanus:    snap.Mean().Microseconds(),
	}
	g.mu.Lock()
	rep.Contacts = int64(len(g.contacts))
	g.mu.Unlock()
	if s := elapsed.Seconds(); s > 0 {
		rep.Goodput = float64(rep.OK) / s
	}
	if g.cfg.Keys > 0 {
		rep.Keys = g.cfg.Keys
		rep.Zipf = g.cfg.Zipf
		if probed {
			if h1, m1, n := g.cacheCounters(context.Background()); n > 0 {
				rep.CacheHits = h1 - hits0
				// Each closing probe's own lookup misses (selfmetrics is
				// never cached); keep them out of the workload's numbers.
				rep.CacheMisses = m1 - miss0 - int64(n)
				if rep.CacheMisses < 0 {
					rep.CacheMisses = 0
				}
				if total := rep.CacheHits + rep.CacheMisses; total > 0 {
					rep.HitRatio = float64(rep.CacheHits) / float64(total)
				}
			}
		}
	}
	return rep
}

// one executes a single arrival and classifies its outcome. Unrecorded
// (warmup) arrivals do the same work but touch no counters.
func (g *Generator) one(ctx context.Context, verb, query string, poolIdx int, sched time.Time, record bool) {
	var contact string
	if verb == "status" {
		// The contact is drawn before checkout so the poll can be routed
		// to the target that accepted the job.
		g.mu.Lock()
		if len(g.contacts) > 0 {
			s := g.contacts[g.statusN%len(g.contacts)]
			g.statusN++
			contact, poolIdx = s.contact, s.pool
		}
		g.mu.Unlock()
	}
	pool := g.pools[poolIdx]
	rctx, cancel := context.WithDeadline(ctx, sched.Add(g.cfg.RequestTimeout))
	defer cancel()
	client, err := pool.Checkout(rctx)
	if err != nil {
		if record {
			g.errs.Add(1)
		}
		return
	}
	err = g.issue(rctx, client, verb, query, contact, poolIdx)
	var rej *core.RejectedError
	if errors.As(err, &rej) {
		// A rejection keeps its connection: the server refused before
		// doing work, the transport is healthy.
		pool.Checkin(client)
		if record {
			g.rejected.Add(1)
			g.shed[shedIndex(rej.Scope)].Add(1)
		}
		return
	}
	if err != nil {
		pool.Discard(client)
		if record {
			g.errs.Add(1)
		}
		return
	}
	pool.Checkin(client)
	if record {
		g.ok.Add(1)
		g.hist.Observe(time.Since(sched))
	}
}

// issue performs verb's request on a leased client.
func (g *Generator) issue(ctx context.Context, client *core.Client, verb, query, contact string, poolIdx int) error {
	switch verb {
	case "info":
		_, err := client.QueryRawContext(ctx, query)
		return err
	case "submit":
		contact, err := client.SubmitContext(ctx, g.cfg.JobXRSL)
		if err == nil {
			g.mu.Lock()
			if len(g.contacts) < 4096 {
				g.contacts = append(g.contacts, submitted{contact: contact, pool: poolIdx})
			}
			g.mu.Unlock()
		}
		return err
	case "status":
		if contact == "" {
			// No job submitted yet to poll; a ping keeps the arrival real.
			return client.PingContext(ctx)
		}
		_, err := client.StatusContext(ctx, contact)
		return err
	default:
		return client.PingContext(ctx)
	}
}

// Curve runs one generator per rate, serially, and returns the reports in
// rate order — the users-vs-throughput experiment as a library call.
func Curve(ctx context.Context, base Config, rates []float64) []Report {
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	out := make([]Report, 0, len(sorted))
	for _, r := range sorted {
		if ctx.Err() != nil {
			break
		}
		cfg := base
		cfg.Rate = r
		g, err := New(cfg)
		if err != nil {
			continue
		}
		out = append(out, g.Run(ctx))
	}
	return out
}
