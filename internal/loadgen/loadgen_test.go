package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"infogram/internal/core"
	"infogram/internal/gram"
	"infogram/internal/gsi"
	"infogram/internal/provider"
	"infogram/internal/scheduler"
	"infogram/internal/telemetry"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("ping=6, info=3,status=1")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	if m != (Mix{Ping: 6, Info: 3, Status: 1}) {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"", "ping", "ping=x", "ping=-1", "dance=3", "ping=0,info=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestMixScheduleInterleavesDeterministically(t *testing.T) {
	m := Mix{Ping: 6, Info: 3, Status: 1}
	s := m.schedule()
	if len(s) != 10 {
		t.Fatalf("cycle length = %d", len(s))
	}
	counts := map[string]int{}
	for _, v := range s {
		counts[v]++
	}
	if counts["ping"] != 6 || counts["info"] != 3 || counts["status"] != 1 {
		t.Fatalf("cycle composition = %v", counts)
	}
	// Interleaved, not clustered: the 6 pings never run 4-in-a-row.
	if strings.Contains(strings.Join(s, " "), "ping ping ping ping") {
		t.Fatalf("schedule clusters: %v", s)
	}
	s2 := m.schedule()
	if strings.Join(s, ",") != strings.Join(s2, ",") {
		t.Fatal("schedule is not deterministic")
	}
}

// testService starts an in-process InfoGram service and returns the pieces
// the generator needs. mutate may adjust the Config pre-Listen.
func testService(t *testing.T, reg *provider.Registry, mutate func(*core.Config)) (addr string, svc *core.Service, user *gsi.Credential, trust *gsi.TrustStore) {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA", time.Hour, now)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	trust = gsi.NewTrustStore(ca.Certificate())
	svcCred, err := ca.IssueIdentity("/O=Grid/CN=service", time.Hour, now)
	if err != nil {
		t.Fatalf("IssueIdentity: %v", err)
	}
	user, err = ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	if err != nil {
		t.Fatalf("IssueIdentity: %v", err)
	}
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=alice", "alice")
	fn := scheduler.NewFunc(scheduler.TrustedMode, scheduler.Budgets{})
	fn.RegisterFunc("noop", func(ctx context.Context, sb *scheduler.Sandbox, args []string, stdin string) (string, error) {
		return "", nil
	})
	cfg := core.Config{
		ResourceName: "load.test",
		Credential:   svcCred,
		Trust:        trust,
		Gridmap:      gm,
		Registry:     reg,
		Backends:     gram.Backends{Func: fn},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc = core.NewService(cfg)
	addr, err = svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return addr, svc, user, trust
}

func TestOpenLoopShortRun(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Static",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	addr, _, user, trust := testService(t, reg, nil)

	g, err := New(Config{
		Addr:           addr,
		Cred:           user,
		Trust:          trust,
		Rate:           200,
		Duration:       500 * time.Millisecond,
		Mix:            Mix{Ping: 3, Info: 1, Submit: 1, Status: 1},
		PoolSize:       4,
		RequestTimeout: 2 * time.Second,
		InfoXRSL:       "&(info=Static)",
		JobXRSL:        "&(executable=noop)(jobtype=func)",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := g.Run(context.Background())
	if rep.Offered < 50 {
		t.Fatalf("offered = %d, want ~100", rep.Offered)
	}
	if rep.OK == 0 {
		t.Fatalf("no request succeeded: %+v", rep)
	}
	if rep.OK+rep.Rejected+rep.Errors+rep.Overrun != rep.Offered {
		t.Fatalf("outcomes do not add up: %+v", rep)
	}
	if rep.Errors > 0 {
		t.Fatalf("unexpected errors against a healthy server: %+v", rep)
	}
	if rep.Contacts == 0 {
		t.Fatalf("submit arrivals produced no contacts: %+v", rep)
	}
	if rep.P50us <= 0 || rep.P99us < rep.P50us {
		t.Fatalf("nonsensical quantiles: %+v", rep)
	}
}

func TestKeyedInfoQueriesMeasureHitRatio(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Static",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	addr, _, user, trust := testService(t, reg, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
	})

	g, err := New(Config{
		Addr:           addr,
		Cred:           user,
		Trust:          trust,
		Rate:           400,
		Duration:       500 * time.Millisecond,
		Mix:            Mix{Info: 1},
		PoolSize:       4,
		RequestTimeout: 2 * time.Second,
		Keys:           8, // tiny population: repeats guaranteed
		Zipf:           1.2,
		InfoKeyword:    "Static",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := g.Run(context.Background())
	if rep.OK == 0 || rep.Errors > 0 {
		t.Fatalf("keyed run unhealthy: %+v", rep)
	}
	if rep.Keys != 8 || rep.Zipf != 1.2 {
		t.Fatalf("keyed parameters not reported: %+v", rep)
	}
	// 8 keys across ~200 info arrivals: almost everything repeats.
	if rep.CacheHits == 0 {
		t.Fatalf("no cache hits observed: %+v", rep)
	}
	if rep.CacheMisses < 1 || rep.CacheMisses > 8+2 {
		t.Fatalf("misses = %d, want about one per key: %+v", rep.CacheMisses, rep)
	}
	if rep.HitRatio <= 0.5 || rep.HitRatio >= 1 {
		t.Fatalf("hit ratio = %.3f, want (0.5, 1): %+v", rep.HitRatio, rep)
	}
	if !strings.Contains(rep.String(), "hit_ratio=") {
		t.Fatalf("summary missing hit ratio: %s", rep.String())
	}

	// Determinism: the same settings draw the same key sequence, so a
	// second run against the warm server misses at most a negligible
	// handful (TTL is a minute; the population is already resident).
	g2, err := New(Config{
		Addr: addr, Cred: user, Trust: trust,
		Rate: 400, Duration: 250 * time.Millisecond,
		Mix: Mix{Info: 1}, PoolSize: 4, RequestTimeout: 2 * time.Second,
		Keys: 8, Zipf: 1.2, InfoKeyword: "Static",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep2 := g2.Run(context.Background())
	if rep2.CacheMisses > 1 {
		t.Fatalf("warm rerun missed %d times: %+v", rep2.CacheMisses, rep2)
	}
	if rep2.HitRatio < 0.99 {
		t.Fatalf("warm rerun hit ratio = %.3f: %+v", rep2.HitRatio, rep2)
	}
}

func TestOpenLoopObservesQuotaRejections(t *testing.T) {
	quota, err := gsi.ParseContractsString(`allow * rate=0.001 burst=5`)
	if err != nil {
		t.Fatalf("quota: %v", err)
	}
	addr, svc, user, trust := testService(t, provider.NewRegistry(nil), func(cfg *core.Config) {
		cfg.Quota = quota
	})
	g, err := New(Config{
		Addr:     addr,
		Cred:     user,
		Trust:    trust,
		Rate:     100,
		Duration: 300 * time.Millisecond,
		Mix:      Mix{Ping: 1},
		PoolSize: 2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := g.Run(context.Background())
	if rep.OK != 5 {
		t.Fatalf("burst admits exactly 5, got %+v", rep)
	}
	if rep.ShedQuota == 0 || rep.ShedQuota != rep.Rejected {
		t.Fatalf("quota rejections not classified: %+v", rep)
	}
	if got := svc.Telemetry().Counter("infogram_admission_rejected_total", "",
		telemetry.Label{Key: "scope", Value: "quota"}).Value(); got != rep.Rejected {
		t.Fatalf("server counted %d quota rejections, harness saw %d", got, rep.Rejected)
	}
}

// TestWarmupExcludedFromReport verifies the warmup phase heats the
// server's response cache but leaves every reported number untouched: the
// measured phase's offered count covers only the measured duration, and
// the cache-counter baseline is probed after warmup, so compulsory misses
// paid during warmup never appear in the hit-ratio delta.
func TestWarmupExcludedFromReport(t *testing.T) {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Static",
		Values:      provider.Attributes{{Name: "v", Value: "1"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	addr, _, user, trust := testService(t, reg, func(cfg *core.Config) {
		cfg.CacheTTL = time.Minute
	})

	g, err := New(Config{
		Addr:           addr,
		Cred:           user,
		Trust:          trust,
		Rate:           400,
		Duration:       250 * time.Millisecond,
		Warmup:         250 * time.Millisecond,
		Mix:            Mix{Info: 1},
		PoolSize:       4,
		RequestTimeout: 2 * time.Second,
		Keys:           8,
		Zipf:           1.2,
		InfoKeyword:    "Static",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := g.Run(context.Background())
	if rep.OK == 0 || rep.Errors > 0 {
		t.Fatalf("warmed run unhealthy: %+v", rep)
	}
	// Offered covers only the measured 250ms (~100 arrivals), never the
	// warmup's — the clearest sign warmup outcomes leaked would be ~200.
	if rep.Offered > 150 {
		t.Fatalf("offered = %d; warmup arrivals leaked into the report", rep.Offered)
	}
	if rep.OK+rep.Rejected+rep.Errors+rep.Overrun != rep.Offered {
		t.Fatalf("outcomes do not add up: %+v", rep)
	}
	// The warmup already paid every compulsory miss for the tiny key
	// population, so the measured phase is effectively all hits.
	if rep.CacheMisses > 1 {
		t.Fatalf("measured misses = %d; warmup fills counted in the delta: %+v", rep.CacheMisses, rep)
	}
	if rep.HitRatio < 0.99 {
		t.Fatalf("measured hit ratio = %.3f; want ~1 after warmup: %+v", rep.HitRatio, rep)
	}
	if rep.Warmup != 0.25 {
		t.Fatalf("warmup duration not reported: %+v", rep)
	}
	if !strings.Contains(rep.String(), "warmup=") {
		t.Fatalf("summary missing warmup: %s", rep.String())
	}
}
