package bootstrap

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSelfSignedGeneratesAndReloads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fabric")
	f1, err := SelfSigned(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range []string{CAFile, ServiceFile, UserFile, GridmapFile} {
		if _, err := os.Stat(filepath.Join(dir, file)); err != nil {
			t.Errorf("missing %s: %v", file, err)
		}
	}
	if f1.Service == nil || f1.User == nil || f1.Trust == nil || f1.Gridmap == nil {
		t.Fatal("incomplete fabric")
	}
	// The generated pieces cohere: user verifies against the trust store
	// and maps through the gridmap.
	if err := f1.Trust.VerifyChain(f1.User.Chain, time.Now()); err != nil {
		t.Errorf("user chain: %v", err)
	}
	if local, err := f1.Gridmap.Map(f1.User.Identity()); err != nil || local != "demo" {
		t.Errorf("gridmap: %q %v", local, err)
	}

	// Second call loads the same fabric rather than regenerating.
	f2, err := SelfSigned(dir)
	if err != nil {
		t.Fatal(err)
	}
	if f2.User.Identity() != f1.User.Identity() {
		t.Error("fabric regenerated instead of reloaded")
	}
	if f2.Service.Subject() != f1.Service.Subject() {
		t.Error("service credential changed")
	}
}

func TestClientLoads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fabric")
	if _, err := SelfSigned(dir); err != nil {
		t.Fatal(err)
	}
	cred, trust, err := Client(filepath.Join(dir, UserFile), filepath.Join(dir, CAFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := trust.VerifyChain(cred.Chain, time.Now()); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
	if _, _, err := Client(filepath.Join(dir, "missing"), filepath.Join(dir, CAFile)); err == nil {
		t.Error("missing credential loaded")
	}
	if _, _, err := Client(filepath.Join(dir, UserFile), filepath.Join(dir, "missing")); err == nil {
		t.Error("missing CA loaded")
	}
}

func TestSelfSignedBadDir(t *testing.T) {
	// A file where the directory should be.
	path := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SelfSigned(path); err == nil {
		t.Error("fabric created inside a file")
	}
}
