// Package bootstrap provides the shared security-fabric setup used by the
// command-line tools: load credentials, trust roots, and gridmaps from
// files, or generate a complete self-signed fabric into a directory for
// demonstration deployments — the one-call install experience the paper
// attributes to its Web Start deployment (§7).
package bootstrap

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"infogram/internal/gsi"
)

// Fabric is a loaded or freshly generated security environment.
type Fabric struct {
	// Service is the credential a server presents.
	Service *gsi.Credential
	// User is a client credential (only set when generated).
	User *gsi.Credential
	// Trust holds the CA roots.
	Trust *gsi.TrustStore
	// Gridmap maps identities to local accounts.
	Gridmap *gsi.Gridmap
	// Dir is the fabric directory when self-signed.
	Dir string
}

// Fabric file names inside a self-signed directory.
const (
	CAFile      = "ca.json"
	ServiceFile = "service-cred.json"
	UserFile    = "user-cred.json"
	GridmapFile = "gridmap"
)

// SelfSigned loads the fabric from dir, generating it first if the
// directory is empty or missing. The generated fabric contains one CA, one
// service credential, one user credential ("/O=Grid/CN=demo" mapped to
// local account "demo"), and a gridmap.
func SelfSigned(dir string) (*Fabric, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	caPath := filepath.Join(dir, CAFile)
	if _, err := os.Stat(caPath); os.IsNotExist(err) {
		if err := generate(dir); err != nil {
			return nil, err
		}
	}
	return load(dir)
}

func generate(dir string) error {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=InfoGram Demo CA", 365*24*time.Hour, now)
	if err != nil {
		return err
	}
	service, err := ca.IssueIdentity("/O=Grid/CN=infogram-service", 90*24*time.Hour, now)
	if err != nil {
		return err
	}
	user, err := ca.IssueIdentity("/O=Grid/CN=demo", 90*24*time.Hour, now)
	if err != nil {
		return err
	}
	if err := gsi.SaveCertificate(filepath.Join(dir, CAFile), ca.Certificate()); err != nil {
		return err
	}
	if err := gsi.SaveCredential(filepath.Join(dir, ServiceFile), service); err != nil {
		return err
	}
	if err := gsi.SaveCredential(filepath.Join(dir, UserFile), user); err != nil {
		return err
	}
	gm := gsi.NewGridmap()
	gm.Add("/O=Grid/CN=demo", "demo")
	// The service identity is mapped too: cluster proxies and hot-standby
	// followers re-authenticate to backends with it, and the gatekeeper's
	// identity-mapping gate runs before any capability negotiation.
	gm.Add("/O=Grid/CN=infogram-service", "infogram")
	f, err := os.Create(filepath.Join(dir, GridmapFile))
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer f.Close()
	if _, err := gm.WriteTo(f); err != nil {
		return err
	}
	return nil
}

func load(dir string) (*Fabric, error) {
	caCert, err := gsi.LoadCertificate(filepath.Join(dir, CAFile))
	if err != nil {
		return nil, err
	}
	service, err := gsi.LoadCredential(filepath.Join(dir, ServiceFile))
	if err != nil {
		return nil, err
	}
	user, err := gsi.LoadCredential(filepath.Join(dir, UserFile))
	if err != nil {
		return nil, err
	}
	gm, err := gsi.LoadGridmap(filepath.Join(dir, GridmapFile))
	if err != nil {
		return nil, err
	}
	return &Fabric{
		Service: service,
		User:    user,
		Trust:   gsi.NewTrustStore(caCert),
		Gridmap: gm,
		Dir:     dir,
	}, nil
}

// Client loads only what a client needs: a credential and the CA root.
func Client(credPath, caPath string) (*gsi.Credential, *gsi.TrustStore, error) {
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return nil, nil, err
	}
	root, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return nil, nil, err
	}
	return cred, gsi.NewTrustStore(root), nil
}
