package logging

import (
	"bytes"
	"testing"
)

// FuzzReplay throws arbitrary bytes at the log reader: torn writes,
// CRC-less corrupt JSON lines, binary garbage, oversized lines. Replay
// must never panic; when it accepts an input, the parsed records must
// survive an append/replay round trip, and Recover over them must stay
// consistent with the submit records it saw.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"kind\":\"submit\",\"contact\":\"c1\",\"spec\":\"&(executable=a)\"}\n"))
	f.Add([]byte("{\"kind\":\"submit\",\"contact\":\"c1\"}\n{\"kind\":\"state\",\"contact\":\"c1\",\"state\":\"DONE\"}\n"))
	f.Add([]byte("{\"kind\":\"submit\",\"contact\":\"c1\"}\n{\"kind\":\"state\",\"con")) // torn tail
	f.Add([]byte("not-json\n"))
	f.Add([]byte("{\"kind\":\"submit\"}\nnot-json\n{\"kind\":\"state\"}\n")) // mid-file corruption
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{\"kind\":\"checkpoint\",\"contact\":\"c1\",\"checkpoint\":\"step=1\"}\n"))
	f.Add([]byte{0x00, 0xFF, 0x7B, 0x7D, 0x0A})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			// JSON re-encoding can expand a near-limit line past the
			// scanner's cap; size-bound the round-trip property instead of
			// re-deriving the escape blow-up.
			return
		}
		recs, err := Replay(bytes.NewReader(data))
		if err != nil {
			return // rejected input: corruption detected, nothing to check
		}

		// Round trip: everything Replay accepted must re-encode and
		// replay to the same record count.
		var buf bytes.Buffer
		l := NewLogger(&buf)
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				t.Fatalf("re-append of replayed record %+v: %v", r, err)
			}
		}
		back, err := Replay(&buf)
		if err != nil {
			t.Fatalf("replay of re-appended log: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(back))
		}

		// Recover must not panic, must only return submitted contacts,
		// and can never return more jobs than were submitted.
		submitted := make(map[string]bool)
		for _, r := range recs {
			if r.Kind == KindSubmit {
				submitted[r.Contact] = true
			}
		}
		pending := Recover(recs)
		if len(pending) > len(submitted) {
			t.Fatalf("Recover returned %d jobs from %d submissions", len(pending), len(submitted))
		}
		for _, rj := range pending {
			if !submitted[rj.Contact] {
				t.Fatalf("Recover invented contact %q", rj.Contact)
			}
			if rj.LastState.Terminal() {
				t.Fatalf("Recover returned terminal job %+v", rj)
			}
		}
	})
}
