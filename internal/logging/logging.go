// Package logging implements the InfoGram logging service of Figure 3:
// an append-only log that records job submissions, state changes, and
// authenticated information queries. The log serves three paper purposes:
// restarting the service after a shutdown ("the log can be used to restart
// our InfoGRAM service in case it needs to be restarted", §6), restarting
// individual jobs upon failure (§6.1), and simple Grid accounting ("We
// intend to use this logging service to provide simple Grid accounting",
// §6; "logging authenticated information queries to guide the use as part
// of intelligent scheduling services", §7).
//
// Records are JSON lines so the log is greppable and stream-appendable;
// "[p]resently, we only record minimal information such as the command
// used and arguments executed" — we record the full xRSL source, the
// authenticated identity, and state transitions.
package logging

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"infogram/internal/job"
)

// Kind classifies a log record.
type Kind string

// Log record kinds.
const (
	// KindSubmit records a job submission with its xRSL and identity.
	KindSubmit Kind = "submit"
	// KindState records a job state transition.
	KindState Kind = "state"
	// KindInfoQuery records an authenticated information query.
	KindInfoQuery Kind = "info-query"
	// KindCheckpoint records an application checkpoint blob.
	KindCheckpoint Kind = "checkpoint"
	// KindServiceStart marks a service (re)start, delimiting recovery.
	KindServiceStart Kind = "service-start"
	// KindSpan records one timed span of a traced request (telemetry);
	// span records are ignored by Recover and Accounting.
	KindSpan Kind = "span"
)

// Record is one log line.
type Record struct {
	Time     time.Time `json:"time"`
	Kind     Kind      `json:"kind"`
	Contact  string    `json:"contact,omitempty"`
	Spec     string    `json:"spec,omitempty"`
	Owner    string    `json:"owner,omitempty"`
	Identity string    `json:"identity,omitempty"`
	State    string    `json:"state,omitempty"`
	// ExitCode is nil when no exit code applies (non-terminal states); a
	// pointer keeps a successful exit (code 0) distinguishable from "no
	// exit code" in the JSON encoding.
	ExitCode *int   `json:"exitCode,omitempty"`
	Error    string `json:"error,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	// Keywords lists the queried providers for info-query records.
	Keywords []string `json:"keywords,omitempty"`
	// Checkpoint carries opaque application checkpoint data.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Trace is the telemetry trace ID of the request that produced the
	// record, correlating log lines across one request path.
	Trace string `json:"trace,omitempty"`
	// Span names the timed section for span records ("request:SUBMIT",
	// "auth", "info-collect", "gram-submit").
	Span string `json:"span,omitempty"`
	// SpanID/ParentID are the hex span IDs of the timed section within
	// the trace's span tree, so a grep for the trace correlates log
	// records with stored spans. Empty when the section ran untraced.
	SpanID   string `json:"spanId,omitempty"`
	ParentID string `json:"parentSpanId,omitempty"`
	// ElapsedUS is the span duration in microseconds.
	ElapsedUS int64 `json:"elapsedUs,omitempty"`
}

// IntPtr adapts a plain exit code to the Record.ExitCode field.
func IntPtr(n int) *int { return &n }

// Logger appends records to a writer. It is safe for concurrent use.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
	f  *os.File // non-nil when backed by a file we own
}

// NewLogger logs to w.
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// OpenFile opens (appending, creating) a log file at path.
func OpenFile(path string) (*Logger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logging: open: %w", err)
	}
	return &Logger{w: f, f: f}, nil
}

// Append writes one record.
func (l *Logger) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("logging: encode: %w", err)
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err != nil {
		return fmt.Errorf("logging: append: %w", err)
	}
	return nil
}

// Sync flushes to stable storage when file-backed.
func (l *Logger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close closes the underlying file when owned.
func (l *Logger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay reads every record from r in order. A final line that fails to
// parse — the signature of a crash mid-append, where the process died
// before the record (or its newline) hit the disk — is dropped so a
// restart can proceed from the intact prefix; an unparsable line in the
// middle of the log is genuine corruption and still fails the replay.
func Replay(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var out []Record
	line := 0
	badLine := 0 // most recent unparsable line, 0 when none pending
	var badErr error
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if badLine != 0 {
			// The bad line was not the tail after all.
			return nil, fmt.Errorf("logging: replay line %d: %w", badLine, badErr)
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			badLine, badErr = line, err
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logging: replay: %w", err)
	}
	return out, nil
}

// ReplayFile reads a log file.
func ReplayFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logging: open: %w", err)
	}
	defer f.Close()
	return Replay(f)
}

// RecoveredJob is a job reconstructed from the log that had not reached a
// terminal state when the service stopped; the restarted service
// resubmits it (paper §6: "the log can be used to restart our InfoGRAM
// service"; §10: "automatic restart capabilities enabled through
// checkpointing").
type RecoveredJob struct {
	Contact    string
	Spec       string
	Owner      string
	Identity   string
	LastState  job.State
	Restarts   int
	Checkpoint string // latest checkpoint blob, if any
}

// Recover scans records and returns the jobs needing restart, in first-
// submission order.
func Recover(records []Record) []RecoveredJob {
	type track struct {
		rj       RecoveredJob
		order    int
		terminal bool
	}
	jobs := make(map[string]*track)
	order := 0
	for _, r := range records {
		switch r.Kind {
		case KindSubmit:
			jobs[r.Contact] = &track{
				rj: RecoveredJob{
					Contact:   r.Contact,
					Spec:      r.Spec,
					Owner:     r.Owner,
					Identity:  r.Identity,
					LastState: job.Pending,
				},
				order: order,
			}
			order++
		case KindState:
			t, ok := jobs[r.Contact]
			if !ok {
				continue
			}
			st, err := job.ParseState(r.State)
			if err != nil {
				continue
			}
			t.rj.LastState = st
			t.rj.Restarts = r.Restarts
			t.terminal = st.Terminal()
		case KindCheckpoint:
			if t, ok := jobs[r.Contact]; ok {
				t.rj.Checkpoint = r.Checkpoint
			}
		}
	}
	var pending []*track
	for _, t := range jobs {
		if !t.terminal {
			pending = append(pending, t)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].order < pending[j].order })
	out := make([]RecoveredJob, len(pending))
	for i, t := range pending {
		out[i] = t.rj
	}
	return out
}
