package logging

import (
	"fmt"
	"io"
	"sort"

	"infogram/internal/job"
)

// AccountSummary aggregates one identity's use of the service — the
// "simple Grid accounting" the paper builds on the logging service (§6).
type AccountSummary struct {
	Identity     string
	Owner        string
	JobsSubmit   int
	JobsDone     int
	JobsFailed   int
	JobsRestart  int // restart transitions observed
	InfoQueries  int
	KeywordsSeen map[string]int // per-keyword query counts
}

// Accounting summarizes a replayed log per identity, sorted by identity.
func Accounting(records []Record) []AccountSummary {
	byID := make(map[string]*AccountSummary)
	// Job contacts map to the submitting identity so state records can be
	// attributed.
	owner := make(map[string]string)

	get := func(identity, local string) *AccountSummary {
		s, ok := byID[identity]
		if !ok {
			s = &AccountSummary{Identity: identity, Owner: local, KeywordsSeen: make(map[string]int)}
			byID[identity] = s
		}
		if s.Owner == "" {
			s.Owner = local
		}
		return s
	}

	for _, r := range records {
		switch r.Kind {
		case KindSubmit:
			s := get(r.Identity, r.Owner)
			s.JobsSubmit++
			owner[r.Contact] = r.Identity
		case KindState:
			id, ok := owner[r.Contact]
			if !ok {
				continue
			}
			s := get(id, r.Owner)
			st, err := job.ParseState(r.State)
			if err != nil {
				continue
			}
			switch st {
			case job.Done:
				s.JobsDone++
			case job.Failed:
				s.JobsFailed++
			case job.Pending:
				if r.Restarts > 0 {
					s.JobsRestart++
				}
			}
		case KindInfoQuery:
			s := get(r.Identity, r.Owner)
			s.InfoQueries++
			for _, kw := range r.Keywords {
				s.KeywordsSeen[kw]++
			}
		}
	}

	out := make([]AccountSummary, 0, len(byID))
	for _, s := range byID {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Identity < out[j].Identity })
	return out
}

// WriteReport renders accounting summaries as a text table.
func WriteReport(w io.Writer, summaries []AccountSummary) error {
	if _, err := fmt.Fprintf(w, "%-40s %-10s %6s %6s %6s %6s %6s\n",
		"IDENTITY", "LOCAL", "SUBMIT", "DONE", "FAIL", "RETRY", "INFO"); err != nil {
		return err
	}
	for _, s := range summaries {
		if _, err := fmt.Fprintf(w, "%-40s %-10s %6d %6d %6d %6d %6d\n",
			s.Identity, s.Owner, s.JobsSubmit, s.JobsDone, s.JobsFailed, s.JobsRestart, s.InfoQueries); err != nil {
			return err
		}
	}
	return nil
}
