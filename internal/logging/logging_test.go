package logging

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"infogram/internal/job"
)

var t0 = time.Date(2002, 7, 24, 12, 0, 0, 0, time.UTC)

func TestAppendReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	records := []Record{
		{Time: t0, Kind: KindServiceStart},
		{Time: t0.Add(time.Second), Kind: KindSubmit, Contact: "gram://h/1/1",
			Spec: "&(executable=/bin/date)", Owner: "alice", Identity: "/O=Grid/CN=alice"},
		{Time: t0.Add(2 * time.Second), Kind: KindState, Contact: "gram://h/1/1", State: "ACTIVE"},
		{Time: t0.Add(3 * time.Second), Kind: KindInfoQuery, Identity: "/O=Grid/CN=alice",
			Owner: "alice", Keywords: []string{"Memory", "CPU"}},
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	back, err := Replay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("%d records back, want %d", len(back), len(records))
	}
	for i, want := range records {
		got := back[i]
		if got.Kind != want.Kind || got.Contact != want.Contact ||
			got.Spec != want.Spec || got.State != want.State ||
			!got.Time.Equal(want.Time) {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if strings.Join(back[3].Keywords, ",") != "Memory,CPU" {
		t.Errorf("keywords = %v", back[3].Keywords)
	}
}

func TestReplayBadLine(t *testing.T) {
	// A malformed line in the middle of the log is genuine corruption.
	in := "{\"kind\":\"submit\"}\nnot-json\n{\"kind\":\"state\"}\n"
	if _, err := Replay(strings.NewReader(in)); err == nil {
		t.Error("expected error on malformed mid-file line")
	}
}

func TestReplayDropsCorruptTail(t *testing.T) {
	// A process that dies mid-append leaves a truncated final line; the
	// restart must proceed from the intact prefix.
	cases := []string{
		"{\"kind\":\"submit\",\"contact\":\"c1\"}\n{\"kind\":\"state\",\"con", // cut mid-record, no newline
		"{\"kind\":\"submit\",\"contact\":\"c1\"}\nnot-json\n",                // garbage tail with newline
	}
	for _, in := range cases {
		recs, err := Replay(strings.NewReader(in))
		if err != nil {
			t.Fatalf("Replay(%q): %v", in, err)
		}
		if len(recs) != 1 || recs[0].Contact != "c1" {
			t.Errorf("Replay(%q) = %+v, want the intact prefix", in, recs)
		}
	}
}

func TestRecoverAfterTruncatedLog(t *testing.T) {
	// End-to-end restart path: append records through the file logger,
	// truncate the file mid-final-record (the crash signature), and check
	// ReplayFile + Recover still produce the unfinished job.
	path := filepath.Join(t.TempDir(), "jobs.log")
	lg, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend := func(r Record) {
		t.Helper()
		if err := lg.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(Record{Kind: KindSubmit, Contact: "gram://h/1/1", Spec: "&(executable=a)", Owner: "alice"})
	mustAppend(Record{Kind: KindState, Contact: "gram://h/1/1", State: "ACTIVE"})
	mustAppend(Record{Kind: KindState, Contact: "gram://h/1/1", State: "DONE"})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the final record in half.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayFile(path)
	if err != nil {
		t.Fatalf("ReplayFile after truncation: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	pending := Recover(recs)
	if len(pending) != 1 || pending[0].Contact != "gram://h/1/1" {
		t.Fatalf("Recover = %+v, want the job whose DONE record was lost", pending)
	}
}

func TestReplaySkipsEmptyLines(t *testing.T) {
	recs, err := Replay(strings.NewReader("\n{\"kind\":\"submit\"}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("records = %d", len(recs))
	}
}

func TestFileLogger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Time: t0, Kind: KindServiceStart}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open appends rather than truncates.
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Record{Time: t0.Add(time.Hour), Kind: KindServiceStart}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("records = %d", len(recs))
	}
	// Close is idempotent; Sync after close is a no-op.
	if err := l2.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// buildCrashLog simulates a service run that died with work outstanding.
func buildCrashLog() []Record {
	return []Record{
		{Time: t0, Kind: KindServiceStart},
		// finished job: not recovered
		{Kind: KindSubmit, Contact: "c1", Spec: "&(executable=/bin/a)", Owner: "alice", Identity: "idA"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindState, Contact: "c1", State: "DONE"},
		// active job at crash: recovered
		{Kind: KindSubmit, Contact: "c2", Spec: "&(executable=/bin/b)", Owner: "bob", Identity: "idB"},
		{Kind: KindState, Contact: "c2", State: "PENDING"},
		{Kind: KindState, Contact: "c2", State: "ACTIVE"},
		{Kind: KindCheckpoint, Contact: "c2", Checkpoint: "step=42"},
		// failed job: not recovered (terminal)
		{Kind: KindSubmit, Contact: "c3", Spec: "&(executable=/bin/c)", Owner: "alice", Identity: "idA"},
		{Kind: KindState, Contact: "c3", State: "PENDING"},
		{Kind: KindState, Contact: "c3", State: "FAILED"},
		// pending job at crash: recovered, after c2
		{Kind: KindSubmit, Contact: "c4", Spec: "&(executable=/bin/d)", Owner: "bob", Identity: "idB"},
		{Kind: KindState, Contact: "c4", State: "PENDING"},
	}
}

func TestRecover(t *testing.T) {
	pending := Recover(buildCrashLog())
	if len(pending) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(pending), pending)
	}
	if pending[0].Contact != "c2" || pending[1].Contact != "c4" {
		t.Errorf("recovery order = %s, %s", pending[0].Contact, pending[1].Contact)
	}
	if pending[0].LastState != job.Active {
		t.Errorf("c2 state = %s", pending[0].LastState)
	}
	if pending[0].Checkpoint != "step=42" {
		t.Errorf("c2 checkpoint = %q", pending[0].Checkpoint)
	}
	if pending[0].Spec != "&(executable=/bin/b)" || pending[0].Owner != "bob" {
		t.Errorf("c2 = %+v", pending[0])
	}
}

func TestRecoverRestartedJob(t *testing.T) {
	// A job that failed and restarted (FAILED -> PENDING) then crashed:
	// still recovered, with the restart count.
	recs := []Record{
		{Kind: KindSubmit, Contact: "c1", Spec: "s", Owner: "o", Identity: "i"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindState, Contact: "c1", State: "FAILED"},
		{Kind: KindState, Contact: "c1", State: "PENDING", Restarts: 1},
	}
	pending := Recover(recs)
	if len(pending) != 1 || pending[0].Restarts != 1 {
		t.Errorf("pending = %+v", pending)
	}
}

func TestRecoverInterleavedContacts(t *testing.T) {
	// Two jobs whose records interleave line by line — the realistic shape
	// of a concurrent log — must fold independently: the one that finished
	// stays finished, the one mid-flight is recovered with ITS spec and
	// checkpoint, not its neighbour's.
	recs := []Record{
		{Kind: KindSubmit, Contact: "c1", Spec: "&(executable=/bin/a)", Owner: "alice", Identity: "idA"},
		{Kind: KindSubmit, Contact: "c2", Spec: "&(executable=/bin/b)", Owner: "bob", Identity: "idB"},
		{Kind: KindState, Contact: "c2", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindState, Contact: "c2", State: "ACTIVE"},
		{Kind: KindCheckpoint, Contact: "c1", Checkpoint: "c1-step"},
		{Kind: KindCheckpoint, Contact: "c2", Checkpoint: "c2-step"},
		{Kind: KindState, Contact: "c2", State: "DONE"},
	}
	pending := Recover(recs)
	if len(pending) != 1 {
		t.Fatalf("recovered %d jobs, want only the unfinished one: %+v", len(pending), pending)
	}
	got := pending[0]
	if got.Contact != "c1" || got.Spec != "&(executable=/bin/a)" || got.Owner != "alice" {
		t.Errorf("recovered job mixed up contacts: %+v", got)
	}
	if got.Checkpoint != "c1-step" {
		t.Errorf("checkpoint = %q, want c1's own", got.Checkpoint)
	}
	if got.LastState != job.Active {
		t.Errorf("state = %s", got.LastState)
	}
}

func TestRecoverExcludesCancelledJobs(t *testing.T) {
	// A cancelled job lands in FAILED with a cancellation error — terminal,
	// so a restart must NOT resurrect it: the user asked for it to stop.
	recs := []Record{
		{Kind: KindSubmit, Contact: "c1", Spec: "s", Owner: "o", Identity: "i"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindState, Contact: "c1", State: "FAILED", Error: "cancelled: context canceled"},
	}
	if got := Recover(recs); len(got) != 0 {
		t.Errorf("cancelled job resurrected: %+v", got)
	}
}

func TestRecoverRestartAttemptCounting(t *testing.T) {
	// restart=N bookkeeping across several failures: the recovered job
	// carries the LATEST restart count so the resubmitted run resumes the
	// remaining budget instead of starting a fresh one.
	recs := []Record{
		{Kind: KindSubmit, Contact: "c1", Spec: "s", Owner: "o", Identity: "i"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindState, Contact: "c1", State: "FAILED"},
		{Kind: KindState, Contact: "c1", State: "PENDING", Restarts: 1},
		{Kind: KindState, Contact: "c1", State: "ACTIVE", Restarts: 1},
		{Kind: KindState, Contact: "c1", State: "FAILED", Restarts: 1},
		{Kind: KindState, Contact: "c1", State: "PENDING", Restarts: 2},
		{Kind: KindState, Contact: "c1", State: "ACTIVE", Restarts: 2},
	}
	pending := Recover(recs)
	if len(pending) != 1 {
		t.Fatalf("pending = %+v", pending)
	}
	if pending[0].Restarts != 2 || pending[0].LastState != job.Active {
		t.Errorf("recovered job = %+v; want restart count 2 at ACTIVE", pending[0])
	}
}

func TestRecoverFromCorruptTailFeedsRecovery(t *testing.T) {
	// The corrupt-tail path end to end: the torn final record is the very
	// transition that would have finished the job, so replay's tail
	// tolerance decides what recovery resubmits. The job must come back,
	// with the checkpoint that preceded the tear intact.
	path := filepath.Join(t.TempDir(), "jobs.log")
	lg, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{Kind: KindSubmit, Contact: "c1", Spec: "&(executable=a)", Owner: "alice"},
		{Kind: KindState, Contact: "c1", State: "PENDING"},
		{Kind: KindState, Contact: "c1", State: "ACTIVE"},
		{Kind: KindCheckpoint, Contact: "c1", Checkpoint: "step=7"},
		{Kind: KindState, Contact: "c1", State: "DONE"},
	} {
		if err := lg.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the DONE record in half, the signature of dying mid-append.
	if err := os.WriteFile(path, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayFile(path)
	if err != nil {
		t.Fatalf("replay after torn tail: %v", err)
	}
	pending := Recover(recs)
	if len(pending) != 1 || pending[0].Contact != "c1" {
		t.Fatalf("pending = %+v; the job whose DONE was torn must be recovered", pending)
	}
	if pending[0].Checkpoint != "step=7" {
		t.Errorf("checkpoint = %q; the pre-tear checkpoint must survive", pending[0].Checkpoint)
	}
}

func TestRecoverIgnoresStateForUnknownContact(t *testing.T) {
	recs := []Record{
		{Kind: KindState, Contact: "ghost", State: "ACTIVE"},
	}
	if got := Recover(recs); len(got) != 0 {
		t.Errorf("recovered %d", len(got))
	}
}

func TestRecoverEmpty(t *testing.T) {
	if got := Recover(nil); len(got) != 0 {
		t.Errorf("recovered %d from empty log", len(got))
	}
}

func TestAccounting(t *testing.T) {
	recs := buildCrashLog()
	recs = append(recs,
		Record{Kind: KindInfoQuery, Identity: "idA", Owner: "alice", Keywords: []string{"Memory"}},
		Record{Kind: KindInfoQuery, Identity: "idA", Owner: "alice", Keywords: []string{"Memory", "CPU"}},
	)
	sums := Accounting(recs)
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	// Sorted by identity: idA then idB.
	a, b := sums[0], sums[1]
	if a.Identity != "idA" || b.Identity != "idB" {
		t.Fatalf("order: %q, %q", a.Identity, b.Identity)
	}
	if a.JobsSubmit != 2 || a.JobsDone != 1 || a.JobsFailed != 1 {
		t.Errorf("idA = %+v", a)
	}
	if a.InfoQueries != 2 || a.KeywordsSeen["Memory"] != 2 || a.KeywordsSeen["CPU"] != 1 {
		t.Errorf("idA queries = %+v", a)
	}
	if b.JobsSubmit != 2 || b.JobsDone != 0 {
		t.Errorf("idB = %+v", b)
	}
}

func TestAccountingCountsRestarts(t *testing.T) {
	recs := []Record{
		{Kind: KindSubmit, Contact: "c", Identity: "id", Owner: "o"},
		{Kind: KindState, Contact: "c", State: "PENDING"},
		{Kind: KindState, Contact: "c", State: "FAILED"},
		{Kind: KindState, Contact: "c", State: "PENDING", Restarts: 1},
		{Kind: KindState, Contact: "c", State: "DONE"},
	}
	sums := Accounting(recs)
	if len(sums) != 1 || sums[0].JobsRestart != 1 || sums[0].JobsDone != 1 {
		t.Errorf("sums = %+v", sums)
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	err := WriteReport(&sb, []AccountSummary{{
		Identity: "/O=Grid/CN=alice", Owner: "alice",
		JobsSubmit: 3, JobsDone: 2, JobsFailed: 1, InfoQueries: 7,
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"IDENTITY", "alice", "3", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.log")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				_ = l.Append(Record{Time: t0, Kind: KindState, Contact: "c", State: "ACTIVE"})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayFile(path)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the log: %v", err)
	}
	if len(recs) != 800 {
		t.Errorf("records = %d, want 800", len(recs))
	}
	_ = os.Remove(path)
}
