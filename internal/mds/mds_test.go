package mds_test

import (
	"context"
	"testing"
	"time"

	"infogram/internal/cache"
	"infogram/internal/gsi"
	"infogram/internal/mds"
	"infogram/internal/provider"
)

// fabric is the shared security setup for MDS tests.
type fabric struct {
	ca    *gsi.CA
	trust *gsi.TrustStore
	svc   *gsi.Credential
	user  *gsi.Credential
}

func newFabric(t *testing.T) *fabric {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := ca.IssueIdentity("/O=Grid/CN=mds", time.Hour, now)
	user, _ := ca.IssueIdentity("/O=Grid/CN=alice", time.Hour, now)
	return &fabric{ca: ca, trust: gsi.NewTrustStore(ca.Certificate()), svc: svc, user: user}
}

func newRegistry(resource string) *provider.Registry {
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values: provider.Attributes{
			{Name: "total", Value: "1024"},
			{Name: "free", Value: "512"},
		},
	}, provider.RegisterOptions{TTL: time.Minute})
	reg.Register(&provider.StaticProvider{
		KeywordName: "CPU",
		Values: provider.Attributes{
			{Name: "count", Value: "8"},
			{Name: "model", Value: resource + "-cpu"},
		},
	}, provider.RegisterOptions{TTL: time.Minute})
	return reg
}

func startGRIS(t *testing.T, f *fabric, resource string) *mds.GRIS {
	t.Helper()
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: resource,
		Registry:     newRegistry(resource),
		Credential:   f.svc,
		Trust:        f.trust,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestGRISSearchAll(t *testing.T) {
	f := newFabric(t)
	g := startGRIS(t, f, "res1")
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	entries, err := cl.Search(mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if v, _ := entries[0].Get("Memory:total"); v != "1024" {
		t.Errorf("Memory:total = %q", v)
	}
	if v, _ := entries[1].Get("CPU:count"); v != "8" {
		t.Errorf("CPU:count = %q", v)
	}
}

func TestGRISSearchFiltered(t *testing.T) {
	f := newFabric(t)
	g := startGRIS(t, f, "res1")
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Numeric filter over namespaced attribute.
	entries, err = cl.Search(mds.SearchRequest{Filter: "(Memory:total>=1000)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("numeric filter entries = %d", len(entries))
	}
	// Attribute projection.
	entries, err = cl.Search(mds.SearchRequest{Filter: "(kw=CPU)", Attrs: []string{"CPU:count"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Attrs) != 1 {
		t.Fatalf("projected entries = %+v", entries)
	}
	if _, ok := entries[0].Get("CPU:model"); ok {
		t.Error("projection leaked CPU:model")
	}
}

func TestGRISBadFilter(t *testing.T) {
	f := newFabric(t)
	g := startGRIS(t, f, "res1")
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Search(mds.SearchRequest{Filter: "(((broken"}); err == nil {
		t.Error("bad filter accepted")
	}
}

func TestGRISCaching(t *testing.T) {
	// MDS-2.0-style caching: repeated searches inside the TTL execute
	// providers once.
	f := newFabric(t)
	reg := provider.NewRegistry(nil)
	execs := 0
	reg.Register(provider.NewFuncProvider("Counter", func(ctx context.Context) (provider.Attributes, error) {
		execs++
		return provider.Attributes{{Name: "n", Value: "x"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Search(mds.SearchRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if execs != 1 {
		t.Errorf("provider executed %d times, want 1", execs)
	}
}

func TestGRISAuthorization(t *testing.T) {
	f := newFabric(t)
	policy := gsi.NewPolicy(gsi.Deny)
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: newRegistry("res"),
		Credential: f.svc, Trust: f.trust, Policy: policy,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Search(mds.SearchRequest{}); err == nil {
		t.Error("denied search succeeded")
	}
}

func TestGIISAggregation(t *testing.T) {
	f := newFabric(t)
	g1 := startGRIS(t, f, "res1")
	g2 := startGRIS(t, f, "res2")

	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "testvo", Credential: f.svc, Trust: f.trust,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()

	// Register over the wire.
	cl, err := mds.Dial(giis.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.RegisterWith(g1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterWith(g2.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := giis.Members(); len(got) != 2 {
		t.Fatalf("Members = %v", got)
	}

	entries, err := cl.Search(mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 2 keywords x 2 resources
		t.Fatalf("entries = %d", len(entries))
	}
	resources := map[string]bool{}
	for _, e := range entries {
		r, _ := e.Get("resource")
		resources[r] = true
	}
	if !resources["res1"] || !resources["res2"] {
		t.Errorf("resources = %v", resources)
	}

	// Filtered fan-out.
	entries, err = cl.Search(mds.SearchRequest{Filter: "(&(kw=CPU)(resource=res2))"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("filtered entries = %d", len(entries))
	}
}

func TestGIISToleratesDeadMembers(t *testing.T) {
	f := newFabric(t)
	g1 := startGRIS(t, f, "res1")
	giis := mds.NewGIIS(mds.GIISConfig{OrgName: "vo", Credential: f.svc, Trust: f.trust})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register(g1.Addr())
	giis.Register("127.0.0.1:1") // nothing listening

	entries, err := giis.Search(context.Background(), mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// The live member's records, plus a degraded status entry naming the
	// dead one.
	if len(entries) != 3 {
		t.Fatalf("entries = %d (live member's records + status entry expected)", len(entries))
	}
	status := entries[len(entries)-1]
	if oc, _ := status.Get("objectclass"); oc != "InfoGramStatus" {
		t.Errorf("last entry objectclass = %q, want degraded status entry", oc)
	}
	if missing, _ := status.Get("missing"); missing != "127.0.0.1:1" {
		t.Errorf("status entry missing = %q, want the dead member", missing)
	}
	for _, e := range entries[:2] {
		if oc, _ := e.Get("objectclass"); oc == "InfoGramStatus" {
			t.Errorf("live data entry carries the status objectclass: %s", e.DN)
		}
	}
}

func TestGIISRegistrationTTL(t *testing.T) {
	f := newFabric(t)
	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust,
		RegistrationTTL: 10 * time.Millisecond,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register("127.0.0.1:9999")
	if len(giis.Members()) != 1 {
		t.Fatal("registration missing")
	}
	time.Sleep(30 * time.Millisecond)
	if got := giis.Members(); len(got) != 0 {
		t.Errorf("expired registration still present: %v", got)
	}
}

func TestGIISAggregateCache(t *testing.T) {
	f := newFabric(t)
	reg := provider.NewRegistry(nil)
	execs := 0
	reg.Register(provider.NewFuncProvider("K", func(ctx context.Context) (provider.Attributes, error) {
		execs++
		return provider.Attributes{{Name: "v", Value: "1"}}, nil
	}), provider.RegisterOptions{TTL: 0}) // provider itself never caches
	g := mds.NewGRIS(mds.GRISConfig{ResourceName: "r", Registry: reg, Credential: f.svc, Trust: f.trust})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust, CacheTTL: time.Hour,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register(g.Addr())

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := giis.Search(ctx, mds.SearchRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if execs != 1 {
		t.Errorf("provider executed %d times through cached GIIS, want 1", execs)
	}
	// A different query misses the cache.
	if _, err := giis.Search(ctx, mds.SearchRequest{Filter: "(kw=K)"}); err != nil {
		t.Fatal(err)
	}
	if execs != 2 {
		t.Errorf("execs = %d after distinct query, want 2", execs)
	}
}

func TestRegistrarSoftState(t *testing.T) {
	// MDS soft-state registration: a registrar keeps its GRIS alive in a
	// short-TTL GIIS; once stopped, the registration ages out.
	f := newFabric(t)
	g := startGRIS(t, f, "res1")
	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust,
		RegistrationTTL: 120 * time.Millisecond,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()

	reg := mds.NewRegistrar(giis.Addr(), g.Addr(), 40*time.Millisecond, f.svc, f.trust)
	if err := reg.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer reg.Stop()

	// Across several TTL windows the member stays present.
	for i := 0; i < 4; i++ {
		if got := giis.Members(); len(got) != 1 {
			t.Fatalf("iteration %d: members = %v", i, got)
		}
		time.Sleep(60 * time.Millisecond)
	}
	succ, _ := reg.Counts()
	if succ < 2 {
		t.Errorf("successes = %d, want re-registrations", succ)
	}
	// After stopping, the registration expires.
	reg.Stop()
	time.Sleep(200 * time.Millisecond)
	if got := giis.Members(); len(got) != 0 {
		t.Errorf("members after stop = %v", got)
	}
	reg.Stop() // idempotent
}

func TestRegistrarFailsFastOnDeadGIIS(t *testing.T) {
	f := newFabric(t)
	reg := mds.NewRegistrar("127.0.0.1:1", "127.0.0.1:2", time.Second, f.svc, f.trust)
	if err := reg.Start(); err == nil {
		t.Error("Start against dead GIIS succeeded")
		reg.Stop()
	}
	_, fails := reg.Counts()
	if fails != 1 {
		t.Errorf("failures = %d", fails)
	}
}

func TestTwoProtocolBaselineRequiresTwoCodecs(t *testing.T) {
	// Figure 2's structural claim: the MDS client cannot talk to GRAM and
	// vice versa; the two services genuinely speak different protocols.
	f := newFabric(t)
	g := startGRIS(t, f, "res1")
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Search works; the GRIS has no SUBMIT verb, so a GRAM-style request
	// is rejected at the protocol level.
	if _, err := cl.Search(mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
	if err != nil || len(entries) != 1 {
		t.Fatalf("search: %v", err)
	}
	_ = cache.Cached // document that GRIS reads go through the cache layer
}

// TestGIISDegradedNotCached: a partial merge must not be pinned in the
// aggregate cache — once the failed member recovers, the next search
// within the same membership generation sees its records again.
func TestGIISDegradedNotCached(t *testing.T) {
	f := newFabric(t)
	g1 := startGRIS(t, f, "res1")
	g2 := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res2",
		Registry:     newRegistry("res2"),
		Credential:   f.svc,
		Trust:        f.trust,
	})
	if _, err := g2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	g2addr := g2.Addr()

	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust,
		CacheTTL:      time.Minute,
		MemberTimeout: 2 * time.Second,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register(g1.Addr())
	giis.Register(g2addr)

	g2.Close()
	entries, err := giis.Search(context.Background(), mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if oc, _ := entries[len(entries)-1].Get("objectclass"); oc != "InfoGramStatus" {
		t.Fatalf("search against a dead member not degraded: %d entries", len(entries))
	}

	// Revive res2 on the same address; no Register() call, so the
	// membership generation — and with it the cache key — is unchanged.
	g2 = mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res2",
		Registry:     newRegistry("res2"),
		Credential:   f.svc,
		Trust:        f.trust,
	})
	if _, err := g2.Listen(g2addr); err != nil {
		t.Skipf("cannot rebind %s: %v", g2addr, err)
	}
	defer g2.Close()

	entries, err = giis.Search(context.Background(), mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries after recovery = %d, want 4 (a cached degraded body?)", len(entries))
	}
	for _, e := range entries {
		if oc, _ := e.Get("objectclass"); oc == "InfoGramStatus" {
			t.Errorf("recovered search still degraded: %s", e.DN)
		}
	}

	// The full merge IS cached: a repeat should hit.
	if _, err := giis.Search(context.Background(), mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
}
