package mds

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/ldif"
)

// GIIS scatter-gather: a bounded worker pool queries the federation's
// members with a per-member deadline, reusing authenticated connections
// across searches. Failures degrade the merged reply instead of failing
// it; the degraded status entry mirrors the gatekeeper's so clients need
// one detection path for both tiers.

const (
	// defaultFanoutParallelism bounds concurrent member queries when
	// GIISConfig.FanoutParallelism is zero.
	defaultFanoutParallelism = 8
	// defaultMemberTimeout bounds one member query (dial + handshake +
	// call) when GIISConfig.MemberTimeout is zero.
	defaultMemberTimeout = 5 * time.Second
	// memberPoolCap caps idle pooled connections per member; checkins
	// beyond it close the connection instead.
	memberPoolCap = 4
)

// degradedObjectClass duplicates core.DegradedObjectClass (mds cannot
// import core — the dependency runs the other way) so a degraded GIIS
// reply is detected by the same client check as a degraded gatekeeper
// reply.
const degradedObjectClass = "InfoGramStatus"

// memberResult is one member's contribution to a scatter-gather.
type memberResult struct {
	addr    string
	entries []ldif.Entry
	err     error
}

// degradedSearchEntry builds the status entry appended to a partial
// merge: one "missing" attribute per unreachable member, plus the error
// that sidelined it.
func degradedSearchEntry(org string, failed []memberResult) ldif.Entry {
	if org == "" {
		org = "grid"
	}
	entry := ldif.Entry{DN: fmt.Sprintf("status=degraded, o=%s, o=grid", org)}
	entry.Add("objectclass", degradedObjectClass)
	entry.Add("degraded", "true")
	sort.Slice(failed, func(i, j int) bool { return failed[i].addr < failed[j].addr })
	for _, f := range failed {
		entry.Add("missing", f.addr)
		entry.Add("error:"+strings.ToLower(f.addr), f.err.Error())
	}
	return entry
}

// scatter queries every member through a bounded worker pool and returns
// one result per member, in member order.
func (g *GIIS) scatter(ctx context.Context, members []string, req SearchRequest) []memberResult {
	if len(members) == 0 {
		return nil
	}
	par := g.cfg.FanoutParallelism
	if par <= 0 {
		par = defaultFanoutParallelism
	}
	if par > len(members) {
		par = len(members)
	}
	results := make([]memberResult, len(members))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(members) {
					return
				}
				entries, err := g.queryMember(ctx, members[i], req)
				results[i] = memberResult{addr: members[i], entries: entries, err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// queryMember performs one authenticated search against a member under
// the per-member deadline, drawing on the connection pool.
func (g *GIIS) queryMember(ctx context.Context, addr string, req SearchRequest) ([]ldif.Entry, error) {
	timeout := g.cfg.MemberTimeout
	if timeout <= 0 {
		timeout = defaultMemberTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	cl, pooled := g.checkout(addr)
	if cl == nil {
		var err error
		cl, err = DialContext(ctx, addr, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock)
		if err != nil {
			return nil, err
		}
	}
	entries, err := cl.SearchContext(ctx, req)
	if err != nil && pooled && ctx.Err() == nil {
		// A pooled connection can go stale between searches (member
		// restart, idle reset). One fresh dial distinguishes a stale
		// connection from a dead member.
		cl.Close()
		if cl, err = DialContext(ctx, addr, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock); err != nil {
			return nil, err
		}
		entries, err = cl.SearchContext(ctx, req)
	}
	if err != nil {
		cl.Close()
		return nil, err
	}
	g.checkin(addr, cl)
	return entries, nil
}

// checkout pops an idle pooled client for addr, or (nil, false) when the
// caller must dial.
func (g *GIIS) checkout(addr string) (*Client, bool) {
	g.connMu.Lock()
	defer g.connMu.Unlock()
	pool := g.conns[addr]
	if len(pool) == 0 {
		return nil, false
	}
	cl := pool[len(pool)-1]
	g.conns[addr] = pool[:len(pool)-1]
	return cl, true
}

// checkin returns a healthy client to the pool, closing it instead when
// the pool is full or the GIIS has shut down.
func (g *GIIS) checkin(addr string, cl *Client) {
	g.connMu.Lock()
	if g.closed || len(g.conns[addr]) >= memberPoolCap {
		g.connMu.Unlock()
		cl.Close()
		return
	}
	g.conns[addr] = append(g.conns[addr], cl)
	g.connMu.Unlock()
}
