package mds

import "sync"

// keyScratch pools key-building buffers so the response-cache hit path
// performs no heap allocation.
var keyScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// appendGen appends a little-endian generation counter. Every cache key
// embeds the owning registry's (or membership set's) generation, so any
// churn makes every older entry unreachable at once — O(1) wholesale
// invalidation; the orphans age out by TTL or LRU.
func appendGen(b []byte, gen uint64) []byte {
	return append(b,
		byte(gen), byte(gen>>8), byte(gen>>16), byte(gen>>24),
		byte(gen>>32), byte(gen>>40), byte(gen>>48), byte(gen>>56))
}

// appendSearchKey builds the cache key of one search: a type prefix, the
// generation, the filter text, and the NUL-separated attribute projection.
func appendSearchKey(b []byte, prefix byte, gen uint64, req *SearchRequest) []byte {
	b = append(b, prefix)
	b = appendGen(b, gen)
	b = append(b, req.Filter...)
	for _, a := range req.Attrs {
		b = append(b, 0)
		b = append(b, a...)
	}
	return b
}
