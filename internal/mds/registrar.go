package mds

import (
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gsi"
)

// Registrar keeps a GRIS registered with a GIIS by re-registering
// periodically, the soft-state registration protocol MDS uses so dead
// resources age out of the aggregate (paper §3's "dynamic nature of
// Grids, including decentralized maintenance"). Pair it with a GIIS whose
// RegistrationTTL exceeds the period.
type Registrar struct {
	giisAddr string
	grisAddr string
	period   time.Duration
	cred     *gsi.Credential
	trust    *gsi.TrustStore
	clk      clock.Clock

	mu        sync.Mutex
	stop      chan struct{}
	stopped   bool
	successes int64
	failures  int64
}

// NewRegistrar builds (but does not start) a registrar announcing grisAddr
// to giisAddr every period.
func NewRegistrar(giisAddr, grisAddr string, period time.Duration, cred *gsi.Credential, trust *gsi.TrustStore) *Registrar {
	if period <= 0 {
		period = 30 * time.Second
	}
	return &Registrar{
		giisAddr: giisAddr,
		grisAddr: grisAddr,
		period:   period,
		cred:     cred,
		trust:    trust,
		clk:      clock.System,
		stop:     make(chan struct{}),
	}
}

// Start registers immediately and then on every period tick until Stop.
// The first registration's error is returned so deployments fail fast;
// later failures are counted and retried.
func (r *Registrar) Start() error {
	if err := r.registerOnce(); err != nil {
		return err
	}
	go r.loop()
	return nil
}

func (r *Registrar) loop() {
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			_ = r.registerOnce()
		}
	}
}

func (r *Registrar) registerOnce() error {
	cl, err := DialClock(r.giisAddr, r.cred, r.trust, r.clk)
	if err != nil {
		r.count(false)
		return err
	}
	defer cl.Close()
	if err := cl.RegisterWith(r.grisAddr); err != nil {
		r.count(false)
		return err
	}
	r.count(true)
	return nil
}

func (r *Registrar) count(ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.successes++
	} else {
		r.failures++
	}
}

// Counts reports successful and failed registration attempts.
func (r *Registrar) Counts() (successes, failures int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.successes, r.failures
}

// Stop ends the re-registration loop. Safe to call more than once.
func (r *Registrar) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
}
