package mds_test

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// cachedCountingRegistry is countingRegistry with a cacheable TTL, so
// execution counts observe exactly when the warm cache saved a collect.
func cachedCountingRegistry(clk clock.Clock, names ...string) (*provider.Registry, map[string]*atomic.Int64) {
	reg := provider.NewRegistry(clk)
	counts := make(map[string]*atomic.Int64, len(names))
	for _, name := range names {
		n := &atomic.Int64{}
		counts[name] = n
		reg.Register(provider.NewFuncProvider(name, func(ctx context.Context) (provider.Attributes, error) {
			n.Add(1)
			return provider.Attributes{{Name: "v", Value: "1"}}, nil
		}), provider.RegisterOptions{TTL: time.Hour, Clock: clk})
	}
	return reg, counts
}

// TestGRISPersistWarmRestart snapshots one GRIS's response cache and
// restores it into a second GRIS built over the same provider population
// but a different registration history: the restored server answers the
// same search from the snapshot with zero provider executions, the
// restart-to-warm-hit property the persistence layer exists for.
func TestGRISPersistWarmRestart(t *testing.T) {
	f := newFabric(t)
	clk := clock.NewFake(time.Unix(9000, 0))
	path := filepath.Join(t.TempDir(), "gris.snap")
	ctx := context.Background()
	req := mds.SearchRequest{Filter: "(kw=Memory)"}

	reg1, counts1 := cachedCountingRegistry(clk, "Memory", "CPU")
	g1 := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg1, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: time.Hour,
	})
	if _, err := g1.Search(ctx, req); err != nil {
		t.Fatal(err)
	}
	if counts1["Memory"].Load() != 1 {
		t.Fatalf("Memory executions = %d", counts1["Memory"].Load())
	}
	if err := g1.NewPersister(path, 0).Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Restart: same keywords and TTLs, but extra churn so the registry
	// generation differs and restore must re-stamp every key.
	reg2, counts2 := cachedCountingRegistry(clk, "Memory", "CPU")
	reg2.Register(provider.NewFuncProvider("Temp", func(ctx context.Context) (provider.Attributes, error) {
		return nil, nil
	}), provider.RegisterOptions{TTL: time.Minute, Clock: clk})
	reg2.Unregister("Temp")
	if reg2.Generation() == reg1.Generation() {
		t.Fatal("test needs distinct registry generations")
	}
	tel := telemetry.NewRegistry()
	g2 := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg2, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: time.Hour, Telemetry: tel,
	})
	st, err := g2.NewPersister(path, 0).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored == 0 {
		t.Fatalf("restore stats = %+v; want a warm cache", st)
	}
	entries, err := g2.Search(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("restored search returned %d entries", len(entries))
	}
	if got := counts2["Memory"].Load() + counts2["CPU"].Load(); got != 0 {
		t.Fatalf("restored server executed %d providers; want 0 (snapshot answered)", got)
	}
	if hits := telValue(tel, "infogram_bytecache_hits_total"); hits == 0 {
		t.Fatal("restored search did not register a cache hit")
	}
}

// TestGRISPersistForeignRegistryColdStart: a snapshot taken under one
// provider population is refused by a server configured with another —
// the digest gates acceptance, the server starts cold and collects.
func TestGRISPersistForeignRegistryColdStart(t *testing.T) {
	f := newFabric(t)
	clk := clock.NewFake(time.Unix(9000, 0))
	path := filepath.Join(t.TempDir(), "gris.snap")
	ctx := context.Background()

	reg1, _ := cachedCountingRegistry(clk, "Memory", "CPU")
	g1 := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg1, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: time.Hour,
	})
	if _, err := g1.Search(ctx, mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	if err := g1.NewPersister(path, 0).Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Different keyword set: the snapshot must be rejected wholesale.
	reg2, counts2 := cachedCountingRegistry(clk, "Disk")
	g2 := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg2, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: time.Hour,
	})
	st, err := g2.NewPersister(path, 0).Restore()
	if err == nil || st.Restored != 0 {
		t.Fatalf("foreign snapshot accepted: stats=%+v err=%v", st, err)
	}
	if _, err := g2.Search(ctx, mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	if counts2["Disk"].Load() != 1 {
		t.Fatalf("cold server collected %d times; want 1", counts2["Disk"].Load())
	}
}

// TestGIISPersistWarmRestart snapshots a GIIS aggregate cache and restores
// it into a second GIIS whose members were pre-registered (the documented
// ordering): the restored index answers from the snapshot even when every
// member is unreachable. An index restored before registering its members
// has an empty membership digest and must refuse the snapshot.
func TestGIISPersistWarmRestart(t *testing.T) {
	f := newFabric(t)
	path := filepath.Join(t.TempDir(), "giis.snap")
	ctx := context.Background()
	g1 := startGRIS(t, f, "res1")
	g2 := startGRIS(t, f, "res2")

	giis1 := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust, CacheTTL: time.Hour,
	})
	giis1.Register(g1.Addr())
	giis1.Register(g2.Addr())
	entries, err := giis1.Search(ctx, mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("fan-out entries = %d, want 4", len(entries))
	}
	if err := giis1.NewPersister(path, 0).Snapshot(); err != nil {
		t.Fatal(err)
	}

	// The members go away: only the snapshot can still answer.
	g1.Close()
	g2.Close()

	// Restoring before the members are registered: empty membership digest,
	// snapshot refused, nothing restored.
	bare := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust, CacheTTL: time.Hour,
	})
	if st, err := bare.NewPersister(path, 0).Restore(); err == nil || st.Restored != 0 {
		t.Fatalf("memberless GIIS accepted the snapshot: stats=%+v err=%v", st, err)
	}

	// The correct boot order: register the configured members, then restore.
	giis2 := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust, CacheTTL: time.Hour,
	})
	giis2.Register(g1.Addr())
	giis2.Register(g2.Addr())
	st, err := giis2.NewPersister(path, 0).Restore()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored == 0 {
		t.Fatalf("restore stats = %+v; want a warm cache", st)
	}
	entries, err = giis2.Search(ctx, mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("restored search returned %d entries; want 4 from the snapshot (members are down)", len(entries))
	}
}

// TestGRISNegativeTTLFloor pins the regression: a small CacheTTL used to
// shrink the default negative TTL (CacheTTL/4) far below a second, making
// empty-match bodies effectively uncacheable. It now floors at 1s.
func TestGRISNegativeTTLFloor(t *testing.T) {
	f := newFabric(t)
	clk := clock.NewFake(time.Unix(9000, 0))
	reg := provider.NewRegistry(clk)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Hour, Clock: clk})
	tel := telemetry.NewRegistry()
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: 2 * time.Second, Telemetry: tel, // TTL/4 = 500ms < the 1s floor
	})

	ctx := context.Background()
	empty := mds.SearchRequest{Filter: "(Memory:nosuch=1)"}
	if _, err := g.Search(ctx, empty); err != nil {
		t.Fatal(err)
	}
	// 900ms in: past the un-floored 500ms, inside the 1s floor — cached.
	clk.Advance(900 * time.Millisecond)
	misses0 := telValue(tel, "infogram_bytecache_misses_total")
	if _, err := g.Search(ctx, empty); err != nil {
		t.Fatal(err)
	}
	if got := telValue(tel, "infogram_bytecache_misses_total"); got != misses0 {
		t.Fatalf("misses = %d, want %d (negative entry expired before the floor)", got, misses0)
	}
	// 1.1s in: past the floor — re-evaluated.
	clk.Advance(200 * time.Millisecond)
	if _, err := g.Search(ctx, empty); err != nil {
		t.Fatal(err)
	}
	if got := telValue(tel, "infogram_bytecache_misses_total"); got == misses0 {
		t.Fatal("negative entry outlived the floored TTL")
	}
}
