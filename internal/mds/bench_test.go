package mds

import (
	"testing"

	"infogram/internal/ldif"
)

func benchEntry() *ldif.Entry {
	e := &ldif.Entry{DN: "kw=Memory, resource=hot.mcs.anl.gov, o=grid"}
	e.Add("objectclass", "InfoGramProvider")
	e.Add("kw", "Memory")
	e.Add("resource", "hot.mcs.anl.gov")
	e.Add("Memory:total", "1024")
	e.Add("Memory:free", "512")
	return e
}

func BenchmarkParseFilter(b *testing.B) {
	const f = "(&(objectclass=InfoGramProvider)(|(kw=Memory)(kw=CPU))(Memory:total>=512)(!(resource=cold*)))"
	for i := 0; i < b.N; i++ {
		if _, err := ParseFilter(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f, err := ParseFilter("(&(kw=Memory)(Memory:total>=512)(resource=hot*))")
	if err != nil {
		b.Fatal(err)
	}
	e := benchEntry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(e) {
			b.Fatal("no match")
		}
	}
}
