package mds

import (
	"testing"
	"testing/quick"

	"infogram/internal/ldif"
)

func entry(pairs ...string) *ldif.Entry {
	e := &ldif.Entry{DN: "kw=Test, o=grid"}
	for i := 0; i+1 < len(pairs); i += 2 {
		e.Add(pairs[i], pairs[i+1])
	}
	return e
}

func TestFilterEquality(t *testing.T) {
	e := entry("os", "linux", "Memory:total", "1024")
	cases := []struct {
		filter string
		want   bool
	}{
		{"(os=linux)", true},
		{"(os=LINUX)", true}, // case-insensitive
		{"(os=solaris)", false},
		{"(Memory:total=1024)", true},
		{"(missing=x)", false},
		{"(objectclass=*)", true},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.filter)
		if err != nil {
			t.Errorf("ParseFilter(%q): %v", c.filter, err)
			continue
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.filter, e, got, c.want)
		}
	}
}

func TestFilterWildcards(t *testing.T) {
	e := entry("name", "hot.mcs.anl.gov")
	cases := []struct {
		filter string
		want   bool
	}{
		{"(name=hot*)", true},
		{"(name=*anl*)", true},
		{"(name=*gov)", true},
		{"(name=hot*gov)", true},
		{"(name=*)", true}, // presence
		{"(name=cold*)", false},
		{"(name=*edu)", false},
		{"(name=h*m*g*v)", true},
		{"(name=h*x*v)", false},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.filter)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.filter, err)
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestFilterNumericComparison(t *testing.T) {
	e := entry("load", "2.5", "name", "abc")
	cases := []struct {
		filter string
		want   bool
	}{
		{"(load>=2)", true},
		{"(load>=2.5)", true},
		{"(load>=3)", false},
		{"(load<=3)", true},
		{"(load<=2)", false},
		// String fallback for non-numeric values.
		{"(name>=abc)", true},
		{"(name<=abb)", false},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.filter)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.filter, err)
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestFilterBooleans(t *testing.T) {
	e := entry("os", "linux", "arch", "x86")
	cases := []struct {
		filter string
		want   bool
	}{
		{"(&(os=linux)(arch=x86))", true},
		{"(&(os=linux)(arch=sparc))", false},
		{"(|(os=solaris)(arch=x86))", true},
		{"(|(os=solaris)(arch=sparc))", false},
		{"(!(os=solaris))", true},
		{"(!(os=linux))", false},
		{"(&(os=linux)(!(arch=sparc)))", true},
		{"(|(&(os=linux)(arch=x86))(os=plan9))", true},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.filter)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.filter, err)
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%s = %v, want %v", c.filter, got, c.want)
		}
	}
}

func TestFilterDNPseudoAttribute(t *testing.T) {
	e := entry()
	f, err := ParseFilter("(dn=kw=Test*)")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(e) {
		t.Error("dn filter did not match")
	}
}

func TestFilterMultiValuedAttributes(t *testing.T) {
	e := entry("member", "a", "member", "b")
	f, _ := ParseFilter("(member=b)")
	if !f.Matches(e) {
		t.Error("second value not matched")
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		"", "os=linux", "(os=linux", "(&)", "(|)", "(!)", "()",
		"(os~linux)", "((os=linux))", "(&(os=linux)", "(os=linux)x",
		"(>=5)", "(os>linux)",
	}
	for _, s := range bad {
		if _, err := ParseFilter(s); err == nil {
			t.Errorf("ParseFilter(%q): expected error", s)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	filters := []string{
		"(os=linux)", "(&(a=1)(b=2))", "(|(a=1)(b=2))", "(!(a=1))",
		"(load>=2.5)", "(load<=9)", "(name=h*t)",
	}
	e := entry("os", "linux", "a", "1", "b", "2", "load", "5", "name", "hat")
	for _, s := range filters {
		f, err := ParseFilter(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		f2, err := ParseFilter(f.String())
		if err != nil {
			t.Errorf("re-parse %q (from %q): %v", f.String(), s, err)
			continue
		}
		if f.Matches(e) != f2.Matches(e) {
			t.Errorf("%q and its round trip disagree", s)
		}
	}
}

// TestNotInvolution: (!(!(f))) behaves like f.
func TestNotInvolution(t *testing.T) {
	prop := func(value string, target string) bool {
		e := entry("attr", value)
		inner := &leafFilter{attr: "attr", op: opEq, pattern: target}
		double := &notFilter{&notFilter{inner}}
		return inner.Matches(e) == double.Matches(e)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatchAll(t *testing.T) {
	if !MatchAll().Matches(entry("anything", "at all")) {
		t.Error("MatchAll did not match")
	}
	if MatchAll().String() != "(objectclass=*)" {
		t.Errorf("String = %q", MatchAll().String())
	}
}
