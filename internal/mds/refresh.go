package mds

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/clock"
	"infogram/internal/telemetry"
)

// Refresh-ahead for the directory tier, mirroring the gatekeeper's pool
// (internal/core/refresh.go): a scanner walks the tracked searches, and
// entries that are both popular and past the configured fraction of their
// TTL are re-filled in the background through the ordinary miss path. A
// hot filter's p99 stays the cache-hit path; the provider executions (or,
// on a GIIS, the member fan-out) happen off-request. Both GRIS and GIIS
// embed one of these; the refill callback is the only tier-specific part.

const (
	// mdsRefreshMinHits is how many reads an entry must have absorbed
	// since its last fill to be worth refreshing — one-hit wonders expire.
	mdsRefreshMinHits = 2
	// mdsRefreshQueue bounds the scanner→worker queue; a full queue skips
	// the entry until the next scan.
	mdsRefreshQueue = 64
	// mdsRefreshTimeout bounds one background refill.
	mdsRefreshTimeout = 30 * time.Second
)

// trackedSearch is one refresh-ahead candidate: the cloned request and
// the cache key its rendering lives under.
type trackedSearch struct {
	req      SearchRequest
	key      []byte
	inflight atomic.Bool
}

// searchRefresher owns the scanner goroutine and the bounded worker pool.
type searchRefresher struct {
	resp  *bytecache.Cache
	clk   clock.Clock
	frac  float64 // refresh once elapsed >= frac * lifetime
	every time.Duration
	genOf func() uint64
	// refill re-evaluates one search through the miss path; it reports
	// whether a fresh rendering was stored (a degraded GIIS merge is
	// evaluated but never stored).
	refill func(ctx context.Context, req *SearchRequest) (bool, error)

	queue    chan *trackedSearch
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	tracked map[uint64]*trackedSearch

	refreshed *telemetry.Counter
	failed    *telemetry.Counter
	skipped   *telemetry.Counter
	trackedG  *telemetry.Gauge
}

// newSearchRefresher builds and starts the pool. frac is clamped to
// [0.1, 0.95]; workers defaults to 2.
func newSearchRefresher(resp *bytecache.Cache, clk clock.Clock, ttl time.Duration, frac float64, workers int,
	genOf func() uint64, refill func(context.Context, *SearchRequest) (bool, error)) *searchRefresher {
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.95 {
		frac = 0.95
	}
	if workers <= 0 {
		workers = 2
	}
	// Scan often enough that an entry is seen a few times inside its
	// refresh window (the last (1-frac) of its life), bounded to stay
	// cheap for long TTLs and sane for very short ones.
	every := time.Duration(float64(ttl) * (1 - frac) / 4)
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	if every > 5*time.Second {
		every = 5 * time.Second
	}
	r := &searchRefresher{
		resp:    resp,
		clk:     clk,
		frac:    frac,
		every:   every,
		genOf:   genOf,
		refill:  refill,
		queue:   make(chan *trackedSearch, mdsRefreshQueue),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		tracked: make(map[uint64]*trackedSearch),
	}
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.scan()
			case <-r.stopCh:
				return
			}
		}
	}()
	return r
}

// setTelemetry binds the pool's series, labeled by tier so a process
// hosting both a GRIS and a GIIS keeps their counters apart.
func (r *searchRefresher) setTelemetry(reg *telemetry.Registry, tier string) {
	if r == nil || reg == nil {
		return
	}
	l := telemetry.Label{Key: "tier", Value: tier}
	r.refreshed = reg.Counter("mds_refresh_ahead_total",
		"hot directory cache entries proactively refreshed before TTL expiry", l)
	r.failed = reg.Counter("mds_refresh_ahead_errors_total",
		"directory refresh-ahead fills that failed or came back degraded", l)
	r.skipped = reg.Counter("mds_refresh_ahead_skipped_total",
		"directory refresh-ahead candidates deferred because the worker queue was full", l)
	r.trackedG = reg.Gauge("mds_refresh_ahead_tracked",
		"directory entries currently tracked as refresh-ahead candidates", l)
}

// track registers one stored search as a refresh candidate. The request
// and key are cloned: the caller's key buffer is pooled.
func (r *searchRefresher) track(req *SearchRequest, key []byte) {
	if r == nil {
		return
	}
	h := keyHash(key)
	r.mu.Lock()
	if _, ok := r.tracked[h]; !ok {
		clone := *req
		clone.Attrs = append([]string(nil), req.Attrs...)
		r.tracked[h] = &trackedSearch{req: clone, key: append([]byte(nil), key...)}
	}
	r.mu.Unlock()
}

// close stops the scanner and the workers. Idempotent; nil-safe.
func (r *searchRefresher) close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() {
		close(r.stopCh)
		<-r.done
		close(r.queue)
	})
}

// scan walks the tracked candidates once, pruning dead ones and queueing
// the hot-and-aging ones.
func (r *searchRefresher) scan() {
	now := r.clk.Now().UnixNano()
	gen := r.genOf()
	r.mu.Lock()
	cands := make([]*trackedSearch, 0, len(r.tracked))
	for _, t := range r.tracked {
		cands = append(cands, t)
	}
	r.mu.Unlock()
	r.trackedG.Set(int64(len(cands)))
	for _, t := range cands {
		// Cache keys carry the generation at bytes [1,9) (after the type
		// prefix); a generation change orphaned the key, and a refresh
		// would resurrect data under a dead key.
		if len(t.key) < 9 || binary.LittleEndian.Uint64(t.key[1:9]) != gen {
			r.untrack(t.key)
			continue
		}
		info, ok := r.resp.Info(t.key)
		if !ok {
			// Expired or evicted; the next request-path miss re-tracks it.
			r.untrack(t.key)
			continue
		}
		if info.Hits < mdsRefreshMinHits || info.Expire <= info.Stored {
			continue
		}
		if now-info.Stored < int64(r.frac*float64(info.Expire-info.Stored)) {
			continue
		}
		if !t.inflight.CompareAndSwap(false, true) {
			continue // already queued or refreshing
		}
		select {
		case r.queue <- t:
		default:
			t.inflight.Store(false)
			r.skipped.Inc()
		}
	}
}

// untrack drops a candidate whose cache entry is gone or orphaned.
func (r *searchRefresher) untrack(key []byte) {
	h := keyHash(key)
	r.mu.Lock()
	delete(r.tracked, h)
	r.mu.Unlock()
}

// worker drains the queue, re-executing fills.
func (r *searchRefresher) worker() {
	for t := range r.queue {
		ctx, cancel := context.WithTimeout(context.Background(), mdsRefreshTimeout)
		stored, err := r.refill(ctx, &t.req)
		cancel()
		if err != nil || !stored {
			r.failed.Inc()
		} else {
			r.refreshed.Inc()
		}
		t.inflight.Store(false)
	}
}

// keyHash digests a cache key for the tracked-candidate map.
func keyHash(key []byte) uint64 {
	f := newFNV()
	for _, b := range key {
		f.writeByte(b)
	}
	return f.sum()
}
