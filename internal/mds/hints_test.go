package mds_test

import (
	"reflect"
	"testing"

	"infogram/internal/mds"
)

// TestKeywordHints exercises the conservative filter→keyword projection
// against the ReportEntries shape (structural attrs + "<Keyword>:<attr>"
// namespaced attrs).
func TestKeywordHints(t *testing.T) {
	known := []string{"Memory", "CPU", "Disk"}
	cases := []struct {
		filter string
		want   []string
		all    bool
	}{
		// kw leaves narrow by wildcard match, case-insensitively.
		{"(kw=Memory)", []string{"Memory"}, false},
		{"(keyword=cpu)", []string{"CPU"}, false},
		{"(kw=*)", []string{"Memory", "CPU", "Disk"}, false},
		{"(kw=D*)", []string{"Disk"}, false},
		{"(kw=Ghost)", []string{}, false},
		// Range comparison on kw cannot be narrowed.
		{"(kw>=A)", nil, true},
		// Structural attributes appear on every entry.
		{"(objectclass=*)", nil, true},
		{"(resource=res1)", nil, true},
		{"(dn=kw=Memory*)", nil, true},
		// Namespaced attributes pin the keyword; unknown prefixes match no
		// provider entry at all.
		{"(Memory:free>=100)", []string{"Memory"}, false},
		{"(cpu:model=x*)", []string{"CPU"}, false},
		{"(NoSuch:attr=1)", []string{}, false},
		// Un-namespaced unknown attribute: stay conservative.
		{"(whatever=1)", nil, true},
		// AND intersects; unprovable children drop out of the intersection.
		{"(&(kw=Memory)(Memory:free=512))", []string{"Memory"}, false},
		{"(&(kw=Memory)(kw=CPU))", []string{}, false},
		{"(&(resource=r)(objectclass=*))", nil, true},
		{"(&(resource=r)(kw=Disk))", []string{"Disk"}, false},
		// OR unions; any unprovable child widens to everything.
		{"(|(kw=Memory)(kw=CPU))", []string{"Memory", "CPU"}, false},
		{"(|(kw=Memory)(resource=x))", nil, true},
		// Negation matches the complement: never narrowed.
		{"(!(kw=Memory))", nil, true},
		{"(&(kw=*)(!(kw=Memory)))", []string{"Memory", "CPU", "Disk"}, false},
	}
	for _, tc := range cases {
		f, err := mds.ParseFilter(tc.filter)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.filter, err)
		}
		got, all := mds.KeywordHints(f, known)
		if all != tc.all {
			t.Errorf("%s: all = %v, want %v", tc.filter, all, tc.all)
			continue
		}
		if !tc.all && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: keywords = %v, want %v", tc.filter, got, tc.want)
		}
	}
}
