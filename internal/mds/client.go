package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"

	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/wire"
)

// Client speaks the MDS directory protocol to a GRIS or GIIS. Note that a
// Figure 2 client needs both this client and a gram.Client — two protocol
// implementations — where the Figure 4 InfoGram client needs one.
type Client struct {
	conn *wire.Conn
	peer *gsi.Peer
}

// Dial connects and authenticates to an MDS server.
func Dial(addr string, cred *gsi.Credential, trust *gsi.TrustStore) (*Client, error) {
	return DialClock(addr, cred, trust, clock.System)
}

// DialClock is Dial with an injected clock.
func DialClock(addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock) (*Client, error) {
	return DialContext(context.Background(), addr, cred, trust, clk)
}

// DialContext is DialClock bounded by the context: the TCP connect, the
// GSI handshake, and nothing else. Subsequent calls carry their own
// contexts.
func DialContext(ctx context.Context, addr string, cred *gsi.Credential, trust *gsi.TrustStore, clk clock.Clock) (*Client, error) {
	dialer := net.Dialer{}
	nc, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mds: dial %s: %w", addr, err)
	}
	conn := wire.NewConn(nc)
	peer, err := gsi.ClientHandshakeContext(ctx, conn, cred, trust, clk.Now())
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, peer: peer}, nil
}

// Server returns the authenticated server identity.
func (c *Client) Server() *gsi.Peer { return c.peer }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Search performs one search and decodes the LDIF result.
func (c *Client) Search(req SearchRequest) ([]ldif.Entry, error) {
	return c.SearchContext(context.Background(), req)
}

// SearchContext is Search bounded by the context's deadline and
// cancellation. Cancellation mid-call leaves the connection's framing in
// an unknown state; callers should discard the client afterwards.
func (c *Client) SearchContext(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mds: encode search: %w", err)
	}
	resp, err := c.conn.CallContext(ctx, wire.Frame{Verb: VerbSearch, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Verb != VerbResult {
		return nil, fmt.Errorf("mds: server error: %s", strings.TrimSpace(string(resp.Payload)))
	}
	return ldif.Unmarshal(string(resp.Payload))
}

// RegisterWith registers a GRIS address with a GIIS.
func (c *Client) RegisterWith(grisAddr string) error {
	resp, err := c.conn.Call(wire.Frame{Verb: VerbRegister, Payload: []byte(grisAddr)})
	if err != nil {
		return err
	}
	if resp.Verb != VerbRegOK {
		return fmt.Errorf("mds: registration failed: %s", strings.TrimSpace(string(resp.Payload)))
	}
	return nil
}
