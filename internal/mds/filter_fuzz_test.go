package mds

import (
	"strings"
	"testing"

	"infogram/internal/provider"
)

// FuzzParseFilter drives the LDAP filter parser with arbitrary input and
// checks three invariants on everything that parses: the rendered form
// re-parses and renders identically (round-trip stability), evaluation
// never panics, and KeywordHints stays sound — a keyword whose provider
// entry the filter matches is never excluded from the hint set the GRIS
// uses to narrow collection.
func FuzzParseFilter(f *testing.F) {
	seeds := []string{
		"(objectclass=*)",
		"(kw=Memory)",
		"(keyword=cpu)",
		"(&(kw=Memory)(Memory:free>=100))",
		"(|(kw=a*)(CPU:model=x))",
		"(!(resource=r1))",
		"(Memory:free<=1024)",
		"(dn=kw=Memory, resource=r, o=grid)",
		"(a=*mid*dle*)",
		"(&(|(kw=A)(kw=B))(!(objectclass=x)))",
		"(((broken",
		"(&)",
		"(a=(nested))",
		"( spaced = value )",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	known := []string{"Memory", "CPU"}
	reports := []provider.Report{
		{Keyword: "Memory", Attrs: provider.Attributes{{Name: "free", Value: "512"}}},
		{Keyword: "CPU", Attrs: provider.Attributes{{Name: "count", Value: "8"}}},
	}
	entries := provider.ReportEntries("fuzz.res", reports)

	f.Fuzz(func(t *testing.T, s string) {
		flt, err := ParseFilter(s)
		if err != nil {
			return
		}
		rendered := flt.String()
		flt2, err := ParseFilter(rendered)
		if err != nil {
			t.Fatalf("rendered filter %q does not re-parse: %v", rendered, err)
		}
		if got := flt2.String(); got != rendered {
			t.Fatalf("render unstable: %q -> %q", rendered, got)
		}

		kws, all := KeywordHints(flt, known)
		if all && kws != nil {
			t.Fatal("all=true must return a nil keyword set")
		}
		for _, e := range entries {
			matched := flt.Matches(&e)
			if all || !matched {
				continue
			}
			kw, _ := e.Get("kw")
			found := false
			for _, k := range kws {
				if strings.EqualFold(k, kw) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("filter %q matches the %s entry but KeywordHints excluded it (hints %v)",
					rendered, kw, kws)
			}
		}
	})
}
