package mds_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"infogram/internal/clock"
	"infogram/internal/mds"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
)

// telValue reads one label-free counter/gauge from a registry snapshot.
func telValue(reg *telemetry.Registry, name string) int64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value
		}
	}
	return -1
}

// countingRegistry registers TTL-0 providers (every collection executes)
// so execution counts observe exactly which keywords a search collected.
func countingRegistry(clk clock.Clock, names ...string) (*provider.Registry, map[string]*atomic.Int64) {
	reg := provider.NewRegistry(clk)
	counts := make(map[string]*atomic.Int64, len(names))
	for _, name := range names {
		n := &atomic.Int64{}
		counts[name] = n
		reg.Register(provider.NewFuncProvider(name, func(ctx context.Context) (provider.Attributes, error) {
			n.Add(1)
			return provider.Attributes{{Name: "v", Value: "1"}}, nil
		}), provider.RegisterOptions{TTL: 0, Clock: clk})
	}
	return reg, counts
}

// TestGRISCollectsOnlyMatchableKeywords verifies the projection fix: a
// filtered search executes only the providers its filter can match, and a
// filter that provably matches nothing skips collection entirely.
func TestGRISCollectsOnlyMatchableKeywords(t *testing.T) {
	f := newFabric(t)
	reg, counts := countingRegistry(nil, "Memory", "CPU")
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	if got := counts["Memory"].Load(); got != 1 {
		t.Errorf("Memory executions = %d, want 1", got)
	}
	if got := counts["CPU"].Load(); got != 0 {
		t.Errorf("CPU executed %d times for a (kw=Memory) search", got)
	}

	// Namespaced attribute pins the keyword.
	if _, err := cl.Search(mds.SearchRequest{Filter: "(CPU:v=1)"}); err != nil {
		t.Fatal(err)
	}
	if got := counts["CPU"].Load(); got != 1 {
		t.Errorf("CPU executions = %d, want 1", got)
	}
	if got := counts["Memory"].Load(); got != 1 {
		t.Errorf("Memory executed for a (CPU:v=1) search")
	}

	// Provably-empty filter: no provider runs at all.
	entries, err = cl.Search(mds.SearchRequest{Filter: "(NoSuch:attr=1)"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("impossible filter returned %d entries", len(entries))
	}
	if got := counts["Memory"].Load() + counts["CPU"].Load(); got != 2 {
		t.Errorf("providers executed for a provably-empty filter (total %d, want 2)", got)
	}

	// Unfiltered search still collects everything.
	if _, err := cl.Search(mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	if counts["Memory"].Load() != 2 || counts["CPU"].Load() != 2 {
		t.Errorf("unfiltered search collect counts = %d/%d, want 2/2",
			counts["Memory"].Load(), counts["CPU"].Load())
	}
}

// TestGRISResponseCache verifies repeated searches are served from the
// rendered-body cache (observable through the bytecache hit counter) and
// that provider churn invalidates cached bodies immediately via the
// registry generation.
func TestGRISResponseCache(t *testing.T) {
	f := newFabric(t)
	reg := provider.NewRegistry(nil)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	tel := telemetry.NewRegistry()
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
		CacheTTL: time.Minute, Telemetry: tel,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cl, err := mds.Dial(g.Addr(), f.user, f.trust)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	first, err := cl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
	if err != nil {
		t.Fatal(err)
	}
	hits0 := telValue(tel, "infogram_bytecache_hits_total")
	for i := 0; i < 4; i++ {
		entries, err := cl.Search(mds.SearchRequest{Filter: "(kw=Memory)"})
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != len(first) {
			t.Fatalf("cached reply shape differs: %d vs %d", len(entries), len(first))
		}
	}
	if got := telValue(tel, "infogram_bytecache_hits_total"); got != hits0+4 {
		t.Fatalf("bytecache hits = %d, want %d", got, hits0+4)
	}

	// Registering a provider bumps the generation: the next unfiltered
	// search must see the new keyword, not a stale cached body.
	if _, err := cl.Search(mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	reg.Register(&provider.StaticProvider{
		KeywordName: "CPU",
		Values:      provider.Attributes{{Name: "count", Value: "8"}},
	}, provider.RegisterOptions{TTL: time.Hour})
	entries, err := cl.Search(mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries after registration = %d, want 2 (stale cache served?)", len(entries))
	}
}

// TestGRISNegativeResultShorterTTL verifies empty-match bodies are cached
// under the negative TTL: served from cache inside it, re-evaluated after.
func TestGRISNegativeResultShorterTTL(t *testing.T) {
	f := newFabric(t)
	clk := clock.NewFake(time.Unix(9000, 0))
	reg := provider.NewRegistry(clk)
	reg.Register(&provider.StaticProvider{
		KeywordName: "Memory",
		Values:      provider.Attributes{{Name: "free", Value: "512"}},
	}, provider.RegisterOptions{TTL: time.Hour, Clock: clk})
	tel := telemetry.NewRegistry()
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
		Clock: clk, CacheTTL: 40 * time.Second, Telemetry: tel, // negative TTL defaults to 10s
	})

	ctx := context.Background()
	empty := mds.SearchRequest{Filter: "(Memory:nosuch=1)"}
	full := mds.SearchRequest{Filter: "(kw=Memory)"}
	for _, req := range []mds.SearchRequest{empty, full} {
		if _, err := g.Search(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	hits0 := telValue(tel, "infogram_bytecache_hits_total")
	for _, req := range []mds.SearchRequest{empty, full} {
		if _, err := g.Search(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if got := telValue(tel, "infogram_bytecache_hits_total"); got != hits0+2 {
		t.Fatalf("hits = %d, want %d (both bodies cached)", got, hits0+2)
	}

	// Past the negative TTL but inside the positive one: only the
	// empty-match body has expired, so only it forces a cache miss. (The
	// hit counter cannot discriminate here — the filter→keyword projection
	// entry also registers hits.)
	clk.Advance(11 * time.Second)
	misses0 := telValue(tel, "infogram_bytecache_misses_total")
	if _, err := g.Search(ctx, empty); err != nil {
		t.Fatal(err)
	}
	if got := telValue(tel, "infogram_bytecache_misses_total"); got != misses0+1 {
		t.Fatalf("misses = %d, want %d (empty-match body served past the negative TTL)", got, misses0+1)
	}
	if _, err := g.Search(ctx, full); err != nil {
		t.Fatal(err)
	}
	if got := telValue(tel, "infogram_bytecache_misses_total"); got != misses0+1 {
		t.Fatal("positive body not served inside its TTL")
	}
}

// TestGIISCacheInvalidatedByMembership verifies the GIIS aggregate cache
// is keyed by the membership generation: a new registrant invalidates it
// at once, while soft-state re-registration of a live member does not.
func TestGIISCacheInvalidatedByMembership(t *testing.T) {
	f := newFabric(t)
	g1 := startGRIS(t, f, "res1")
	g2 := startGRIS(t, f, "res2")
	tel := telemetry.NewRegistry()
	giis := mds.NewGIIS(mds.GIISConfig{
		OrgName: "vo", Credential: f.svc, Trust: f.trust,
		CacheTTL: time.Hour, Telemetry: tel,
	})
	if _, err := giis.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer giis.Close()
	giis.Register(g1.Addr())

	ctx := context.Background()
	entries, err := giis.Search(ctx, mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}

	// Soft-state refresh of a live member must not invalidate the cache.
	giis.Register(g1.Addr())
	hits0 := telValue(tel, "infogram_bytecache_hits_total")
	if _, err := giis.Search(ctx, mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := telValue(tel, "infogram_bytecache_hits_total"); got != hits0+1 {
		t.Fatalf("hits = %d, want %d (re-registration thrashed the cache)", got, hits0+1)
	}

	// A genuinely new member must invalidate it immediately.
	giis.Register(g2.Addr())
	entries, err = giis.Search(ctx, mds.SearchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries after new member = %d, want 4 (stale cache served?)", len(entries))
	}
}

// TestGRISRefreshAhead: a hot cached search is re-filled in the
// background once it ages past the configured fraction of its TTL, so
// subsequent requests keep hitting without the entry ever expiring.
func TestGRISRefreshAhead(t *testing.T) {
	f := newFabric(t)
	var execs atomic.Int64
	reg := provider.NewRegistry(nil)
	reg.Register(provider.NewFuncProvider("Load", func(ctx context.Context) (provider.Attributes, error) {
		execs.Add(1)
		return provider.Attributes{{Name: "v", Value: "1"}}, nil
	}), provider.RegisterOptions{TTL: time.Hour})
	tel := telemetry.NewRegistry()
	g := mds.NewGRIS(mds.GRISConfig{
		ResourceName: "res", Registry: reg, Credential: f.svc, Trust: f.trust,
		CacheTTL:     500 * time.Millisecond,
		RefreshAhead: 0.3,
		Telemetry:    tel,
	})
	if _, err := g.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// One fill plus enough hits to cross the popularity bar.
	for i := 0; i < 3; i++ {
		if _, err := g.SearchLDIF(context.Background(), mds.SearchRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs after warm-up = %d, want 1 (cache broken?)", got)
	}

	// Wait past the refresh threshold (150ms) and give the scanner time
	// to run; the provider must execute again without any request.
	deadline := time.Now().Add(2 * time.Second)
	for execs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := execs.Load(); got < 2 {
		t.Fatalf("refresh-ahead never re-executed the provider (execs = %d)", got)
	}

	// The entry was refreshed in place: this is still a hit.
	before := execs.Load()
	if _, err := g.SearchLDIF(context.Background(), mds.SearchRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != before {
		t.Errorf("post-refresh search missed the cache (execs %d -> %d)", before, got)
	}
	refreshed := int64(-1)
	for _, p := range tel.Snapshot() {
		if p.Name == "mds_refresh_ahead_total" {
			refreshed = p.Value
		}
	}
	if refreshed < 1 {
		t.Errorf("mds_refresh_ahead_total = %d, want >= 1", refreshed)
	}
}
