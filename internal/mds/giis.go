package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/zerocopy"
)

// GIISConfig wires an index service.
type GIISConfig struct {
	// OrgName names the virtual organization the index serves.
	OrgName string
	// Credential/Trust authenticate the GIIS both as a server (to
	// clients) and as a client (to the GRISes it queries).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	Policy     *gsi.Policy
	// RegistrationTTL expires registrants that have not re-registered;
	// 0 means registrations never expire.
	RegistrationTTL time.Duration
	// CacheTTL caches fan-out results briefly, MDS's aggregate caching
	// (§3 "an information caching function that allows viewing and
	// querying the information about a resource from a cache"). Rendered
	// bodies live in a sharded byte cache keyed by the membership
	// generation, so one cache holds many concurrent filters and any
	// membership change invalidates the lot. Member provider TTLs are not
	// visible across the wire, so CacheTTL alone bounds staleness here.
	CacheTTL time.Duration
	// CacheShards / CacheMaxBytes size the byte cache (0 selects the
	// bytecache defaults).
	CacheShards   int
	CacheMaxBytes int64
	// Telemetry, when set together with CacheTTL, receives the byte
	// cache's counters and per-shard occupancy series.
	Telemetry *telemetry.Registry
	Clock     clock.Clock
}

// GIIS is the aggregate directory of paper §3: GRIS servers register with
// it, and client searches fan out across all live registrants, mirroring
// how a virtual organization aggregates its resources' information.
type GIIS struct {
	cfg    GIISConfig
	server *wire.Server

	mu      sync.Mutex
	members map[string]time.Time // GRIS address -> registration time
	// memGen counts membership changes: new registrants and expiries, but
	// NOT soft-state re-registration (registrars re-register continuously
	// and must not thrash the cache). Cache keys embed it.
	memGen atomic.Uint64
	// resp caches rendered fan-out bodies; nil when CacheTTL is zero.
	resp *bytecache.Cache
}

// NewGIIS builds an index service.
func NewGIIS(cfg GIISConfig) *GIIS {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	g := &GIIS{cfg: cfg, members: make(map[string]time.Time)}
	if cfg.CacheTTL > 0 {
		g.resp = bytecache.New(bytecache.Options{
			Shards:     cfg.CacheShards,
			MaxBytes:   cfg.CacheMaxBytes,
			DefaultTTL: cfg.CacheTTL,
			Clock:      cfg.Clock,
		})
		if cfg.Telemetry != nil {
			g.resp.SetTelemetry(cfg.Telemetry)
		}
	}
	g.server = wire.NewServer(wire.HandlerFunc(g.serveConn))
	return g
}

// Listen binds the GIIS.
func (g *GIIS) Listen(addr string) (string, error) { return g.server.Listen(addr) }

// Addr returns the bound address.
func (g *GIIS) Addr() string { return g.server.Addr() }

// Close shuts the GIIS down.
func (g *GIIS) Close() error { return g.server.Close() }

// Register adds a GRIS address directly (servers co-located with the GIIS
// may skip the wire protocol). Re-registering a live member refreshes its
// soft state without invalidating cached responses.
func (g *GIIS) Register(addr string) {
	g.mu.Lock()
	if _, known := g.members[addr]; !known {
		g.memGen.Add(1)
	}
	g.members[addr] = g.cfg.Clock.Now()
	g.mu.Unlock()
}

// Members returns the live registrant addresses, sorted.
func (g *GIIS) Members() []string {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for addr, at := range g.members {
		if g.cfg.RegistrationTTL > 0 && now.Sub(at) > g.cfg.RegistrationTTL {
			delete(g.members, addr)
			g.memGen.Add(1)
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

func (g *GIIS) serveConn(c *wire.Conn) {
	peer, err := gsi.ServerHandshake(c, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock.Now())
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case VerbRegister:
			addr := strings.TrimSpace(string(f.Payload))
			if addr == "" {
				_ = c.WriteString(VerbMDSError, "mds: empty registration address")
				continue
			}
			g.Register(addr)
			_ = c.WriteString(VerbRegOK, addr)
		case VerbSearch:
			g.handleSearch(c, f.Payload, peer)
		default:
			_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: unknown verb %s", f.Verb))
		}
	}
}

func (g *GIIS) handleSearch(c *wire.Conn, payload []byte, peer *gsi.Peer) {
	if err := g.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, g.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: bad search payload: %v", err))
		return
	}
	body, err := g.SearchLDIF(context.Background(), req)
	if err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbResult, Payload: body})
}

// Search fans the request out to every live registrant and merges results.
// Repeated searches within CacheTTL are served from the aggregate cache.
func (g *GIIS) Search(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	body, err := g.SearchLDIF(ctx, req)
	if err != nil {
		return nil, err
	}
	return ldif.Unmarshal(zerocopy.String(body))
}

// SearchLDIF answers a search with the rendered LDIF body, serving repeats
// from the byte cache. The returned bytes must be treated as read-only: on
// a hit they alias the cache's append-only arena. Unreachable members are
// skipped, matching the decentralized tolerance a Grid information service
// requires (§3).
func (g *GIIS) SearchLDIF(ctx context.Context, req SearchRequest) ([]byte, error) {
	gen := g.memGen.Load()
	if g.resp != nil {
		keyp := keyScratch.Get().(*[]byte)
		key := appendSearchKey((*keyp)[:0], 'g', gen, &req)
		blob, ok := g.resp.Get(key)
		*keyp = key[:0]
		keyScratch.Put(keyp)
		if ok {
			return blob, nil
		}
	}

	members := g.Members()
	type result struct {
		entries []ldif.Entry
		err     error
		addr    string
	}
	results := make(chan result, len(members))
	for _, addr := range members {
		go func(addr string) {
			entries, err := g.queryMember(addr, req)
			results <- result{entries, err, addr}
		}(addr)
	}
	var merged []ldif.Entry
	for range members {
		r := <-results
		if r.err != nil {
			continue // tolerate dead members
		}
		merged = append(merged, r.entries...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].DN < merged[j].DN })

	out, err := ldif.Marshal(merged)
	if err != nil {
		return nil, err
	}
	if g.resp != nil {
		keyp := keyScratch.Get().(*[]byte)
		// Key under the generation observed before the fan-out: if the
		// membership changed mid-flight the entry is orphaned, never
		// served stale.
		key := appendSearchKey((*keyp)[:0], 'g', gen, &req)
		g.resp.Set(key, zerocopy.Bytes(out), g.cfg.CacheTTL)
		*keyp = key[:0]
		keyScratch.Put(keyp)
	}
	return zerocopy.Bytes(out), nil
}

// queryMember performs one authenticated search against a GRIS.
func (g *GIIS) queryMember(addr string, req SearchRequest) ([]ldif.Entry, error) {
	cl, err := DialClock(addr, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.Search(req)
}
