package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/zerocopy"
)

// GIISConfig wires an index service.
type GIISConfig struct {
	// OrgName names the virtual organization the index serves.
	OrgName string
	// Credential/Trust authenticate the GIIS both as a server (to
	// clients) and as a client (to the GRISes it queries).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	Policy     *gsi.Policy
	// RegistrationTTL expires registrants that have not re-registered;
	// 0 means registrations never expire.
	RegistrationTTL time.Duration
	// CacheTTL caches fan-out results briefly, MDS's aggregate caching
	// (§3 "an information caching function that allows viewing and
	// querying the information about a resource from a cache"). Rendered
	// bodies live in a sharded byte cache keyed by the membership
	// generation, so one cache holds many concurrent filters and any
	// membership change invalidates the lot. Member provider TTLs are not
	// visible across the wire, so CacheTTL alone bounds staleness here.
	CacheTTL time.Duration
	// CacheShards / CacheMaxBytes size the byte cache (0 selects the
	// bytecache defaults).
	CacheShards   int
	CacheMaxBytes int64
	// FanoutParallelism bounds concurrent member queries per search; 0
	// selects defaultFanoutParallelism. Unbounded fan-out would let one
	// search against a large federation spawn a goroutine and a connection
	// per registrant.
	FanoutParallelism int
	// MemberTimeout bounds each member query (dial, handshake, and call);
	// 0 selects defaultMemberTimeout. A member that exceeds it is reported
	// in the degraded status entry instead of stalling the whole search.
	MemberTimeout time.Duration
	// RefreshAhead, when in (0,1) and the cache is enabled, proactively
	// re-runs hot cached fan-outs once they age past this fraction of
	// CacheTTL, so a steady-state hot aggregate query never pays the
	// member fan-out on a request. Zero disables the pool.
	RefreshAhead float64
	// RefreshWorkers bounds concurrent refresh-ahead fan-outs; 0 selects 2.
	RefreshWorkers int
	// SnapshotCompress writes cache snapshots gzip-compressed; restore
	// reads both layouts regardless.
	SnapshotCompress bool
	// Telemetry, when set together with CacheTTL, receives the byte
	// cache's counters and per-shard occupancy series.
	Telemetry *telemetry.Registry
	Clock     clock.Clock
}

// GIIS is the aggregate directory of paper §3: GRIS servers register with
// it, and client searches fan out across all live registrants, mirroring
// how a virtual organization aggregates its resources' information.
type GIIS struct {
	cfg    GIISConfig
	server *wire.Server

	mu      sync.Mutex
	members map[string]time.Time // GRIS address -> registration time
	// memGen counts membership changes: new registrants and expiries, but
	// NOT soft-state re-registration (registrars re-register continuously
	// and must not thrash the cache). Cache keys embed it.
	memGen atomic.Uint64
	// resp caches rendered fan-out bodies; nil when CacheTTL is zero.
	resp *bytecache.Cache
	// conns holds idle authenticated member clients for reuse across
	// searches, so the fan-out does not pay a dial + GSI handshake per
	// member per query.
	connMu sync.Mutex
	conns  map[string][]*Client
	closed bool

	fanDegraded  *telemetry.Counter
	memberErrors *telemetry.Counter
	// refresh keeps hot cached fan-outs from expiring under load; nil
	// unless both CacheTTL and RefreshAhead are set.
	refresh *searchRefresher
}

// NewGIIS builds an index service.
func NewGIIS(cfg GIISConfig) *GIIS {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	g := &GIIS{cfg: cfg, members: make(map[string]time.Time), conns: make(map[string][]*Client)}
	if cfg.Telemetry != nil {
		g.fanDegraded = cfg.Telemetry.Counter("mds_giis_searches_degraded_total",
			"GIIS searches answered partially because a member failed or timed out")
		g.memberErrors = cfg.Telemetry.Counter("mds_giis_member_errors_total",
			"GIIS member queries that failed or timed out")
	}
	if cfg.CacheTTL > 0 {
		g.resp = bytecache.New(bytecache.Options{
			Shards:     cfg.CacheShards,
			MaxBytes:   cfg.CacheMaxBytes,
			DefaultTTL: cfg.CacheTTL,
			Clock:      cfg.Clock,
		})
		if cfg.Telemetry != nil {
			g.resp.SetTelemetry(cfg.Telemetry)
		}
		if cfg.RefreshAhead > 0 {
			g.refresh = newSearchRefresher(g.resp, cfg.Clock, cfg.CacheTTL,
				cfg.RefreshAhead, cfg.RefreshWorkers,
				g.memGen.Load,
				func(ctx context.Context, req *SearchRequest) (bool, error) {
					_, stored, err := g.fillSearch(ctx, req)
					return stored, err
				})
			if cfg.Telemetry != nil {
				g.refresh.setTelemetry(cfg.Telemetry, "giis")
			}
		}
	}
	g.server = wire.NewServer(wire.HandlerFunc(g.serveConn))
	return g
}

// Listen binds the GIIS.
func (g *GIIS) Listen(addr string) (string, error) { return g.server.Listen(addr) }

// Addr returns the bound address.
func (g *GIIS) Addr() string { return g.server.Addr() }

// Close shuts the GIIS down and drops the pooled member connections.
func (g *GIIS) Close() error {
	g.refresh.close()
	g.connMu.Lock()
	g.closed = true
	for addr, pool := range g.conns {
		for _, cl := range pool {
			cl.Close()
		}
		delete(g.conns, addr)
	}
	g.connMu.Unlock()
	return g.server.Close()
}

// Register adds a GRIS address directly (servers co-located with the GIIS
// may skip the wire protocol). Re-registering a live member refreshes its
// soft state without invalidating cached responses.
func (g *GIIS) Register(addr string) {
	g.mu.Lock()
	if _, known := g.members[addr]; !known {
		g.memGen.Add(1)
	}
	g.members[addr] = g.cfg.Clock.Now()
	g.mu.Unlock()
}

// Members returns the live registrant addresses, sorted.
func (g *GIIS) Members() []string {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for addr, at := range g.members {
		if g.cfg.RegistrationTTL > 0 && now.Sub(at) > g.cfg.RegistrationTTL {
			delete(g.members, addr)
			g.memGen.Add(1)
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

func (g *GIIS) serveConn(c *wire.Conn) {
	peer, err := gsi.ServerHandshake(c, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock.Now())
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case VerbRegister:
			addr := strings.TrimSpace(string(f.Payload))
			if addr == "" {
				_ = c.WriteString(VerbMDSError, "mds: empty registration address")
				continue
			}
			g.Register(addr)
			_ = c.WriteString(VerbRegOK, addr)
		case VerbSearch:
			g.handleSearch(c, f.Payload, peer)
		default:
			_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: unknown verb %s", f.Verb))
		}
	}
}

func (g *GIIS) handleSearch(c *wire.Conn, payload []byte, peer *gsi.Peer) {
	if err := g.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, g.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: bad search payload: %v", err))
		return
	}
	body, err := g.SearchLDIF(context.Background(), req)
	if err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbResult, Payload: body})
}

// Search fans the request out to every live registrant and merges results.
// Repeated searches within CacheTTL are served from the aggregate cache.
func (g *GIIS) Search(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	body, err := g.SearchLDIF(ctx, req)
	if err != nil {
		return nil, err
	}
	return ldif.Unmarshal(zerocopy.String(body))
}

// SearchLDIF answers a search with the rendered LDIF body, serving repeats
// from the byte cache. The returned bytes must be treated as read-only: on
// a hit they alias the cache's append-only arena. Members that fail or
// time out degrade the reply — a status entry names them — instead of
// failing it, matching the decentralized tolerance a Grid information
// service requires (§3).
func (g *GIIS) SearchLDIF(ctx context.Context, req SearchRequest) ([]byte, error) {
	gen := g.memGen.Load()
	if g.resp != nil {
		keyp := keyScratch.Get().(*[]byte)
		key := appendSearchKey((*keyp)[:0], 'g', gen, &req)
		blob, ok := g.resp.Get(key)
		*keyp = key[:0]
		keyScratch.Put(keyp)
		if ok {
			return blob, nil
		}
	}

	body, _, err := g.fillSearch(ctx, &req)
	return body, err
}

// fillSearch is the miss path, shared with the refresh-ahead pool: fan
// out, merge, and (when no member failed) store and track. The second
// result reports whether a rendering was stored — degraded merges never
// are, so the next search retries the failed members instead of pinning
// the partial body for CacheTTL.
func (g *GIIS) fillSearch(ctx context.Context, req *SearchRequest) ([]byte, bool, error) {
	// Capture the generation before the fan-out: if the membership changes
	// mid-flight the stored entry is orphaned, never served stale.
	gen := g.memGen.Load()
	members := g.Members()
	results := g.scatter(ctx, members, *req)
	var merged []ldif.Entry
	var failed []memberResult
	for _, r := range results {
		if r.err != nil {
			failed = append(failed, r)
			g.memberErrors.Inc()
			continue
		}
		merged = append(merged, r.entries...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].DN < merged[j].DN })
	if len(failed) > 0 {
		// The status entry goes last, after the DN sort, mirroring the
		// gatekeeper's partial-reply convention (core.DegradedObjectClass)
		// so clients detect degradation from either tier the same way.
		merged = append(merged, degradedSearchEntry(g.cfg.OrgName, failed))
		g.fanDegraded.Inc()
	}

	out, err := ldif.Marshal(merged)
	if err != nil {
		return nil, false, err
	}
	stored := false
	if g.resp != nil && len(failed) == 0 {
		keyp := keyScratch.Get().(*[]byte)
		key := appendSearchKey((*keyp)[:0], 'g', gen, req)
		g.resp.Set(key, zerocopy.Bytes(out), g.cfg.CacheTTL)
		g.refresh.track(req, key)
		*keyp = key[:0]
		keyScratch.Put(keyp)
		stored = true
	}
	return zerocopy.Bytes(out), stored, nil
}
