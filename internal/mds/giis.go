package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/wire"
)

// GIISConfig wires an index service.
type GIISConfig struct {
	// OrgName names the virtual organization the index serves.
	OrgName string
	// Credential/Trust authenticate the GIIS both as a server (to
	// clients) and as a client (to the GRISes it queries).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	Policy     *gsi.Policy
	// RegistrationTTL expires registrants that have not re-registered;
	// 0 means registrations never expire.
	RegistrationTTL time.Duration
	// CacheTTL caches fan-out results briefly, MDS's aggregate caching
	// (§3 "an information caching function that allows viewing and
	// querying the information about a resource from a cache").
	CacheTTL time.Duration
	Clock    clock.Clock
}

// GIIS is the aggregate directory of paper §3: GRIS servers register with
// it, and client searches fan out across all live registrants, mirroring
// how a virtual organization aggregates its resources' information.
type GIIS struct {
	cfg    GIISConfig
	server *wire.Server

	mu       sync.Mutex
	members  map[string]time.Time // GRIS address -> registration time
	cached   []ldif.Entry
	cachedAt time.Time
	cacheKey string
}

// NewGIIS builds an index service.
func NewGIIS(cfg GIISConfig) *GIIS {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	g := &GIIS{cfg: cfg, members: make(map[string]time.Time)}
	g.server = wire.NewServer(wire.HandlerFunc(g.serveConn))
	return g
}

// Listen binds the GIIS.
func (g *GIIS) Listen(addr string) (string, error) { return g.server.Listen(addr) }

// Addr returns the bound address.
func (g *GIIS) Addr() string { return g.server.Addr() }

// Close shuts the GIIS down.
func (g *GIIS) Close() error { return g.server.Close() }

// Register adds a GRIS address directly (servers co-located with the GIIS
// may skip the wire protocol).
func (g *GIIS) Register(addr string) {
	g.mu.Lock()
	g.members[addr] = g.cfg.Clock.Now()
	g.mu.Unlock()
}

// Members returns the live registrant addresses, sorted.
func (g *GIIS) Members() []string {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members))
	for addr, at := range g.members {
		if g.cfg.RegistrationTTL > 0 && now.Sub(at) > g.cfg.RegistrationTTL {
			delete(g.members, addr)
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

func (g *GIIS) serveConn(c *wire.Conn) {
	peer, err := gsi.ServerHandshake(c, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock.Now())
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case VerbRegister:
			addr := strings.TrimSpace(string(f.Payload))
			if addr == "" {
				_ = c.WriteString(VerbMDSError, "mds: empty registration address")
				continue
			}
			g.Register(addr)
			_ = c.WriteString(VerbRegOK, addr)
		case VerbSearch:
			g.handleSearch(c, f.Payload, peer)
		default:
			_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: unknown verb %s", f.Verb))
		}
	}
}

func (g *GIIS) handleSearch(c *wire.Conn, payload []byte, peer *gsi.Peer) {
	if err := g.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, g.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: bad search payload: %v", err))
		return
	}
	entries, err := g.Search(context.Background(), req)
	if err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	out, err := ldif.Marshal(entries)
	if err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbResult, Payload: []byte(out)})
}

// Search fans the request out to every live registrant and merges results.
// Identical consecutive searches within CacheTTL are served from the
// aggregate cache. Unreachable members are skipped, matching the
// decentralized tolerance a Grid information service requires (§3).
func (g *GIIS) Search(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	key := req.Filter + "\x00" + strings.Join(req.Attrs, ",")
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	if g.cfg.CacheTTL > 0 && g.cacheKey == key && now.Sub(g.cachedAt) <= g.cfg.CacheTTL && g.cached != nil {
		out := make([]ldif.Entry, len(g.cached))
		copy(out, g.cached)
		g.mu.Unlock()
		return out, nil
	}
	g.mu.Unlock()

	members := g.Members()
	type result struct {
		entries []ldif.Entry
		err     error
		addr    string
	}
	results := make(chan result, len(members))
	for _, addr := range members {
		go func(addr string) {
			entries, err := g.queryMember(addr, req)
			results <- result{entries, err, addr}
		}(addr)
	}
	var merged []ldif.Entry
	for range members {
		r := <-results
		if r.err != nil {
			continue // tolerate dead members
		}
		merged = append(merged, r.entries...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].DN < merged[j].DN })

	g.mu.Lock()
	g.cacheKey = key
	g.cached = merged
	g.cachedAt = g.cfg.Clock.Now()
	g.mu.Unlock()

	out := make([]ldif.Entry, len(merged))
	copy(out, merged)
	return out, nil
}

// queryMember performs one authenticated search against a GRIS.
func (g *GIIS) queryMember(addr string, req SearchRequest) ([]ldif.Entry, error) {
	cl, err := DialClock(addr, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.Search(req)
}
