// Package mds implements the baseline Globus Monitoring and Directory
// Service of paper §3: GRIS servers that expose a resource's information
// providers through an LDAP-style search protocol returning LDIF, and a
// GIIS aggregate that registers GRISes for a virtual organization and fans
// queries out to them. It exists both as the two-protocol baseline of
// Figure 2 and as the backward-compatibility target InfoGram integrates
// with (§6.5 "this information service can easily be integrated into the
// Globus MDS information service architecture").
package mds

import (
	"fmt"
	"strconv"
	"strings"

	"infogram/internal/ldif"
)

// Filter is an LDAP search filter (RFC 4515 subset) evaluated against LDIF
// entries: equality with '*' wildcards, presence, >= and <=, and the
// boolean combinators & | !.
type Filter interface {
	// Matches evaluates the filter against an entry.
	Matches(e *ldif.Entry) bool
	// String renders the filter in LDAP filter syntax.
	String() string
}

// andFilter matches when all children match.
type andFilter struct{ children []Filter }

func (f *andFilter) Matches(e *ldif.Entry) bool {
	for _, c := range f.children {
		if !c.Matches(e) {
			return false
		}
	}
	return true
}

func (f *andFilter) String() string { return "(&" + joinFilters(f.children) + ")" }

// orFilter matches when any child matches.
type orFilter struct{ children []Filter }

func (f *orFilter) Matches(e *ldif.Entry) bool {
	for _, c := range f.children {
		if c.Matches(e) {
			return true
		}
	}
	return false
}

func (f *orFilter) String() string { return "(|" + joinFilters(f.children) + ")" }

// notFilter inverts its child.
type notFilter struct{ child Filter }

func (f *notFilter) Matches(e *ldif.Entry) bool { return !f.child.Matches(e) }
func (f *notFilter) String() string             { return "(!" + f.child.String() + ")" }

func joinFilters(fs []Filter) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// cmpOp is a leaf comparison operator.
type cmpOp int

const (
	opEq cmpOp = iota // = (with wildcards / presence)
	opGe              // >=
	opLe              // <=
)

// leafFilter is an attribute comparison.
type leafFilter struct {
	attr    string
	op      cmpOp
	pattern string // raw value with possible '*' wildcards for opEq
}

func (f *leafFilter) String() string {
	switch f.op {
	case opGe:
		return "(" + f.attr + ">=" + f.pattern + ")"
	case opLe:
		return "(" + f.attr + "<=" + f.pattern + ")"
	default:
		return "(" + f.attr + "=" + f.pattern + ")"
	}
}

func (f *leafFilter) Matches(e *ldif.Entry) bool {
	// "objectclass" and "dn" pseudo-attributes: objectclass=* matches
	// everything (the MDS convention); dn matches against the entry DN.
	values := e.All(f.attr)
	if strings.EqualFold(f.attr, "dn") {
		values = []string{e.DN}
	}
	if strings.EqualFold(f.attr, "objectclass") && f.pattern == "*" {
		return true
	}
	for _, v := range values {
		if f.matchValue(v) {
			return true
		}
	}
	return false
}

func (f *leafFilter) matchValue(v string) bool {
	switch f.op {
	case opEq:
		return wildcardMatch(f.pattern, v)
	case opGe:
		return numericCompare(v, f.pattern) >= 0
	case opLe:
		return numericCompare(v, f.pattern) <= 0
	}
	return false
}

// numericCompare compares numerically when both parse as floats, falling
// back to string comparison.
func numericCompare(a, b string) int {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// wildcardMatch matches pattern (with '*' wildcards) against value,
// case-insensitively like LDAP caseIgnoreMatch.
func wildcardMatch(pattern, value string) bool {
	p := strings.ToLower(pattern)
	v := strings.ToLower(value)
	if !strings.Contains(p, "*") {
		return p == v
	}
	parts := strings.Split(p, "*")
	// First fragment must prefix, last must suffix, middles in order.
	if !strings.HasPrefix(v, parts[0]) {
		return false
	}
	v = v[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(v, mid)
		if idx < 0 {
			return false
		}
		v = v[idx+len(mid):]
	}
	return strings.HasSuffix(v, last)
}

// ParseFilter parses an LDAP filter string.
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{src: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("mds: trailing input in filter at offset %d", p.pos)
	}
	return f, nil
}

type filterParser struct {
	src string
	pos int
}

func (p *filterParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *filterParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("mds: expected %q at offset %d in filter", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *filterParser) parse() (Filter, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("mds: unterminated filter")
	}
	switch p.src[p.pos] {
	case '&':
		p.pos++
		children, err := p.parseList()
		if err != nil {
			return nil, err
		}
		return &andFilter{children}, p.expect(')')
	case '|':
		p.pos++
		children, err := p.parseList()
		if err != nil {
			return nil, err
		}
		return &orFilter{children}, p.expect(')')
	case '!':
		p.pos++
		child, err := p.parse()
		if err != nil {
			return nil, err
		}
		return &notFilter{child}, p.expect(')')
	default:
		return p.parseLeaf()
	}
}

func (p *filterParser) parseList() ([]Filter, error) {
	var out []Filter
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			f, err := p.parse()
			if err != nil {
				return nil, err
			}
			out = append(out, f)
			continue
		}
		break
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mds: boolean filter with no operands at offset %d", p.pos)
	}
	return out, nil
}

func (p *filterParser) parseLeaf() (Filter, error) {
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("=<>()", rune(p.src[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.src[start:p.pos])
	if attr == "" {
		return nil, fmt.Errorf("mds: empty attribute in filter at offset %d", start)
	}
	// A leaf can reach here with a leading boolean operator only through
	// whitespace the combinator dispatch does not skip (e.g. "(\n!=...)");
	// such an attribute renders as a combinator and cannot round-trip.
	if attr[0] == '!' || attr[0] == '&' || attr[0] == '|' {
		return nil, fmt.Errorf("mds: attribute cannot begin with %q in filter at offset %d", string(attr[0]), start)
	}
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("mds: unterminated comparison in filter")
	}
	op := opEq
	switch p.src[p.pos] {
	case '>':
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		op = opGe
	case '<':
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		op = opLe
	case '=':
		p.pos++
	default:
		return nil, fmt.Errorf("mds: expected comparison operator at offset %d", p.pos)
	}
	vstart := p.pos
	depth := 0
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ')' && depth == 0 {
			break
		}
		if c == '(' {
			depth++
		}
		if c == ')' {
			depth--
		}
		p.pos++
	}
	value := p.src[vstart:p.pos]
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return &leafFilter{attr: attr, op: op, pattern: value}, nil
}

// MatchAll is the (objectclass=*) filter.
func MatchAll() Filter { return &leafFilter{attr: "objectclass", op: opEq, pattern: "*"} }

// KeywordHints computes which of the known keywords' entries f could
// possibly match, so a GRIS collects only those providers instead of
// executing every one on every query. The analysis is conservative:
// whenever a sub-filter cannot be proven to narrow the match set — a
// negation, a >=/<= on the keyword attribute, a structural attribute like
// resource — it reports all=true and the caller collects everything. What
// it can prove rests on the ReportEntries shape: each provider entry
// carries exactly the structural attributes (objectclass, kw, resource)
// plus attributes namespaced "<Keyword>:<name>", so a leaf on "kw" selects
// the keywords its pattern matches and a leaf on a namespaced attribute
// selects at most the keyword it is namespaced under.
//
// When all is false, keywords holds the matchable subset in known's order
// and spelling; an empty subset means the filter provably matches no
// provider entry, so the caller can skip collection entirely.
func KeywordHints(f Filter, known []string) (keywords []string, all bool) {
	inc, all := hintVec(f, known)
	if all {
		return nil, true
	}
	out := make([]string, 0, len(known))
	for i, k := range known {
		if inc[i] {
			out = append(out, k)
		}
	}
	return out, false
}

// hintVec evaluates the projection as an inclusion vector over known.
// all=true means "cannot narrow" (the vector is nil then).
func hintVec(f Filter, known []string) (inc []bool, all bool) {
	switch t := f.(type) {
	case *andFilter:
		// Intersection; an unprovable child is the universe.
		var acc []bool
		for _, c := range t.children {
			ci, call := hintVec(c, known)
			if call {
				continue
			}
			if acc == nil {
				acc = ci
				continue
			}
			for i := range acc {
				acc[i] = acc[i] && ci[i]
			}
		}
		if acc == nil {
			return nil, true
		}
		return acc, false
	case *orFilter:
		acc := make([]bool, len(known))
		for _, c := range t.children {
			ci, call := hintVec(c, known)
			if call {
				return nil, true
			}
			for i := range acc {
				acc[i] = acc[i] || ci[i]
			}
		}
		return acc, false
	case *notFilter:
		// A negation matches the complement — including entries the child
		// analysis knows nothing about. Never narrowed.
		return nil, true
	case *leafFilter:
		return leafHintVec(t, known)
	default:
		return nil, true
	}
}

// leafHintVec is the leaf projection described on KeywordHints.
func leafHintVec(f *leafFilter, known []string) (inc []bool, all bool) {
	attr := strings.ToLower(strings.TrimSpace(f.attr))
	switch attr {
	case "kw", "keyword":
		if f.op != opEq {
			return nil, true
		}
		inc = make([]bool, len(known))
		for i, k := range known {
			inc[i] = wildcardMatch(f.pattern, k)
		}
		return inc, false
	case "objectclass", "resource", "dn":
		// Structural attributes appear on every entry.
		return nil, true
	}
	if i := strings.IndexByte(attr, ':'); i > 0 {
		prefix := attr[:i]
		// A namespaced attribute appears only on the entry of the keyword
		// it is namespaced under; an unknown prefix appears on no provider
		// entry at all, so the leaf matches nothing.
		inc = make([]bool, len(known))
		for j, k := range known {
			if strings.EqualFold(k, prefix) {
				inc[j] = true
			}
		}
		return inc, false
	}
	// An un-namespaced, non-structural attribute: no provider entry
	// carries one today, but stay conservative about future entry shapes.
	return nil, true
}
