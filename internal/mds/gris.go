package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
	"infogram/internal/zerocopy"
)

// MDS protocol verbs. The directory protocol is deliberately distinct from
// GRAMP: the Figure 2 baseline requires clients to implement two wire
// protocols and contact two ports per resource.
const (
	VerbSearch   = "SEARCH"     // payload: JSON SearchRequest
	VerbResult   = "RESULT"     // payload: LDIF
	VerbRegister = "REGISTER"   // payload: GRIS address (GIIS only)
	VerbRegOK    = "REGISTERED" // payload: echo of address
	VerbMDSError = "MDS-ERROR"  // payload: message
)

// SearchRequest is the JSON payload of SEARCH.
type SearchRequest struct {
	// Filter is an LDAP filter string; empty means (objectclass=*).
	Filter string `json:"filter,omitempty"`
	// Attrs optionally restricts returned attributes (namespaced names);
	// empty returns everything.
	Attrs []string `json:"attrs,omitempty"`
}

// GRISConfig wires a GRIS server.
type GRISConfig struct {
	// ResourceName names the resource in entry DNs, e.g. "hot.anl.gov".
	ResourceName string
	// Registry supplies the information providers.
	Registry *provider.Registry
	// Credential/Trust secure the service (MDS 2.x integrates GSI, §3).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Policy authorizes info queries; nil allows all authenticated users.
	Policy *gsi.Policy
	Clock  clock.Clock
	// Tracer, when set, records a span tree per SEARCH (the MDS protocol
	// itself carries no trace context, so GRIS traces are local roots).
	Tracer *telemetry.Tracer
	// CacheTTL, when positive, enables the response cache: rendered LDIF
	// bodies and filter→keyword projections are cached in a sharded byte
	// cache and cache hits are written to the wire zero-copy. The
	// effective per-entry TTL is capped by the smallest provider TTL among
	// the keywords a response covers. Zero disables the layer.
	CacheTTL time.Duration
	// CacheNegTTL bounds entries for filters that matched nothing; zero
	// defaults to CacheTTL/4.
	CacheNegTTL time.Duration
	// CacheShards / CacheMaxBytes size the byte cache (0 selects the
	// bytecache defaults).
	CacheShards   int
	CacheMaxBytes int64
	// RefreshAhead, when in (0,1) and the cache is enabled, proactively
	// re-fills hot cached searches once they age past this fraction of
	// their TTL, so a steady-state hot filter never pays a provider
	// collection on a request. Zero disables the pool.
	RefreshAhead float64
	// RefreshWorkers bounds concurrent refresh-ahead fills; 0 selects 2.
	RefreshWorkers int
	// SnapshotCompress writes cache snapshots gzip-compressed; restore
	// reads both layouts regardless.
	SnapshotCompress bool
	// Telemetry, when set together with CacheTTL, receives the byte
	// cache's counters and per-shard occupancy series.
	Telemetry *telemetry.Registry
}

// minNegTTL floors the default negative TTL (CacheTTL/4) so empty-match
// bodies stay cacheable even under a very small CacheTTL.
const minNegTTL = time.Second

// GRIS is a Grid Resource Information Service for one resource: it answers
// LDAP-style searches from the resource's information providers, with
// MDS-2.0-style caching provided by the registry's TTL cache.
type GRIS struct {
	cfg    GRISConfig
	server *wire.Server
	// resp caches rendered LDIF bodies and filter→keyword projections,
	// keyed by the registry generation so provider churn invalidates both
	// wholesale. Nil when CacheTTL is zero.
	resp   *bytecache.Cache
	negTTL time.Duration
	// refresh keeps hot cached searches from expiring under load; nil
	// unless both CacheTTL and RefreshAhead are set.
	refresh *searchRefresher
}

// NewGRIS builds a GRIS.
func NewGRIS(cfg GRISConfig) *GRIS {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	g := &GRIS{cfg: cfg}
	if cfg.CacheTTL > 0 {
		g.resp = bytecache.New(bytecache.Options{
			Shards:     cfg.CacheShards,
			MaxBytes:   cfg.CacheMaxBytes,
			DefaultTTL: cfg.CacheTTL,
			Clock:      cfg.Clock,
		})
		if cfg.Telemetry != nil {
			g.resp.SetTelemetry(cfg.Telemetry)
		}
		g.negTTL = cfg.CacheNegTTL
		if g.negTTL <= 0 || g.negTTL > cfg.CacheTTL {
			// Default TTL/4, floored: a small CacheTTL would otherwise
			// truncate the negative TTL toward zero and make empty-match
			// bodies effectively uncacheable.
			g.negTTL = cfg.CacheTTL / 4
			if g.negTTL < minNegTTL {
				g.negTTL = minNegTTL
			}
			if g.negTTL > cfg.CacheTTL {
				g.negTTL = cfg.CacheTTL
			}
		}
		if cfg.RefreshAhead > 0 {
			g.refresh = newSearchRefresher(g.resp, cfg.Clock, cfg.CacheTTL,
				cfg.RefreshAhead, cfg.RefreshWorkers,
				cfg.Registry.Generation,
				func(ctx context.Context, req *SearchRequest) (bool, error) {
					_, stored, err := g.fillSearch(ctx, req, cache.Immediate)
					return stored, err
				})
			if cfg.Telemetry != nil {
				g.refresh.setTelemetry(cfg.Telemetry, "gris")
			}
		}
	}
	g.server = wire.NewServer(wire.HandlerFunc(g.serveConn))
	return g
}

// Listen binds the GRIS.
func (g *GRIS) Listen(addr string) (string, error) { return g.server.Listen(addr) }

// Addr returns the bound address.
func (g *GRIS) Addr() string { return g.server.Addr() }

// AcceptedConns reports accepted connections (experiment E3).
func (g *GRIS) AcceptedConns() int64 { return g.server.AcceptedConns() }

// Close shuts the GRIS down.
func (g *GRIS) Close() error {
	g.refresh.close()
	return g.server.Close()
}

func (g *GRIS) serveConn(c *wire.Conn) {
	peer, err := gsi.ServerHandshake(c, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock.Now())
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case VerbSearch:
			g.handleSearch(c, f.Payload, peer)
		default:
			_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: unknown verb %s", f.Verb))
		}
	}
}

func (g *GRIS) handleSearch(c *wire.Conn, payload []byte, peer *gsi.Peer) {
	if err := g.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, g.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: bad search payload: %v", err))
		return
	}
	ctx, root := g.cfg.Tracer.StartTrace(context.Background(), "request:"+VerbSearch)
	root.SetAttr("peer", peer.Identity)
	// The rendered body goes onto the wire as-is: on a cache hit it
	// aliases the cache arena, on a miss it aliases the fresh render —
	// zero copies either way.
	body, err := g.SearchLDIF(ctx, req)
	if err != nil {
		root.Fail(err.Error())
		root.End()
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	root.End()
	_ = c.Write(wire.Frame{Verb: VerbResult, Payload: body})
}

// Search evaluates a request locally and returns the matching entries.
// It answers through the same rendered-body cache as the wire path, so
// repeated identical searches parse a cached blob instead of
// re-collecting providers.
func (g *GRIS) Search(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	body, err := g.SearchLDIF(ctx, req)
	if err != nil {
		return nil, err
	}
	return ldif.Unmarshal(zerocopy.String(body))
}

// SearchLDIF evaluates a request and returns the rendered LDIF body. The
// returned bytes must be treated as read-only: on a cache hit they alias
// the cache's append-only arena (valid indefinitely — arenas are never
// mutated in place).
func (g *GRIS) SearchLDIF(ctx context.Context, req SearchRequest) ([]byte, error) {
	if g.resp != nil {
		keyp := keyScratch.Get().(*[]byte)
		key := appendSearchKey((*keyp)[:0], 'b', g.cfg.Registry.Generation(), &req)
		blob, ok := g.resp.Get(key)
		*keyp = key[:0]
		keyScratch.Put(keyp)
		if ok {
			return blob, nil
		}
	}
	body, _, err := g.fillSearch(ctx, &req, cache.Cached)
	return body, err
}

// fillSearch is the miss path, shared with the refresh-ahead pool:
// evaluate, render, and (when cacheable) store and track. The second
// result reports whether a rendering was stored. The refresh pool passes
// cache.Immediate, forcing the provider executions the refresh exists
// for — each provider's Entry still coalesces concurrent fills and still
// enforces the §6.2 minimum inter-execution delay, so refresh-ahead can
// never hammer a provider harder than the paper allows.
func (g *GRIS) fillSearch(ctx context.Context, req *SearchRequest, mode cache.Mode) ([]byte, bool, error) {
	entries, ttl, err := g.search(ctx, *req, mode)
	if err != nil {
		return nil, false, err
	}
	out, err := ldif.Marshal(entries)
	if err != nil {
		return nil, false, err
	}
	stored := false
	if g.resp != nil && ttl > 0 {
		if len(entries) == 0 && g.negTTL < ttl {
			// Filters that matched nothing are worth caching — evaluation
			// cost is identical — but under the shorter negative TTL so new
			// data appears promptly.
			ttl = g.negTTL
		}
		keyp := keyScratch.Get().(*[]byte)
		key := appendSearchKey((*keyp)[:0], 'b', g.cfg.Registry.Generation(), req)
		g.resp.Set(key, zerocopy.Bytes(out), ttl)
		g.refresh.track(req, key)
		*keyp = key[:0]
		keyScratch.Put(keyp)
		stored = true
	}
	return zerocopy.Bytes(out), stored, nil
}

// search collects, filters, and projects. It also reports the lifetime a
// rendering of the result may be cached for: the configured cap lowered
// to the smallest provider TTL among the collected keywords, 0 when any
// collected keyword executes on every request (TTL 0) and the result is
// therefore uncacheable.
func (g *GRIS) search(ctx context.Context, req SearchRequest, mode cache.Mode) ([]ldif.Entry, time.Duration, error) {
	filter := MatchAll()
	if strings.TrimSpace(req.Filter) != "" {
		var err error
		filter, err = ParseFilter(req.Filter)
		if err != nil {
			return nil, 0, err
		}
	}
	// Collect only the keywords the filter can match (and none at all for
	// a filter that provably matches no provider entry), instead of
	// executing every provider on every query.
	kws, all := g.keywordHints(req.Filter, filter)
	var reports []provider.Report
	if all || len(kws) > 0 {
		if all {
			kws = nil
		}
		var err error
		reports, err = g.cfg.Registry.Collect(ctx, kws, mode, 0)
		if err != nil {
			return nil, 0, err
		}
	}
	ttl := g.cfg.CacheTTL
	for _, rep := range reports {
		reg, ok := g.cfg.Registry.Lookup(rep.Keyword)
		if !ok || reg.TTL() <= 0 {
			ttl = 0
			break
		}
		if reg.TTL() < ttl {
			ttl = reg.TTL()
		}
	}
	entries := provider.ReportEntries(g.cfg.ResourceName, reports)
	var out []ldif.Entry
	for _, e := range entries {
		if !filter.Matches(&e) {
			continue
		}
		out = append(out, projectAttrs(e, req.Attrs))
	}
	return out, ttl, nil
}

// keywordHints resolves the filter→keyword projection, caching it under
// (registry generation, filter text) when the response cache is enabled:
// the projection of a hot filter is computed once per membership
// generation, not once per query.
func (g *GRIS) keywordHints(raw string, f Filter) ([]string, bool) {
	known := g.cfg.Registry.Keywords()
	if g.resp == nil {
		return KeywordHints(f, known)
	}
	gen := g.cfg.Registry.Generation()
	keyp := keyScratch.Get().(*[]byte)
	key := append((*keyp)[:0], 'p')
	key = appendGen(key, gen)
	key = append(key, raw...)
	blob, ok := g.resp.Get(key)
	if ok && len(blob) > 0 {
		*keyp = key[:0]
		keyScratch.Put(keyp)
		if blob[0] == 1 {
			return nil, true
		}
		if len(blob) == 1 {
			return nil, false
		}
		return strings.Split(zerocopy.String(blob[1:]), "\x00"), false
	}
	kws, all := KeywordHints(f, known)
	val := make([]byte, 0, 64)
	if all {
		val = append(val, 1)
	} else {
		val = append(val, 0)
		for i, kw := range kws {
			if i > 0 {
				val = append(val, 0)
			}
			val = append(val, kw...)
		}
	}
	g.resp.Set(key, val, g.cfg.CacheTTL)
	*keyp = key[:0]
	keyScratch.Put(keyp)
	return kws, all
}

// projectAttrs keeps only the requested attributes (plus the DN); an empty
// request keeps everything.
func projectAttrs(e ldif.Entry, attrs []string) ldif.Entry {
	if len(attrs) == 0 {
		return e
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[strings.ToLower(a)] = true
	}
	out := ldif.Entry{DN: e.DN}
	for _, a := range e.Attrs {
		if keep[strings.ToLower(a.Name)] {
			out.Add(a.Name, a.Value)
		}
	}
	return out
}
