package mds

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"infogram/internal/cache"
	"infogram/internal/clock"
	"infogram/internal/gsi"
	"infogram/internal/ldif"
	"infogram/internal/provider"
	"infogram/internal/telemetry"
	"infogram/internal/wire"
)

// MDS protocol verbs. The directory protocol is deliberately distinct from
// GRAMP: the Figure 2 baseline requires clients to implement two wire
// protocols and contact two ports per resource.
const (
	VerbSearch   = "SEARCH"     // payload: JSON SearchRequest
	VerbResult   = "RESULT"     // payload: LDIF
	VerbRegister = "REGISTER"   // payload: GRIS address (GIIS only)
	VerbRegOK    = "REGISTERED" // payload: echo of address
	VerbMDSError = "MDS-ERROR"  // payload: message
)

// SearchRequest is the JSON payload of SEARCH.
type SearchRequest struct {
	// Filter is an LDAP filter string; empty means (objectclass=*).
	Filter string `json:"filter,omitempty"`
	// Attrs optionally restricts returned attributes (namespaced names);
	// empty returns everything.
	Attrs []string `json:"attrs,omitempty"`
}

// GRISConfig wires a GRIS server.
type GRISConfig struct {
	// ResourceName names the resource in entry DNs, e.g. "hot.anl.gov".
	ResourceName string
	// Registry supplies the information providers.
	Registry *provider.Registry
	// Credential/Trust secure the service (MDS 2.x integrates GSI, §3).
	Credential *gsi.Credential
	Trust      *gsi.TrustStore
	// Policy authorizes info queries; nil allows all authenticated users.
	Policy *gsi.Policy
	Clock  clock.Clock
	// Tracer, when set, records a span tree per SEARCH (the MDS protocol
	// itself carries no trace context, so GRIS traces are local roots).
	Tracer *telemetry.Tracer
}

// GRIS is a Grid Resource Information Service for one resource: it answers
// LDAP-style searches from the resource's information providers, with
// MDS-2.0-style caching provided by the registry's TTL cache.
type GRIS struct {
	cfg    GRISConfig
	server *wire.Server
}

// NewGRIS builds a GRIS.
func NewGRIS(cfg GRISConfig) *GRIS {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Policy == nil {
		cfg.Policy = gsi.AllowAll()
	}
	g := &GRIS{cfg: cfg}
	g.server = wire.NewServer(wire.HandlerFunc(g.serveConn))
	return g
}

// Listen binds the GRIS.
func (g *GRIS) Listen(addr string) (string, error) { return g.server.Listen(addr) }

// Addr returns the bound address.
func (g *GRIS) Addr() string { return g.server.Addr() }

// AcceptedConns reports accepted connections (experiment E3).
func (g *GRIS) AcceptedConns() int64 { return g.server.AcceptedConns() }

// Close shuts the GRIS down.
func (g *GRIS) Close() error { return g.server.Close() }

func (g *GRIS) serveConn(c *wire.Conn) {
	peer, err := gsi.ServerHandshake(c, g.cfg.Credential, g.cfg.Trust, g.cfg.Clock.Now())
	if err != nil {
		return
	}
	for {
		f, err := c.Read()
		if err != nil {
			return
		}
		switch f.Verb {
		case VerbSearch:
			g.handleSearch(c, f.Payload, peer)
		default:
			_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: unknown verb %s", f.Verb))
		}
	}
}

func (g *GRIS) handleSearch(c *wire.Conn, payload []byte, peer *gsi.Peer) {
	if err := g.cfg.Policy.Authorize(peer.Identity, gsi.OpInfoQuery, g.cfg.Clock.Now()); err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		_ = c.WriteString(VerbMDSError, fmt.Sprintf("mds: bad search payload: %v", err))
		return
	}
	ctx, root := g.cfg.Tracer.StartTrace(context.Background(), "request:"+VerbSearch)
	root.SetAttr("peer", peer.Identity)
	entries, err := g.Search(ctx, req)
	if err != nil {
		root.Fail(err.Error())
		root.End()
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	root.End()
	out, err := ldif.Marshal(entries)
	if err != nil {
		_ = c.WriteString(VerbMDSError, err.Error())
		return
	}
	_ = c.Write(wire.Frame{Verb: VerbResult, Payload: []byte(out)})
}

// Search evaluates a request locally: collect all providers through the
// cache, build entries, filter, and project attributes.
func (g *GRIS) Search(ctx context.Context, req SearchRequest) ([]ldif.Entry, error) {
	filter := MatchAll()
	if strings.TrimSpace(req.Filter) != "" {
		var err error
		filter, err = ParseFilter(req.Filter)
		if err != nil {
			return nil, err
		}
	}
	reports, err := g.cfg.Registry.Collect(ctx, nil, cache.Cached, 0)
	if err != nil {
		return nil, err
	}
	entries := provider.ReportEntries(g.cfg.ResourceName, reports)
	var out []ldif.Entry
	for _, e := range entries {
		if !filter.Matches(&e) {
			continue
		}
		out = append(out, projectAttrs(e, req.Attrs))
	}
	return out, nil
}

// projectAttrs keeps only the requested attributes (plus the DN); an empty
// request keeps everything.
func projectAttrs(e ldif.Entry, attrs []string) ldif.Entry {
	if len(attrs) == 0 {
		return e
	}
	keep := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		keep[strings.ToLower(a)] = true
	}
	out := ldif.Entry{DN: e.DN}
	for _, a := range e.Attrs {
		if keep[strings.ToLower(a.Name)] {
			out.Add(a.Name, a.Value)
		}
	}
	return out
}
