package mds

import (
	"sort"
	"time"

	"infogram/internal/bytecache"
	"infogram/internal/provider"
)

// Warm-restart persistence for the MDS caches. Both the GRIS and the GIIS
// response caches key every entry with a generation counter at offset 1
// (after the one-byte key-type prefix), so a restore re-stamps that
// counter and a digest over what the counter ranges over — the provider
// population for a GRIS, the member set for a GIIS — gates whether the
// snapshot is trusted at all. The counters restart from zero on boot and
// would otherwise collide meaninglessly with a snapshot's values.

// grisDigest fingerprints the provider population — sorted keywords and
// their TTLs — exactly as the core response cache does, so a GRIS
// snapshot taken under one provider set is never restored into another.
func grisDigest(reg *provider.Registry) uint64 {
	kws := reg.Keywords()
	h := newFNV()
	for _, kw := range sortedStrings(kws) {
		h.writeString(kw)
		h.writeByte(0)
		var ttl int64
		if g, ok := reg.Lookup(kw); ok {
			ttl = int64(g.TTL())
		}
		h.writeInt64(ttl)
	}
	return h.sum()
}

// membershipDigest fingerprints a GIIS's member set. Member provider TTLs
// are not visible across the wire, so the addresses alone carry the
// identity: a GIIS restarted with the same registrants trusts its
// snapshot, one pointed at different GRISes starts cold.
func membershipDigest(members []string) uint64 {
	h := newFNV()
	for _, m := range sortedStrings(members) {
		h.writeString(m)
		h.writeByte(0)
	}
	return h.sum()
}

// NewPersister wires the GRIS response cache's snapshot lifecycle, or
// returns nil when the cache is disabled. Call Restore before serving,
// Start for the background loop, Close on shutdown.
func (g *GRIS) NewPersister(path string, interval time.Duration) *bytecache.Persister {
	if g.resp == nil {
		return nil
	}
	return bytecache.NewPersister(g.resp, bytecache.PersistOptions{
		Path:     path,
		Interval: interval,
		Name:     "gris",
		Compress: g.cfg.SnapshotCompress,
		Meta: func() bytecache.SnapshotMeta {
			return bytecache.SnapshotMeta{
				Generation: g.cfg.Registry.Generation(),
				Digest:     grisDigest(g.cfg.Registry),
			}
		},
		MapKey: func(snap, cur bytecache.SnapshotMeta) func([]byte, bytecache.SnapshotMeta) ([]byte, bool) {
			return bytecache.GenKeyMapper(1, cur.Generation)
		},
		Clock: g.cfg.Clock,
	})
}

// NewPersister wires the GIIS aggregate cache's snapshot lifecycle, or
// returns nil when the cache is disabled. The membership digest is taken
// from the live member set, so callers must register (or restore) their
// members BEFORE calling Restore — mds-server registers the -member flags
// first — or the digest comes up empty and every snapshot is refused.
func (g *GIIS) NewPersister(path string, interval time.Duration) *bytecache.Persister {
	if g.resp == nil {
		return nil
	}
	return bytecache.NewPersister(g.resp, bytecache.PersistOptions{
		Path:     path,
		Interval: interval,
		Name:     "giis",
		Compress: g.cfg.SnapshotCompress,
		Meta: func() bytecache.SnapshotMeta {
			return bytecache.SnapshotMeta{
				Generation: g.memGen.Load(),
				Digest:     membershipDigest(g.Members()),
			}
		},
		MapKey: func(snap, cur bytecache.SnapshotMeta) func([]byte, bytecache.SnapshotMeta) ([]byte, bool) {
			return bytecache.GenKeyMapper(1, cur.Generation)
		},
		Clock: g.cfg.Clock,
	})
}

// sortedStrings sorts a copy, leaving the caller's slice alone.
func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// fnv is the cache's FNV-1a, inlined so digests stay allocation-free and
// identical across packages.
type fnv struct{ h uint64 }

func newFNV() *fnv { return &fnv{h: 14695981039346656037} }

func (f *fnv) writeByte(b byte) {
	f.h ^= uint64(b)
	f.h *= 1099511628211
}

func (f *fnv) writeString(s string) {
	for i := 0; i < len(s); i++ {
		f.writeByte(s[i])
	}
}

func (f *fnv) writeInt64(v int64) {
	for i := 0; i < 8; i++ {
		f.writeByte(byte(v >> (8 * i)))
	}
}

func (f *fnv) sum() uint64 { return f.h }
