// Package rsl implements the Globus Resource Specification Language used
// by GRAM clients to describe jobs (paper §2) and extended by InfoGram into
// xRSL (paper §6.5). The implemented grammar is the RSL 1.0 core:
//
//	spec       = relation-list
//	           | "&" spec-list          (conjunction)
//	           | "|" spec-list          (disjunction)
//	           | "+" spec-list          (multi-request)
//	spec-list  = { "(" spec ")" }
//	relation   = "(" attribute op value { value } ")"
//	op         = "=" | "!=" | "<" | "<=" | ">" | ">="
//	value      = literal | quoted | variable | "(" value { value } ")"
//	variable   = "$(" name [ value ] ")"     (value is the default)
//	concat     = value "#" value
//
// Quoting follows RSL: single or double quotes, with the quote character
// doubled to escape itself. Variable bindings come from the special
// rsl_substitution attribute and from caller-supplied environments.
package rsl

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokAmp     // &
	tokPipe    // |
	tokPlus    // +
	tokHash    // #
	tokDollar  // $ (always followed by '(')
	tokOp      // = != < <= > >=
	tokLiteral // unquoted word
	tokQuoted  // quoted string (value already unescaped)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokPlus:
		return "'+'"
	case tokHash:
		return "'#'"
	case tokDollar:
		return "'$'"
	case tokOp:
		return "operator"
	case tokLiteral:
		return "literal"
	case tokQuoted:
		return "quoted string"
	}
	return "unknown token"
}

// token is one lexical unit with its source offset for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes an RSL parse failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rsl: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lexer scans an RSL string into tokens.
type lexer struct {
	src string
	pos int
}

// isSpecial reports whether byte b terminates an unquoted literal. Only
// ASCII bytes are special: multi-byte UTF-8 sequences pass through
// literals untouched.
func isSpecial(b byte) bool {
	switch b {
	case '(', ')', '&', '|', '+', '#', '$', '=', '<', '>', '!', '\'', '"',
		' ', '\t', '\n', '\r':
		return true
	}
	return false
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip whitespace.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '&':
		l.pos++
		return token{tokAmp, "&", start}, nil
	case '|':
		l.pos++
		return token{tokPipe, "|", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '#':
		l.pos++
		return token{tokHash, "#", start}, nil
	case '$':
		l.pos++
		return token{tokDollar, "$", start}, nil
	case '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, &SyntaxError{start, "'!' must be followed by '='"}
	case '<', '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{tokOp, op, start}, nil
	case '\'', '"':
		return l.quoted(c)
	}
	// Unquoted literal: run of non-special bytes.
	var b strings.Builder
	for l.pos < len(l.src) && !isSpecial(l.src[l.pos]) {
		b.WriteByte(l.src[l.pos])
		l.pos++
	}
	if b.Len() == 0 {
		return token{}, &SyntaxError{start, fmt.Sprintf("unexpected character %q", c)}
	}
	return token{tokLiteral, b.String(), start}, nil
}

// quoted scans a quoted string; the quote character escapes itself by
// doubling, per RSL.
func (l *lexer) quoted(q byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == q {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == q {
				b.WriteByte(q) // doubled quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{tokQuoted, b.String(), start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, &SyntaxError{start, "unterminated quoted string"}
}
