package rsl

import (
	"strings"
)

// Parse parses src into an RSL specification. A bare relation list with no
// leading boolean operator is returned as an And-Boolean, matching how GRAM
// treats "(executable=/bin/date)(count=2)".
func Parse(src string) (Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errorf(p.tok.pos, "trailing input after specification: %s", p.tok.kind)
	}
	return n, nil
}

// MustParse is Parse that panics on error, for tests and fixed literals.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// parseSpec parses a full specification at the current position.
func (p *parser) parseSpec() (Node, error) {
	switch p.tok.kind {
	case tokAmp, tokPipe, tokPlus:
		op := And
		switch p.tok.kind {
		case tokPipe:
			op = Or
		case tokPlus:
			op = Multi
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		specs, err := p.parseSpecList()
		if err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, errorf(p.tok.pos, "boolean %q has no sub-specifications", op)
		}
		return &Boolean{Op: op, Specs: specs}, nil
	case tokLParen:
		// Implicit conjunction of one or more parenthesized items.
		specs, err := p.parseSpecList()
		if err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, errorf(p.tok.pos, "empty specification")
		}
		if len(specs) == 1 {
			return specs[0], nil
		}
		return &Boolean{Op: And, Specs: specs}, nil
	case tokEOF:
		return nil, errorf(p.tok.pos, "empty specification")
	default:
		return nil, errorf(p.tok.pos, "expected specification, found %s", p.tok.kind)
	}
}

// parseSpecList parses zero or more "(" item ")" where item is either a
// nested boolean spec or a relation body.
func (p *parser) parseSpecList() ([]Node, error) {
	var specs []Node
	for p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var item Node
		var err error
		switch p.tok.kind {
		case tokAmp, tokPipe, tokPlus:
			item, err = p.parseSpec()
		case tokLiteral, tokQuoted:
			item, err = p.parseRelationBody()
		default:
			return nil, errorf(p.tok.pos, "expected relation or boolean, found %s", p.tok.kind)
		}
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errorf(p.tok.pos, "expected ')', found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		specs = append(specs, item)
	}
	return specs, nil
}

// parseRelationBody parses "attribute op value..." with the opening paren
// already consumed and the closing paren left for the caller.
func (p *parser) parseRelationBody() (Node, error) {
	attr := p.tok.text
	attrPos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, errorf(p.tok.pos, "expected operator after attribute %q, found %s", attr, p.tok.kind)
	}
	op := Op(p.tok.text)
	if err := p.advance(); err != nil {
		return nil, err
	}
	values, err := p.parseValueList()
	if err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, errorf(attrPos, "relation %q has no value", attr)
	}
	return &Relation{Attribute: attr, Op: op, Values: values}, nil
}

// parseValueList parses values until ')' or EOF.
func (p *parser) parseValueList() ([]Value, error) {
	var out []Value
	for {
		switch p.tok.kind {
		case tokRParen, tokEOF:
			return out, nil
		}
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

// parseValue parses one value, folding '#' concatenations.
func (p *parser) parseValue() (Value, error) {
	v, err := p.parseSimpleValue()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokHash {
		return v, nil
	}
	parts := []Value{v}
	for p.tok.kind == tokHash {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseSimpleValue()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return Concat{Parts: parts}, nil
}

// parseSimpleValue parses a literal, quoted string, variable, or sequence.
func (p *parser) parseSimpleValue() (Value, error) {
	switch p.tok.kind {
	case tokLiteral, tokQuoted:
		v := Literal{Text: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return v, nil
	case tokDollar:
		return p.parseVariable()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		items, err := p.parseValueList()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errorf(p.tok.pos, "expected ')' closing sequence, found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Sequence{Items: items}, nil
	default:
		return nil, errorf(p.tok.pos, "expected value, found %s", p.tok.kind)
	}
}

// parseVariable parses "$(" name [value] ")" with '$' current.
func (p *parser) parseVariable() (Value, error) {
	dollarPos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, errorf(dollarPos, "'$' must be followed by '('")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokLiteral && p.tok.kind != tokQuoted {
		return nil, errorf(p.tok.pos, "expected variable name, found %s", p.tok.kind)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	var def Value
	if p.tok.kind != tokRParen {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		def = v
	}
	if p.tok.kind != tokRParen {
		return nil, errorf(p.tok.pos, "expected ')' closing variable reference, found %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return Variable{Name: strings.ToUpper(name), Default: def}, nil
}
