package rsl

import "testing"

// FuzzParse guards the parser against panics and checks unparse/reparse
// stability on anything that parses. The seed corpus covers every
// syntactic construct; `go test -fuzz=FuzzParse ./internal/rsl` explores
// further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(executable=/bin/date)",
		"&(executable=/bin/echo)(arguments=a b c)(count=2)",
		`&(arguments="hello world" 'single')`,
		"+(&(info=all))(&(executable=a))",
		"|(&(count=1))(&(count=4))",
		"(environment=(PATH /bin)(LANG C))",
		"(stdout=$(HOME)#/out.txt)",
		`(x=$(V "default"))`,
		"(maxtime>=10)(maxtime<=20)(x!=y)",
		`&(rsl_substitution=(A 1)(B $(A)))(v=$(B))`,
		"(a=())",
		"((((",
		")&|+#$",
		"(a=b))))",
		`(a="unterminated`,
		"(info=schema)",
		"&",
		"",
		"(a=b#c#d)",
		"(a=$()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := n.Unparse()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("unparse of valid input does not re-parse:\nsrc: %q\nout: %q\nerr: %v", src, printed, err)
		}
		if got := n2.Unparse(); got != printed {
			t.Fatalf("unparse not stable:\nfirst:  %q\nsecond: %q", printed, got)
		}
	})
}

// FuzzEvalValue guards value evaluation against panics on arbitrary
// variable environments.
func FuzzEvalValue(f *testing.F) {
	f.Add("(x=$(HOME)#/suffix)", "HOME", "/home/u")
	f.Add(`(x=$(MISSING "fallback"))`, "OTHER", "v")
	f.Add("(x=(a b c))", "A", "1")
	f.Fuzz(func(t *testing.T, src, name, value string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		spec, err := NewSpec(n, NewEnv())
		if err != nil {
			return
		}
		env := spec.Env()
		if name != "" {
			env[name] = value
		}
		for _, r := range spec.Relations() {
			for _, v := range r.Values {
				_, _ = EvalValue(v, env) // must not panic
			}
		}
	})
}
