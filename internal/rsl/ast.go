package rsl

import (
	"fmt"
	"strings"
)

// Op is a relation operator.
type Op string

// Relation operators supported by RSL 1.0.
const (
	OpEq Op = "="
	OpNe Op = "!="
	OpLt Op = "<"
	OpLe Op = "<="
	OpGt Op = ">"
	OpGe Op = ">="
)

// Node is an RSL specification node: either a Boolean combination or a
// Relation.
type Node interface {
	// Unparse renders the node in canonical RSL syntax.
	Unparse() string
	node()
}

// BoolOp is the combining operator of a Boolean node.
type BoolOp byte

// Boolean combination operators.
const (
	And   BoolOp = '&' // conjunction: all sub-specs apply to one request
	Or    BoolOp = '|' // disjunction: any one sub-spec may be chosen
	Multi BoolOp = '+' // multi-request: each sub-spec is a separate request
)

// Boolean is a combination of sub-specifications.
type Boolean struct {
	Op    BoolOp
	Specs []Node
}

func (*Boolean) node() {}

// Unparse renders the boolean in canonical form.
func (b *Boolean) Unparse() string {
	var sb strings.Builder
	sb.WriteByte(byte(b.Op))
	for _, s := range b.Specs {
		if _, ok := s.(*Relation); ok {
			sb.WriteString(s.Unparse())
		} else {
			sb.WriteString("(")
			sb.WriteString(s.Unparse())
			sb.WriteString(")")
		}
	}
	return sb.String()
}

// Relation is one (attribute op values) clause.
type Relation struct {
	Attribute string
	Op        Op
	Values    []Value
}

func (*Relation) node() {}

// Unparse renders the relation in canonical form. The attribute is
// quoted under the same rules as a literal: the parser accepts quoted
// attribute names, so names that are empty or carry special characters
// must round-trip too.
func (r *Relation) Unparse() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(Literal{Text: r.Attribute}.Unparse())
	sb.WriteString(string(r.Op))
	for i, v := range r.Values {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(v.Unparse())
	}
	sb.WriteString(")")
	return sb.String()
}

// Value is a relation value: a literal, a variable reference, a
// concatenation, or a nested sequence.
type Value interface {
	// Unparse renders the value in canonical RSL syntax.
	Unparse() string
	value()
}

// Literal is a constant string value.
type Literal struct {
	Text string
}

func (Literal) value() {}

// needsQuoting reports whether the literal must be quoted to round-trip.
func (l Literal) needsQuoting() bool {
	if l.Text == "" {
		return true
	}
	for i := 0; i < len(l.Text); i++ {
		if isSpecial(l.Text[i]) {
			return true
		}
	}
	return false
}

// Unparse renders the literal, quoting when required.
func (l Literal) Unparse() string {
	if !l.needsQuoting() {
		return l.Text
	}
	return `"` + strings.ReplaceAll(l.Text, `"`, `""`) + `"`
}

// Variable is a $(NAME) or $(NAME default) reference resolved during
// substitution.
type Variable struct {
	Name    string
	Default Value // optional; nil when absent
}

func (Variable) value() {}

// Unparse renders the variable reference. The name is quoted under the
// same rules as a literal: the parser accepts quoted variable names, so
// names with special characters must round-trip too.
func (v Variable) Unparse() string {
	name := Literal{Text: v.Name}.Unparse()
	if v.Default == nil {
		return "$(" + name + ")"
	}
	return "$(" + name + " " + v.Default.Unparse() + ")"
}

// Concat joins sub-values textually (the RSL '#' operator).
type Concat struct {
	Parts []Value
}

func (Concat) value() {}

// Unparse renders the concatenation with '#' separators.
func (c Concat) Unparse() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.Unparse()
	}
	return strings.Join(parts, "#")
}

// Sequence is a parenthesized list of values, used e.g. by
// rsl_substitution definition pairs and multi-valued attributes.
type Sequence struct {
	Items []Value
}

func (Sequence) value() {}

// Unparse renders the sequence.
func (s Sequence) Unparse() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.Unparse()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// String implements fmt.Stringer for diagnostics.
func (r *Relation) String() string { return r.Unparse() }

// String implements fmt.Stringer for diagnostics.
func (b *Boolean) String() string { return b.Unparse() }

// canonAttr normalizes an attribute name: RSL attribute names are
// case-insensitive and ignore underscores (GRAM treats max_time and
// maxtime identically).
func canonAttr(name string) string {
	var sb strings.Builder
	for _, r := range name {
		if r == '_' {
			continue
		}
		sb.WriteRune(toLower(r))
	}
	return sb.String()
}

func toLower(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// AttrEqual reports whether two attribute names are the same under RSL
// canonicalization.
func AttrEqual(a, b string) bool { return canonAttr(a) == canonAttr(b) }

// errorf builds a SyntaxError at pos.
func errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
