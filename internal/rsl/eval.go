package rsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Env is a variable-substitution environment for $(NAME) references.
// Names are case-insensitive (stored upper-case).
type Env map[string]string

// NewEnv builds an Env from alternating name/value pairs.
func NewEnv(pairs ...string) Env {
	if len(pairs)%2 != 0 {
		panic("rsl.NewEnv: odd number of arguments")
	}
	e := make(Env, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		e[strings.ToUpper(pairs[i])] = pairs[i+1]
	}
	return e
}

// Lookup resolves name case-insensitively.
func (e Env) Lookup(name string) (string, bool) {
	v, ok := e[strings.ToUpper(name)]
	return v, ok
}

// EvalValue flattens a Value to its string form under env. Sequences
// evaluate to their space-joined items, which matches how GRAM renders
// multi-part arguments.
func EvalValue(v Value, env Env) (string, error) {
	switch t := v.(type) {
	case Literal:
		return t.Text, nil
	case Variable:
		if env != nil {
			if s, ok := env.Lookup(t.Name); ok {
				return s, nil
			}
		}
		if t.Default != nil {
			return EvalValue(t.Default, env)
		}
		return "", fmt.Errorf("rsl: undefined variable $(%s)", t.Name)
	case Concat:
		var sb strings.Builder
		for _, p := range t.Parts {
			s, err := EvalValue(p, env)
			if err != nil {
				return "", err
			}
			sb.WriteString(s)
		}
		return sb.String(), nil
	case Sequence:
		parts := make([]string, len(t.Items))
		for i, it := range t.Items {
			s, err := EvalValue(it, env)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return strings.Join(parts, " "), nil
	default:
		return "", fmt.Errorf("rsl: unknown value type %T", v)
	}
}

// SubstitutionAttr is the special attribute defining variable bindings:
// (rsl_substitution=(NAME value)(NAME2 value2)).
const SubstitutionAttr = "rsl_substitution"

// Spec is a convenient evaluated view over a conjunction of relations: the
// job-description form every GRAM request ultimately takes. Attribute
// lookups are canonicalized (case- and underscore-insensitive) and
// variables are substituted.
type Spec struct {
	root      Node
	relations []*Relation
	env       Env
}

// NewSpec evaluates node as a single request specification. Disjunctions
// and multi-requests are rejected here; use SplitMulti first for '+'
// specifications. extra provides caller-side variable bindings (e.g.
// HOME, LOGNAME, GLOBUSRUN_GASS_URL in real GRAM) that are merged beneath
// any rsl_substitution bindings in the spec itself.
func NewSpec(node Node, extra Env) (*Spec, error) {
	s := &Spec{root: node, env: make(Env)}
	for k, v := range extra {
		s.env[strings.ToUpper(k)] = v
	}
	if err := s.collect(node); err != nil {
		return nil, err
	}
	// Apply rsl_substitution bindings, in order, before anything else is
	// evaluated. Each pair is (NAME value); later definitions may use
	// earlier ones.
	for _, r := range s.relations {
		if !AttrEqual(r.Attribute, SubstitutionAttr) {
			continue
		}
		for _, v := range r.Values {
			seq, ok := v.(Sequence)
			if !ok || len(seq.Items) < 1 || len(seq.Items) > 2 {
				return nil, fmt.Errorf("rsl: malformed %s pair %s", SubstitutionAttr, v.Unparse())
			}
			name, err := EvalValue(seq.Items[0], s.env)
			if err != nil {
				return nil, err
			}
			val := ""
			if len(seq.Items) == 2 {
				val, err = EvalValue(seq.Items[1], s.env)
				if err != nil {
					return nil, err
				}
			}
			s.env[strings.ToUpper(name)] = val
		}
	}
	return s, nil
}

// ParseSpec parses src and evaluates it as a single request.
func ParseSpec(src string, extra Env) (*Spec, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewSpec(n, extra)
}

func (s *Spec) collect(n Node) error {
	switch t := n.(type) {
	case *Relation:
		s.relations = append(s.relations, t)
		return nil
	case *Boolean:
		switch t.Op {
		case And:
			for _, sub := range t.Specs {
				if err := s.collect(sub); err != nil {
					return err
				}
			}
			return nil
		case Or:
			return fmt.Errorf("rsl: disjunction not valid in a single request; choose an alternative first")
		case Multi:
			return fmt.Errorf("rsl: multi-request not valid in a single request; split with SplitMulti")
		}
	}
	return fmt.Errorf("rsl: unknown node type %T", n)
}

// Root returns the underlying AST node.
func (s *Spec) Root() Node { return s.root }

// Env returns the effective substitution environment.
func (s *Spec) Env() Env { return s.env }

// Relations returns all relations in specification order, excluding the
// rsl_substitution pseudo-relation.
func (s *Spec) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.relations))
	for _, r := range s.relations {
		if AttrEqual(r.Attribute, SubstitutionAttr) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Has reports whether attribute attr appears with '=' in the spec.
func (s *Spec) Has(attr string) bool {
	for _, r := range s.relations {
		if r.Op == OpEq && AttrEqual(r.Attribute, attr) {
			return true
		}
	}
	return false
}

// First returns the evaluated first value of the first '=' relation for
// attr; ok is false when the attribute is absent.
func (s *Spec) First(attr string) (string, bool, error) {
	for _, r := range s.relations {
		if r.Op != OpEq || !AttrEqual(r.Attribute, attr) {
			continue
		}
		v, err := EvalValue(r.Values[0], s.env)
		if err != nil {
			return "", false, err
		}
		return v, true, nil
	}
	return "", false, nil
}

// All returns every evaluated value of every '=' relation for attr, in
// order. The paper's selective info queries concatenate multiple info tags
// — (info=Memory)(info=CPU) — which arrive here as repeated relations.
func (s *Spec) All(attr string) ([]string, error) {
	var out []string
	for _, r := range s.relations {
		if r.Op != OpEq || !AttrEqual(r.Attribute, attr) {
			continue
		}
		for _, v := range r.Values {
			sv, err := EvalValue(v, s.env)
			if err != nil {
				return nil, err
			}
			out = append(out, sv)
		}
	}
	return out, nil
}

// Int returns the attribute's first value parsed as an int, or def when
// absent.
func (s *Spec) Int(attr string, def int) (int, error) {
	v, ok, err := s.First(attr)
	if err != nil || !ok {
		return def, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return def, fmt.Errorf("rsl: attribute %q is not an integer: %w", attr, err)
	}
	return n, nil
}

// String returns the attribute's first value, or def when absent.
func (s *Spec) String(attr, def string) (string, error) {
	v, ok, err := s.First(attr)
	if err != nil || !ok {
		return def, err
	}
	return v, nil
}

// Unparse renders the evaluated spec canonically.
func (s *Spec) Unparse() string { return s.root.Unparse() }

// SplitMulti expands a specification into its individual requests. A
// multi-request (+) yields one entry per sub-spec; anything else yields a
// single entry.
func SplitMulti(n Node) []Node {
	if b, ok := n.(*Boolean); ok && b.Op == Multi {
		out := make([]Node, 0, len(b.Specs))
		for _, s := range b.Specs {
			out = append(out, SplitMulti(s)...)
		}
		return out
	}
	return []Node{n}
}

// Alternatives expands a disjunction (|) into its choices; anything else
// yields itself.
func Alternatives(n Node) []Node {
	if b, ok := n.(*Boolean); ok && b.Op == Or {
		out := make([]Node, 0, len(b.Specs))
		for _, s := range b.Specs {
			out = append(out, Alternatives(s)...)
		}
		return out
	}
	return []Node{n}
}
