package rsl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Random AST generation: Unparse of any generated specification must parse
// back to a structurally identical AST. This complements the string-level
// round-trip tests with coverage of deep nesting and every node kind.

// genValue builds a random Value with bounded depth.
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		return genLiteral(r)
	}
	switch r.Intn(6) {
	case 0, 1, 2:
		return genLiteral(r)
	case 3:
		v := Variable{Name: genName(r)}
		if r.Intn(2) == 0 {
			v.Default = genValue(r, depth-1)
		}
		return v
	case 4:
		n := r.Intn(2) + 2
		parts := make([]Value, n)
		for i := range parts {
			// Concat parts must not themselves be concats (the parser
			// folds them flat) and a sequence inside a concat is not
			// grammatical in our unparser, so restrict to simple values.
			if r.Intn(4) == 0 {
				parts[i] = Variable{Name: genName(r)}
			} else {
				parts[i] = genLiteral(r)
			}
		}
		return Concat{Parts: parts}
	default:
		n := r.Intn(3) + 1
		items := make([]Value, n)
		for i := range items {
			items[i] = genValue(r, depth-1)
		}
		return Sequence{Items: items}
	}
}

// genLiteral produces printable literals, including ones requiring quotes.
func genLiteral(r *rand.Rand) Literal {
	charsets := []string{
		"abcdefghijklmnopqrstuvwxyz0123456789./-_",
		"abc def(x)=+&|#$'\"<>!",
	}
	cs := charsets[r.Intn(len(charsets))]
	n := r.Intn(12) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = cs[r.Intn(len(cs))]
	}
	return Literal{Text: string(b)}
}

func genName(r *rand.Rand) string {
	const cs = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := r.Intn(6) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = cs[r.Intn(len(cs))]
	}
	return string(b)
}

func genRelation(r *rand.Rand, depth int) *Relation {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	n := r.Intn(3) + 1
	values := make([]Value, n)
	for i := range values {
		values[i] = genValue(r, depth)
	}
	return &Relation{
		Attribute: "attr" + genName(r),
		Op:        ops[r.Intn(len(ops))],
		Values:    values,
	}
}

func genNode(r *rand.Rand, depth int) Node {
	if depth <= 0 || r.Intn(3) == 0 {
		return genRelation(r, depth)
	}
	ops := []BoolOp{And, Or, Multi}
	n := r.Intn(3) + 1
	specs := make([]Node, n)
	for i := range specs {
		specs[i] = genNode(r, depth-1)
	}
	return &Boolean{Op: ops[r.Intn(len(ops))], Specs: specs}
}

// normalize removes representational ambiguity before comparison: a
// 1-element implicit conjunction parses back to its single member.
func normalize(n Node) Node {
	switch t := n.(type) {
	case *Boolean:
		specs := make([]Node, len(t.Specs))
		for i, s := range t.Specs {
			specs[i] = normalize(s)
		}
		return &Boolean{Op: t.Op, Specs: specs}
	default:
		return n
	}
}

func TestRandomASTRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := genNode(r, 3)
		src := orig.Unparse()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse error on %q: %v", seed, src, err)
			return false
		}
		if !reflect.DeepEqual(normalize(orig), normalize(parsed)) {
			t.Logf("seed %d:\nsrc:    %q\nparsed: %q", seed, src, parsed.Unparse())
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
