package rsl

import "testing"

var benchSpecs = map[string]string{
	"relation": "(executable=/bin/date)",
	"job": "&(executable=/bin/app)(arguments=one two three)(count=4)" +
		"(environment=(PATH /bin)(LANG C))(directory=/tmp)(maxtime=10)",
	"substitution": `&(rsl_substitution=(BASE /usr)(EXE $(BASE)#/bin/app))` +
		`(executable=$(EXE))(directory=$(BASE))`,
	"multirequest": "+(&(info=all))(&(executable=a))(&(executable=b)(count=2))",
}

func BenchmarkParse(b *testing.B) {
	for name, src := range benchSpecs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnparse(b *testing.B) {
	n := MustParse(benchSpecs["job"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Unparse()
	}
}

func BenchmarkSpecEvaluation(b *testing.B) {
	env := NewEnv("HOME", "/home/bench", "LOGNAME", "bench")
	src := benchSpecs["substitution"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := ParseSpec(src, env)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := spec.First("executable"); err != nil {
			b.Fatal(err)
		}
	}
}
