package rsl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleRelation(t *testing.T) {
	n, err := Parse("(executable=/bin/date)")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := n.(*Relation)
	if !ok {
		t.Fatalf("got %T, want *Relation", n)
	}
	if r.Attribute != "executable" || r.Op != OpEq {
		t.Errorf("relation = %+v", r)
	}
	if len(r.Values) != 1 || r.Values[0].(Literal).Text != "/bin/date" {
		t.Errorf("values = %+v", r.Values)
	}
}

func TestParseConjunction(t *testing.T) {
	n, err := Parse("&(executable=/bin/echo)(arguments=a b c)(count=2)")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := n.(*Boolean)
	if !ok || b.Op != And {
		t.Fatalf("got %T %v", n, n)
	}
	if len(b.Specs) != 3 {
		t.Fatalf("got %d specs", len(b.Specs))
	}
	args := b.Specs[1].(*Relation)
	if len(args.Values) != 3 {
		t.Errorf("arguments values = %d, want 3", len(args.Values))
	}
}

func TestParseImplicitConjunction(t *testing.T) {
	n, err := Parse("(a=1)(b=2)")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := n.(*Boolean)
	if !ok || b.Op != And || len(b.Specs) != 2 {
		t.Fatalf("got %v", n)
	}
}

func TestParseMultiRequest(t *testing.T) {
	n, err := Parse("+(&(executable=a))(&(info=all))")
	if err != nil {
		t.Fatal(err)
	}
	parts := SplitMulti(n)
	if len(parts) != 2 {
		t.Fatalf("SplitMulti: %d parts", len(parts))
	}
	// Nested multi-requests flatten.
	n2 := MustParse("+(&(a=1))(+(&(b=2))(&(c=3)))")
	if got := len(SplitMulti(n2)); got != 3 {
		t.Errorf("nested SplitMulti = %d, want 3", got)
	}
}

func TestParseDisjunction(t *testing.T) {
	n, err := Parse("|(&(count=1))(&(count=4))")
	if err != nil {
		t.Fatal(err)
	}
	alts := Alternatives(n)
	if len(alts) != 2 {
		t.Fatalf("Alternatives: %d", len(alts))
	}
}

func TestParseQuoting(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`(a="hello world")`, "hello world"},
		{`(a='single quoted')`, "single quoted"},
		{`(a="embedded ""quotes"" here")`, `embedded "quotes" here`},
		{`(a='don''t')`, "don't"},
		{`(a="")`, ""},
		{`(a="(parens=inside)")`, "(parens=inside)"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		r := n.(*Relation)
		if got := r.Values[0].(Literal).Text; got != c.want {
			t.Errorf("Parse(%q) value = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]Op{
		"(x=1)": OpEq, "(x!=1)": OpNe, "(x<1)": OpLt,
		"(x<=1)": OpLe, "(x>1)": OpGt, "(x>=1)": OpGe,
	}
	for src, want := range ops {
		n, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := n.(*Relation).Op; got != want {
			t.Errorf("Parse(%q).Op = %q, want %q", src, got, want)
		}
	}
}

func TestParseVariables(t *testing.T) {
	n, err := Parse("(directory=$(HOME))")
	if err != nil {
		t.Fatal(err)
	}
	v := n.(*Relation).Values[0].(Variable)
	if v.Name != "HOME" || v.Default != nil {
		t.Errorf("variable = %+v", v)
	}

	n2 := MustParse(`(directory=$(SCRATCH "/tmp"))`)
	v2 := n2.(*Relation).Values[0].(Variable)
	if v2.Name != "SCRATCH" || v2.Default.(Literal).Text != "/tmp" {
		t.Errorf("variable with default = %+v", v2)
	}
}

func TestParseConcat(t *testing.T) {
	n, err := Parse(`(stdout=$(HOME)#"/out.txt")`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := n.(*Relation).Values[0].(Concat)
	if !ok || len(c.Parts) != 2 {
		t.Fatalf("concat = %+v", n.(*Relation).Values[0])
	}
	got, err := EvalValue(c, NewEnv("HOME", "/home/alice"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "/home/alice/out.txt" {
		t.Errorf("EvalValue = %q", got)
	}
}

func TestParseSequences(t *testing.T) {
	n, err := Parse("(environment=(PATH /bin)(LANG C))")
	if err != nil {
		t.Fatal(err)
	}
	r := n.(*Relation)
	if len(r.Values) != 2 {
		t.Fatalf("values = %d", len(r.Values))
	}
	seq := r.Values[0].(Sequence)
	if len(seq.Items) != 2 || seq.Items[0].(Literal).Text != "PATH" {
		t.Errorf("sequence = %+v", seq)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", ")", "(a)", "(a=)", "(=b)", "(a=b", "&", "&()",
		"(a=b))", "(a=$HOME)", "(a=$(V)", `(a="unterminated)`,
		"(a!b)", "((a=b)", "(a==b)x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorHasOffset(t *testing.T) {
	_, err := Parse("(a=b")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("got %T, want *SyntaxError", err)
	}
}

func TestUnparseRoundTrip(t *testing.T) {
	srcs := []string{
		"(executable=/bin/date)",
		"&(executable=/bin/echo)(arguments=a b c)(count=2)",
		`&(arguments="hello world" plain)`,
		"+(&(a=1))(&(b=2))",
		"|(&(count=1))(&(count=4))",
		"(environment=(PATH /bin)(LANG C))",
		"(stdout=$(HOME)#/out)",
		`(x=$(V "default"))`,
		"(maxtime>=10)",
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := n1.Unparse()
		n2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-Parse(%q from %q): %v", printed, src, err)
			continue
		}
		if n2.Unparse() != printed {
			t.Errorf("unstable unparse: %q -> %q", printed, n2.Unparse())
		}
	}
}

// TestLiteralQuotingProperty: any string survives a quote/parse cycle as a
// relation value.
func TestLiteralQuotingProperty(t *testing.T) {
	prop := func(s string) bool {
		if strings.ContainsRune(s, 0) {
			return true // NUL not meaningful in RSL text
		}
		src := "(x=" + (Literal{Text: s}).Unparse() + ")"
		n, err := Parse(src)
		if err != nil {
			return false
		}
		r, ok := n.(*Relation)
		if !ok || len(r.Values) != 1 {
			return false
		}
		lit, ok := r.Values[0].(Literal)
		return ok && lit.Text == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSpecAccessors(t *testing.T) {
	spec, err := ParseSpec("&(executable=/bin/echo)(arguments=one two)(count=3)(info=Memory)(info=CPU)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Has("executable") || spec.Has("missing") {
		t.Error("Has misbehaves")
	}
	v, ok, err := spec.First("executable")
	if err != nil || !ok || v != "/bin/echo" {
		t.Errorf("First = %q %v %v", v, ok, err)
	}
	all, err := spec.All("info")
	if err != nil || len(all) != 2 || all[0] != "Memory" || all[1] != "CPU" {
		t.Errorf("All = %v %v", all, err)
	}
	n, err := spec.Int("count", 1)
	if err != nil || n != 3 {
		t.Errorf("Int = %d %v", n, err)
	}
	if n, err := spec.Int("absent", 7); err != nil || n != 7 {
		t.Errorf("Int default = %d %v", n, err)
	}
}

func TestSpecAttrCanonicalization(t *testing.T) {
	spec, err := ParseSpec("(Max_Time=5)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := spec.Int("maxtime", 0); n != 5 {
		t.Errorf("maxtime = %d, canonicalization failed", n)
	}
	if !AttrEqual("Max_Time", "maxtime") || AttrEqual("a", "b") {
		t.Error("AttrEqual misbehaves")
	}
}

func TestRSLSubstitution(t *testing.T) {
	src := `&(rsl_substitution=(BASE /usr/local)(EXE $(BASE)#/bin/app))(executable=$(EXE))(directory=$(BASE))`
	spec, err := ParseSpec(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	exe, _, err := spec.First("executable")
	if err != nil || exe != "/usr/local/bin/app" {
		t.Errorf("executable = %q %v", exe, err)
	}
	// rsl_substitution is hidden from Relations().
	for _, r := range spec.Relations() {
		if AttrEqual(r.Attribute, SubstitutionAttr) {
			t.Error("rsl_substitution leaked into Relations()")
		}
	}
}

func TestSubstitutionFromCallerEnv(t *testing.T) {
	spec, err := ParseSpec("(directory=$(HOME))", NewEnv("HOME", "/home/bob"))
	if err != nil {
		t.Fatal(err)
	}
	dir, _, err := spec.First("directory")
	if err != nil || dir != "/home/bob" {
		t.Errorf("directory = %q %v", dir, err)
	}
}

func TestUndefinedVariableFails(t *testing.T) {
	spec, err := ParseSpec("(directory=$(NOPE))", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := spec.First("directory"); err == nil {
		t.Error("expected undefined-variable error")
	}
}

func TestVariableDefaultUsed(t *testing.T) {
	spec, err := ParseSpec(`(directory=$(NOPE "/fallback"))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir, _, err := spec.First("directory")
	if err != nil || dir != "/fallback" {
		t.Errorf("directory = %q %v", dir, err)
	}
}

func TestNewSpecRejectsBooleans(t *testing.T) {
	if _, err := NewSpec(MustParse("+(&(a=1))(&(b=2))"), nil); err == nil {
		t.Error("multi-request should not form a Spec")
	}
	if _, err := NewSpec(MustParse("|(&(a=1))(&(b=2))"), nil); err == nil {
		t.Error("disjunction should not form a Spec")
	}
	// Nested conjunctions are fine.
	if _, err := NewSpec(MustParse("&(&(a=1))(b=2)"), nil); err != nil {
		t.Errorf("nested conjunction: %v", err)
	}
}

func TestPaperExamples(t *testing.T) {
	// Every RSL fragment that appears in the paper parses.
	examples := []string{
		"(executable=myjavaapplication.jar)",
		"(info=all)",
		"(info=Memory)(info=CPU)",
		"(info=schema)",
		"(response=immediate)",
		"(executable=command)(timeout=1000)(action=cancel)",
	}
	for _, src := range examples {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper example %q: %v", src, err)
		}
	}
}
