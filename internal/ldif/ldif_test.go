package ldif

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleEntries() []Entry {
	e1 := Entry{DN: "kw=Memory, resource=hot.anl.gov, o=grid"}
	e1.Add("objectclass", "InfoGramProvider")
	e1.Add("Memory:total", "1024")
	e1.Add("Memory:free", "512")
	e2 := Entry{DN: "kw=CPU, resource=hot.anl.gov, o=grid"}
	e2.Add("CPU:count", "8")
	return []Entry{e1, e2}
}

func TestEncodeBasic(t *testing.T) {
	out, err := Marshal(sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	want := "dn: kw=Memory, resource=hot.anl.gov, o=grid\n" +
		"objectclass: InfoGramProvider\n" +
		"Memory:total: 1024\n" +
		"Memory:free: 512\n" +
		"\n" +
		"dn: kw=CPU, resource=hot.anl.gov, o=grid\n" +
		"CPU:count: 8\n"
	if out != want {
		t.Errorf("Marshal:\n%q\nwant\n%q", out, want)
	}
}

func TestRoundTrip(t *testing.T) {
	entries := sampleEntries()
	out, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].DN != entries[i].DN {
			t.Errorf("entry %d DN = %q", i, back[i].DN)
		}
		if len(back[i].Attrs) != len(entries[i].Attrs) {
			t.Fatalf("entry %d: %d attrs, want %d", i, len(back[i].Attrs), len(entries[i].Attrs))
		}
		for j, a := range entries[i].Attrs {
			if back[i].Attrs[j] != a {
				t.Errorf("entry %d attr %d = %+v, want %+v", i, j, back[i].Attrs[j], a)
			}
		}
	}
}

func TestBase64Values(t *testing.T) {
	cases := []string{
		" leading space",
		"trailing space ",
		":starts with colon",
		"<starts with angle",
		"has\nnewline",
		"non-ascii: héllo",
		"\x00nul",
	}
	for _, v := range cases {
		e := Entry{DN: "o=test"}
		e.Add("attr", v)
		out, err := Marshal([]Entry{e})
		if err != nil {
			t.Fatalf("Marshal(%q): %v", v, err)
		}
		if !strings.Contains(out, "attr:: ") {
			t.Errorf("value %q should be base64-encoded, got %q", v, out)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v", out, err)
		}
		if got, _ := back[0].Get("attr"); got != v {
			t.Errorf("round trip %q -> %q", v, got)
		}
	}
}

func TestLineFolding(t *testing.T) {
	long := strings.Repeat("x", 300)
	e := Entry{DN: "o=test"}
	e.Add("longattr", long)
	out, err := Marshal([]Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(out, "\n") {
		if len(line) > 76 {
			t.Errorf("line %d not folded: %d chars", i, len(line))
		}
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back[0].Get("longattr"); got != long {
		t.Errorf("folded round trip lost data: %d chars back", len(got))
	}
}

func TestColonInAttributeNames(t *testing.T) {
	// The namespaced names of paper §6.2.1 ("Memory:total") must survive.
	e := Entry{DN: "o=test"}
	e.Add("Memory:total", "1024")
	e.Add("quality:score", "98.50")
	out, err := Marshal([]Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back[0].Get("Memory:total"); !ok || v != "1024" {
		t.Errorf("Memory:total = %q %v", v, ok)
	}
	if v, ok := back[0].Get("quality:score"); !ok || v != "98.50" {
		t.Errorf("quality:score = %q %v", v, ok)
	}
}

func TestValueContainingColonSpace(t *testing.T) {
	e := Entry{DN: "o=test"}
	e.Add("note", "key: value")
	out, err := Marshal([]Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back[0].Get("note"); v != "key: value" {
		t.Errorf("note = %q", v)
	}
}

func TestDecodeComments(t *testing.T) {
	src := "# a comment\ndn: o=test\n# another\nattr: v\n"
	entries, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(entries[0].Attrs) != 1 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"attr: value\n",          // attribute before dn
		" continuation first\n",  // continuation with no line
		"dn: o=x\nattr:: !!!\n",  // bad base64
		"dn: o=x\nmalformed\n",   // no colon
		"dn: o=x\n: emptyname\n", // empty name
	}
	for _, src := range cases {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal(%q): expected error", src)
		}
	}
}

func TestEmptyValue(t *testing.T) {
	e := Entry{DN: "o=test"}
	e.Add("empty", "")
	out, err := Marshal([]Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back[0].Get("empty"); !ok || v != "" {
		t.Errorf("empty = %q %v", v, ok)
	}
}

func TestGetAndAll(t *testing.T) {
	e := Entry{DN: "o=test"}
	e.Add("multi", "one").Add("multi", "two").Add("other", "x")
	if v, ok := e.Get("MULTI"); !ok || v != "one" {
		t.Errorf("Get case-insensitive = %q %v", v, ok)
	}
	if all := e.All("multi"); len(all) != 2 || all[1] != "two" {
		t.Errorf("All = %v", all)
	}
	if _, ok := e.Get("absent"); ok {
		t.Error("Get(absent) should be !ok")
	}
}

func TestEmptyAttributeNameRejected(t *testing.T) {
	e := Entry{DN: "o=test"}
	e.Attrs = append(e.Attrs, Attr{Name: "", Value: "x"})
	if _, err := Marshal([]Entry{e}); err == nil {
		t.Error("expected error for empty attribute name")
	}
}

// TestRoundTripProperty: arbitrary printable attribute values round-trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(dn string, names []string, values []string) bool {
		dn = strings.Map(stripControl, dn)
		if dn == "" || strings.HasPrefix(dn, " ") || strings.HasSuffix(dn, " ") {
			dn = "o=test"
		}
		e := Entry{DN: dn}
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			name := sanitizeName(names[i])
			e.Add(name, values[i])
		}
		out, err := Marshal([]Entry{e})
		if err != nil {
			return false
		}
		back, err := Unmarshal(out)
		if err != nil || len(back) != 1 {
			return false
		}
		if back[0].DN != e.DN || len(back[0].Attrs) != len(e.Attrs) {
			return false
		}
		for i, a := range e.Attrs {
			if back[0].Attrs[i] != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func stripControl(r rune) rune {
	if r < 0x20 || r == 0x7f {
		return -1
	}
	return r
}

// sanitizeName produces a valid attribute name from arbitrary input.
func sanitizeName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '-' {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "attr"
	}
	return sb.String()
}
