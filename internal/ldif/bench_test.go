package ldif

import (
	"fmt"
	"testing"
)

func benchEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		e := Entry{DN: fmt.Sprintf("kw=Key%02d, resource=bench, o=grid", i)}
		e.Add("objectclass", "InfoGramProvider")
		e.Add(fmt.Sprintf("Key%02d:alpha", i), "12345")
		e.Add(fmt.Sprintf("Key%02d:beta", i), "a longer value with several words in it")
		e.Add("quality:score", "97.50")
		out[i] = e
	}
	return out
}

func BenchmarkEncode(b *testing.B) {
	entries := benchEntries(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s, err := Marshal(benchEntries(20))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBase64Heavy(b *testing.B) {
	e := Entry{DN: "o=bench"}
	for i := 0; i < 10; i++ {
		e.Add("blob", "binary\x00data with\nnewlines and ünïcode")
	}
	entries := []Entry{e}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(entries); err != nil {
			b.Fatal(err)
		}
	}
}
