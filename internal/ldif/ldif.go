// Package ldif encodes and decodes the LDAP Data Interchange Format
// (RFC 2849 subset) used as the default return format of both the MDS
// baseline and the InfoGram service (paper §5.5, §6.5: "The supported
// formats are LDIF and XML").
//
// Supported features: dn lines, attribute/value pairs in order, base64
// encoding (":: ") whenever a value is not safely printable, line folding
// at 76 columns with one-space continuations, comments, and blank-line
// entry separation.
package ldif

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"strings"
	"sync"

	"infogram/internal/zerocopy"
)

// Attr is one attribute/value pair. Values are opaque strings; ordering is
// preserved, since MDS-style records are meaningful in provider order.
type Attr struct {
	Name  string
	Value string
}

// Entry is one LDIF record: a distinguished name plus ordered attributes.
type Entry struct {
	DN    string
	Attrs []Attr
}

// Add appends an attribute and returns the entry for chaining.
func (e *Entry) Add(name, value string) *Entry {
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Get returns the first value of the named attribute (case-insensitive),
// with ok reporting presence.
func (e *Entry) Get(name string) (string, bool) {
	for _, a := range e.Attrs {
		if strings.EqualFold(a.Name, name) {
			return a.Value, true
		}
	}
	return "", false
}

// All returns every value of the named attribute in order.
func (e *Entry) All(name string) []string {
	var out []string
	for _, a := range e.Attrs {
		if strings.EqualFold(a.Name, name) {
			out = append(out, a.Value)
		}
	}
	return out
}

// foldWidth is the maximum output line length before folding.
const foldWidth = 76

// needsBase64 reports whether value must be base64-encoded per RFC 2849:
// unsafe initial characters (space, colon, '<'), non-printable or non-ASCII
// bytes, or trailing spaces.
func needsBase64(value string) bool {
	if value == "" {
		return false
	}
	switch value[0] {
	case ' ', ':', '<':
		return true
	}
	if value[len(value)-1] == ' ' {
		return true
	}
	for i := 0; i < len(value); i++ {
		c := value[i]
		if c == '\n' || c == '\r' || c == 0 || c >= 0x80 {
			return true
		}
	}
	return false
}

// encoder carries the scratch buffers of one Encode or Marshal call: the
// logical line being assembled (name + separator + value, base64-encoded
// in place when needed) and, for Marshal, the output buffer. Both are
// pooled, so rendering a reply on the request hot path reuses warm
// buffers instead of growing fresh ones per call.
type encoder struct {
	line []byte
	out  bytes.Buffer
}

// maxPooledScratch caps what a returned encoder may retain; a pathological
// giant reply should not pin its buffers in the pool forever.
const maxPooledScratch = 1 << 20

var encPool = sync.Pool{New: func() any { return new(encoder) }}

func getEncoder() *encoder { return encPool.Get().(*encoder) }

func (e *encoder) release() {
	if cap(e.line) > maxPooledScratch || e.out.Cap() > maxPooledScratch {
		return
	}
	e.line = e.line[:0]
	e.out.Reset()
	encPool.Put(e)
}

var (
	nlByte    = []byte{'\n'}
	spaceByte = []byte{' '}
)

// writeAttr assembles "name: value" (or the base64 ":: " form) in the
// line scratch and writes it to w with RFC 2849 folding. No intermediate
// strings are built.
func (e *encoder) writeAttr(w io.Writer, name, value string) error {
	e.line = append(e.line[:0], name...)
	if needsBase64(value) {
		e.line = append(e.line, ':', ':', ' ')
		// zerocopy: base64 encoding only reads its source.
		e.line = base64.StdEncoding.AppendEncode(e.line, zerocopy.Bytes(value))
	} else {
		e.line = append(e.line, ':', ' ')
		e.line = append(e.line, value...)
	}
	return e.flushFolded(w)
}

// flushFolded writes the assembled line with RFC 2849 folding: rows of at
// most foldWidth output columns, continuation rows led by one space.
func (e *encoder) flushFolded(w io.Writer) error {
	line := e.line
	for first := true; ; first = false {
		width := foldWidth
		if !first {
			if _, err := w.Write(spaceByte); err != nil {
				return err
			}
			width-- // the leading space occupies one output column
		}
		if len(line) <= width {
			if _, err := w.Write(line); err != nil {
				return err
			}
			_, err := w.Write(nlByte)
			return err
		}
		if _, err := w.Write(line[:width]); err != nil {
			return err
		}
		if _, err := w.Write(nlByte); err != nil {
			return err
		}
		line = line[width:]
	}
}

func (e *encoder) encode(w io.Writer, entries []Entry) error {
	for i, ent := range entries {
		if i > 0 {
			if _, err := w.Write(nlByte); err != nil {
				return err
			}
		}
		if err := e.writeAttr(w, "dn", ent.DN); err != nil {
			return err
		}
		for _, a := range ent.Attrs {
			if a.Name == "" {
				return fmt.Errorf("ldif: empty attribute name in entry %q", ent.DN)
			}
			if err := e.writeAttr(w, a.Name, a.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Encode writes entries to w in LDIF, separated by blank lines.
func Encode(w io.Writer, entries []Entry) error {
	e := getEncoder()
	defer e.release()
	return e.encode(w, entries)
}

// Marshal renders entries as an LDIF string. The only allocation per call
// in the steady state is the returned string itself.
func Marshal(entries []Entry) (string, error) {
	e := getEncoder()
	defer e.release()
	e.out.Reset()
	if err := e.encode(&e.out, entries); err != nil {
		return "", err
	}
	return e.out.String(), nil
}

// Decode parses LDIF from r. Comments (#) are skipped; folded lines are
// unfolded; base64 values are decoded.
func Decode(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	var entries []Entry
	var cur *Entry
	var pending string // logical line being assembled across folds
	lineNo := 0

	flushLine := func() error {
		if pending == "" {
			return nil
		}
		line := pending
		pending = ""
		if strings.HasPrefix(line, "#") {
			return nil
		}
		name, value, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("ldif: line %d: %w", lineNo, err)
		}
		if strings.EqualFold(name, "dn") {
			if cur != nil {
				entries = append(entries, *cur)
			}
			cur = &Entry{DN: value}
			return nil
		}
		if cur == nil {
			return fmt.Errorf("ldif: line %d: attribute %q before any dn", lineNo, name)
		}
		cur.Add(name, value)
		return nil
	}

	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		switch {
		case raw == "":
			if err := flushLine(); err != nil {
				return nil, err
			}
			if cur != nil {
				entries = append(entries, *cur)
				cur = nil
			}
		case strings.HasPrefix(raw, " "):
			if pending == "" {
				return nil, fmt.Errorf("ldif: line %d: continuation with no preceding line", lineNo)
			}
			pending += raw[1:]
		default:
			if err := flushLine(); err != nil {
				return nil, err
			}
			pending = raw
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ldif: read: %w", err)
	}
	if err := flushLine(); err != nil {
		return nil, err
	}
	if cur != nil {
		entries = append(entries, *cur)
	}
	return entries, nil
}

// Unmarshal parses LDIF from a string.
func Unmarshal(s string) ([]Entry, error) {
	return Decode(strings.NewReader(s))
}

// parseLine splits "name: value", "name:: base64", or "name:" lines. The
// separating colon is the first colon followed by a space, another colon,
// or end of line: attribute names themselves may contain colons, because
// InfoGram namespaces attributes as "Keyword:attr" (paper §6.2.1).
func parseLine(line string) (name, value string, err error) {
	colon := -1
	for i := 0; i < len(line); i++ {
		if line[i] != ':' {
			continue
		}
		if i+1 == len(line) || line[i+1] == ' ' || line[i+1] == ':' {
			colon = i
			break
		}
	}
	if colon <= 0 {
		return "", "", fmt.Errorf("malformed line %q", line)
	}
	name = line[:colon]
	rest := line[colon+1:]
	if strings.HasPrefix(rest, ":") {
		// base64 form
		b, err := base64.StdEncoding.DecodeString(strings.TrimLeft(rest[1:], " "))
		if err != nil {
			return "", "", fmt.Errorf("bad base64 value for %q: %w", name, err)
		}
		return name, string(b), nil
	}
	return name, strings.TrimLeft(rest, " "), nil
}
