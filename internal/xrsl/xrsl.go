// Package xrsl implements the extended Resource Specification Language of
// paper §6.5. InfoGram keeps the Globus RSL syntax so existing Toolkit
// users need not learn URIs or XML query; it adds the tags
//
//	schema, info, filter, response, performance, quality, format
//
// for information queries, and extends job submission with
//
//	timeout, action
//
// (the paper's planned extension, §6.5 "Extensions") plus restart counts
// for the fault-tolerance feature of §6.1.
//
// A decoded request is either a job submission (it has an executable) or
// an information query (it has info tags); the two are never mixed in one
// sub-request — a multi-request (+) carries several of either kind in one
// round trip, which is exactly how InfoGram treats "job submissions and
// information queries alike".
package xrsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"infogram/internal/cache"
	"infogram/internal/quality"
	"infogram/internal/rsl"
)

// Format selects the information return encoding (paper: "The supported
// formats are LDIF and XML").
type Format string

// Supported return formats. LDIF and XML are the paper's; DSML is the
// extension it names as straightforward (§6.5).
const (
	FormatLDIF Format = "ldif"
	FormatXML  Format = "xml"
	FormatDSML Format = "dsml"
)

// ParseFormat validates a format tag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "ldif":
		return FormatLDIF, nil
	case "xml":
		return FormatXML, nil
	case "dsml":
		return FormatDSML, nil
	}
	return "", fmt.Errorf("xrsl: unsupported format %q (want ldif, xml, or dsml)", s)
}

// TimeoutAction is what happens when a job exceeds its timeout tag.
type TimeoutAction string

// Timeout actions (paper §6.5 Extensions).
const (
	// ActionNone means no timeout handling.
	ActionNone TimeoutAction = ""
	// ActionCancel cancels the command when the timeout is reached.
	ActionCancel TimeoutAction = "cancel"
	// ActionException reports a timeout error to the client while the
	// command itself continues executing.
	ActionException TimeoutAction = "exception"
)

// InfoRequest is a decoded information query.
type InfoRequest struct {
	// Keywords lists the requested key information providers in request
	// order. Empty with All set means every provider ((info=all)).
	Keywords []string
	// All is true for (info=all).
	All bool
	// Schema is true for (info=schema): return the reflection schema
	// instead of values (§6.4).
	Schema bool
	// Response is the caching behaviour (§6.5 response tag).
	Response cache.Mode
	// Quality is the threshold in percent below which cached attributes
	// must be regenerated; 0 disables the check (§6.5 quality tag).
	Quality quality.Score
	// Performance requests retrieval-time statistics (mean seconds and
	// standard deviation) alongside the values (§6.5 performance tag).
	Performance bool
	// Format selects LDIF or XML output.
	Format Format
	// Filter optionally restricts returned attributes by glob pattern on
	// their namespaced names, e.g. "Memory:*" (§6.5 filter tag).
	Filter string
}

// JobRequest is a decoded job submission with the GRAM core attributes the
// paper's J-GRAM supports plus the xRSL extensions.
type JobRequest struct {
	Executable  string
	Arguments   []string
	Directory   string
	Environment map[string]string
	Stdin       string
	Count       int
	// JobType selects the backend execution mode: "exec" runs the
	// executable as a process (GRAM's fork); "func" runs a registered
	// in-process function — the analog of J-GRAM executing a submitted
	// jar inside the JVM (§7); "queue" submits to the configured batch
	// backend.
	JobType string
	Queue   string
	// MaxWallTime bounds total job runtime (GRAM maxtime, minutes in RSL;
	// accepted here with duration syntax too).
	MaxWallTime time.Duration
	// Timeout and Action implement the paper's planned
	// (timeout=1000)(action=cancel|exception) extension.
	Timeout time.Duration
	Action  TimeoutAction
	// Restart is the fault-tolerance retry budget (§6.1 "allows to
	// restart a job upon failure").
	Restart int
	// CallbackContact, when set, asks the service to push status events
	// to this address (GRAM event notification).
	CallbackContact string
	// Checkpoint carries the most recent checkpoint blob when a job is
	// resubmitted by restart recovery; it is service-internal and has no
	// xRSL tag.
	Checkpoint string `json:"-"`
}

// Kind discriminates decoded requests.
type Kind int

// Request kinds.
const (
	KindInfo Kind = iota
	KindJob
)

// Request is one decoded xRSL sub-request.
type Request struct {
	Kind Kind
	Info *InfoRequest
	Job  *JobRequest
	// Source is the originating specification, for logging/accounting.
	Source string
}

// Decode parses and classifies a full xRSL string, expanding
// multi-requests into their components.
func Decode(src string, env rsl.Env) ([]*Request, error) {
	node, err := rsl.Parse(src)
	if err != nil {
		return nil, err
	}
	parts := rsl.SplitMulti(node)
	out := make([]*Request, 0, len(parts))
	for _, p := range parts {
		spec, err := rsl.NewSpec(p, env)
		if err != nil {
			return nil, err
		}
		req, err := DecodeSpec(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, nil
}

// DecodeOne parses a single-request xRSL string, rejecting multi-requests.
func DecodeOne(src string, env rsl.Env) (*Request, error) {
	reqs, err := Decode(src, env)
	if err != nil {
		return nil, err
	}
	if len(reqs) != 1 {
		return nil, fmt.Errorf("xrsl: expected a single request, got %d", len(reqs))
	}
	return reqs[0], nil
}

// DecodeSpec classifies one evaluated specification.
func DecodeSpec(spec *rsl.Spec) (*Request, error) {
	hasExec := spec.Has("executable")
	infos, err := spec.All("info")
	if err != nil {
		return nil, err
	}
	hasInfo := len(infos) > 0
	switch {
	case hasExec && hasInfo:
		return nil, fmt.Errorf("xrsl: a request cannot carry both executable and info tags; use a multi-request (+)")
	case hasExec:
		job, err := decodeJob(spec)
		if err != nil {
			return nil, err
		}
		return &Request{Kind: KindJob, Job: job, Source: spec.Unparse()}, nil
	case hasInfo:
		info, err := decodeInfo(spec, infos)
		if err != nil {
			return nil, err
		}
		return &Request{Kind: KindInfo, Info: info, Source: spec.Unparse()}, nil
	default:
		return nil, fmt.Errorf("xrsl: request has neither executable nor info tags")
	}
}

func decodeInfo(spec *rsl.Spec, infos []string) (*InfoRequest, error) {
	req := &InfoRequest{Format: FormatLDIF}
	for _, kw := range infos {
		switch strings.ToLower(kw) {
		case "all":
			req.All = true
		case "schema":
			req.Schema = true
		default:
			req.Keywords = append(req.Keywords, kw)
		}
	}
	if req.All && len(req.Keywords) > 0 {
		// (info=all) subsumes explicit keywords.
		req.Keywords = nil
	}

	respStr, err := spec.String("response", "")
	if err != nil {
		return nil, err
	}
	mode, err := cache.ParseMode(strings.ToLower(respStr))
	if err != nil {
		return nil, fmt.Errorf("xrsl: %w", err)
	}
	req.Response = mode

	if q, ok, err := spec.First("quality"); err != nil {
		return nil, err
	} else if ok {
		f, err := strconv.ParseFloat(strings.TrimSuffix(q, "%"), 64)
		if err != nil {
			return nil, fmt.Errorf("xrsl: quality tag %q is not a percentage: %w", q, err)
		}
		if f < 0 || f > 100 {
			return nil, fmt.Errorf("xrsl: quality threshold %v out of range [0,100]", f)
		}
		req.Quality = quality.Score(f)
	}

	if p, ok, err := spec.First("performance"); err != nil {
		return nil, err
	} else if ok {
		b, err := parseBool(p)
		if err != nil {
			return nil, fmt.Errorf("xrsl: performance tag: %w", err)
		}
		req.Performance = b
	}

	fstr, err := spec.String("format", "")
	if err != nil {
		return nil, err
	}
	format, err := ParseFormat(fstr)
	if err != nil {
		return nil, err
	}
	req.Format = format

	req.Filter, err = spec.String("filter", "")
	if err != nil {
		return nil, err
	}
	return req, nil
}

func decodeJob(spec *rsl.Spec) (*JobRequest, error) {
	job := &JobRequest{Count: 1, JobType: "exec"}
	var err error
	if job.Executable, err = spec.String("executable", ""); err != nil {
		return nil, err
	}
	if job.Arguments, err = spec.All("arguments"); err != nil {
		return nil, err
	}
	if job.Directory, err = spec.String("directory", ""); err != nil {
		return nil, err
	}
	if job.Stdin, err = spec.String("stdin", ""); err != nil {
		return nil, err
	}
	if job.Count, err = spec.Int("count", 1); err != nil {
		return nil, err
	}
	if job.Count < 1 {
		return nil, fmt.Errorf("xrsl: count must be positive, got %d", job.Count)
	}
	if job.JobType, err = spec.String("jobtype", "exec"); err != nil {
		return nil, err
	}
	switch job.JobType {
	case "exec", "func", "queue":
	default:
		return nil, fmt.Errorf("xrsl: unknown jobtype %q (want exec, func, or queue)", job.JobType)
	}
	if job.Queue, err = spec.String("queue", ""); err != nil {
		return nil, err
	}
	if job.CallbackContact, err = spec.String("callback", ""); err != nil {
		return nil, err
	}
	if job.Restart, err = spec.Int("restart", 0); err != nil {
		return nil, err
	}
	if job.Restart < 0 {
		return nil, fmt.Errorf("xrsl: restart budget must be non-negative")
	}

	if job.MaxWallTime, err = durationAttr(spec, "maxtime", time.Minute); err != nil {
		return nil, err
	}
	if job.Timeout, err = durationAttr(spec, "timeout", time.Millisecond); err != nil {
		return nil, err
	}
	actionStr, err := spec.String("action", "")
	if err != nil {
		return nil, err
	}
	switch TimeoutAction(strings.ToLower(actionStr)) {
	case ActionNone, ActionCancel, ActionException:
		job.Action = TimeoutAction(strings.ToLower(actionStr))
	default:
		return nil, fmt.Errorf("xrsl: unknown action %q (want cancel or exception)", actionStr)
	}
	if job.Action != ActionNone && job.Timeout <= 0 {
		return nil, fmt.Errorf("xrsl: action tag requires a positive timeout tag")
	}

	// Environment: (environment=(NAME value)(NAME2 value2)).
	env, err := decodeEnvironment(spec)
	if err != nil {
		return nil, err
	}
	job.Environment = env
	return job, nil
}

// durationAttr reads an attribute as a duration; bare integers take the
// given unit, matching GRAM (maxtime in minutes) and the paper's timeout
// example ((timeout=1000) is milliseconds).
func durationAttr(spec *rsl.Spec, attr string, unit time.Duration) (time.Duration, error) {
	v, ok, err := spec.First(attr)
	if err != nil || !ok {
		return 0, err
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("xrsl: %s must be non-negative", attr)
		}
		return time.Duration(n) * unit, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("xrsl: %s is not a duration: %q", attr, v)
	}
	return d, nil
}

func decodeEnvironment(spec *rsl.Spec) (map[string]string, error) {
	var env map[string]string
	for _, r := range spec.Relations() {
		if r.Op != rsl.OpEq || !rsl.AttrEqual(r.Attribute, "environment") {
			continue
		}
		for _, v := range r.Values {
			seq, ok := v.(rsl.Sequence)
			if !ok || len(seq.Items) != 2 {
				return nil, fmt.Errorf("xrsl: environment entries must be (NAME value) pairs, got %s", v.Unparse())
			}
			name, err := rsl.EvalValue(seq.Items[0], spec.Env())
			if err != nil {
				return nil, err
			}
			val, err := rsl.EvalValue(seq.Items[1], spec.Env())
			if err != nil {
				return nil, err
			}
			if env == nil {
				env = make(map[string]string)
			}
			env[name] = val
		}
	}
	return env, nil
}

func parseBool(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "true", "yes", "1", "on":
		return true, nil
	case "false", "no", "0", "off":
		return false, nil
	}
	return false, fmt.Errorf("not a boolean: %q", s)
}

// quoteValue renders v as an RSL literal, quoting when needed.
func quoteValue(v string) string { return rsl.Literal{Text: v}.Unparse() }

// Encode renders an InfoRequest back to canonical xRSL.
func (r *InfoRequest) Encode() string {
	var sb strings.Builder
	sb.WriteString("&")
	switch {
	case r.Schema:
		sb.WriteString("(info=schema)")
	case r.All || len(r.Keywords) == 0:
		sb.WriteString("(info=all)")
	default:
		for _, kw := range r.Keywords {
			fmt.Fprintf(&sb, "(info=%s)", quoteValue(kw))
		}
	}
	if r.Response != cache.Cached {
		fmt.Fprintf(&sb, "(response=%s)", r.Response)
	}
	if r.Quality > 0 {
		fmt.Fprintf(&sb, "(quality=%g)", float64(r.Quality))
	}
	if r.Performance {
		sb.WriteString("(performance=true)")
	}
	if r.Format != "" && r.Format != FormatLDIF {
		fmt.Fprintf(&sb, "(format=%s)", r.Format)
	}
	if r.Filter != "" {
		fmt.Fprintf(&sb, "(filter=%s)", quoteValue(r.Filter))
	}
	return sb.String()
}

// Encode renders a JobRequest back to canonical xRSL.
func (j *JobRequest) Encode() string {
	var sb strings.Builder
	sb.WriteString("&")
	fmt.Fprintf(&sb, "(executable=%s)", quoteValue(j.Executable))
	if len(j.Arguments) > 0 {
		sb.WriteString("(arguments=")
		for i, a := range j.Arguments {
			if i > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString(quoteValue(a))
		}
		sb.WriteString(")")
	}
	if j.Directory != "" {
		fmt.Fprintf(&sb, "(directory=%s)", quoteValue(j.Directory))
	}
	if j.Stdin != "" {
		fmt.Fprintf(&sb, "(stdin=%s)", quoteValue(j.Stdin))
	}
	if j.Count > 1 {
		fmt.Fprintf(&sb, "(count=%d)", j.Count)
	}
	if j.JobType != "" && j.JobType != "exec" {
		fmt.Fprintf(&sb, "(jobtype=%s)", j.JobType)
	}
	if j.Queue != "" {
		fmt.Fprintf(&sb, "(queue=%s)", quoteValue(j.Queue))
	}
	if j.MaxWallTime > 0 {
		fmt.Fprintf(&sb, "(maxtime=%s)", j.MaxWallTime)
	}
	if j.Timeout > 0 {
		fmt.Fprintf(&sb, "(timeout=%d)", j.Timeout.Milliseconds())
	}
	if j.Action != ActionNone {
		fmt.Fprintf(&sb, "(action=%s)", j.Action)
	}
	if j.Restart > 0 {
		fmt.Fprintf(&sb, "(restart=%d)", j.Restart)
	}
	if j.CallbackContact != "" {
		fmt.Fprintf(&sb, "(callback=%s)", quoteValue(j.CallbackContact))
	}
	if len(j.Environment) > 0 {
		names := make([]string, 0, len(j.Environment))
		for n := range j.Environment {
			names = append(names, n)
		}
		sort.Strings(names)
		sb.WriteString("(environment=")
		for i, n := range names {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "(%s %s)", quoteValue(n), quoteValue(j.Environment[n]))
		}
		sb.WriteString(")")
	}
	return sb.String()
}
