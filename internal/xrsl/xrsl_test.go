package xrsl

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"infogram/internal/cache"
)

func TestDecodeInfoQuery(t *testing.T) {
	reqs, err := Decode("&(info=Memory)(info=CPU)(response=immediate)(quality=80)(performance=true)(format=xml)(filter=Memory:*)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Kind != KindInfo {
		t.Fatalf("reqs = %+v", reqs)
	}
	info := reqs[0].Info
	if len(info.Keywords) != 2 || info.Keywords[0] != "Memory" || info.Keywords[1] != "CPU" {
		t.Errorf("Keywords = %v", info.Keywords)
	}
	if info.Response != cache.Immediate {
		t.Errorf("Response = %v", info.Response)
	}
	if info.Quality != 80 {
		t.Errorf("Quality = %v", info.Quality)
	}
	if !info.Performance {
		t.Error("Performance not set")
	}
	if info.Format != FormatXML {
		t.Errorf("Format = %v", info.Format)
	}
	if info.Filter != "Memory:*" {
		t.Errorf("Filter = %q", info.Filter)
	}
}

func TestDecodeInfoAll(t *testing.T) {
	req, err := DecodeOne("(info=all)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !req.Info.All || len(req.Info.Keywords) != 0 {
		t.Errorf("info = %+v", req.Info)
	}
	// all subsumes explicit keywords.
	req2, err := DecodeOne("(info=Memory)(info=all)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !req2.Info.All || len(req2.Info.Keywords) != 0 {
		t.Errorf("info = %+v", req2.Info)
	}
}

func TestDecodeSchemaQuery(t *testing.T) {
	req, err := DecodeOne("(info=schema)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !req.Info.Schema {
		t.Error("Schema not set")
	}
}

func TestDecodeResponseModes(t *testing.T) {
	for str, want := range map[string]cache.Mode{
		"cached": cache.Cached, "immediate": cache.Immediate, "last": cache.Last,
	} {
		req, err := DecodeOne("(info=all)(response="+str+")", nil)
		if err != nil {
			t.Errorf("response=%s: %v", str, err)
			continue
		}
		if req.Info.Response != want {
			t.Errorf("response=%s decoded to %v", str, req.Info.Response)
		}
	}
	if _, err := DecodeOne("(info=all)(response=bogus)", nil); err == nil {
		t.Error("expected error for bogus response mode")
	}
}

func TestDecodeJob(t *testing.T) {
	src := `&(executable=/bin/app)(arguments=one "two three")(directory=/tmp)(count=2)` +
		`(environment=(PATH /bin)(LANG C))(stdin=in.txt)(queue=batch)(maxtime=5)` +
		`(timeout=1000)(action=cancel)(restart=2)(callback=127.0.0.1:9999)`
	req, err := DecodeOne(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindJob {
		t.Fatalf("kind = %v", req.Kind)
	}
	j := req.Job
	if j.Executable != "/bin/app" {
		t.Errorf("Executable = %q", j.Executable)
	}
	if len(j.Arguments) != 2 || j.Arguments[1] != "two three" {
		t.Errorf("Arguments = %v", j.Arguments)
	}
	if j.Directory != "/tmp" || j.Stdin != "in.txt" || j.Queue != "batch" {
		t.Errorf("job = %+v", j)
	}
	if j.Count != 2 {
		t.Errorf("Count = %d", j.Count)
	}
	if j.Environment["PATH"] != "/bin" || j.Environment["LANG"] != "C" {
		t.Errorf("Environment = %v", j.Environment)
	}
	if j.MaxWallTime != 5*time.Minute {
		t.Errorf("MaxWallTime = %v (maxtime unit is minutes)", j.MaxWallTime)
	}
	if j.Timeout != time.Second {
		t.Errorf("Timeout = %v (timeout unit is milliseconds)", j.Timeout)
	}
	if j.Action != ActionCancel {
		t.Errorf("Action = %v", j.Action)
	}
	if j.Restart != 2 {
		t.Errorf("Restart = %d", j.Restart)
	}
	if j.CallbackContact != "127.0.0.1:9999" {
		t.Errorf("Callback = %q", j.CallbackContact)
	}
}

func TestDecodeJobDefaults(t *testing.T) {
	req, err := DecodeOne("(executable=/bin/true)", nil)
	if err != nil {
		t.Fatal(err)
	}
	j := req.Job
	if j.Count != 1 || j.JobType != "exec" || j.Restart != 0 || j.Action != ActionNone {
		t.Errorf("defaults = %+v", j)
	}
}

func TestDecodeRejectsMixed(t *testing.T) {
	if _, err := DecodeOne("(executable=/bin/true)(info=all)", nil); err == nil {
		t.Error("mixed executable+info should fail")
	}
}

func TestDecodeRejectsNeither(t *testing.T) {
	if _, err := DecodeOne("(count=2)", nil); err == nil {
		t.Error("no executable, no info should fail")
	}
}

func TestDecodeValidation(t *testing.T) {
	bad := []string{
		"(executable=x)(count=0)",
		"(executable=x)(count=-1)",
		"(executable=x)(jobtype=weird)",
		"(executable=x)(restart=-1)",
		"(executable=x)(action=cancel)", // action without timeout
		"(executable=x)(action=explode)(timeout=10)",
		"(executable=x)(timeout=-5)",
		"(info=all)(quality=150)",
		"(info=all)(quality=-1)",
		"(info=all)(quality=abc)",
		"(info=all)(format=yaml)",
		"(info=all)(performance=maybe)",
		"(executable=x)(environment=(ONLYNAME))(environment=bad)",
	}
	for _, src := range bad {
		if _, err := DecodeOne(src, nil); err == nil {
			t.Errorf("DecodeOne(%q): expected error", src)
		}
	}
}

func TestDecodeMulti(t *testing.T) {
	reqs, err := Decode("+(&(info=all))(&(executable=/bin/true))(&(info=schema))", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests", len(reqs))
	}
	kinds := []Kind{reqs[0].Kind, reqs[1].Kind, reqs[2].Kind}
	if kinds[0] != KindInfo || kinds[1] != KindJob || kinds[2] != KindInfo {
		t.Errorf("kinds = %v", kinds)
	}
	if _, err := DecodeOne("+(&(info=all))(&(executable=x))", nil); err == nil {
		t.Error("DecodeOne should reject multi-requests")
	}
}

func TestDecodeTimeoutDurationSyntax(t *testing.T) {
	req, err := DecodeOne("(executable=x)(timeout=1.5s)(action=exception)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.Job.Timeout != 1500*time.Millisecond {
		t.Errorf("Timeout = %v", req.Job.Timeout)
	}
	if req.Job.Action != ActionException {
		t.Errorf("Action = %v", req.Job.Action)
	}
}

func TestQualityPercentSuffix(t *testing.T) {
	req, err := DecodeOne("(info=all)(quality=75%)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.Info.Quality != 75 {
		t.Errorf("Quality = %v", req.Info.Quality)
	}
}

func TestInfoRequestEncodeRoundTrip(t *testing.T) {
	cases := []InfoRequest{
		{All: true, Format: FormatLDIF},
		{Keywords: []string{"Memory", "CPU"}, Response: cache.Immediate, Format: FormatLDIF},
		{Schema: true, Format: FormatXML},
		{Keywords: []string{"CPULoad"}, Quality: 66.5, Performance: true, Format: FormatLDIF},
		{All: true, Filter: "Memory:*", Format: FormatXML},
		{Keywords: []string{"weird keyword"}, Format: FormatLDIF},
		{Keywords: []string{"Memory"}, Format: FormatDSML},
	}
	for _, want := range cases {
		src := want.Encode()
		req, err := DecodeOne(src, nil)
		if err != nil {
			t.Errorf("re-decode %q: %v", src, err)
			continue
		}
		if req.Kind != KindInfo {
			t.Errorf("%q decoded to kind %v", src, req.Kind)
			continue
		}
		got := req.Info
		if got.All != want.All || got.Schema != want.Schema ||
			got.Response != want.Response || got.Quality != want.Quality ||
			got.Performance != want.Performance || got.Format != want.Format ||
			got.Filter != want.Filter || strings.Join(got.Keywords, ",") != strings.Join(want.Keywords, ",") {
			t.Errorf("round trip %q:\n got %+v\nwant %+v", src, got, want)
		}
	}
}

func TestJobRequestEncodeRoundTrip(t *testing.T) {
	cases := []JobRequest{
		{Executable: "/bin/true", Count: 1, JobType: "exec"},
		{Executable: "hello", Arguments: []string{"a", "b c"}, Count: 3, JobType: "func"},
		{Executable: "/bin/x", Directory: "/tmp", Stdin: "in", Count: 1, JobType: "exec",
			Environment: map[string]string{"A": "1", "B": "two words"}},
		{Executable: "x", Count: 1, JobType: "exec", Timeout: 2 * time.Second, Action: ActionException},
		{Executable: "x", Count: 1, JobType: "queue", Queue: "batch", Restart: 3,
			MaxWallTime: 2 * time.Minute, CallbackContact: "127.0.0.1:8"},
	}
	for _, want := range cases {
		src := want.Encode()
		req, err := DecodeOne(src, nil)
		if err != nil {
			t.Errorf("re-decode %q: %v", src, err)
			continue
		}
		got := req.Job
		if got.Executable != want.Executable || got.Directory != want.Directory ||
			got.Stdin != want.Stdin || got.Count != want.Count ||
			got.JobType != want.JobType || got.Queue != want.Queue ||
			got.Timeout != want.Timeout || got.Action != want.Action ||
			got.Restart != want.Restart || got.MaxWallTime != want.MaxWallTime ||
			got.CallbackContact != want.CallbackContact ||
			strings.Join(got.Arguments, "\x00") != strings.Join(want.Arguments, "\x00") {
			t.Errorf("round trip %q:\n got %+v\nwant %+v", src, got, want)
		}
		for k, v := range want.Environment {
			if got.Environment[k] != v {
				t.Errorf("env %s = %q, want %q", k, got.Environment[k], v)
			}
		}
	}
}

// TestInfoEncodePropertyKeywords: arbitrary keyword strings survive the
// encode/decode cycle.
func TestInfoEncodePropertyKeywords(t *testing.T) {
	prop := func(kw string) bool {
		if kw == "" || strings.ContainsRune(kw, 0) {
			return true
		}
		lower := strings.ToLower(kw)
		if lower == "all" || lower == "schema" {
			return true // reserved words
		}
		src := (&InfoRequest{Keywords: []string{kw}, Format: FormatLDIF}).Encode()
		req, err := DecodeOne(src, nil)
		if err != nil || req.Kind != KindInfo {
			return false
		}
		return len(req.Info.Keywords) == 1 && req.Info.Keywords[0] == kw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat(""); err != nil || f != FormatLDIF {
		t.Errorf("empty format: %v %v", f, err)
	}
	if f, err := ParseFormat("XML"); err != nil || f != FormatXML {
		t.Errorf("XML: %v %v", f, err)
	}
	if f, err := ParseFormat("DSML"); err != nil || f != FormatDSML {
		t.Errorf("DSML: %v %v", f, err)
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("yaml should be rejected")
	}
}

func TestPaperXRSLExamples(t *testing.T) {
	// The exact tag combinations shown in §6.5 decode as intended.
	req, err := DecodeOne("(info=Memory)(info=CPU)", nil)
	if err != nil || len(req.Info.Keywords) != 2 {
		t.Errorf("selective query: %+v %v", req, err)
	}
	req, err = DecodeOne("(executable=command)(timeout=1000)(action=cancel)", nil)
	if err != nil || req.Job.Timeout != time.Second || req.Job.Action != ActionCancel {
		t.Errorf("timeout example: %+v %v", req, err)
	}
	req, err = DecodeOne("(executable=myjavaapplication.jar)", nil)
	if err != nil || req.Job.Executable != "myjavaapplication.jar" {
		t.Errorf("jar example: %+v %v", req, err)
	}
}
