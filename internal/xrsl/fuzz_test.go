package xrsl

import (
	"testing"

	"infogram/internal/rsl"
)

// FuzzParseXRSL guards the xRSL decoder against panics and checks that any
// specification it accepts re-encodes into something it accepts again with
// the same classification. Exact value round-trips are not asserted —
// encoding normalizes representations (e.g. timeout renders in whole
// milliseconds) — but a decoded request must never encode into garbage.
func FuzzParseXRSL(f *testing.F) {
	seeds := []string{
		// Information queries across the §6.5 tag surface.
		"(info=all)",
		"(info=Date)(performance=true)",
		"(info=Memory)(info=CPU)(format=xml)",
		"(info=schema)",
		"(info=all)(response=cached)(quality=75)",
		"(info=all)(filter=Memory:*)(format=dsml)",
		"(info=selfmetrics)",
		// Job submissions: GRAM attributes plus the paper's extensions.
		"(executable=/bin/date)(arguments=-u)",
		"&(executable=/bin/echo)(arguments=a b c)(count=2)(jobtype=func)",
		"(executable=/bin/sleep)(arguments=1)(timeout=500)(action=cancel)",
		"(executable=/bin/true)(restart=3)(callback=127.0.0.1:9999)",
		"(executable=/bin/ls)(directory=/tmp)(environment=(A 1)(B 2))(queue=default)(maxtime=5)",
		"(executable=/bin/cat)(stdin=/etc/hostname)(jobtype=queue)",
		// Multi-requests mixing both kinds.
		"+(&(info=Date))(&(executable=/bin/echo)(arguments=hi))",
		"+(&(info=all)(format=xml))(&(info=schema))",
		// Invalid and adversarial inputs: must reject, not panic.
		"(executable=/bin/date)(info=all)",
		"(info=)",
		"(timeout=abc)",
		"(quality=999)",
		"((((",
		"",
		"&",
		"(a=$()",
		"(info=all)(response=bogus)",
		"(executable=/bin/x)(jobtype=marsrover)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		env := rsl.NewEnv("HOME", "/home/u", "LOGNAME", "u")
		reqs, err := Decode(src, env)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, req := range reqs {
			var encoded string
			switch req.Kind {
			case KindInfo:
				if req.Info == nil {
					t.Fatalf("info request without Info: %q", src)
				}
				encoded = req.Info.Encode()
			case KindJob:
				if req.Job == nil {
					t.Fatalf("job request without Job: %q", src)
				}
				encoded = req.Job.Encode()
			default:
				t.Fatalf("Decode accepted unclassifiable kind %v: %q", req.Kind, src)
			}
			again, err := DecodeOne(encoded, env)
			if err != nil {
				t.Fatalf("re-encode of accepted request does not decode:\nsrc: %q\nenc: %q\nerr: %v", src, encoded, err)
			}
			if again.Kind != req.Kind {
				t.Fatalf("classification flipped on re-encode: %v -> %v\nsrc: %q\nenc: %q", req.Kind, again.Kind, src, encoded)
			}
		}
	})
}
