package quality

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBinary(t *testing.T) {
	b := Binary{Lifetime: time.Second}
	if got := b.Quality(0); got != 100 {
		t.Errorf("Quality(0) = %v", got)
	}
	if got := b.Quality(time.Second); got != 100 {
		t.Errorf("Quality(1s) = %v (boundary is inclusive)", got)
	}
	if got := b.Quality(time.Second + 1); got != 0 {
		t.Errorf("Quality(1s+1ns) = %v", got)
	}
	if got := (Binary{}).Quality(0); got != 0 {
		t.Errorf("zero-lifetime binary should always be 0, got %v", got)
	}
}

func TestLinear(t *testing.T) {
	l := Linear{Horizon: 10 * time.Second}
	cases := []struct {
		age  time.Duration
		want Score
	}{
		{0, 100},
		{5 * time.Second, 50},
		{10 * time.Second, 0},
		{20 * time.Second, 0},
		{-time.Second, 100},
	}
	for _, c := range cases {
		if got := l.Quality(c.age); math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("Quality(%v) = %v, want %v", c.age, got, c.want)
		}
	}
	if got := (Linear{}).Quality(time.Second); got != 0 {
		t.Errorf("zero-horizon linear = %v", got)
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{HalfLife: time.Second}
	if got := e.Quality(0); got != 100 {
		t.Errorf("Quality(0) = %v", got)
	}
	if got := e.Quality(time.Second); math.Abs(float64(got)-50) > 1e-9 {
		t.Errorf("Quality(halflife) = %v, want 50", got)
	}
	if got := e.Quality(2 * time.Second); math.Abs(float64(got)-25) > 1e-9 {
		t.Errorf("Quality(2*halflife) = %v, want 25", got)
	}
}

func TestStep(t *testing.T) {
	s := Step{Steps: []StepPoint{
		{Age: time.Second, Value: 80},
		{Age: 5 * time.Second, Value: 40},
		{Age: 30 * time.Second, Value: 10},
	}}
	cases := []struct {
		age  time.Duration
		want Score
	}{
		{0, 100},
		{999 * time.Millisecond, 100},
		{time.Second, 80},
		{4 * time.Second, 80},
		{5 * time.Second, 40},
		{time.Minute, 10},
	}
	for _, c := range cases {
		if got := s.Quality(c.age); got != c.want {
			t.Errorf("Quality(%v) = %v, want %v", c.age, got, c.want)
		}
	}
}

// TestMonotoneDecay: every degradation function is non-increasing in age.
func TestMonotoneDecay(t *testing.T) {
	fns := []Degradation{
		Binary{Lifetime: 3 * time.Second},
		Linear{Horizon: 7 * time.Second},
		Exponential{HalfLife: 2 * time.Second},
		Step{Steps: []StepPoint{{Age: time.Second, Value: 70}, {Age: 4 * time.Second, Value: 20}}},
	}
	prop := func(a, b uint32) bool {
		ageA := time.Duration(a%100_000) * time.Millisecond
		ageB := time.Duration(b%100_000) * time.Millisecond
		if ageA > ageB {
			ageA, ageB = ageB, ageA
		}
		for _, fn := range fns {
			if fn.Quality(ageA) < fn.Quality(ageB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestBoundedScores: scores stay within [0,100] for arbitrary ages.
func TestBoundedScores(t *testing.T) {
	fns := []Degradation{
		Binary{Lifetime: time.Second},
		Linear{Horizon: time.Second},
		Exponential{HalfLife: time.Millisecond},
		Step{Steps: []StepPoint{{Age: 0, Value: 55}}},
	}
	prop := func(ms int64) bool {
		age := time.Duration(ms) * time.Millisecond
		for _, fn := range fns {
			q := fn.Quality(age)
			if q < 0 || q > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Score(150).Clamp(); got != 100 {
		t.Errorf("Clamp(150) = %v", got)
	}
	if got := Score(-5).Clamp(); got != 0 {
		t.Errorf("Clamp(-5) = %v", got)
	}
	if got := Score(42).Clamp(); got != 42 {
		t.Errorf("Clamp(42) = %v", got)
	}
}

func TestAssess(t *testing.T) {
	a := Assess(Linear{Horizon: 10 * time.Second}, 5*time.Second)
	if a.Score != 50 {
		t.Errorf("Score = %v", a.Score)
	}
	if a.Age != 5*time.Second {
		t.Errorf("Age = %v", a.Age)
	}
	if a.Function != "linear(10s)" {
		t.Errorf("Function = %q", a.Function)
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		fn   Degradation
		want string
	}{
		{Binary{Lifetime: 5 * time.Second}, "binary(5s)"},
		{Linear{Horizon: 2 * time.Minute}, "linear(2m0s)"},
		{Exponential{HalfLife: 30 * time.Second}, "exponential(30s)"},
		{Step{Steps: []StepPoint{{Age: time.Second, Value: 80}}}, "step(1s:80)"},
	}
	for _, c := range cases {
		if got := c.fn.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestSelfCorrectingNeutralByDefault(t *testing.T) {
	base := Linear{Horizon: 10 * time.Second}
	sc := NewSelfCorrecting(base)
	if got, want := sc.Quality(5*time.Second), base.Quality(5*time.Second); got != want {
		t.Errorf("uncorrected Quality = %v, want %v", got, want)
	}
	if sc.Factor() != 1 {
		t.Errorf("initial factor = %v", sc.Factor())
	}
}

func TestSelfCorrectingSlowsDecayForStableValues(t *testing.T) {
	base := Linear{Horizon: 10 * time.Second}
	sc := NewSelfCorrecting(base)
	// Values that barely drift: 0.01% change over 10s, far below the
	// reference rate.
	for i := 0; i < 10; i++ {
		sc.ObserveDrift(0.0001, 10*time.Second)
	}
	if f := sc.Factor(); f >= 1 {
		t.Fatalf("factor = %v, want < 1 for stable values", f)
	}
	if got, want := sc.Quality(5*time.Second), base.Quality(5*time.Second); got <= want {
		t.Errorf("corrected quality %v should exceed base %v", got, want)
	}
	if sc.Observations() != 10 {
		t.Errorf("Observations = %d", sc.Observations())
	}
}

func TestSelfCorrectingSpeedsDecayForVolatileValues(t *testing.T) {
	base := Linear{Horizon: 10 * time.Second}
	sc := NewSelfCorrecting(base)
	// 100% change per second: far above the 1%/s reference.
	for i := 0; i < 10; i++ {
		sc.ObserveDrift(1.0, time.Second)
	}
	if f := sc.Factor(); f <= 1 {
		t.Fatalf("factor = %v, want > 1 for volatile values", f)
	}
	if got, want := sc.Quality(2*time.Second), base.Quality(2*time.Second); got >= want {
		t.Errorf("corrected quality %v should be below base %v", got, want)
	}
}

func TestSelfCorrectingFactorBounds(t *testing.T) {
	sc := NewSelfCorrecting(Linear{Horizon: time.Second})
	for i := 0; i < 100; i++ {
		sc.ObserveDrift(1e9, time.Millisecond) // absurd volatility
	}
	if f := sc.Factor(); f > 8 {
		t.Errorf("factor %v exceeds upper bound", f)
	}
	sc2 := NewSelfCorrecting(Linear{Horizon: time.Second})
	for i := 0; i < 100; i++ {
		sc2.ObserveDrift(0, time.Hour)
	}
	if f := sc2.Factor(); f < 0.125 {
		t.Errorf("factor %v below lower bound", f)
	}
}

func TestSelfCorrectingIgnoresGarbage(t *testing.T) {
	sc := NewSelfCorrecting(Linear{Horizon: time.Second})
	sc.ObserveDrift(-1, time.Second)
	sc.ObserveDrift(math.NaN(), time.Second)
	sc.ObserveDrift(math.Inf(1), time.Second)
	sc.ObserveDrift(0.5, 0)
	sc.ObserveDrift(0.5, -time.Second)
	if sc.Observations() != 0 {
		t.Errorf("garbage observations were recorded: %d", sc.Observations())
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"binary(5s)", "binary(5s)"},
		{"binary(5000)", "binary(5s)"}, // bare int = milliseconds
		{"linear(2m)", "linear(2m0s)"},
		{"exponential(30s)", "exponential(30s)"},
		{"step(1s:80,5s:40)", "step(1s:80,5s:40)"},
		{"selfcorrecting(linear(1s))", "selfcorrecting(linear(1s))"},
		{"  LINEAR(1s)  ", "linear(1s)"},
	}
	for _, c := range cases {
		fn, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if fn.Name() != c.name {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", c.spec, fn.Name(), c.name)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"", "linear", "linear()", "unknown(1s)", "step()", "step(1s)",
		"step(5s:40,1s:80)", // ages must increase
		"binary(xyz)", "(1s)", "linear(1s",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

// TestParseSpecRoundTrip: Name() output re-parses to a function with the
// same behaviour.
func TestParseSpecRoundTrip(t *testing.T) {
	fns := []Degradation{
		Binary{Lifetime: 5 * time.Second},
		Linear{Horizon: 90 * time.Second},
		Exponential{HalfLife: 250 * time.Millisecond},
		Step{Steps: []StepPoint{{Age: time.Second, Value: 80}, {Age: 9 * time.Second, Value: 15}}},
	}
	ages := []time.Duration{0, time.Second, 5 * time.Second, time.Minute}
	for _, fn := range fns {
		parsed, err := ParseSpec(fn.Name())
		if err != nil {
			t.Errorf("re-parse %q: %v", fn.Name(), err)
			continue
		}
		for _, age := range ages {
			if got, want := parsed.Quality(age), fn.Quality(age); math.Abs(float64(got-want)) > 1e-9 {
				t.Errorf("%s at %v: reparsed %v != original %v", fn.Name(), age, got, want)
			}
		}
	}
}
