// Package quality implements the information-degradation model of paper
// §5.2 and §6.3: every cached information value can be augmented with a
// degradation function that maps its age to a quality-of-information score
// in [0,100]. The xRSL "quality" tag compares that score against a client
// threshold to decide whether a cached value may be served or must be
// regenerated.
//
// The paper distinguishes two cases: a binary model in which information is
// either accurate or inaccurate (Case One), and a discrete/continuous decay
// over time (Case Two). Both are provided here, together with an
// observation-corrected model in the spirit of the paper's data-assimilation
// analogy: predicted quality is adjusted by comparing predictions against
// observed value drift.
package quality

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Score is a quality-of-information value in percent: 100 means fresh and
// fully trusted, 0 means worthless.
type Score float64

// Clamp bounds s to [0,100].
func (s Score) Clamp() Score {
	if s < 0 {
		return 0
	}
	if s > 100 {
		return 100
	}
	return s
}

// Degradation maps the age of an information value to a quality Score.
// Implementations must be safe for concurrent use.
type Degradation interface {
	// Quality returns the score for information of the given age.
	Quality(age time.Duration) Score
	// Name identifies the function in schemas and reflection output.
	Name() string
}

// Binary is the paper's Case One: information is fully accurate until its
// lifetime expires and worthless afterwards.
type Binary struct {
	// Lifetime is the validity window; a non-positive lifetime means the
	// value is always stale (quality 0 at any age).
	Lifetime time.Duration
}

// Quality returns 100 within the lifetime and 0 after it.
func (b Binary) Quality(age time.Duration) Score {
	if b.Lifetime > 0 && age <= b.Lifetime {
		return 100
	}
	return 0
}

// Name returns the schema name of the function.
func (b Binary) Name() string { return fmt.Sprintf("binary(%s)", b.Lifetime) }

// Linear decays from 100 at age zero to 0 at Horizon.
type Linear struct {
	Horizon time.Duration
}

// Quality returns the linearly interpolated score.
func (l Linear) Quality(age time.Duration) Score {
	if l.Horizon <= 0 {
		return 0
	}
	if age <= 0 {
		return 100
	}
	s := Score(100 * (1 - float64(age)/float64(l.Horizon)))
	return s.Clamp()
}

// Name returns the schema name of the function.
func (l Linear) Name() string { return fmt.Sprintf("linear(%s)", l.Horizon) }

// Exponential decays with the given half-life: quality halves every
// HalfLife of age.
type Exponential struct {
	HalfLife time.Duration
}

// Quality returns 100 * 2^(-age/halflife).
func (e Exponential) Quality(age time.Duration) Score {
	if e.HalfLife <= 0 {
		return 0
	}
	if age <= 0 {
		return 100
	}
	s := Score(100 * math.Exp2(-float64(age)/float64(e.HalfLife)))
	return s.Clamp()
}

// Name returns the schema name of the function.
func (e Exponential) Name() string { return fmt.Sprintf("exponential(%s)", e.HalfLife) }

// Step degrades in discrete plateaus (the paper's "degrade over time in a
// discrete fashion"). Steps must be ordered by increasing Age; the score
// before the first step is 100.
type Step struct {
	Steps []StepPoint
}

// StepPoint is one plateau boundary: at ages >= Age the quality is Value.
type StepPoint struct {
	Age   time.Duration
	Value Score
}

// Quality returns the score of the deepest plateau reached.
func (s Step) Quality(age time.Duration) Score {
	q := Score(100)
	for _, p := range s.Steps {
		if age >= p.Age {
			q = p.Value
		} else {
			break
		}
	}
	return q.Clamp()
}

// Name returns the schema name of the function.
func (s Step) Name() string {
	parts := make([]string, len(s.Steps))
	for i, p := range s.Steps {
		parts[i] = fmt.Sprintf("%s:%g", p.Age, float64(p.Value))
	}
	return "step(" + strings.Join(parts, ",") + ")"
}

// Assessment couples a value's quality score with the statistical context
// the paper asks for ("knowing the standard deviation or knowing that the
// accuracy of the value is valid over the last hour", §5.2).
type Assessment struct {
	Score      Score
	Age        time.Duration
	ValidOver  time.Duration // window over which the value is considered representative
	Function   string        // name of the degradation function applied
	Observed   int64         // number of drift observations feeding self-correction
	DriftSigma float64       // observed relative drift standard deviation, if tracked
}

// Assess evaluates fn at the given age and packages the result.
func Assess(fn Degradation, age time.Duration) Assessment {
	return Assessment{
		Score:     fn.Quality(age),
		Age:       age,
		ValidOver: age,
		Function:  fn.Name(),
	}
}
