package quality

import (
	"math"
	"sync"
	"time"
)

// SelfCorrecting wraps a base Degradation and adjusts its predictions from
// observed value drift, the paper's data-assimilation analogy (§5.2):
// "perform self correction based on observation data". Each time a value is
// refreshed, callers report the relative change between the old cached
// value and the newly observed one via ObserveDrift. A value that in
// practice barely moves earns a slower effective decay; a volatile value
// decays faster than the base function predicts.
type SelfCorrecting struct {
	Base Degradation

	mu     sync.Mutex
	n      int64
	mean   float64 // running mean of |relative drift| per second of age
	m2     float64
	factor float64 // current time-scaling factor applied to age
}

// NewSelfCorrecting returns a self-correcting wrapper around base with a
// neutral correction factor.
func NewSelfCorrecting(base Degradation) *SelfCorrecting {
	return &SelfCorrecting{Base: base, factor: 1}
}

// referenceDriftPerSecond is the drift rate at which the base function is
// considered calibrated: 1% relative change per second. Observed rates
// above it accelerate decay; rates below it slow decay.
const referenceDriftPerSecond = 0.01

// ObserveDrift records that a value changed by relDrift (|new-old|/|old|,
// or an application-defined relative distance) after age of staleness.
// Non-positive ages are ignored.
func (sc *SelfCorrecting) ObserveDrift(relDrift float64, age time.Duration) {
	if age <= 0 || relDrift < 0 || math.IsNaN(relDrift) || math.IsInf(relDrift, 0) {
		return
	}
	rate := relDrift / age.Seconds()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.n++
	d := rate - sc.mean
	sc.mean += d / float64(sc.n)
	sc.m2 += d * (rate - sc.mean)
	// The correction factor scales age before it reaches the base
	// function. Bounded to [1/8, 8] so a few extreme observations cannot
	// freeze or obliterate the cache.
	f := sc.mean / referenceDriftPerSecond
	if f < 0.125 {
		f = 0.125
	}
	if f > 8 {
		f = 8
	}
	sc.factor = f
}

// Quality evaluates the base function at the drift-corrected age.
func (sc *SelfCorrecting) Quality(age time.Duration) Score {
	sc.mu.Lock()
	f := sc.factor
	sc.mu.Unlock()
	if age < 0 {
		age = 0
	}
	scaled := time.Duration(float64(age) * f)
	return sc.Base.Quality(scaled)
}

// Name identifies the corrected function, including its current factor.
func (sc *SelfCorrecting) Name() string {
	return "selfcorrecting(" + sc.Base.Name() + ")"
}

// Observations returns how many drift samples have been incorporated.
func (sc *SelfCorrecting) Observations() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.n
}

// Factor returns the current age-scaling factor (1 = neutral).
func (sc *SelfCorrecting) Factor() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.factor
}

// DriftSigma returns the standard deviation of the observed drift rate.
func (sc *SelfCorrecting) DriftSigma() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.n < 2 {
		return 0
	}
	return math.Sqrt(sc.m2 / float64(sc.n-1))
}
