package quality

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a degradation-function specification string as used in
// InfoGram configuration files and reflected back by Name():
//
//	binary(5s)
//	linear(2m)
//	exponential(30s)
//	step(1s:80,5s:40,30s:10)
//	selfcorrecting(linear(2m))
//
// Durations use Go syntax; bare integers are milliseconds, matching the
// configuration file's TTL column convention.
func ParseSpec(spec string) (Degradation, error) {
	spec = strings.TrimSpace(spec)
	open := strings.IndexByte(spec, '(')
	if open <= 0 || !strings.HasSuffix(spec, ")") {
		return nil, fmt.Errorf("quality: malformed degradation spec %q", spec)
	}
	name := strings.ToLower(spec[:open])
	arg := spec[open+1 : len(spec)-1]
	switch name {
	case "binary":
		d, err := parseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("quality: binary: %w", err)
		}
		return Binary{Lifetime: d}, nil
	case "linear":
		d, err := parseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("quality: linear: %w", err)
		}
		return Linear{Horizon: d}, nil
	case "exponential":
		d, err := parseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("quality: exponential: %w", err)
		}
		return Exponential{HalfLife: d}, nil
	case "step":
		return parseStep(arg)
	case "selfcorrecting":
		base, err := ParseSpec(arg)
		if err != nil {
			return nil, fmt.Errorf("quality: selfcorrecting: %w", err)
		}
		return NewSelfCorrecting(base), nil
	default:
		return nil, fmt.Errorf("quality: unknown degradation function %q", name)
	}
}

func parseStep(arg string) (Degradation, error) {
	parts := strings.Split(arg, ",")
	st := Step{}
	var prev time.Duration = -1
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		kv := strings.SplitN(p, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("quality: step point %q must be age:value", p)
		}
		age, err := parseDuration(kv[0])
		if err != nil {
			return nil, fmt.Errorf("quality: step age: %w", err)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("quality: step value: %w", err)
		}
		if age <= prev {
			return nil, fmt.Errorf("quality: step ages must increase (%s after %s)", age, prev)
		}
		prev = age
		st.Steps = append(st.Steps, StepPoint{Age: age, Value: Score(val).Clamp()})
	}
	if len(st.Steps) == 0 {
		return nil, fmt.Errorf("quality: step needs at least one point")
	}
	return st, nil
}

// parseDuration accepts Go duration syntax or a bare integer interpreted
// as milliseconds.
func parseDuration(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(n) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return d, nil
}
