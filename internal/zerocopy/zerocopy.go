// Package zerocopy converts between string and []byte without copying the
// underlying bytes. The request hot path moves payloads between the wire
// layer ([]byte frames) and the protocol layer (string xRSL sources and
// rendered bodies); converting with the built-in conversions copies the
// whole payload each way, which at high request rates is pure allocator
// pressure. These helpers alias the memory instead.
//
// Safety contract, enforced by the callers:
//
//   - Bytes(s): the returned slice aliases the string's storage and must
//     never be written to — doing so would mutate an "immutable" string.
//   - String(b): the caller must not mutate b after the call; the
//     returned string aliases it.
//
// Both are the same aliasing the standard library performs inside
// strings.Builder.String; they are package-local so each call site's
// ownership argument is documented where the conversion happens.
package zerocopy

import "unsafe"

// String aliases b as a string. b must not be mutated afterwards.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Bytes aliases s as a byte slice. The result must be treated as
// read-only.
func Bytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}
