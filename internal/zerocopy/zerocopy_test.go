package zerocopy

import "testing"

func TestStringRoundTrip(t *testing.T) {
	b := []byte("hello, grid")
	s := String(b)
	if s != "hello, grid" {
		t.Fatalf("String = %q", s)
	}
	if got := Bytes(s); string(got) != "hello, grid" {
		t.Fatalf("Bytes = %q", got)
	}
}

func TestEmpty(t *testing.T) {
	if String(nil) != "" {
		t.Fatal("String(nil) != \"\"")
	}
	if String([]byte{}) != "" {
		t.Fatal("String(empty) != \"\"")
	}
	if Bytes("") != nil {
		t.Fatal("Bytes(\"\") != nil")
	}
}

func TestAliasing(t *testing.T) {
	b := []byte("abc")
	s := String(b)
	b[0] = 'x' // violating the contract on purpose to prove aliasing
	if s != "xbc" {
		t.Fatalf("String does not alias its input: %q", s)
	}
}
