package telemetry

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
)

// TraceID identifies one client request end to end: minted when the
// wire.Server accepts the connection's conversation, carried through the
// core dispatcher into provider lookups, cache reads, and job-manager
// spawns, and stamped onto every structured log record the request
// produces. Correlating a slow query with its per-span log records is a
// grep for the trace ID.
type TraceID string

// NewTraceID mints a random 64-bit trace ID in hex. It uses the per-P
// math/rand/v2 source: trace IDs need uniqueness within a log window, not
// cryptographic strength, and minting must stay off the allocator-heavy
// path as much as possible.
func NewTraceID() TraceID {
	var b [8]byte
	v := rand.Uint64()
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return TraceID(hex.EncodeToString(b[:]))
}

type traceKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx ("" when absent).
func TraceFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceKey{}).(TraceID)
	return id
}

// Handler serves the registry in Prometheus text exposition format, for
// mounting at /metrics on an operator-facing HTTP port.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
